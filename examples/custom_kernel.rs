//! Write a kernel in assembly text, assemble it, and study its
//! compression behaviour — including offline design-space evaluation from
//! a captured write trace.
//!
//! Run with: `cargo run --release --example custom_kernel`

use warped_compression_suite::prelude::*;
use warped_compression_suite::wc::WriteTrace;

const SOURCE: &str = r#"
.kernel blur regs 8
    # r0 = gtid; 1-D 3-tap blur over an image with narrow dynamic range,
    # with a boundary guard that diverges the edge warps' lanes.
    mov    r0, %gtid
    set.lt r1, 0, r0            # r1 = gtid > 0
    sub    r2, param[0], 1
    set.lt r2, r0, r2           # r2 = gtid < N-1
    and    r1, r1, r2
    set.eq r2, r1, 0
    bra    r2, @skip, @skip     # skip the body on the boundary
    ld     r3, [r0-1]
    ld     r4, [r0+0]
    ld     r5, [r0+1]
    add    r6, r3, r5
    add    r6, r6, r4
    add    r6, r6, r4
    div    r6, r6, 4
    st     [r0+0], r6           # in-place is fine: values stay in band
@skip:
    exit
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = warped_compression_suite::isa::assemble(SOURCE)?;
    println!(
        "assembled `{}` ({} instructions):\n{}",
        kernel.name(),
        kernel.len(),
        kernel.disassemble()
    );

    let n = 8 * 64;
    let launch = LaunchConfig::new(8, 64).with_params(vec![n as u32]);
    let image: Vec<u32> = (0..n).map(|i| 100 + ((i * 37) % 50) as u32).collect();

    // Run once under warped-compression, capturing the write trace.
    let mut trace = WriteTrace::new();
    let mut memory = GlobalMemory::from_words(image.clone());
    let result = GpuSim::new(DesignPoint::WarpedCompression.config()).run_observed(
        &kernel,
        &launch,
        &mut memory,
        &mut |e| trace.record(e),
    )?;

    println!(
        "cycles: {}   warp instructions: {}",
        result.stats.cycles, result.stats.instructions
    );
    println!(
        "non-divergent: {:.1}%",
        result.stats.nondivergent_ratio() * 100.0
    );
    println!(
        "online compression ratio: {:.3}",
        result.stats.compression_ratio()
    );

    // Offline design-space evaluation from the captured trace: no
    // re-simulation needed to ask what each choice set would achieve.
    println!("\noffline ratios from the {}-write trace:", trace.len());
    for (label, set) in [
        ("<4,0> only", ChoiceSet::only(FixedChoice::Delta0)),
        ("<4,1> only", ChoiceSet::only(FixedChoice::Delta1)),
        ("<4,2> only", ChoiceSet::only(FixedChoice::Delta2)),
        ("dynamic (warped)", ChoiceSet::warped_compression()),
    ] {
        println!("  {label:<18} {:.3}", trace.compression_ratio_under(&set));
    }

    // Sanity: the blur must actually have blurred.
    let mut changed = 0;
    for (i, &orig) in image.iter().enumerate().take(n - 1).skip(1) {
        if memory.word(i).unwrap() != orig {
            changed += 1;
        }
    }
    println!("\n{changed}/{n} interior pixels updated");
    Ok(())
}
