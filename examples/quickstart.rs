//! Quickstart: compress warp registers, then run a tiny kernel under the
//! baseline and warped-compression designs and compare energy.
//!
//! Run with: `cargo run --release --example quickstart`

use warped_compression_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The compression primitive ---------------------------------
    // A warp register = the 32 per-thread values of one architectural
    // register. Thread-index arithmetic produces values like these:
    let tid_affine = WarpRegister::from_fn(|tid| 0x1000 + 4 * tid as u32);
    let codec = BdiCodec::default();
    let compressed = codec.compress(&tid_affine);
    println!(
        "tid-affine register: {} -> {} bytes ({} of 8 banks), ratio {:.2}",
        bdi::WARP_REGISTER_BYTES,
        compressed.stored_len(),
        compressed.banks_required(),
        compressed.compression_ratio(),
    );
    assert_eq!(codec.decompress(&compressed), tid_affine);

    // --- 2. A kernel on the simulator ---------------------------------
    // mem[gtid] = gtid * 3 + 7, for 4 blocks of 64 threads.
    let mut b = KernelBuilder::new("quickstart", 3);
    b.mov(Reg(0), Operand::Special(Special::GlobalTid));
    b.alu(AluOp::Mul, Reg(1), Reg(0).into(), Operand::Imm(3));
    b.alu(AluOp::Add, Reg(2), Reg(1).into(), Operand::Imm(7));
    b.st(Reg(0), 0, Reg(2));
    b.exit();
    let kernel = b.build()?;
    let launch = LaunchConfig::new(4, 64);

    let mut results = Vec::new();
    for point in [DesignPoint::Baseline, DesignPoint::WarpedCompression] {
        let mut memory = GlobalMemory::zeroed(256);
        let run = GpuSim::new(point.config()).run(&kernel, &launch, &mut memory)?;
        assert_eq!(
            memory.word(100).unwrap(),
            307,
            "kernel result must be correct"
        );
        results.push((point, run.stats));
    }

    // --- 3. Energy comparison -----------------------------------------
    let params = EnergyParams::paper_table3();
    let base = energy_of(&results[0].1, &params);
    let wc = energy_of(&results[1].1, &params);
    println!(
        "baseline: {} bank accesses, {:.1} nJ total",
        results[0].1.regfile.total_accesses(),
        base.total_pj() / 1000.0
    );
    println!(
        "warped-compression: {} bank accesses, {:.1} nJ total ({:.1}% saved)",
        results[1].1.regfile.total_accesses(),
        wc.total_pj() / 1000.0,
        wc.savings_vs(&base) * 100.0
    );
    println!(
        "compression ratio of this kernel's writes: {:.2}",
        results[1].1.compression_ratio()
    );
    Ok(())
}
