//! The paper's motivating workload: run the `pathfinder` benchmark
//! (Fig. 4) under both designs and print the full energy breakdown —
//! a single-benchmark slice of Fig. 9.
//!
//! Run with: `cargo run --release --example pathfinder_energy`

use warped_compression_suite::prelude::*;
use warped_compression_suite::wc::RunOutput;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = by_name("pathfinder").expect("pathfinder is in the suite");
    println!("workload: {} — {}", workload.name(), workload.description());
    println!("kernel:\n{}", workload.kernel().disassemble());

    let base = run_workload(&DesignPoint::Baseline.config(), &workload)?;
    let wc = run_workload(&DesignPoint::WarpedCompression.config(), &workload)?;
    let params = EnergyParams::paper_table3();

    print_run("baseline", &base, &params);
    print_run("warped-compression", &wc, &params);

    let be = energy_of(&base.stats, &params);
    let we = energy_of(&wc.stats, &params);
    println!("\nenergy saving: {:.1}%", we.savings_vs(&be) * 100.0);
    println!(
        "performance impact: {:+.2}% cycles",
        (wc.stats.cycles as f64 / base.stats.cycles as f64 - 1.0) * 100.0
    );
    println!(
        "compression ratio: {:.2} non-divergent / {} divergent",
        wc.stats.compression_ratio_nondiv(),
        wc.stats
            .compression_ratio_div()
            .map(|r| format!("{r:.2}"))
            .unwrap_or_else(|| "N/A".into())
    );
    println!(
        "dummy MOV fraction: {:.2}%",
        wc.stats.mov_fraction() * 100.0
    );
    Ok(())
}

fn print_run(label: &str, run: &RunOutput, params: &EnergyParams) {
    let e = energy_of(&run.stats, params);
    println!("\n== {label} ==");
    println!("  cycles:            {}", run.stats.cycles);
    println!("  warp instructions: {}", run.stats.instructions);
    println!(
        "  bank reads/writes: {} / {}",
        run.stats.regfile.total_reads(),
        run.stats.regfile.total_writes()
    );
    println!(
        "  gated bank-cycles: {}",
        run.stats.regfile.gated_cycles.iter().sum::<u64>()
    );
    println!(
        "  energy (nJ): dynamic {:.1}, leakage {:.1}, comp {:.1}, decomp {:.1}, total {:.1}",
        e.dynamic_pj / 1000.0,
        e.leakage_pj / 1000.0,
        e.compression_pj / 1000.0,
        e.decompression_pj / 1000.0,
        e.total_pj() / 1000.0
    );
}
