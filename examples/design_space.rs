//! Design-space exploration (§6.6–§6.8) on one workload: single
//! compression choices, comp/decomp energy scaling, wire activity, and
//! latency sweeps — the per-benchmark version of Figs. 15–21.
//!
//! Run with: `cargo run --release --example design_space [workload]`

use warped_compression_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hotspot".into());
    let w = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}; available: {:?}", workloads_list());
        std::process::exit(1);
    });
    println!("design space exploration on `{name}`\n");

    let params = EnergyParams::paper_table3();
    let base = run_workload(&DesignPoint::Baseline.config(), &w)?;
    let base_e = energy_of(&base.stats, &params);

    // --- compression-parameter choices (Figs. 15/16) -------------------
    println!(
        "{:<28} {:>8} {:>12} {:>10}",
        "design", "ratio", "energy", "cycles"
    );
    for point in [
        DesignPoint::Only(FixedChoice::Delta0),
        DesignPoint::Only(FixedChoice::Delta1),
        DesignPoint::Only(FixedChoice::Delta2),
        DesignPoint::WarpedCompression,
    ] {
        let run = run_workload(&point.config(), &w)?;
        println!(
            "{:<28} {:>8.2} {:>11.3} {:>10}",
            point.label(),
            run.stats.compression_ratio(),
            energy_of(&run.stats, &params).normalized_to(&base_e),
            run.stats.cycles,
        );
    }

    // --- energy sensitivity (Figs. 17-19) ------------------------------
    let wc = run_workload(&DesignPoint::WarpedCompression.config(), &w)?;
    println!("\ncomp/decomp energy scaling (Fig. 17):");
    for scale in [1.0, 1.5, 2.0, 2.5] {
        let p = EnergyParams::paper_table3().with_comp_decomp_scale(scale);
        println!(
            "  {scale:.1}x -> normalised energy {:.3}",
            energy_of(&wc.stats, &p).normalized_to(&base_e)
        );
    }
    println!("wire activity sweep (Fig. 19):");
    for activity in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let p = EnergyParams::paper_table3().with_wire_activity(activity);
        let norm = energy_of(&wc.stats, &p).normalized_to(&energy_of(&base.stats, &p));
        println!(
            "  {:>3.0}% -> normalised energy {:.3}",
            activity * 100.0,
            norm
        );
    }

    // --- latency sweeps (Figs. 20/21) -----------------------------------
    println!("\nlatency sweeps (execution time normalised to baseline):");
    for (label, points) in [
        ("compression", [(2u64, 1u64), (4, 1), (8, 1)]),
        ("decompression", [(2, 2), (2, 4), (2, 8)]),
    ] {
        print!("  {label}:");
        for (c, d) in points {
            let run = run_workload(
                &DesignPoint::Latency {
                    compression: c,
                    decompression: d,
                }
                .config(),
                &w,
            )?;
            let knob = if label == "compression" { c } else { d };
            print!(
                "  {knob} cyc -> {:.3}",
                run.stats.cycles as f64 / base.stats.cycles as f64
            );
        }
        println!();
    }
    Ok(())
}

fn workloads_list() -> Vec<&'static str> {
    warped_compression_suite::workloads::names()
}
