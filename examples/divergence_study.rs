//! Branch divergence and compression (§5.2): compare the paper's
//! dummy-MOV policy against the rejected decompress-merge-recompress
//! alternative on the divergence-heavy workloads.
//!
//! Run with: `cargo run --release --example divergence_study`

use warped_compression_suite::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = EnergyParams::paper_table3();
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "bench", "nondiv%", "movs(UW)", "ratio-div", "energy UW", "energy DMR"
    );
    for name in ["bfs", "dwt2d", "spmv", "pathfinder", "aes"] {
        let w = by_name(name).expect("workload exists");
        let base = run_workload(&DesignPoint::Baseline.config(), &w)?;
        let uw = run_workload(&DesignPoint::WarpedCompression.config(), &w)?;
        let dmr = run_workload(&DesignPoint::DecompressMergeRecompress.config(), &w)?;

        let base_e = energy_of(&base.stats, &params);
        let uw_norm = energy_of(&uw.stats, &params).normalized_to(&base_e);
        let dmr_norm = energy_of(&dmr.stats, &params).normalized_to(&base_e);
        println!(
            "{:<12} {:>7.1}% {:>10} {:>10} {:>11.3} {:>11.3}",
            name,
            uw.stats.nondivergent_ratio() * 100.0,
            uw.stats.synthetic_movs,
            uw.stats
                .compression_ratio_div()
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "N/A".into()),
            uw_norm,
            dmr_norm,
        );
    }
    println!(
        "\nUW = uncompressed divergent writes + dummy MOVs (the paper's choice);\n\
         DMR = decompress-merge-recompress (the rejected alternative).\n\
         Lower normalised energy is better; 1.0 = uncompressed baseline.\n\
         Note: DMR wins on modelled energy here because the intermediate\n\
         buffers it needs (the reason §5.2 rejects it) are not charged —\n\
         the paper's argument is an area/complexity one, not pure energy."
    );
    Ok(())
}
