//! Umbrella crate for the Warped-Compression (ISCA 2015) reproduction.
//!
//! Re-exports the whole stack under one roof so examples and downstream
//! users need a single dependency:
//!
//! * [`bdi`] — Base-Delta-Immediate compression for warp registers,
//! * [`isa`] — the mini SIMT instruction set,
//! * [`regfile`] — the banked register file with bank-level power gating,
//! * [`sim`] — the cycle-level SIMT core simulator,
//! * [`power`] — the Table 3 energy model,
//! * [`workloads`] — the 14 synthetic benchmarks,
//! * [`analysis`] — static kernel verification, liveness and warp-value
//!   abstract interpretation,
//! * [`wc`] — the warped-compression experiment layer (design points,
//!   similarity characterisation, energy pricing).
//!
//! # Quickstart
//!
//! ```
//! use warped_compression_suite::prelude::*;
//!
//! let reg = WarpRegister::from_fn(|tid| 0x800 + tid as u32);
//! let codec = BdiCodec::default();
//! let compressed = codec.compress(&reg);
//! assert_eq!(compressed.banks_required(), 3);
//! ```

pub use bdi;
pub use gpu_power as power;
pub use gpu_regfile as regfile;
pub use gpu_sim as sim;
pub use gpu_workloads as workloads;
pub use simt_analysis as analysis;
pub use simt_isa as isa;
pub use warped_compression as wc;

/// The most common imports for working with the suite.
pub mod prelude {
    pub use bdi::{BdiCodec, ChoiceSet, CompressedRegister, FixedChoice, WarpRegister};
    pub use gpu_power::{EnergyParams, EnergyReport};
    pub use gpu_sim::{GlobalMemory, GpuConfig, GpuSim, LaunchConfig, SimResult};
    pub use gpu_workloads::{by_name, suite, Workload};
    pub use simt_isa::{AluOp, KernelBuilder, Operand, Reg, Special};
    pub use warped_compression::{energy_of, run_workload, DesignPoint};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_exposes_all_crates() {
        // Touch one item per re-exported crate.
        let _ = crate::bdi::WARP_SIZE;
        let _ = crate::isa::Reg(0);
        let _ = crate::regfile::RegFileConfig::paper_baseline();
        let _ = crate::sim::GpuConfig::baseline();
        let _ = crate::power::EnergyParams::paper_table3();
        let _ = crate::analysis::AbsVal::zero();
        assert_eq!(crate::workloads::names().len(), 18);
        let _ = crate::wc::DesignPoint::WarpedCompression;
    }
}
