//! Property tests for the energy model: monotonicity and scaling laws
//! that every figure implicitly relies on.

use gpu_power::{ActivityCounts, EnergyModel, EnergyParams, LowPowerKind};
use proptest::prelude::*;

fn arb_activity() -> impl Strategy<Value = ActivityCounts> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..10_000_000,
        0u64..10_000_000,
        prop_oneof![Just(LowPowerKind::Gated), Just(LowPowerKind::Drowsy)],
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
    )
        .prop_map(
            |(bank_reads, bank_writes, powered, low, low_power, cycles, comp, decomp)| {
                ActivityCounts {
                    bank_reads,
                    bank_writes,
                    powered_bank_cycles: powered,
                    low_power_bank_cycles: low,
                    low_power,
                    cycles,
                    compressor_activations: comp,
                    decompressor_activations: decomp,
                }
            },
        )
}

proptest! {
    /// Energy is non-negative and finite for any activity.
    #[test]
    fn energy_is_well_formed(a in arb_activity()) {
        let r = EnergyModel::new(EnergyParams::paper_table3()).evaluate(&a);
        for v in [r.dynamic_pj, r.leakage_pj, r.compression_pj, r.decompression_pj] {
            prop_assert!(v.is_finite() && v >= 0.0, "bad component {v}");
        }
        prop_assert!(r.total_pj() >= r.dynamic_pj);
    }

    /// More bank accesses never cost less dynamic energy.
    #[test]
    fn dynamic_energy_is_monotone_in_accesses(a in arb_activity(), extra in 1u64..10_000) {
        let model = EnergyModel::new(EnergyParams::paper_table3());
        let more = ActivityCounts { bank_reads: a.bank_reads + extra, ..a };
        prop_assert!(model.evaluate(&more).dynamic_pj > model.evaluate(&a).dynamic_pj);
    }

    /// Converting powered bank-cycles into gated ones never increases
    /// leakage; into drowsy ones saves less than gating but still saves.
    #[test]
    fn low_power_cycles_save_leakage(a in arb_activity(), moved in 0u64..10_000) {
        let model = EnergyModel::new(EnergyParams::paper_table3());
        let moved = moved.min(a.powered_bank_cycles);
        let gated = ActivityCounts {
            powered_bank_cycles: a.powered_bank_cycles - moved,
            low_power_bank_cycles: a.low_power_bank_cycles + moved,
            low_power: LowPowerKind::Gated,
            ..a
        };
        let drowsy = ActivityCounts { low_power: LowPowerKind::Drowsy, ..gated };
        let base = model.evaluate(&ActivityCounts { low_power: LowPowerKind::Gated, ..a });
        let g = model.evaluate(&gated);
        let d = model.evaluate(&drowsy);
        prop_assert!(g.leakage_pj <= base.leakage_pj + 1e-6);
        prop_assert!(d.leakage_pj >= g.leakage_pj - 1e-6, "drowsy leaks at least as much as gated");
    }

    /// The Fig. 17 scale factor scales exactly the activation energy.
    #[test]
    fn comp_scale_is_linear(a in arb_activity(), scale in 1.0f64..4.0) {
        let base = EnergyModel::new(EnergyParams::paper_table3()).evaluate(&a);
        let scaled = EnergyModel::new(EnergyParams::paper_table3().with_comp_decomp_scale(scale))
            .evaluate(&a);
        // Subtracting the (unscaled) unit leakage leaves pure activation
        // energy, which must scale linearly.
        let base_act = a.compressor_activations as f64 * 23.0;
        let scaled_act = base_act * scale;
        prop_assert!((scaled.compression_pj - base.compression_pj - (scaled_act - base_act)).abs() < 1e-6);
    }

    /// Wire activity scales dynamic energy affinely between the 0%- and
    /// 100%-activity extremes.
    #[test]
    fn wire_activity_is_affine(a in arb_activity(), act in 0.0f64..=1.0) {
        let at = |w: f64| {
            EnergyModel::new(EnergyParams::paper_table3().with_wire_activity(w)).evaluate(&a).dynamic_pj
        };
        let expected = at(0.0) + (at(1.0) - at(0.0)) * act;
        prop_assert!((at(act) - expected).abs() < 1e-6 * (1.0 + expected));
    }

    /// Normalisation round-trips: savings_vs(self) is 0.
    #[test]
    fn self_savings_are_zero(a in arb_activity()) {
        let r = EnergyModel::new(EnergyParams::paper_table3()).evaluate(&a);
        if r.total_pj() > 0.0 {
            prop_assert!(r.savings_vs(&r).abs() < 1e-12);
            prop_assert!((r.normalized_to(&r) - 1.0).abs() < 1e-12);
        }
    }
}
