//! The Table 3 energy constants and the design-space scaling knobs.

use serde::{Deserialize, Serialize};

/// Energy/power parameters of the register file and compression units.
///
/// Defaults reproduce the paper's Table 3 (45 nm, 1.0 V, 1.4 GHz). The
/// three `*_scale`/`wire_activity` knobs drive the §6.7 sensitivity
/// studies and default to the paper's baseline assumptions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Operating voltage in volts (Table 3: 1.0).
    pub voltage_v: f64,
    /// Core clock in GHz (Table 2: 1.4) — converts leakage power to
    /// per-cycle energy.
    pub clock_ghz: f64,
    /// Wire capacitance in fF/mm (Table 3: 300).
    pub wire_cap_ff_per_mm: f64,
    /// Wire length between register banks and execution units in mm
    /// (§6.1, after the register-file-cache study the paper cites: 1 mm).
    pub wire_length_mm: f64,
    /// Fraction of the 128 wires that switch per transfer (§6.1 default:
    /// 0.5, i.e. "50 % of wires move zeros while the other 50 % move
    /// ones" — yielding Table 3's 9.6 pJ/mm). Fig. 19 sweeps 0..=1.
    pub wire_activity: f64,
    /// SRAM access energy per bank access in pJ (Table 3: 7).
    pub bank_access_pj: f64,
    /// Leakage power per bank in mW (Table 3: 5.8).
    pub bank_leakage_mw: f64,
    /// Compressor activation energy in pJ (Table 3: 23).
    pub compressor_pj: f64,
    /// Compressor leakage in mW per unit (Table 3: 0.12).
    pub compressor_leakage_mw: f64,
    /// Decompressor activation energy in pJ (Table 3: 21).
    pub decompressor_pj: f64,
    /// Decompressor leakage in mW per unit (Table 3: 0.08).
    pub decompressor_leakage_mw: f64,
    /// Compressor units per SM (Table 2: 2).
    pub num_compressors: usize,
    /// Decompressor units per SM (Table 2: 4).
    pub num_decompressors: usize,
    /// Scale factor on compression/decompression activation energy
    /// (Fig. 17 sweeps 1.5×, 2×, 2.5×).
    pub comp_decomp_scale: f64,
    /// Scale factor on the per-bank access energy including its wire
    /// component (Fig. 18 sweeps 1.5×, 2×, 2.5×).
    pub bank_access_scale: f64,
    /// Leakage a drowsy bank retains as a fraction of nominal (prior
    /// work's drowsy caches/registers report ~70-80 % leakage reduction;
    /// we use 0.25 residual).
    pub drowsy_leakage_fraction: f64,
}

impl EnergyParams {
    /// The paper's Table 3 values with baseline assumptions.
    pub fn paper_table3() -> Self {
        EnergyParams {
            voltage_v: 1.0,
            clock_ghz: 1.4,
            wire_cap_ff_per_mm: 300.0,
            wire_length_mm: 1.0,
            wire_activity: 0.5,
            bank_access_pj: 7.0,
            bank_leakage_mw: 5.8,
            compressor_pj: 23.0,
            compressor_leakage_mw: 0.12,
            decompressor_pj: 21.0,
            decompressor_leakage_mw: 0.08,
            num_compressors: 2,
            num_decompressors: 4,
            comp_decomp_scale: 1.0,
            bank_access_scale: 1.0,
            drowsy_leakage_fraction: 0.25,
        }
    }

    /// Wire energy in pJ for one 128-bit bank transfer at the configured
    /// activity: `½ · C · V² · 128 · activity · length`.
    ///
    /// At the defaults this is 9.6 pJ — Table 3's "Wire Energy (128-bit,
    /// pJ/mm)" row.
    pub fn wire_energy_pj(&self) -> f64 {
        let cap_pf_per_bit = self.wire_cap_ff_per_mm * 1e-3; // fF -> pF
        0.5 * cap_pf_per_bit
            * self.voltage_v
            * self.voltage_v
            * 128.0
            * self.wire_activity
            * self.wire_length_mm
    }

    /// Total energy of one bank access (SRAM + wire), after the Fig. 18
    /// scale factor.
    pub fn bank_access_total_pj(&self) -> f64 {
        (self.bank_access_pj + self.wire_energy_pj()) * self.bank_access_scale
    }

    /// Leakage energy of one powered bank for one cycle, in pJ.
    pub fn bank_leakage_pj_per_cycle(&self) -> f64 {
        // mW / GHz = pJ.
        self.bank_leakage_mw / self.clock_ghz
    }

    /// Combined comp+decomp unit leakage per cycle, in pJ.
    pub fn unit_leakage_pj_per_cycle(&self) -> f64 {
        (self.compressor_leakage_mw * self.num_compressors as f64
            + self.decompressor_leakage_mw * self.num_decompressors as f64)
            / self.clock_ghz
    }

    /// Returns a copy with the Fig. 17 compression-energy scale applied.
    pub fn with_comp_decomp_scale(mut self, scale: f64) -> Self {
        self.comp_decomp_scale = scale;
        self
    }

    /// Returns a copy with the Fig. 18 bank-access-energy scale applied.
    pub fn with_bank_access_scale(mut self, scale: f64) -> Self {
        self.bank_access_scale = scale;
        self
    }

    /// Returns a copy with the Fig. 19 wire activity applied.
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    pub fn with_wire_activity(mut self, activity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&activity),
            "wire activity must be in [0,1]"
        );
        self.wire_activity = activity;
        self
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::paper_table3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_energy_matches_table_3() {
        // 300 fF/mm × 128 bits × 1 V² × ½ × 0.5 activity = 9.6 pJ/mm.
        let p = EnergyParams::paper_table3();
        assert!((p.wire_energy_pj() - 9.6).abs() < 1e-9);
    }

    #[test]
    fn wire_energy_scales_linearly_with_activity() {
        let p = EnergyParams::paper_table3().with_wire_activity(1.0);
        assert!((p.wire_energy_pj() - 19.2).abs() < 1e-9);
        let p0 = EnergyParams::paper_table3().with_wire_activity(0.0);
        assert_eq!(p0.wire_energy_pj(), 0.0);
    }

    #[test]
    fn bank_leakage_per_cycle() {
        // 5.8 mW at 1.4 GHz = 4.142857.. pJ per cycle.
        let p = EnergyParams::paper_table3();
        assert!((p.bank_leakage_pj_per_cycle() - 5.8 / 1.4).abs() < 1e-12);
    }

    #[test]
    fn access_scale_applies_to_sram_and_wire() {
        let p = EnergyParams::paper_table3().with_bank_access_scale(2.0);
        assert!((p.bank_access_total_pj() - 2.0 * (7.0 + 9.6)).abs() < 1e-9);
    }

    #[test]
    fn unit_leakage_counts_all_units() {
        let p = EnergyParams::paper_table3();
        let expected = (0.12 * 2.0 + 0.08 * 4.0) / 1.4;
        assert!((p.unit_leakage_pj_per_cycle() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "wire activity")]
    fn activity_out_of_range_panics() {
        let _ = EnergyParams::paper_table3().with_wire_activity(1.5);
    }
}
