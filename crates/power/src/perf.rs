//! Static performance floor vs. one simulated run.
//!
//! The perfbound analysis in `simt-analysis` produces a
//! [`PerfPrediction`]: a cycle lower bound plus minimum bank-access and
//! compression-unit activation counts. Pricing those minima through the
//! [`EnergyModel`] (with zero powered-bank-cycles, since leakage depends
//! on how long banks actually stay powered) gives a static
//! *dynamic-energy* floor: the model is monotone in every activity
//! field, so a run whose every counter dominates the static minimum can
//! never spend less energy. `wcsim perf` gates on all three
//! inequalities — cycles, bank accesses, energy.

use serde::{Deserialize, Serialize};
use simt_analysis::PerfPrediction;

use crate::activity::{ActivityCounts, LowPowerKind};
use crate::model::EnergyModel;

/// One kernel's static performance floor lined up against the counters
/// of one simulated run under the same machine configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PerfComparison {
    /// Kernel the comparison describes.
    pub kernel: String,
    /// Static cycle lower bound (issue / chain / compressor max).
    pub static_cycles: u64,
    /// Cycles the simulated run took.
    pub measured_cycles: u64,
    /// Static minimum bank accesses (reads + writes).
    pub static_bank_accesses: u64,
    /// Bank accesses the run performed.
    pub measured_bank_accesses: u64,
    /// Static energy floor in pJ: the static activity minima priced
    /// through the energy model with zero powered-bank-cycles.
    pub static_energy_pj: f64,
    /// Energy of the run in pJ, from its real activity counters.
    pub measured_energy_pj: f64,
}

impl PerfComparison {
    /// Lines up `prediction` against a run's `measured` activity
    /// (whose `cycles` field is the run length), pricing both sides
    /// through the same `model`.
    pub fn new(
        prediction: &PerfPrediction,
        model: &EnergyModel,
        measured: &ActivityCounts,
    ) -> PerfComparison {
        let floor = static_activity(prediction);
        PerfComparison {
            kernel: prediction.kernel.clone(),
            static_cycles: prediction.cycle_lower_bound,
            measured_cycles: measured.cycles,
            static_bank_accesses: prediction.min_bank_accesses(),
            measured_bank_accesses: measured.bank_accesses(),
            static_energy_pj: model.evaluate(&floor).total_pj(),
            measured_energy_pj: model.evaluate(measured).total_pj(),
        }
    }

    /// The soundness invariant: every static floor stays at or below
    /// its measurement. A violation means the analysis proved a bound
    /// the hardware beat — an unsound model of the pipeline.
    pub fn measured_within_static_bound(&self) -> bool {
        self.static_cycles <= self.measured_cycles
            && self.static_bank_accesses <= self.measured_bank_accesses
            && self.static_energy_pj <= self.measured_energy_pj + 1e-9
    }

    /// How much of the measured runtime the static bound explains
    /// (1.0 = the bound is exact). Zero when nothing was measured.
    pub fn cycle_tightness(&self) -> f64 {
        ratio(self.static_cycles as f64, self.measured_cycles as f64)
    }

    /// How much of the measured bank traffic the static floor
    /// explains.
    pub fn access_tightness(&self) -> f64 {
        ratio(
            self.static_bank_accesses as f64,
            self.measured_bank_accesses as f64,
        )
    }

    /// How much of the measured energy the static floor explains.
    pub fn energy_tightness(&self) -> f64 {
        ratio(self.static_energy_pj, self.measured_energy_pj)
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// The activity floor a run can never undercut: the prediction's
/// minimum counts, zero bank-cycles powered (leakage is
/// schedule-dependent), run length at the cycle lower bound.
fn static_activity(prediction: &PerfPrediction) -> ActivityCounts {
    ActivityCounts {
        bank_reads: prediction.min_bank_reads,
        bank_writes: prediction.min_bank_writes,
        powered_bank_cycles: 0,
        low_power_bank_cycles: 0,
        low_power: LowPowerKind::Gated,
        cycles: prediction.cycle_lower_bound,
        compressor_activations: prediction.min_compressor_activations,
        decompressor_activations: prediction.min_decompressor_activations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EnergyParams;

    fn prediction() -> PerfPrediction {
        PerfPrediction {
            kernel: "demo".into(),
            cycle_lower_bound: 100,
            issue_bound: 100,
            chain_bound: 80,
            compressor_bound: 10,
            min_instructions: 200,
            min_bank_reads: 300,
            min_bank_writes: 100,
            min_compressor_activations: 20,
            min_decompressor_activations: 40,
            conflicts: Vec::new(),
            mem_floors: Vec::new(),
            block_bounds: Vec::new(),
            exact_warps: 4,
            approx_warps: 0,
        }
    }

    fn measured(cycles: u64, reads: u64, writes: u64) -> ActivityCounts {
        ActivityCounts {
            bank_reads: reads,
            bank_writes: writes,
            powered_bank_cycles: 32 * cycles,
            cycles,
            compressor_activations: 25,
            decompressor_activations: 50,
            ..Default::default()
        }
    }

    fn model() -> EnergyModel {
        EnergyModel::new(EnergyParams::paper_table3())
    }

    #[test]
    fn dominated_measurement_is_sound() {
        let cmp = PerfComparison::new(&prediction(), &model(), &measured(150, 400, 150));
        assert!(cmp.measured_within_static_bound());
        assert!((cmp.cycle_tightness() - 100.0 / 150.0).abs() < 1e-12);
        assert!((cmp.access_tightness() - 400.0 / 550.0).abs() < 1e-12);
        assert!(cmp.energy_tightness() > 0.0 && cmp.energy_tightness() <= 1.0);
        // The floor carries no leakage, so it must sit strictly below a
        // run that kept 32 banks powered for 150 cycles.
        assert!(cmp.static_energy_pj < cmp.measured_energy_pj);
    }

    #[test]
    fn cycle_violation_is_flagged() {
        let cmp = PerfComparison::new(&prediction(), &model(), &measured(99, 400, 150));
        assert!(!cmp.measured_within_static_bound());
    }

    #[test]
    fn access_violation_is_flagged() {
        let cmp = PerfComparison::new(&prediction(), &model(), &measured(150, 200, 100));
        assert!(!cmp.measured_within_static_bound());
    }

    #[test]
    fn energy_floor_prices_the_static_minima() {
        let p = prediction();
        let cmp = PerfComparison::new(&p, &model(), &measured(150, 400, 150));
        let by_hand = model().evaluate(&super::static_activity(&p)).total_pj();
        assert!((cmp.static_energy_pj - by_hand).abs() < 1e-12);
        assert!(cmp.static_energy_pj > 0.0);
    }

    #[test]
    fn zero_measurement_has_zero_tightness() {
        let mut p = prediction();
        p.cycle_lower_bound = 0;
        p.min_bank_reads = 0;
        p.min_bank_writes = 0;
        p.min_compressor_activations = 0;
        p.min_decompressor_activations = 0;
        let cmp = PerfComparison::new(&p, &model(), &ActivityCounts::default());
        assert!(cmp.measured_within_static_bound());
        assert_eq!(cmp.cycle_tightness(), 0.0);
        assert_eq!(cmp.access_tightness(), 0.0);
        assert_eq!(cmp.energy_tightness(), 0.0);
    }
}
