//! The energy model: activity counts × Table 3 constants.

use crate::activity::ActivityCounts;
use crate::params::EnergyParams;
use crate::report::EnergyReport;

/// Evaluates register-file energy from activity counters (§6.1).
///
/// # Example
///
/// ```
/// use gpu_power::{ActivityCounts, EnergyModel, EnergyParams};
///
/// let model = EnergyModel::new(EnergyParams::paper_table3());
/// let a = ActivityCounts { bank_reads: 100, ..Default::default() };
/// let r = model.evaluate(&a);
/// // 100 reads × (7 + 9.6) pJ
/// assert!((r.dynamic_pj - 1660.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model with the given parameters.
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Multiplies the activity through the energy constants.
    pub fn evaluate(&self, activity: &ActivityCounts) -> EnergyReport {
        let p = &self.params;
        let dynamic_pj = activity.bank_accesses() as f64 * p.bank_access_total_pj();
        let low_power_leak = match activity.low_power {
            crate::LowPowerKind::Gated => 0.0,
            crate::LowPowerKind::Drowsy => {
                activity.low_power_bank_cycles as f64
                    * p.bank_leakage_pj_per_cycle()
                    * p.drowsy_leakage_fraction
            }
        };
        let leakage_pj =
            activity.powered_bank_cycles as f64 * p.bank_leakage_pj_per_cycle() + low_power_leak;
        // Unit leakage accrues whenever any compression hardware exists;
        // a design with zero activations (the baseline, which has no
        // compressors at all) is charged nothing.
        let has_units =
            activity.compressor_activations > 0 || activity.decompressor_activations > 0;
        let comp_leak = if has_units {
            activity.cycles as f64 * p.compressor_leakage_mw * p.num_compressors as f64
                / p.clock_ghz
        } else {
            0.0
        };
        let decomp_leak = if has_units {
            activity.cycles as f64 * p.decompressor_leakage_mw * p.num_decompressors as f64
                / p.clock_ghz
        } else {
            0.0
        };
        let compression_pj =
            activity.compressor_activations as f64 * p.compressor_pj * p.comp_decomp_scale
                + comp_leak;
        let decompression_pj =
            activity.decompressor_activations as f64 * p.decompressor_pj * p.comp_decomp_scale
                + decomp_leak;
        EnergyReport {
            dynamic_pj,
            leakage_pj,
            compression_pj,
            decompression_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::new(EnergyParams::paper_table3())
    }

    #[test]
    fn dynamic_energy_counts_reads_and_writes() {
        let a = ActivityCounts {
            bank_reads: 10,
            bank_writes: 5,
            ..Default::default()
        };
        let r = model().evaluate(&a);
        assert!((r.dynamic_pj - 15.0 * 16.6).abs() < 1e-9);
    }

    #[test]
    fn leakage_counts_only_powered_cycles() {
        let a = ActivityCounts {
            powered_bank_cycles: 1400,
            ..Default::default()
        };
        let r = model().evaluate(&a);
        // 1400 bank-cycles × 5.8/1.4 pJ = 5800 pJ.
        assert!((r.leakage_pj - 5800.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_without_compression_pays_no_unit_energy() {
        let a = ActivityCounts {
            cycles: 1_000_000,
            bank_reads: 10,
            ..Default::default()
        };
        let r = model().evaluate(&a);
        assert_eq!(r.compression_pj, 0.0);
        assert_eq!(r.decompression_pj, 0.0);
    }

    #[test]
    fn compression_units_pay_activation_and_leakage() {
        let a = ActivityCounts {
            cycles: 1400,
            compressor_activations: 10,
            decompressor_activations: 20,
            ..Default::default()
        };
        let r = model().evaluate(&a);
        // comp: 10×23 + 1400×0.12×2/1.4 ; decomp: 20×21 + 1400×0.08×4/1.4
        assert!((r.compression_pj - (230.0 + 240.0)).abs() < 1e-9);
        assert!((r.decompression_pj - (420.0 + 320.0)).abs() < 1e-9);
    }

    #[test]
    fn comp_decomp_scale_multiplies_activations_only() {
        let params = EnergyParams::paper_table3().with_comp_decomp_scale(2.0);
        let a = ActivityCounts {
            cycles: 0,
            compressor_activations: 10,
            ..Default::default()
        };
        let r = EnergyModel::new(params).evaluate(&a);
        assert!((r.compression_pj - 460.0).abs() < 1e-9);
    }

    #[test]
    fn higher_wire_activity_raises_dynamic_energy() {
        let a = ActivityCounts {
            bank_reads: 100,
            ..Default::default()
        };
        let low =
            EnergyModel::new(EnergyParams::paper_table3().with_wire_activity(0.0)).evaluate(&a);
        let high =
            EnergyModel::new(EnergyParams::paper_table3().with_wire_activity(1.0)).evaluate(&a);
        assert!(high.dynamic_pj > low.dynamic_pj);
        assert!((low.dynamic_pj - 700.0).abs() < 1e-9);
        assert!((high.dynamic_pj - 100.0 * 26.2).abs() < 1e-9);
    }
}

#[cfg(test)]
mod drowsy_tests {
    use super::*;
    use crate::LowPowerKind;

    #[test]
    fn drowsy_low_power_cycles_leak_a_fraction() {
        let model = EnergyModel::new(EnergyParams::paper_table3());
        let gated = ActivityCounts {
            powered_bank_cycles: 1000,
            low_power_bank_cycles: 1000,
            low_power: LowPowerKind::Gated,
            ..Default::default()
        };
        let drowsy = ActivityCounts {
            low_power: LowPowerKind::Drowsy,
            ..gated
        };
        let rg = model.evaluate(&gated);
        let rd = model.evaluate(&drowsy);
        let per_cycle = EnergyParams::paper_table3().bank_leakage_pj_per_cycle();
        assert!((rg.leakage_pj - 1000.0 * per_cycle).abs() < 1e-9);
        assert!((rd.leakage_pj - (1000.0 * per_cycle + 1000.0 * per_cycle * 0.25)).abs() < 1e-9);
        assert!(
            rd.leakage_pj > rg.leakage_pj,
            "drowsy must leak more than gated"
        );
    }
}
