//! The energy breakdown report (the stacked bars of Fig. 9).

use serde::{Deserialize, Serialize};

/// Register-file energy broken into the four categories the paper stacks
/// in Fig. 9: leakage, dynamic (bank + wire), compression and
/// decompression. All values in picojoules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Bank SRAM + wire dynamic energy.
    pub dynamic_pj: f64,
    /// Bank leakage energy (powered bank-cycles only).
    pub leakage_pj: f64,
    /// Compressor activation + leakage energy.
    pub compression_pj: f64,
    /// Decompressor activation + leakage energy.
    pub decompression_pj: f64,
}

impl EnergyReport {
    /// Total register-file energy.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj + self.leakage_pj + self.compression_pj + self.decompression_pj
    }

    /// This report's total as a fraction of `baseline`'s total — the
    /// normalised stacked bars of Fig. 9 (1.0 means no change).
    ///
    /// Returns 0 when the baseline total is 0.
    pub fn normalized_to(&self, baseline: &EnergyReport) -> f64 {
        let b = baseline.total_pj();
        if b == 0.0 {
            0.0
        } else {
            self.total_pj() / b
        }
    }

    /// Fractional energy saving vs `baseline` (0.25 = 25 % saved).
    pub fn savings_vs(&self, baseline: &EnergyReport) -> f64 {
        1.0 - self.normalized_to(baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(d: f64, l: f64, c: f64, x: f64) -> EnergyReport {
        EnergyReport {
            dynamic_pj: d,
            leakage_pj: l,
            compression_pj: c,
            decompression_pj: x,
        }
    }

    #[test]
    fn totals_sum_all_categories() {
        assert_eq!(report(1.0, 2.0, 3.0, 4.0).total_pj(), 10.0);
    }

    #[test]
    fn normalization_and_savings() {
        let base = report(80.0, 20.0, 0.0, 0.0);
        let wc = report(50.0, 18.0, 4.0, 3.0);
        assert!((wc.normalized_to(&base) - 0.75).abs() < 1e-12);
        assert!((wc.savings_vs(&base) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_safe() {
        let z = EnergyReport::default();
        assert_eq!(report(1.0, 0.0, 0.0, 0.0).normalized_to(&z), 0.0);
    }
}
