//! Register-file energy model for the Warped-Compression reproduction.
//!
//! The paper evaluates energy analytically: CACTI and RTL synthesis are
//! reduced to the per-event constants of Table 3, and the simulator's
//! activity counters are multiplied through them (§6.1). This crate
//! implements exactly that arithmetic:
//!
//! * **dynamic bank energy** — 7 pJ per 16-byte bank access, plus the
//!   wire energy of moving 128 bits over 1 mm at the configured switching
//!   activity (300 fF/mm, 1 V → 19.2 pJ/mm at full activity; the paper's
//!   default 50 % activity gives the 9.6 pJ/mm of Table 3),
//! * **leakage** — 5.8 mW per powered bank; power-gated bank-cycles leak
//!   nothing,
//! * **compressor / decompressor** — 23 pJ / 21 pJ per activation plus
//!   0.12 mW / 0.08 mW leakage per unit,
//! * sensitivity knobs for the §6.7 sweeps: scale factors on the
//!   compression-unit activation energy (Fig. 17) and on the per-bank
//!   access energy (Fig. 18), and the wire activity factor (Fig. 19).
//!
//! # Example
//!
//! ```
//! use gpu_power::{ActivityCounts, EnergyModel, EnergyParams};
//!
//! let model = EnergyModel::new(EnergyParams::paper_table3());
//! let activity = ActivityCounts {
//!     bank_reads: 1000,
//!     bank_writes: 500,
//!     powered_bank_cycles: 32 * 10_000,
//!     cycles: 10_000,
//!     compressor_activations: 400,
//!     decompressor_activations: 900,
//!     ..Default::default()
//! };
//! let report = model.evaluate(&activity);
//! assert!(report.total_pj() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod compressibility;
mod model;
mod occupancy;
mod params;
mod perf;
mod report;
mod schedule;

pub use activity::{ActivityCounts, LowPowerKind};
pub use compressibility::CompressibilityComparison;
pub use model::EnergyModel;
pub use occupancy::OccupancyComparison;
pub use params::EnergyParams;
pub use perf::PerfComparison;
pub use report::EnergyReport;
pub use schedule::ScheduleComparison;
