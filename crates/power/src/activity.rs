//! Activity counters consumed by the energy model.

use gpu_regfile::{GatingMode, RegFileStats};
use serde::{Deserialize, Serialize};

/// What an empty bank's low-power state costs in leakage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum LowPowerKind {
    /// Power-gated: zero leakage (§5.3).
    #[default]
    Gated,
    /// Drowsy retention: leaks
    /// [`EnergyParams::drowsy_leakage_fraction`](crate::EnergyParams::drowsy_leakage_fraction)
    /// of nominal.
    Drowsy,
}

impl From<GatingMode> for LowPowerKind {
    fn from(mode: GatingMode) -> Self {
        match mode {
            GatingMode::Drowsy => LowPowerKind::Drowsy,
            GatingMode::Off | GatingMode::PowerGate => LowPowerKind::Gated,
        }
    }
}

/// The raw event counts the energy model multiplies by the Table 3
/// constants. Produced by the simulator; see
/// [`ActivityCounts::from_regfile`] for the usual construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityCounts {
    /// Bank read accesses (one per bank touched per operand read).
    pub bank_reads: u64,
    /// Bank write accesses (one per bank touched per register write).
    pub bank_writes: u64,
    /// Bank-cycles spent fully powered (`num_banks × cycles −
    /// low_power_bank_cycles`).
    pub powered_bank_cycles: u64,
    /// Bank-cycles spent in the low-power state (gated or drowsy).
    pub low_power_bank_cycles: u64,
    /// Which low-power state those cycles were in.
    pub low_power: LowPowerKind,
    /// Total simulated cycles (for compression-unit leakage).
    pub cycles: u64,
    /// Compressor-unit activations (one per register write examined by
    /// the compressor).
    pub compressor_activations: u64,
    /// Decompressor-unit activations (one per compressed operand read,
    /// §5).
    pub decompressor_activations: u64,
}

impl ActivityCounts {
    /// Builds activity counts from a register-file snapshot plus the
    /// simulator's compression-unit counters, assuming power gating (the
    /// paper's design).
    pub fn from_regfile(
        stats: &RegFileStats,
        compressor_activations: u64,
        decompressor_activations: u64,
    ) -> Self {
        Self::from_regfile_with_mode(
            stats,
            compressor_activations,
            decompressor_activations,
            LowPowerKind::Gated,
        )
    }

    /// Like [`from_regfile`](Self::from_regfile) with an explicit
    /// low-power kind (pass [`LowPowerKind::Drowsy`] for drowsy-mode
    /// register files).
    pub fn from_regfile_with_mode(
        stats: &RegFileStats,
        compressor_activations: u64,
        decompressor_activations: u64,
        low_power: LowPowerKind,
    ) -> Self {
        let total_bank_cycles = stats.num_banks() as u64 * stats.total_cycles;
        let low: u64 = stats.gated_cycles.iter().sum();
        ActivityCounts {
            bank_reads: stats.total_reads(),
            bank_writes: stats.total_writes(),
            powered_bank_cycles: total_bank_cycles.saturating_sub(low),
            low_power_bank_cycles: low,
            low_power,
            cycles: stats.total_cycles,
            compressor_activations,
            decompressor_activations,
        }
    }

    /// Total bank accesses.
    pub fn bank_accesses(&self) -> u64 {
        self.bank_reads + self.bank_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RegFileStats {
        RegFileStats {
            bank_reads: vec![3, 4],
            bank_writes: vec![1, 0],
            gated_cycles: vec![10, 90],
            wakeups: 2,
            total_cycles: 100,
        }
    }

    #[test]
    fn from_regfile_derives_powered_cycles() {
        let a = ActivityCounts::from_regfile(&stats(), 5, 6);
        assert_eq!(a.bank_reads, 7);
        assert_eq!(a.bank_writes, 1);
        assert_eq!(a.bank_accesses(), 8);
        assert_eq!(a.powered_bank_cycles, 200 - 100);
        assert_eq!(a.low_power_bank_cycles, 100);
        assert_eq!(a.low_power, LowPowerKind::Gated);
        assert_eq!(a.cycles, 100);
        assert_eq!(a.compressor_activations, 5);
        assert_eq!(a.decompressor_activations, 6);
    }

    #[test]
    fn drowsy_mode_is_recorded() {
        let a = ActivityCounts::from_regfile_with_mode(&stats(), 0, 0, LowPowerKind::Drowsy);
        assert_eq!(a.low_power, LowPowerKind::Drowsy);
        assert_eq!(a.low_power_bank_cycles, 100);
    }

    #[test]
    fn gating_mode_conversion() {
        assert_eq!(
            LowPowerKind::from(GatingMode::PowerGate),
            LowPowerKind::Gated
        );
        assert_eq!(LowPowerKind::from(GatingMode::Off), LowPowerKind::Gated);
        assert_eq!(LowPowerKind::from(GatingMode::Drowsy), LowPowerKind::Drowsy);
    }
}
