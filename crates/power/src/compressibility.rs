//! Static compressibility bound vs. measured bank gating.
//!
//! The abstract interpreter's [`KernelPrediction`] assigns every
//! register write site a worst-case compression class, which bounds
//! from below how many of a register's eight banks §5.3 footprint
//! gating can power off after *any* write the kernel performs. The
//! simulator measures the banks actually left unused by the stored
//! forms. Because the static classes are conservative (a predicted
//! class never claims fewer banks than the value needs), the static
//! gateable-bank bound must never exceed the measured figure — the
//! conservativeness check `wcsim predict` enforces per kernel.

use bdi::CompressionClass;
use serde::{Deserialize, Serialize};
use simt_analysis::KernelPrediction;

/// Static per-write gating bound lined up against one simulated run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompressibilityComparison {
    /// Kernel the comparison describes.
    pub kernel: String,
    /// Banks guaranteed gateable after *every* write site — the
    /// minimum over sites of `8 − predicted footprint`.
    pub static_gateable_banks_per_write: f64,
    /// Mean banks the simulated run actually left unused per stored
    /// write (`8 − mean stored footprint`).
    pub measured_gated_banks_per_write: f64,
}

impl CompressibilityComparison {
    /// Lines up a kernel's static prediction with the mean stored
    /// footprint (in banks) measured when simulating it.
    pub fn new(
        prediction: &KernelPrediction,
        measured_mean_footprint_banks: f64,
    ) -> CompressibilityComparison {
        let total = CompressionClass::Uncompressed.banks() as f64;
        CompressibilityComparison {
            kernel: prediction.kernel.clone(),
            static_gateable_banks_per_write: prediction.min_gateable_banks() as f64,
            measured_gated_banks_per_write: (total - measured_mean_footprint_banks).max(0.0),
        }
    }

    /// Whether the static guarantee stayed below what the hardware
    /// achieved — the conservativeness invariant. A violation means an
    /// unsound prediction (some write needed more banks than its
    /// static class allows).
    pub fn measured_within_static_bound(&self) -> bool {
        self.static_gateable_banks_per_write <= self.measured_gated_banks_per_write + 1e-9
    }

    /// Banks per write the dynamic compressor gated beyond the static
    /// worst-case guarantee: the value-dependent opportunity a purely
    /// static gater would leave on the table. Clamped at zero.
    pub fn gating_headroom(&self) -> f64 {
        (self.measured_gated_banks_per_write - self.static_gateable_banks_per_write).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_analysis::SitePrediction;

    fn prediction(classes: &[CompressionClass]) -> KernelPrediction {
        KernelPrediction {
            kernel: "demo".into(),
            sites: classes
                .iter()
                .enumerate()
                .map(|(pc, &class)| SitePrediction {
                    pc,
                    reg: 0,
                    class,
                    divergent_region: false,
                    value: simt_analysis::AbsVal::zero(),
                })
                .collect(),
            branches: Vec::new(),
        }
    }

    #[test]
    fn bounds_line_up() {
        // Worst site is Delta2 (5 banks) → 3 banks always gateable.
        let p = prediction(&[CompressionClass::Delta0, CompressionClass::Delta2]);
        // Measured mean footprint 3 banks → 5 banks gated on average.
        let cmp = CompressibilityComparison::new(&p, 3.0);
        assert!((cmp.static_gateable_banks_per_write - 3.0).abs() < 1e-12);
        assert!((cmp.measured_gated_banks_per_write - 5.0).abs() < 1e-12);
        assert!(cmp.measured_within_static_bound());
        assert!((cmp.gating_headroom() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unsound_prediction_breaks_the_bound() {
        // All sites predicted Delta0 (7 banks gateable) but the run
        // stored a mean footprint of 5 banks (3 gated): impossible if
        // the prediction were sound.
        let p = prediction(&[CompressionClass::Delta0]);
        let cmp = CompressibilityComparison::new(&p, 5.0);
        assert!(!cmp.measured_within_static_bound());
        assert_eq!(cmp.gating_headroom(), 0.0);
    }

    #[test]
    fn top_heavy_kernel_guarantees_nothing() {
        let p = prediction(&[CompressionClass::Uncompressed]);
        let cmp = CompressibilityComparison::new(&p, 8.0);
        assert_eq!(cmp.static_gateable_banks_per_write, 0.0);
        assert_eq!(cmp.measured_gated_banks_per_write, 0.0);
        assert!(cmp.measured_within_static_bound());
    }
}
