//! Static liveness bound vs. measured bank occupancy.
//!
//! The verifier's [`LivenessSummary`] says how many architectural
//! registers *can* hold a needed value at each program point — a static
//! upper bound on the register-file capacity a kernel requires. The
//! simulator's [`RegFileStats`] say how many bank-cycles the hardware
//! actually kept powered. Comparing the two quantifies how much of the
//! static dead-register opportunity the footprint-driven gating of §5.3
//! actually harvests, and how much headroom a liveness-aware allocator
//! (the GREENER direction) would still have.

use gpu_regfile::RegFileStats;
use serde::{Deserialize, Serialize};
use simt_analysis::LivenessSummary;

/// Static-liveness bound lined up against one simulated run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OccupancyComparison {
    /// Kernel the comparison describes.
    pub kernel: String,
    /// Mean fraction of declared registers statically live.
    pub static_avg_live_fraction: f64,
    /// Worst-case fraction of declared registers simultaneously live.
    pub static_max_live_fraction: f64,
    /// `1 − static_avg_live_fraction`: the static gating opportunity.
    pub static_dead_fraction: f64,
    /// Fraction of bank-cycles the simulated run kept powered
    /// (`1 − mean gated fraction`).
    pub measured_powered_fraction: f64,
}

impl OccupancyComparison {
    /// Lines up a kernel's static liveness summary with the bank
    /// activity measured when simulating it.
    pub fn new(live: &LivenessSummary, measured: &RegFileStats) -> OccupancyComparison {
        OccupancyComparison {
            kernel: live.kernel.clone(),
            static_avg_live_fraction: live.avg_live_fraction(),
            static_max_live_fraction: live.max_live_fraction(),
            static_dead_fraction: live.dead_fraction(),
            measured_powered_fraction: 1.0 - measured.mean_gated_fraction(),
        }
    }

    /// Powered fraction minus the static average live fraction: the
    /// bank fraction still powered beyond what liveness says is needed
    /// on average. Positive headroom means a liveness-driven gater
    /// could switch off more than the footprint-driven one did;
    /// clamped at zero (gating below the static bound means the bound
    /// is conservative about *which* cycles registers are live, not
    /// that the hardware broke the program).
    pub fn gating_headroom(&self) -> f64 {
        (self.measured_powered_fraction - self.static_avg_live_fraction).max(0.0)
    }

    /// Whether the run kept at least the worst-case statically live
    /// fraction powered at some point — sanity signal that the static
    /// bound and the measurement describe the same kernel scale.
    pub fn measured_within_static_bound(&self) -> bool {
        self.measured_powered_fraction <= 1.0 && self.static_max_live_fraction <= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(num_regs: u8, avg: f64, max: usize) -> LivenessSummary {
        LivenessSummary {
            kernel: "demo".into(),
            num_regs,
            histogram: vec![0; usize::from(num_regs) + 1],
            max_live: max,
            avg_live: avg,
        }
    }

    fn stats(gated_per_bank: u64, banks: usize, cycles: u64) -> RegFileStats {
        RegFileStats {
            bank_reads: vec![0; banks],
            bank_writes: vec![0; banks],
            gated_cycles: vec![gated_per_bank; banks],
            wakeups: 0,
            total_cycles: cycles,
        }
    }

    #[test]
    fn fractions_line_up() {
        // 4 of 8 registers live on average; hardware gated 25% of
        // bank-cycles, i.e. kept 75% powered.
        let cmp = OccupancyComparison::new(&summary(8, 4.0, 6), &stats(25, 4, 100));
        assert!((cmp.static_avg_live_fraction - 0.5).abs() < 1e-12);
        assert!((cmp.static_max_live_fraction - 0.75).abs() < 1e-12);
        assert!((cmp.static_dead_fraction - 0.5).abs() < 1e-12);
        assert!((cmp.measured_powered_fraction - 0.75).abs() < 1e-12);
        // 75% powered vs 50% needed: a liveness-aware gater has 25%.
        assert!((cmp.gating_headroom() - 0.25).abs() < 1e-12);
        assert!(cmp.measured_within_static_bound());
    }

    #[test]
    fn headroom_clamps_at_zero() {
        // Hardware gated more than the average static bound (possible:
        // the bound averages over program points, the hardware gates
        // over cycles).
        let cmp = OccupancyComparison::new(&summary(8, 6.0, 8), &stats(90, 2, 100));
        assert_eq!(cmp.gating_headroom(), 0.0);
    }

    #[test]
    fn zero_cycle_run_counts_as_fully_powered() {
        let cmp = OccupancyComparison::new(&summary(4, 1.0, 2), &stats(0, 2, 0));
        assert!((cmp.measured_powered_fraction - 1.0).abs() < 1e-12);
    }
}
