//! Scheduled replay vs. dynamic execution, priced side by side.
//!
//! The static issue scheduler replays a kernel with the scoreboard and
//! collector arbitration compiled away; the dynamic core runs the same
//! kernel with all of that machinery live. Both runs report the same
//! [`ActivityCounts`] shape, so pricing the two through one
//! [`EnergyModel`] answers the question the DICE line of work asks of
//! warped-compression: *how much register-file energy does the schedule
//! itself cost or save once issue-time decisions are made at compile
//! time?* The replayer injects no dummy MOVs (divergent stores are
//! peek-merged architecturally), so the scheduled side typically shows
//! fewer decompressor activations under the §5.2 policy.

use serde::{Deserialize, Serialize};

use crate::activity::ActivityCounts;
use crate::model::EnergyModel;

/// One kernel's statically scheduled replay lined up against the
/// dynamic run it was validated against, both priced through the same
/// energy model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleComparison {
    /// Kernel the comparison describes.
    pub kernel: String,
    /// Cycles the scheduled replay took (the plan's makespan).
    pub scheduled_cycles: u64,
    /// Cycles the dynamic core took on the same launch.
    pub dynamic_cycles: u64,
    /// Register-file energy of the scheduled replay in pJ.
    pub scheduled_energy_pj: f64,
    /// Register-file energy of the dynamic run in pJ.
    pub dynamic_energy_pj: f64,
    /// Compressor activations: scheduled replay.
    pub scheduled_compressor_activations: u64,
    /// Compressor activations: dynamic run.
    pub dynamic_compressor_activations: u64,
    /// Decompressor activations: scheduled replay.
    pub scheduled_decompressor_activations: u64,
    /// Decompressor activations: dynamic run.
    pub dynamic_decompressor_activations: u64,
}

impl ScheduleComparison {
    /// Prices the `scheduled` replay's activity against the `dynamic`
    /// run's through one `model`. The `cycles` fields of the two
    /// activity records are the respective run lengths.
    pub fn new(
        kernel: impl Into<String>,
        model: &EnergyModel,
        scheduled: &ActivityCounts,
        dynamic: &ActivityCounts,
    ) -> ScheduleComparison {
        ScheduleComparison {
            kernel: kernel.into(),
            scheduled_cycles: scheduled.cycles,
            dynamic_cycles: dynamic.cycles,
            scheduled_energy_pj: model.evaluate(scheduled).total_pj(),
            dynamic_energy_pj: model.evaluate(dynamic).total_pj(),
            scheduled_compressor_activations: scheduled.compressor_activations,
            dynamic_compressor_activations: dynamic.compressor_activations,
            scheduled_decompressor_activations: scheduled.decompressor_activations,
            dynamic_decompressor_activations: dynamic.decompressor_activations,
        }
    }

    /// Scheduled cycles as a fraction of dynamic cycles (1.0 = the
    /// replay matched the dynamic core exactly; < 1.0 = the static
    /// schedule is tighter). Zero when nothing ran dynamically.
    pub fn cycle_ratio(&self) -> f64 {
        ratio(self.scheduled_cycles as f64, self.dynamic_cycles as f64)
    }

    /// Scheduled energy as a fraction of dynamic energy. Zero when the
    /// dynamic run spent nothing.
    pub fn energy_ratio(&self) -> f64 {
        ratio(self.scheduled_energy_pj, self.dynamic_energy_pj)
    }

    /// Fractional register-file energy saved by replaying the static
    /// schedule instead of running dynamically (negative = the
    /// schedule costs energy).
    pub fn energy_savings(&self) -> f64 {
        if self.dynamic_energy_pj <= 0.0 {
            0.0
        } else {
            1.0 - self.scheduled_energy_pj / self.dynamic_energy_pj
        }
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EnergyParams;

    fn activity(cycles: u64, reads: u64, comp: u64, decomp: u64) -> ActivityCounts {
        ActivityCounts {
            bank_reads: reads,
            bank_writes: reads / 2,
            powered_bank_cycles: 32 * cycles,
            cycles,
            compressor_activations: comp,
            decompressor_activations: decomp,
            ..Default::default()
        }
    }

    fn model() -> EnergyModel {
        EnergyModel::new(EnergyParams::paper_table3())
    }

    #[test]
    fn identical_activity_is_a_wash() {
        let a = activity(1000, 400, 20, 40);
        let cmp = ScheduleComparison::new("demo", &model(), &a, &a);
        assert_eq!(cmp.cycle_ratio(), 1.0);
        assert!((cmp.energy_ratio() - 1.0).abs() < 1e-12);
        assert!(cmp.energy_savings().abs() < 1e-12);
    }

    #[test]
    fn shorter_schedule_saves_leakage() {
        let sched = activity(800, 400, 20, 30);
        let dynamic = activity(1000, 400, 20, 40);
        let cmp = ScheduleComparison::new("demo", &model(), &sched, &dynamic);
        assert!(cmp.cycle_ratio() < 1.0);
        assert!(cmp.scheduled_energy_pj < cmp.dynamic_energy_pj);
        assert!(cmp.energy_savings() > 0.0);
    }

    #[test]
    fn zero_dynamic_run_has_zero_ratios() {
        let sched = activity(10, 4, 0, 0);
        let cmp = ScheduleComparison::new("demo", &model(), &sched, &ActivityCounts::default());
        assert_eq!(cmp.cycle_ratio(), 0.0);
        assert_eq!(cmp.energy_ratio(), 0.0);
        assert_eq!(cmp.energy_savings(), 0.0);
    }
}
