//! Fluent kernel construction with forward-referencing labels.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::instr::{AluOp, Instruction};
use crate::kernel::{Kernel, KernelError};
use crate::operand::{Operand, Reg};

/// An opaque branch-target handle issued by [`KernelBuilder::label`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds a [`Kernel`], resolving labels to instruction indices at
/// [`build`](KernelBuilder::build) time so control flow can reference
/// code that has not been emitted yet.
///
/// # Example
///
/// ```
/// use simt_isa::{AluOp, KernelBuilder, Operand, Reg};
///
/// // for (r0 = 0; r0 < 4; r0++) {}
/// let mut b = KernelBuilder::new("count", 2);
/// let (r0, r1) = (Reg(0), Reg(1));
/// b.mov(r0, Operand::Imm(0));
/// let head = b.here();
/// b.alu(AluOp::Add, r0, r0.into(), Operand::Imm(1));
/// b.alu(AluOp::SetLt, r1, r0.into(), Operand::Imm(4));
/// let exit = b.label();
/// b.bra(r1, head, exit);
/// b.bind(exit);
/// b.exit();
/// let k = b.build()?;
/// assert_eq!(k.len(), 5);
/// # Ok::<(), simt_isa::BuildError>(())
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    num_regs: u8,
    instrs: Vec<PendingInstr>,
    bound: HashMap<usize, usize>,
    /// Labels bound more than once, reported as an error at `build` time
    /// (the first binding wins until then).
    rebound: Vec<Label>,
    next_label: usize,
}

/// Instructions whose targets may still be unresolved labels.
#[derive(Clone, Copy, Debug)]
enum PendingInstr {
    Ready(Instruction),
    Bra {
        pred: Reg,
        target: Label,
        reconv: Label,
    },
    Jmp {
        target: Label,
    },
}

impl KernelBuilder {
    /// Starts a kernel with the given name and per-thread register count.
    pub fn new(name: impl Into<String>, num_regs: u8) -> Self {
        KernelBuilder {
            name: name.into(),
            num_regs,
            instrs: Vec::new(),
            bound: HashMap::new(),
            rebound: Vec::new(),
            next_label: 0,
        }
    }

    /// Issues a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Issues a label bound to the *next* instruction emitted.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Binds `label` to the next instruction emitted.
    ///
    /// Rebinding an already-bound label is always a bug in the kernel
    /// under construction; it is recorded here (the first binding wins)
    /// and surfaced as [`BuildError::Rebound`] when [`build`] is called.
    ///
    /// [`build`]: KernelBuilder::build
    pub fn bind(&mut self, label: Label) {
        if self.bound.contains_key(&label.0) {
            self.rebound.push(label);
        } else {
            self.bound.insert(label.0, self.instrs.len());
        }
    }

    /// Emits `mov dst, src`.
    pub fn mov(&mut self, dst: Reg, src: Operand) -> &mut Self {
        self.instrs
            .push(PendingInstr::Ready(Instruction::Mov { dst, src }));
        self
    }

    /// Emits `op dst, a, b`.
    pub fn alu(&mut self, op: AluOp, dst: Reg, a: Operand, b: Operand) -> &mut Self {
        self.instrs
            .push(PendingInstr::Ready(Instruction::Alu { op, dst, a, b }));
        self
    }

    /// Emits a global load `dst = mem[base + offset]`.
    pub fn ld(&mut self, dst: Reg, base: Reg, offset: i32) -> &mut Self {
        self.instrs
            .push(PendingInstr::Ready(Instruction::Ld { dst, base, offset }));
        self
    }

    /// Emits a global store `mem[base + offset] = src`.
    pub fn st(&mut self, base: Reg, offset: i32, src: Reg) -> &mut Self {
        self.instrs
            .push(PendingInstr::Ready(Instruction::St { base, offset, src }));
        self
    }

    /// Emits a conditional branch to `target` reconverging at `reconv`.
    pub fn bra(&mut self, pred: Reg, target: Label, reconv: Label) -> &mut Self {
        self.instrs.push(PendingInstr::Bra {
            pred,
            target,
            reconv,
        });
        self
    }

    /// Emits an unconditional jump.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.instrs.push(PendingInstr::Jmp { target });
        self
    }

    /// Emits `exit`.
    pub fn exit(&mut self) -> &mut Self {
        self.instrs.push(PendingInstr::Ready(Instruction::Exit));
        self
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Resolves all labels and validates the kernel.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnboundLabel`] if a referenced label was never bound;
    /// [`BuildError::Rebound`] if a label was bound more than once;
    /// [`BuildError::Invalid`] if the resolved kernel fails validation.
    pub fn build(&self) -> Result<Kernel, BuildError> {
        if let Some(&l) = self.rebound.first() {
            return Err(BuildError::Rebound(l));
        }
        let resolve = |l: Label| {
            self.bound
                .get(&l.0)
                .copied()
                .ok_or(BuildError::UnboundLabel(l))
        };
        let mut instrs = Vec::with_capacity(self.instrs.len());
        for p in &self.instrs {
            instrs.push(match *p {
                PendingInstr::Ready(i) => i,
                PendingInstr::Bra {
                    pred,
                    target,
                    reconv,
                } => Instruction::Bra {
                    pred,
                    target: resolve(target)?,
                    reconv: resolve(reconv)?,
                },
                PendingInstr::Jmp { target } => Instruction::Jmp {
                    target: resolve(target)?,
                },
            });
        }
        Kernel::new(self.name.clone(), instrs, self.num_regs).map_err(BuildError::Invalid)
    }
}

/// Failures of [`KernelBuilder::build`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A branch referenced a label that was never bound.
    UnboundLabel(Label),
    /// A label was bound to more than one position.
    Rebound(Label),
    /// The resolved instruction sequence failed kernel validation.
    Invalid(KernelError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(l) => write!(f, "label {l:?} referenced but never bound"),
            BuildError::Rebound(l) => write!(f, "label {l:?} bound twice"),
            BuildError::Invalid(e) => write!(f, "invalid kernel: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Invalid(e) => Some(e),
            BuildError::UnboundLabel(_) | BuildError::Rebound(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_labels_resolve() {
        let mut b = KernelBuilder::new("fwd", 1);
        let skip = b.label();
        b.bra(Reg(0), skip, skip);
        b.mov(Reg(0), Operand::Imm(1));
        b.bind(skip);
        b.exit();
        let k = b.build().unwrap();
        match k.instr(0).unwrap() {
            Instruction::Bra { target, reconv, .. } => {
                assert_eq!(*target, 2);
                assert_eq!(*reconv, 2);
            }
            other => panic!("expected bra, got {other}"),
        }
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = KernelBuilder::new("bad", 1);
        let nowhere = b.label();
        b.jmp(nowhere);
        assert_eq!(b.build().unwrap_err(), BuildError::UnboundLabel(nowhere));
    }

    #[test]
    fn rebinding_errors_at_build() {
        let mut b = KernelBuilder::new("dup", 1);
        let l = b.label();
        b.bind(l);
        b.exit();
        b.bind(l);
        b.exit();
        assert_eq!(b.build().unwrap_err(), BuildError::Rebound(l));
        assert!(b.build().unwrap_err().to_string().contains("bound twice"));
    }

    #[test]
    fn invalid_kernel_propagates() {
        let mut b = KernelBuilder::new("bad-reg", 1);
        b.mov(Reg(3), Operand::Imm(0));
        b.exit();
        match b.build().unwrap_err() {
            BuildError::Invalid(KernelError::RegisterOutOfRange { reg: 3, .. }) => {}
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn here_binds_to_next_instruction() {
        let mut b = KernelBuilder::new("loop", 2);
        b.mov(Reg(0), Operand::Imm(0));
        let head = b.here();
        b.alu(AluOp::Add, Reg(0), Reg(0).into(), Operand::Imm(1));
        b.alu(AluOp::SetLt, Reg(1), Reg(0).into(), Operand::Imm(3));
        let done = b.label();
        b.bra(Reg(1), head, done);
        b.bind(done);
        b.exit();
        let k = b.build().unwrap();
        match k.instr(3).unwrap() {
            Instruction::Bra { target, .. } => assert_eq!(*target, 1),
            other => panic!("expected bra, got {other}"),
        }
    }

    #[test]
    fn len_and_is_empty() {
        let mut b = KernelBuilder::new("x", 1);
        assert!(b.is_empty());
        b.exit();
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
