//! Instructions and execution-latency classes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::operand::{Operand, Reg};

/// Two-source ALU operations. All operate on 32-bit values per thread;
/// comparisons produce 0/1 predicates in a regular register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Signed division (0 when the divisor is 0, like CUDA's UB made tame).
    Div,
    /// Signed remainder (0 when the divisor is 0).
    Rem,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (modulo 32).
    Shl,
    /// Logical shift right (modulo 32).
    Shr,
    /// Signed less-than, producing 0/1.
    SetLt,
    /// Signed less-or-equal, producing 0/1.
    SetLe,
    /// Equality, producing 0/1.
    SetEq,
    /// Inequality, producing 0/1.
    SetNe,
}

impl AluOp {
    /// Applies the operation to two 32-bit values (signed semantics where
    /// relevant), per thread.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        let (sa, sb) = (a as i32, b as i32);
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if sb == 0 {
                    0
                } else {
                    sa.wrapping_div(sb) as u32
                }
            }
            AluOp::Rem => {
                if sb == 0 {
                    0
                } else {
                    sa.wrapping_rem(sb) as u32
                }
            }
            AluOp::Min => sa.min(sb) as u32,
            AluOp::Max => sa.max(sb) as u32,
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b & 31),
            AluOp::Shr => a.wrapping_shr(b & 31),
            AluOp::SetLt => u32::from(sa < sb),
            AluOp::SetLe => u32::from(sa <= sb),
            AluOp::SetEq => u32::from(a == b),
            AluOp::SetNe => u32::from(a != b),
        }
    }

    /// The pipeline latency class of this operation.
    pub fn latency_class(self) -> LatencyClass {
        match self {
            AluOp::Mul | AluOp::Div | AluOp::Rem => LatencyClass::Sfu,
            _ => LatencyClass::Alu,
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::SetLt => "set.lt",
            AluOp::SetLe => "set.le",
            AluOp::SetEq => "set.eq",
            AluOp::SetNe => "set.ne",
        };
        f.write_str(s)
    }
}

/// Coarse execution-latency classes used by the pipeline model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatencyClass {
    /// Simple integer ALU op.
    Alu,
    /// Special-function / long-latency arithmetic (mul, div).
    Sfu,
    /// Global memory access.
    Memory,
    /// Control flow.
    Control,
}

/// One SIMT instruction. `Pc`s inside instructions are resolved indices
/// into the kernel's instruction vector ([`KernelBuilder`] resolves labels
/// at build time).
///
/// [`KernelBuilder`]: crate::KernelBuilder
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instruction {
    /// `dst = src` (also the decompression dummy-MOV the arbiter injects —
    /// the simulator synthesises those, kernels may also use real MOVs).
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op(a, b)` per thread.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left source.
        a: Operand,
        /// Right source.
        b: Operand,
    },
    /// Global load: `dst = mem[base + offset]` (word addressed, per
    /// thread).
    Ld {
        /// Destination register.
        dst: Reg,
        /// Register holding the word address.
        base: Reg,
        /// Constant word offset.
        offset: i32,
    },
    /// Global store: `mem[base + offset] = src` (word addressed, per
    /// thread).
    St {
        /// Register holding the word address.
        base: Reg,
        /// Constant word offset.
        offset: i32,
        /// Register holding the value to store.
        src: Reg,
    },
    /// Conditional branch: threads with `pred != 0` jump to `target`, the
    /// rest fall through; `reconv` is the immediate post-dominator where
    /// both paths re-join (explicit, so the simulator's SIMT stack never
    /// has to compute post-dominators).
    Bra {
        /// Predicate register (0 = fall through, non-zero = taken).
        pred: Reg,
        /// Taken-path target pc.
        target: usize,
        /// Reconvergence pc.
        reconv: usize,
    },
    /// Unconditional jump (uniform across the warp).
    Jmp {
        /// Target pc.
        target: usize,
    },
    /// Warp terminates.
    Exit,
}

/// How an instruction transfers control, as seen by static analyses.
///
/// This is the view `simt-analysis` builds its control-flow graph from:
/// it separates the taken edge of a branch from its reconvergence point
/// (which the SIMT stack uses, but which is *not* a successor edge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlFlow {
    /// Execution continues at `pc + 1`.
    FallThrough,
    /// Divergent branch: successors are `target` and `pc + 1`; `reconv`
    /// is where the warp re-joins.
    Branch {
        /// Taken-path target pc.
        target: usize,
        /// Reconvergence pc.
        reconv: usize,
    },
    /// Unconditional jump: single successor `target`.
    Jump {
        /// Target pc.
        target: usize,
    },
    /// Warp terminates: no successors.
    Exit,
}

impl Instruction {
    /// Destination register, if the instruction writes one. Register
    /// writes are exactly the events warped-compression compresses.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Instruction::Mov { dst, .. }
            | Instruction::Alu { dst, .. }
            | Instruction::Ld { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Source registers read through the operand collector (at most two,
    /// which is what sizes the decompressor pool in §5.1).
    pub fn src_regs(&self) -> Vec<Reg> {
        match self {
            Instruction::Mov { src, .. } => src.reg().into_iter().collect(),
            Instruction::Alu { a, b, .. } => a.reg().into_iter().chain(b.reg()).collect(),
            Instruction::Ld { base, .. } => vec![*base],
            Instruction::St { base, src, .. } => vec![*base, *src],
            Instruction::Bra { pred, .. } => vec![*pred],
            Instruction::Jmp { .. } | Instruction::Exit => Vec::new(),
        }
    }

    /// The latency class the pipeline model schedules this instruction in.
    pub fn latency_class(&self) -> LatencyClass {
        match self {
            Instruction::Alu { op, .. } => op.latency_class(),
            Instruction::Mov { .. } => LatencyClass::Alu,
            Instruction::Ld { .. } | Instruction::St { .. } => LatencyClass::Memory,
            Instruction::Bra { .. } | Instruction::Jmp { .. } | Instruction::Exit => {
                LatencyClass::Control
            }
        }
    }

    /// Whether this is a control-flow instruction.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instruction::Bra { .. } | Instruction::Jmp { .. } | Instruction::Exit
        )
    }

    /// The control transfer this instruction performs, for CFG builders.
    pub fn control_flow(&self) -> ControlFlow {
        match *self {
            Instruction::Bra { target, reconv, .. } => ControlFlow::Branch { target, reconv },
            Instruction::Jmp { target } => ControlFlow::Jump { target },
            Instruction::Exit => ControlFlow::Exit,
            _ => ControlFlow::FallThrough,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Instruction::Alu { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            Instruction::Ld { dst, base, offset } => write!(f, "ld {dst}, [{base}{offset:+}]"),
            Instruction::St { base, offset, src } => write!(f, "st [{base}{offset:+}], {src}"),
            Instruction::Bra {
                pred,
                target,
                reconv,
            } => {
                write!(f, "bra {pred}, @{target} (reconv @{reconv})")
            }
            Instruction::Jmp { target } => write!(f, "jmp @{target}"),
            Instruction::Exit => f.write_str("exit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_arithmetic_semantics() {
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u32::MAX);
        assert_eq!(AluOp::Mul.apply(7, 6), 42);
        assert_eq!(AluOp::Min.apply((-5i32) as u32, 3), (-5i32) as u32);
        assert_eq!(AluOp::Max.apply((-5i32) as u32, 3), 3);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(AluOp::Div.apply(10, 0), 0);
        assert_eq!(AluOp::Rem.apply(10, 0), 0);
    }

    #[test]
    fn signed_division() {
        assert_eq!(AluOp::Div.apply((-10i32) as u32, 3) as i32, -3);
        assert_eq!(AluOp::Rem.apply((-10i32) as u32, 3) as i32, -1);
    }

    #[test]
    fn division_overflow_does_not_panic() {
        // i32::MIN / -1 overflows a naive div.
        assert_eq!(
            AluOp::Div.apply(i32::MIN as u32, (-1i32) as u32),
            i32::MIN as u32
        );
    }

    #[test]
    fn comparisons_are_signed() {
        assert_eq!(AluOp::SetLt.apply((-1i32) as u32, 0), 1);
        assert_eq!(AluOp::SetLe.apply(5, 5), 1);
        assert_eq!(AluOp::SetEq.apply(3, 4), 0);
        assert_eq!(AluOp::SetNe.apply(3, 4), 1);
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(AluOp::Shl.apply(1, 33), 2);
        assert_eq!(AluOp::Shr.apply(4, 33), 2);
    }

    #[test]
    fn dst_and_sources() {
        let i = Instruction::Alu {
            op: AluOp::Add,
            dst: Reg(1),
            a: Reg(2).into(),
            b: Reg(3).into(),
        };
        assert_eq!(i.dst(), Some(Reg(1)));
        assert_eq!(i.src_regs(), vec![Reg(2), Reg(3)]);

        let st = Instruction::St {
            base: Reg(4),
            offset: 0,
            src: Reg(5),
        };
        assert_eq!(st.dst(), None);
        assert_eq!(st.src_regs(), vec![Reg(4), Reg(5)]);

        let bra = Instruction::Bra {
            pred: Reg(6),
            target: 0,
            reconv: 1,
        };
        assert_eq!(bra.src_regs(), vec![Reg(6)]);
    }

    #[test]
    fn latency_classes() {
        assert_eq!(AluOp::Add.latency_class(), LatencyClass::Alu);
        assert_eq!(AluOp::Mul.latency_class(), LatencyClass::Sfu);
        let ld = Instruction::Ld {
            dst: Reg(0),
            base: Reg(1),
            offset: 0,
        };
        assert_eq!(ld.latency_class(), LatencyClass::Memory);
        assert!(Instruction::Exit.is_control());
    }

    #[test]
    fn control_flow_classification() {
        let add = Instruction::Alu {
            op: AluOp::Add,
            dst: Reg(0),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        };
        assert_eq!(add.control_flow(), ControlFlow::FallThrough);
        let bra = Instruction::Bra {
            pred: Reg(0),
            target: 3,
            reconv: 5,
        };
        assert_eq!(
            bra.control_flow(),
            ControlFlow::Branch {
                target: 3,
                reconv: 5
            }
        );
        assert_eq!(
            Instruction::Jmp { target: 2 }.control_flow(),
            ControlFlow::Jump { target: 2 }
        );
        assert_eq!(Instruction::Exit.control_flow(), ControlFlow::Exit);
    }

    #[test]
    fn display_round_trip_visually() {
        let i = Instruction::Alu {
            op: AluOp::SetLt,
            dst: Reg(1),
            a: Reg(2).into(),
            b: Operand::Imm(4),
        };
        assert_eq!(i.to_string(), "set.lt r1, r2, 4");
    }
}
