//! Registers, special values and instruction operands.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An architectural (warp) register index.
///
/// Each thread of the warp holds its own 32-bit value for this register;
/// the set of 32 values is the *warp register* that warped-compression
/// compresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// The register index as a usize, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Built-in per-thread or per-block values, the CUDA specials that drive
/// the thread-index value patterns of §3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Special {
    /// Thread index within the block (`threadIdx.x`): differs by 1 between
    /// consecutive lanes — the canonical ⟨4,1⟩-compressible value.
    Tid,
    /// Block index (`blockIdx.x`): uniform across the warp.
    Bid,
    /// Threads per block (`blockDim.x`): uniform.
    BlockDim,
    /// Blocks in the grid (`gridDim.x`): uniform.
    GridDim,
    /// Global thread id: `Bid * BlockDim + Tid`.
    GlobalTid,
    /// Lane id within the warp (0..32): like `Tid` modulo warp size.
    LaneId,
    /// Warp id within the block: uniform across the warp.
    WarpId,
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Special::Tid => "%tid",
            Special::Bid => "%ctaid",
            Special::BlockDim => "%ntid",
            Special::GridDim => "%nctaid",
            Special::GlobalTid => "%gtid",
            Special::LaneId => "%laneid",
            Special::WarpId => "%warpid",
        };
        f.write_str(s)
    }
}

/// A source operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register value (per-thread).
    Reg(Reg),
    /// An immediate constant (uniform).
    Imm(i32),
    /// A scalar kernel parameter (uniform), by parameter index.
    Param(u8),
    /// A hardware special value.
    Special(Special),
}

impl Operand {
    /// The register read by this operand, if any — used by the scoreboard
    /// and the operand-collector model to count bank reads.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => r.fmt(f),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::Param(i) => write!(f, "param[{i}]"),
            Operand::Special(s) => s.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_reg_extraction() {
        assert_eq!(Operand::Reg(Reg(3)).reg(), Some(Reg(3)));
        assert_eq!(Operand::Imm(5).reg(), None);
        assert_eq!(Operand::Param(0).reg(), None);
        assert_eq!(Operand::Special(Special::Tid).reg(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Operand::from(Reg(2)), Operand::Reg(Reg(2)));
        assert_eq!(Operand::from(-7), Operand::Imm(-7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(12).to_string(), "r12");
        assert_eq!(Operand::Special(Special::Tid).to_string(), "%tid");
        assert_eq!(Operand::Param(2).to_string(), "param[2]");
    }
}
