//! A minimal SIMT instruction set for the Warped-Compression reproduction.
//!
//! The paper's evaluation runs CUDA benchmarks on GPGPU-Sim. This crate is
//! the front half of our substitute substrate: a small, strongly-typed
//! SIMT ISA in which the `gpu-workloads` crate expresses kernels that
//! mirror the register-value behaviour of the Rodinia / Parboil
//! benchmarks, and which the `gpu-sim` crate executes cycle by cycle.
//!
//! The ISA is deliberately close to the subset of PTX/SASS the paper's
//! observations depend on:
//!
//! * 2-source / 1-destination register instructions (this is what sizes
//!   the operand collectors, compressors and decompressors in §5.1),
//! * special values (`tid`, `ctaid`, …) and uniform kernel parameters —
//!   the two sources of the value similarity characterised in §3,
//! * word-addressed global loads/stores,
//! * structured branches carrying an explicit reconvergence label, which
//!   lets the simulator maintain a classic SIMT reconvergence stack.
//!
//! # Example
//!
//! ```
//! use simt_isa::{AluOp, KernelBuilder, Operand, Reg, Special};
//!
//! // r1 = tid; r2 = r1 + param0; store r2 to mem[r1]
//! let mut b = KernelBuilder::new("saxpy_like", 3);
//! let (r0, r1, r2) = (Reg(0), Reg(1), Reg(2));
//! b.mov(r1, Operand::Special(Special::Tid));
//! b.alu(AluOp::Add, r2, Operand::Reg(r1), Operand::Param(0));
//! b.st(r1, 0, r2);
//! b.mov(r0, Operand::Imm(0)); // keep r0 live so num_regs is honest
//! b.exit();
//! let kernel = b.build().unwrap();
//! assert_eq!(kernel.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod builder;
mod instr;
mod kernel;
mod operand;

pub use asm::{assemble, to_asm, write_asm, AsmError, AsmErrorKind};
pub use builder::{BuildError, KernelBuilder, Label};
pub use instr::{AluOp, ControlFlow, Instruction, LatencyClass};
pub use kernel::{Kernel, KernelError};
pub use operand::{Operand, Reg, Special};
