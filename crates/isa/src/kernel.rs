//! Kernels: validated instruction sequences plus register demand.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::instr::{ControlFlow, Instruction};

/// A validated kernel: what a CUDA `__global__` function compiles to in
/// this ISA.
///
/// Invariants enforced at construction:
/// * every branch/jump target and reconvergence pc is in range,
/// * every register index referenced is `< num_regs`,
/// * the last reachable instruction cannot fall off the end (the kernel
///   ends in `Exit` or an unconditional `Jmp`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    instrs: Vec<Instruction>,
    num_regs: u8,
}

impl Kernel {
    /// Validates and wraps an instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] describing the first violated invariant.
    pub fn new(
        name: impl Into<String>,
        instrs: Vec<Instruction>,
        num_regs: u8,
    ) -> Result<Self, KernelError> {
        let name = name.into();
        if instrs.is_empty() {
            return Err(KernelError::Empty);
        }
        for (pc, instr) in instrs.iter().enumerate() {
            let mut regs = instr.src_regs();
            regs.extend(instr.dst());
            for r in regs {
                if r.index() >= num_regs as usize {
                    return Err(KernelError::RegisterOutOfRange {
                        pc,
                        reg: r.index(),
                        num_regs,
                    });
                }
            }
            match *instr {
                Instruction::Bra { target, reconv, .. } => {
                    if target >= instrs.len() {
                        return Err(KernelError::TargetOutOfRange { pc, target });
                    }
                    if reconv >= instrs.len() {
                        return Err(KernelError::TargetOutOfRange { pc, target: reconv });
                    }
                }
                Instruction::Jmp { target } if target >= instrs.len() => {
                    return Err(KernelError::TargetOutOfRange { pc, target });
                }
                _ => {}
            }
        }
        match instrs.last() {
            Some(Instruction::Exit | Instruction::Jmp { .. }) => {}
            // `None` is unreachable (emptiness checked above), but treating
            // it as FallsOffEnd keeps this arm panic-free.
            Some(_) | None => return Err(KernelError::FallsOffEnd),
        }
        Ok(Kernel {
            name,
            instrs,
            num_regs,
        })
    }

    /// Kernel name (used in reports and figures).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn instr(&self, pc: usize) -> Option<&Instruction> {
        self.instrs.get(pc)
    }

    /// All instructions in order.
    pub fn instrs(&self) -> &[Instruction] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the kernel has no instructions (never true: construction
    /// rejects empty kernels, but the method keeps clippy and callers
    /// honest).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Architectural registers each thread of this kernel needs.
    pub fn num_regs(&self) -> u8 {
        self.num_regs
    }

    /// The pcs execution can continue at after the instruction at `pc`.
    ///
    /// Reconvergence points are SIMT-stack metadata, not successor edges,
    /// so they are *not* included. `Exit` and out-of-range pcs have no
    /// successors. Branches whose taken target equals the fall-through pc
    /// report it once.
    pub fn successors(&self, pc: usize) -> Vec<usize> {
        match self.instrs.get(pc).map(Instruction::control_flow) {
            Some(ControlFlow::FallThrough) => vec![pc + 1],
            Some(ControlFlow::Branch { target, .. }) if target == pc + 1 => vec![pc + 1],
            Some(ControlFlow::Branch { target, .. }) => vec![target, pc + 1],
            Some(ControlFlow::Jump { target }) => vec![target],
            Some(ControlFlow::Exit) | None => Vec::new(),
        }
    }

    /// Writes a human-readable disassembly listing into `out`.
    ///
    /// # Errors
    ///
    /// Propagates errors from the underlying writer; writing to a
    /// `String` cannot fail.
    pub fn write_disassembly<W: fmt::Write>(&self, out: &mut W) -> fmt::Result {
        writeln!(out, ".kernel {} (regs: {})", self.name, self.num_regs)?;
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(out, "  @{pc:<4} {i}")?;
        }
        Ok(())
    }

    /// A human-readable disassembly listing.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        // Writing into a String is infallible.
        let _ = self.write_disassembly(&mut out);
        out
    }
}

/// Kernel validation failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// The instruction list was empty.
    Empty,
    /// A branch or jump points past the end of the kernel.
    TargetOutOfRange {
        /// Pc of the offending instruction.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// An instruction references a register ≥ `num_regs`.
    RegisterOutOfRange {
        /// Pc of the offending instruction.
        pc: usize,
        /// The offending register index.
        reg: usize,
        /// The declared register count.
        num_regs: u8,
    },
    /// The last instruction is not `Exit`/`Jmp`, so execution would run
    /// past the end.
    FallsOffEnd,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Empty => f.write_str("kernel has no instructions"),
            KernelError::TargetOutOfRange { pc, target } => {
                write!(f, "instruction @{pc} targets out-of-range pc @{target}")
            }
            KernelError::RegisterOutOfRange { pc, reg, num_regs } => {
                write!(
                    f,
                    "instruction @{pc} references r{reg} but kernel declares {num_regs} registers"
                )
            }
            KernelError::FallsOffEnd => f.write_str("kernel does not end in exit or jmp"),
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::AluOp;
    use crate::operand::{Operand, Reg};

    fn exit() -> Instruction {
        Instruction::Exit
    }

    #[test]
    fn empty_kernel_rejected() {
        assert_eq!(Kernel::new("k", vec![], 1).unwrap_err(), KernelError::Empty);
    }

    #[test]
    fn register_bounds_checked() {
        let bad = Instruction::Mov {
            dst: Reg(4),
            src: Operand::Imm(0),
        };
        let err = Kernel::new("k", vec![bad, exit()], 4).unwrap_err();
        assert_eq!(
            err,
            KernelError::RegisterOutOfRange {
                pc: 0,
                reg: 4,
                num_regs: 4
            }
        );
    }

    #[test]
    fn branch_targets_checked() {
        let bad = Instruction::Bra {
            pred: Reg(0),
            target: 9,
            reconv: 1,
        };
        let err = Kernel::new("k", vec![bad, exit()], 1).unwrap_err();
        assert_eq!(err, KernelError::TargetOutOfRange { pc: 0, target: 9 });
    }

    #[test]
    fn reconv_targets_checked() {
        let bad = Instruction::Bra {
            pred: Reg(0),
            target: 1,
            reconv: 7,
        };
        let err = Kernel::new("k", vec![bad, exit()], 1).unwrap_err();
        assert_eq!(err, KernelError::TargetOutOfRange { pc: 0, target: 7 });
    }

    #[test]
    fn must_end_in_exit_or_jmp() {
        let mov = Instruction::Mov {
            dst: Reg(0),
            src: Operand::Imm(1),
        };
        assert_eq!(
            Kernel::new("k", vec![mov], 1).unwrap_err(),
            KernelError::FallsOffEnd
        );
        assert!(Kernel::new("k", vec![mov, Instruction::Jmp { target: 0 }], 1).is_ok());
    }

    #[test]
    fn valid_kernel_accessors() {
        let instrs = vec![
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Operand::Imm(1),
                b: Operand::Imm(2),
            },
            exit(),
        ];
        let k = Kernel::new("adder", instrs.clone(), 1).unwrap();
        assert_eq!(k.name(), "adder");
        assert_eq!(k.len(), 2);
        assert!(!k.is_empty());
        assert_eq!(k.num_regs(), 1);
        assert_eq!(k.instrs(), &instrs[..]);
        assert_eq!(k.instr(0), Some(&instrs[0]));
        assert_eq!(k.instr(5), None);
    }

    #[test]
    fn disassembly_lists_every_pc() {
        let k = Kernel::new(
            "d",
            vec![
                Instruction::Mov {
                    dst: Reg(0),
                    src: Operand::Imm(3),
                },
                exit(),
            ],
            1,
        )
        .unwrap();
        let text = k.disassemble();
        assert!(text.contains(".kernel d"));
        assert!(text.contains("@0"));
        assert!(text.contains("mov r0, 3"));
        assert!(text.contains("exit"));
    }

    #[test]
    fn successor_edges() {
        let k = Kernel::new(
            "s",
            vec![
                Instruction::Mov {
                    dst: Reg(0),
                    src: Operand::Imm(1),
                },
                Instruction::Bra {
                    pred: Reg(0),
                    target: 3,
                    reconv: 4,
                },
                Instruction::Jmp { target: 4 },
                Instruction::Bra {
                    pred: Reg(0),
                    target: 4,
                    reconv: 4,
                },
                exit(),
            ],
            1,
        )
        .unwrap();
        assert_eq!(k.successors(0), vec![1]);
        assert_eq!(k.successors(1), vec![3, 2]);
        assert_eq!(k.successors(2), vec![4]);
        // Taken target == fall-through: reported once.
        assert_eq!(k.successors(3), vec![4]);
        assert_eq!(k.successors(4), Vec::<usize>::new());
        assert_eq!(k.successors(99), Vec::<usize>::new());
    }

    #[test]
    fn error_display() {
        let e = KernelError::RegisterOutOfRange {
            pc: 3,
            reg: 9,
            num_regs: 4,
        };
        assert!(e.to_string().contains("r9"));
    }
}
