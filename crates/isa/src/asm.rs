//! Textual assembler for the SIMT ISA.
//!
//! The syntax mirrors the `Display` output of instructions, with named
//! labels for control flow:
//!
//! ```text
//! .kernel saxpy regs 4
//!     mov   r0, %gtid
//!     mul   r1, r0, param[0]
//! @loop:
//!     add   r1, r1, 1
//!     set.lt r2, r1, 100
//!     bra   r2, @loop, @done
//! @done:
//!     st    [r0+0], r1
//!     exit
//! ```
//!
//! * labels are `@name:` on their own line and referenced as `@name`,
//! * `bra pred, @target, @reconv` carries the explicit reconvergence
//!   label,
//! * operands are registers (`r12`), immediates (`-7`, `0x1F`), kernel
//!   parameters (`param[2]`) or specials (`%tid`, `%ctaid`, `%ntid`,
//!   `%nctaid`, `%gtid`, `%laneid`, `%warpid`),
//! * memory operands are `[rBASE+OFFSET]` / `[rBASE-OFFSET]`,
//! * `#`-comments run to end of line.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::builder::{BuildError, KernelBuilder, Label};
use crate::instr::{AluOp, Instruction};
use crate::kernel::Kernel;
use crate::operand::{Operand, Reg, Special};

/// Assembles kernel source text into a validated [`Kernel`].
///
/// # Errors
///
/// Returns [`AsmError`] with a line number for any syntax problem, and
/// wraps kernel-validation failures (bad register indices etc.).
///
/// # Example
///
/// ```
/// let k = simt_isa::assemble(
///     ".kernel tiny regs 2\n mov r0, %tid\n add r1, r0, 1\n st [r0+0], r1\n exit\n",
/// )?;
/// assert_eq!(k.name(), "tiny");
/// assert_eq!(k.len(), 4);
/// # Ok::<(), simt_isa::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Kernel, AsmError> {
    Assembler::new(source).run()
}

/// Renders a kernel back to assembler syntax that [`assemble`] accepts —
/// branch targets become generated labels (`@L0`, `@L1`, …).
///
/// The round trip `assemble(to_asm(&k))? == k` holds for every valid
/// kernel (property-tested).
pub fn to_asm(kernel: &Kernel) -> String {
    let mut out = String::new();
    // Writing into a String is infallible, and every label `write_asm`
    // looks up comes from the same kernel, so this cannot fail.
    let _ = write_asm(kernel, &mut out);
    out
}

/// Renders a kernel as assembler syntax into any [`fmt::Write`] sink.
///
/// This is the panic-free core of [`to_asm`]: formatter errors propagate
/// through `?` instead of being unwrapped.
///
/// # Errors
///
/// Propagates errors from the underlying writer (writing to a `String`
/// cannot fail).
pub fn write_asm<W: fmt::Write>(kernel: &Kernel, out: &mut W) -> fmt::Result {
    // Collect every pc that is a branch/jump target or reconvergence
    // point and give it a label.
    let mut targets: Vec<usize> = kernel
        .instrs()
        .iter()
        .flat_map(|i| match *i {
            Instruction::Bra { target, reconv, .. } => vec![target, reconv],
            Instruction::Jmp { target } => vec![target],
            _ => Vec::new(),
        })
        .collect();
    targets.sort_unstable();
    targets.dedup();
    let label_of: HashMap<usize, String> = targets
        .iter()
        .enumerate()
        .map(|(n, &pc)| (pc, format!("L{n}")))
        .collect();
    // Every target was just harvested from the kernel, so the lookup is
    // total; `fmt::Error` here would indicate a bug, not a user error.
    let label = |pc: usize| label_of.get(&pc).ok_or(fmt::Error);

    writeln!(out, ".kernel {} regs {}", kernel.name(), kernel.num_regs())?;
    for (pc, instr) in kernel.instrs().iter().enumerate() {
        if let Some(l) = label_of.get(&pc) {
            writeln!(out, "@{l}:")?;
        }
        match *instr {
            Instruction::Bra {
                pred,
                target,
                reconv,
            } => {
                writeln!(
                    out,
                    "    bra {pred}, @{}, @{}",
                    label(target)?,
                    label(reconv)?
                )?;
            }
            Instruction::Jmp { target } => {
                writeln!(out, "    jmp @{}", label(target)?)?;
            }
            ref other => writeln!(out, "    {other}")?,
        }
    }
    Ok(())
}

/// Assembly failures, with 1-based source line numbers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line of the offending construct (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The varieties of assembly failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// Missing or malformed `.kernel NAME regs N` header.
    BadHeader,
    /// An unknown mnemonic.
    UnknownMnemonic(String),
    /// An operand that did not parse.
    BadOperand(String),
    /// Wrong operand count or shape for the mnemonic.
    BadOperands,
    /// A label defined twice.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// The resolved kernel failed validation.
    Invalid(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            AsmErrorKind::BadHeader => {
                write!(
                    f,
                    "line {}: expected `.kernel NAME regs N` header",
                    self.line
                )
            }
            AsmErrorKind::UnknownMnemonic(m) => {
                write!(f, "line {}: unknown mnemonic `{m}`", self.line)
            }
            AsmErrorKind::BadOperand(o) => {
                write!(f, "line {}: cannot parse operand `{o}`", self.line)
            }
            AsmErrorKind::BadOperands => {
                write!(f, "line {}: wrong operands for mnemonic", self.line)
            }
            AsmErrorKind::DuplicateLabel(l) => {
                write!(f, "line {}: label `@{l}` defined twice", self.line)
            }
            AsmErrorKind::UndefinedLabel(l) => {
                write!(f, "line {}: label `@{l}` never defined", self.line)
            }
            AsmErrorKind::Invalid(e) => write!(f, "line {}: invalid kernel: {e}", self.line),
        }
    }
}

impl Error for AsmError {}

struct Assembler<'a> {
    source: &'a str,
}

impl<'a> Assembler<'a> {
    fn new(source: &'a str) -> Self {
        Assembler { source }
    }

    fn run(self) -> Result<Kernel, AsmError> {
        let mut lines = self
            .source
            .lines()
            .enumerate()
            .map(|(n, l)| (n + 1, strip_comment(l).trim()))
            .filter(|(_, l)| !l.is_empty());

        // Header.
        let (hline, header) = lines.next().ok_or(AsmError {
            line: 0,
            kind: AsmErrorKind::BadHeader,
        })?;
        let (name, num_regs) = parse_header(header).ok_or(AsmError {
            line: hline,
            kind: AsmErrorKind::BadHeader,
        })?;

        let mut b = KernelBuilder::new(name, num_regs);
        let mut labels: HashMap<String, Label> = HashMap::new();
        let mut defined: HashMap<String, usize> = HashMap::new();
        let mut referenced: Vec<(usize, String)> = Vec::new();

        for (line, text) in lines {
            if let Some(label) = text.strip_prefix('@').and_then(|t| t.strip_suffix(':')) {
                let label = label.trim().to_string();
                if defined.contains_key(&label) {
                    return Err(AsmError {
                        line,
                        kind: AsmErrorKind::DuplicateLabel(label),
                    });
                }
                defined.insert(label.clone(), line);
                let l = *labels.entry(label).or_insert_with(|| b.label());
                b.bind(l);
                continue;
            }
            parse_instruction(text, line, &mut b, &mut labels, &mut referenced)?;
        }

        for (line, label) in &referenced {
            if !defined.contains_key(label) {
                return Err(AsmError {
                    line: *line,
                    kind: AsmErrorKind::UndefinedLabel(label.clone()),
                });
            }
        }
        b.build().map_err(|e| match e {
            BuildError::UnboundLabel(_) => AsmError {
                line: 0,
                kind: AsmErrorKind::UndefinedLabel("<unknown>".into()),
            },
            // Unreachable: duplicate labels are rejected before binding.
            BuildError::Rebound(_) => AsmError {
                line: 0,
                kind: AsmErrorKind::DuplicateLabel("<unknown>".into()),
            },
            BuildError::Invalid(k) => AsmError {
                line: 0,
                kind: AsmErrorKind::Invalid(k.to_string()),
            },
        })
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_header(line: &str) -> Option<(String, u8)> {
    let rest = line.strip_prefix(".kernel")?.trim();
    let mut parts = rest.split_whitespace();
    let name = parts.next()?.to_string();
    let kw = parts.next()?;
    if kw != "regs" {
        return None;
    }
    let regs: u8 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((name, regs))
}

fn parse_instruction(
    text: &str,
    line: usize,
    b: &mut KernelBuilder,
    labels: &mut HashMap<String, Label>,
    referenced: &mut Vec<(usize, String)>,
) -> Result<(), AsmError> {
    let err_operands = || AsmError {
        line,
        kind: AsmErrorKind::BadOperands,
    };
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };

    let mut label_ref = |name: &str, b: &mut KernelBuilder| -> Label {
        referenced.push((line, name.to_string()));
        *labels.entry(name.to_string()).or_insert_with(|| b.label())
    };

    match mnemonic {
        "mov" => {
            let [dst, src] = ops[..] else {
                return Err(err_operands());
            };
            b.mov(parse_reg(dst, line)?, parse_operand(src, line)?);
        }
        "ld" => {
            let [dst, mem] = ops[..] else {
                return Err(err_operands());
            };
            let (base, offset) = parse_mem(mem, line)?;
            b.ld(parse_reg(dst, line)?, base, offset);
        }
        "st" => {
            let [mem, src] = ops[..] else {
                return Err(err_operands());
            };
            let (base, offset) = parse_mem(mem, line)?;
            b.st(base, offset, parse_reg(src, line)?);
        }
        "bra" => {
            let [pred, target, reconv] = ops[..] else {
                return Err(err_operands());
            };
            let t = parse_label_name(target, line)?;
            let r = parse_label_name(reconv, line)?;
            let pred = parse_reg(pred, line)?;
            let (t, r) = (label_ref(&t, b), label_ref(&r, b));
            b.bra(pred, t, r);
        }
        "jmp" => {
            let [target] = ops[..] else {
                return Err(err_operands());
            };
            let t = parse_label_name(target, line)?;
            let t = label_ref(&t, b);
            b.jmp(t);
        }
        "exit" => {
            if !ops.is_empty() {
                return Err(err_operands());
            }
            b.exit();
        }
        other => {
            let Some(op) = parse_alu_op(other) else {
                return Err(AsmError {
                    line,
                    kind: AsmErrorKind::UnknownMnemonic(other.to_string()),
                });
            };
            let [dst, a, bb] = ops[..] else {
                return Err(err_operands());
            };
            b.alu(
                op,
                parse_reg(dst, line)?,
                parse_operand(a, line)?,
                parse_operand(bb, line)?,
            );
        }
    }
    Ok(())
}

fn parse_alu_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "min" => AluOp::Min,
        "max" => AluOp::Max,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "set.lt" => AluOp::SetLt,
        "set.le" => AluOp::SetLe,
        "set.eq" => AluOp::SetEq,
        "set.ne" => AluOp::SetNe,
        _ => return None,
    })
}

fn parse_reg(text: &str, line: usize) -> Result<Reg, AsmError> {
    let bad = || AsmError {
        line,
        kind: AsmErrorKind::BadOperand(text.to_string()),
    };
    let idx = text.strip_prefix('r').ok_or_else(bad)?;
    idx.parse::<u8>().map(Reg).map_err(|_| bad())
}

fn parse_operand(text: &str, line: usize) -> Result<Operand, AsmError> {
    let bad = || AsmError {
        line,
        kind: AsmErrorKind::BadOperand(text.to_string()),
    };
    if let Ok(r) = parse_reg(text, line) {
        return Ok(Operand::Reg(r));
    }
    if let Some(rest) = text
        .strip_prefix("param[")
        .and_then(|t| t.strip_suffix(']'))
    {
        return rest.parse::<u8>().map(Operand::Param).map_err(|_| bad());
    }
    if let Some(name) = text.strip_prefix('%') {
        let s = match name {
            "tid" => Special::Tid,
            "ctaid" => Special::Bid,
            "ntid" => Special::BlockDim,
            "nctaid" => Special::GridDim,
            "gtid" => Special::GlobalTid,
            "laneid" => Special::LaneId,
            "warpid" => Special::WarpId,
            _ => return Err(bad()),
        };
        return Ok(Operand::Special(s));
    }
    parse_imm(text).map(Operand::Imm).ok_or_else(bad)
}

fn parse_imm(text: &str) -> Option<i32> {
    let text = text.strip_prefix('+').unwrap_or(text);
    let (neg, t) = match text.strip_prefix('-') {
        Some(t) => (true, t),
        None => (false, text),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        t.parse::<i64>().ok()?
    };
    let v = if neg { -v } else { v };
    i32::try_from(v)
        .ok()
        .or_else(|| u32::try_from(v).ok().map(|u| u as i32))
}

/// `[rBASE+OFF]` / `[rBASE-OFF]` / `[rBASE]`.
fn parse_mem(text: &str, line: usize) -> Result<(Reg, i32), AsmError> {
    let bad = || AsmError {
        line,
        kind: AsmErrorKind::BadOperand(text.to_string()),
    };
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(bad)?;
    let (base_text, offset) = if let Some(i) = inner[1..].find(['+', '-']).map(|i| i + 1) {
        let (b, o) = inner.split_at(i);
        (b, parse_imm(o).ok_or_else(bad)?)
    } else {
        (inner, 0)
    };
    Ok((parse_reg(base_text.trim(), line)?, offset))
}

fn parse_label_name(text: &str, line: usize) -> Result<String, AsmError> {
    text.strip_prefix('@')
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .ok_or(AsmError {
            line,
            kind: AsmErrorKind::BadOperand(text.to_string()),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_straight_line_kernel() {
        let k = assemble(
            ".kernel t regs 3\n\
             mov r0, %gtid\n\
             add r1, r0, 10   # comment\n\
             mul r2, r1, param[1]\n\
             st [r0+4], r2\n\
             exit\n",
        )
        .unwrap();
        assert_eq!(k.name(), "t");
        assert_eq!(k.num_regs(), 3);
        assert_eq!(
            k.instr(1),
            Some(&Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(10)
            })
        );
        assert_eq!(
            k.instr(3),
            Some(&Instruction::St {
                base: Reg(0),
                offset: 4,
                src: Reg(2)
            })
        );
    }

    #[test]
    fn assembles_loops_with_forward_and_backward_labels() {
        let k = assemble(
            ".kernel loop regs 2\n\
             mov r0, 0\n\
             @head:\n\
             add r0, r0, 1\n\
             set.lt r1, r0, 5\n\
             bra r1, @head, @done\n\
             @done:\n\
             exit\n",
        )
        .unwrap();
        assert_eq!(
            k.instr(3),
            Some(&Instruction::Bra {
                pred: Reg(1),
                target: 1,
                reconv: 4
            })
        );
    }

    #[test]
    fn negative_and_hex_immediates() {
        let k = assemble(".kernel i regs 1\n mov r0, -42\n add r0, r0, 0x1F\n exit\n").unwrap();
        assert_eq!(
            k.instr(0),
            Some(&Instruction::Mov {
                dst: Reg(0),
                src: Operand::Imm(-42)
            })
        );
        assert_eq!(
            k.instr(1),
            Some(&Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Reg(0).into(),
                b: Operand::Imm(31)
            })
        );
    }

    #[test]
    fn negative_memory_offsets() {
        let k = assemble(".kernel m regs 2\n ld r1, [r0-3]\n exit\n").unwrap();
        assert_eq!(
            k.instr(0),
            Some(&Instruction::Ld {
                dst: Reg(1),
                base: Reg(0),
                offset: -3
            })
        );
    }

    #[test]
    fn all_specials_parse() {
        for (txt, sp) in [
            ("%tid", Special::Tid),
            ("%ctaid", Special::Bid),
            ("%ntid", Special::BlockDim),
            ("%nctaid", Special::GridDim),
            ("%gtid", Special::GlobalTid),
            ("%laneid", Special::LaneId),
            ("%warpid", Special::WarpId),
        ] {
            let src = format!(".kernel s regs 1\n mov r0, {txt}\n exit\n");
            let k = assemble(&src).unwrap();
            assert_eq!(
                k.instr(0),
                Some(&Instruction::Mov {
                    dst: Reg(0),
                    src: Operand::Special(sp)
                })
            );
        }
    }

    #[test]
    fn missing_header_is_reported() {
        let e = assemble("mov r0, 1\nexit\n").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::BadHeader);
    }

    #[test]
    fn unknown_mnemonic_is_reported_with_line() {
        let e =
            assemble(".kernel x regs 1\n mov r0, 1\n frobnicate r0, 1, 2\n exit\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.kind, AsmErrorKind::UnknownMnemonic("frobnicate".into()));
    }

    #[test]
    fn undefined_label_is_reported() {
        let e = assemble(".kernel x regs 1\n jmp @nowhere\n exit\n").unwrap_err();
        assert_eq!(e.kind, AsmErrorKind::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_is_reported() {
        let e = assemble(".kernel x regs 1\n@a:\n exit\n@a:\n exit\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::DuplicateLabel(ref l) if l == "a"));
    }

    #[test]
    fn register_out_of_range_is_reported() {
        let e = assemble(".kernel x regs 2\n mov r5, 1\n exit\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::Invalid(_)));
    }

    #[test]
    fn bad_operand_shapes_are_reported() {
        for src in [
            ".kernel x regs 1\n mov r0\n exit\n",
            ".kernel x regs 1\n add r0, 1\n exit\n",
            ".kernel x regs 1\n ld r0, r0\n exit\n",
            ".kernel x regs 1\n exit r0\n exit\n",
        ] {
            assert!(assemble(src).is_err(), "should reject: {src}");
        }
    }

    #[test]
    fn round_trip_simple() {
        let src = ".kernel rt regs 3\n\
             mov r0, %tid\n\
             @head:\n\
             add r1, r0, param[0]\n\
             set.lt r2, r1, 100\n\
             bra r2, @head, @out\n\
             @out:\n\
             st [r0+0], r1\n\
             exit\n";
        let k = assemble(src).unwrap();
        let k2 = assemble(&to_asm(&k)).unwrap();
        assert_eq!(k, k2);
    }

    #[test]
    fn to_asm_of_workload_scale_kernel_reassembles() {
        // A kernel with nested control flow, built programmatically.
        let mut b = KernelBuilder::new("nested", 4);
        b.mov(Reg(0), Operand::Special(Special::Tid));
        let merge = b.label();
        let then = b.label();
        b.alu(AluOp::SetLt, Reg(1), Reg(0).into(), Operand::Imm(7));
        b.bra(Reg(1), then, merge);
        b.mov(Reg(2), Operand::Imm(1));
        b.jmp(merge);
        b.bind(then);
        b.mov(Reg(2), Operand::Imm(2));
        b.bind(merge);
        b.st(Reg(0), 0, Reg(2));
        b.exit();
        let k = b.build().unwrap();
        let k2 = assemble(&to_asm(&k)).unwrap();
        assert_eq!(k, k2);
    }
}
