//! Property test: `assemble(to_asm(k)) == k` for arbitrary valid kernels.

use proptest::prelude::*;
use simt_isa::{assemble, to_asm, AluOp, Instruction, Kernel, Operand, Reg, Special};

const NUM_REGS: u8 = 8;

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::Min,
        AluOp::Max,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::SetLt,
        AluOp::SetLe,
        AluOp::SetEq,
        AluOp::SetNe,
    ])
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0..NUM_REGS).prop_map(Reg)
}

fn arb_special() -> impl Strategy<Value = Special> {
    prop::sample::select(vec![
        Special::Tid,
        Special::Bid,
        Special::BlockDim,
        Special::GridDim,
        Special::GlobalTid,
        Special::LaneId,
        Special::WarpId,
    ])
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        any::<i32>().prop_map(Operand::Imm),
        (0u8..4).prop_map(Operand::Param),
        arb_special().prop_map(Operand::Special),
    ]
}

/// An instruction whose branch targets stay inside `0..len`.
fn arb_instruction(len: usize) -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_reg(), arb_operand()).prop_map(|(dst, src)| Instruction::Mov { dst, src }),
        (arb_alu_op(), arb_reg(), arb_operand(), arb_operand())
            .prop_map(|(op, dst, a, b)| Instruction::Alu { op, dst, a, b }),
        (arb_reg(), arb_reg(), -64i32..64).prop_map(|(dst, base, offset)| Instruction::Ld {
            dst,
            base,
            offset
        }),
        (arb_reg(), -64i32..64, arb_reg()).prop_map(|(base, offset, src)| Instruction::St {
            base,
            offset,
            src
        }),
        (arb_reg(), 0..len, 0..len).prop_map(|(pred, target, reconv)| Instruction::Bra {
            pred,
            target,
            reconv
        }),
        (0..len).prop_map(|target| Instruction::Jmp { target }),
        Just(Instruction::Exit),
    ]
}

prop_compose! {
    fn arb_kernel()(len in 2usize..24)(
        mut instrs in prop::collection::vec(arb_instruction(len), len),
        name in "[a-z][a-z0-9_]{0,12}",
    ) -> Kernel {
        // Kernels must not fall off the end.
        *instrs.last_mut().expect("len >= 2") = Instruction::Exit;
        Kernel::new(name, instrs, NUM_REGS).expect("generated kernel is valid")
    }
}

proptest! {
    #[test]
    fn asm_round_trip(kernel in arb_kernel()) {
        let text = to_asm(&kernel);
        let back = assemble(&text)
            .unwrap_or_else(|e| panic!("re-assembly failed: {e}\n--- asm ---\n{text}"));
        prop_assert_eq!(back, kernel);
    }

    /// `to_asm` output is stable: rendering the reassembled kernel gives
    /// the identical text.
    #[test]
    fn asm_rendering_is_stable(kernel in arb_kernel()) {
        let text = to_asm(&kernel);
        let back = assemble(&text).expect("round trip");
        prop_assert_eq!(to_asm(&back), text);
    }

    /// The plain disassembly never panics and lists every pc.
    #[test]
    fn disassembly_lists_every_pc(kernel in arb_kernel()) {
        let d = kernel.disassemble();
        for pc in 0..kernel.len() {
            prop_assert!(d.contains(&format!("@{pc}")), "missing @{pc} in:\n{d}");
        }
    }
}
