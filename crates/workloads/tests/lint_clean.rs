//! Every workload kernel must pass the static verifier with zero
//! diagnostics — errors *and* warnings. The 18 kernels stand in for the
//! paper's benchmark binaries, so a dead write or use-before-def in one
//! of them silently skews every reproduced figure. This is the same
//! gate CI runs via `wcsim analyze --all --deny-warnings`.

use gpu_workloads::suite;
use simt_analysis::analyze;

#[test]
fn all_workload_kernels_are_lint_clean() {
    let mut failures = Vec::new();
    for w in suite() {
        let a = analyze(w.kernel());
        if !a.report.is_clean() {
            let mut msg = format!("{}:\n", w.name());
            for d in &a.report.diagnostics {
                msg.push_str(&format!("  {d}\n"));
            }
            failures.push(msg);
        }
    }
    assert!(
        failures.is_empty(),
        "workload kernels with diagnostics:\n{}",
        failures.join("\n")
    );
}

#[test]
fn liveness_summaries_are_sane() {
    for w in suite() {
        let a = analyze(w.kernel());
        let live = a
            .liveness
            .unwrap_or_else(|| panic!("{}: liveness missing", w.name()));
        let num_regs = usize::from(w.kernel().num_regs());
        assert!(
            live.max_live <= num_regs,
            "{}: max_live {} > num_regs {}",
            w.name(),
            live.max_live,
            num_regs
        );
        assert!(
            live.max_live >= 1,
            "{}: a kernel that stores results must keep something live",
            w.name()
        );
        assert!(
            (0.0..=1.0).contains(&live.dead_fraction()),
            "{}: dead_fraction out of range",
            w.name()
        );
    }
}
