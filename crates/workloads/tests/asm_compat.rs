//! Every suite kernel must round-trip through the textual assembler:
//! `assemble(to_asm(k)) == k`. This pins the assembler's coverage to the
//! full instruction vocabulary the real workloads use (all ALU ops,
//! negative offsets, params, specials, loops, nested reconvergence).

use simt_isa::{assemble, to_asm};

#[test]
fn all_suite_kernels_round_trip_through_the_assembler() {
    for w in gpu_workloads::suite() {
        let text = to_asm(w.kernel());
        let back = assemble(&text).unwrap_or_else(|e| {
            panic!("{}: re-assembly failed: {e}\n--- asm ---\n{text}", w.name())
        });
        assert_eq!(
            &back,
            w.kernel(),
            "{}: assembler round trip changed the kernel",
            w.name()
        );
    }
}

#[test]
fn suite_kernels_disassemble_with_stable_length() {
    for w in gpu_workloads::suite() {
        let text = to_asm(w.kernel());
        // One line per instruction plus header and label lines.
        let instr_lines = text
            .lines()
            .filter(|l| !l.starts_with('@') && !l.starts_with(".kernel"))
            .count();
        assert_eq!(instr_lines, w.kernel().len(), "{}", w.name());
    }
}
