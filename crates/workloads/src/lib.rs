//! Synthetic benchmark workloads for the Warped-Compression reproduction.
//!
//! The paper evaluates on CUDA benchmarks from Rodinia, Parboil and the
//! GPGPU-Sim suite. We cannot run CUDA, so each workload here is a kernel
//! hand-written in [`simt_isa`] that reproduces the *register-value
//! behaviour* the paper's analysis depends on (§3):
//!
//! * thread-index-affine values (array addressing via `tid`) — the first
//!   source of value similarity,
//! * input arrays with controlled dynamic range (e.g. `pathfinder`'s 0–9
//!   wall costs, `lib`'s constant-initialised inputs) — the second source,
//! * the benchmark's divergence character (`aes` never diverges; `bfs`,
//!   `dwt2d` and `spmv` diverge heavily).
//!
//! Every workload is deterministic: inputs come from a fixed-seed
//! [`rand`] generator, so every figure regenerated from this crate is
//! exactly reproducible.
//!
//! # Example
//!
//! ```
//! use gpu_workloads::{suite, Workload};
//! use gpu_sim::{GpuConfig, GpuSim};
//!
//! let workloads = suite();
//! assert!(workloads.len() >= 18);
//! let pf: &Workload = workloads.iter().find(|w| w.name() == "pathfinder").unwrap();
//! let mut memory = pf.fresh_memory();
//! let result = GpuSim::new(GpuConfig::warped_compression())
//!     .run(pf.kernel(), pf.launch(), &mut memory)?;
//! assert!(result.stats.instructions > 0);
//! # Ok::<(), gpu_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builders;
mod kernels;
#[cfg(feature = "testgen")]
pub mod testgen;
mod workload;

pub use workload::{DivergenceProfile, Workload};

use kernels as k;

/// The full benchmark suite, in the order the figures present it.
pub fn suite() -> Vec<Workload> {
    vec![
        k::backprop::build(),
        k::bfs::build(),
        k::dwt2d::build(),
        k::gaussian::build(),
        k::histo::build(),
        k::hotspot::build(),
        k::kmeans::build(),
        k::lavamd::build(),
        k::lud::build(),
        k::mri_q::build(),
        k::nw::build(),
        k::pathfinder::build(),
        k::sgemm::build(),
        k::srad::build(),
        k::stencil::build(),
        k::spmv::build(),
        k::aes::build(),
        k::lib_rng::build(),
    ]
}

/// Looks up one workload by its benchmark name.
pub fn by_name(name: &str) -> Option<Workload> {
    suite().into_iter().find(|w| w.name() == name)
}

/// The benchmark names, figure order.
pub fn names() -> Vec<&'static str> {
    suite().iter().map(|w| w.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eighteen_unique_workloads() {
        let names = names();
        assert_eq!(names.len(), 18);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate names: {names:?}");
    }

    #[test]
    fn by_name_finds_every_workload() {
        for name in names() {
            assert!(by_name(name).is_some(), "{name} missing");
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = by_name("bfs").unwrap();
        let b = by_name("bfs").unwrap();
        assert_eq!(a.fresh_memory(), b.fresh_memory());
        assert_eq!(a.kernel(), b.kernel());
    }
}
