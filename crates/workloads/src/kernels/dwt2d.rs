//! `dwt2d` (Rodinia): 2-D discrete wavelet transform (Haar-style lifting).
//!
//! Reproduced properties: the even/odd lane split (`tid % 2`) diverges
//! *every* warp on *every* level — dwt2d is one of the paper's
//! highest-divergence benchmarks — while pixel values keep a narrow 8-bit
//! dynamic range.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, if_then_else, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS;
const LEVELS: usize = 4;

const IMG_OFF: i32 = 0; // pixels[N] in 0..256
const OUT_OFF: i32 = N as i32;
const MEM_WORDS: usize = 2 * N;

/// Builds the dwt2d workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    words[..N].copy_from_slice(&random_words(0x51, N, 0, 256));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![LEVELS as u32]);
    Workload::new(
        "dwt2d",
        "Rodinia DWT2D lifting step: even lanes average, odd lanes difference — every warp diverges every level",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::High,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let lvl = Reg(1);
    let tmp = Reg(2);
    let parity = Reg(3);
    let a = Reg(4);
    let bb = Reg(5);
    let out = Reg(6);
    let pair = Reg(7);

    let mut b = KernelBuilder::new("dwt2d", 8);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    b.ld(out, gtid, IMG_OFF);
    counted_loop(&mut b, lvl, tmp, Operand::Param(0), |b| {
        b.alu(AluOp::And, parity, gtid.into(), Operand::Imm(1));
        // pair = gtid ^ 1 — the lifting partner.
        b.alu(AluOp::Xor, pair, gtid.into(), Operand::Imm(1));
        b.ld(a, gtid, IMG_OFF);
        b.ld(bb, pair, IMG_OFF);
        if_then_else(
            b,
            parity,
            |b| {
                // Odd lanes: detail coefficient (difference, kept positive).
                b.alu(AluOp::Sub, out, a.into(), bb.into());
                b.alu(AluOp::Max, out, out.into(), Operand::Imm(0));
            },
            |b| {
                // Even lanes: approximation coefficient (average).
                b.alu(AluOp::Add, out, a.into(), bb.into());
                b.alu(AluOp::Shr, out, out.into(), Operand::Imm(1));
            },
        );
        b.st(gtid, IMG_OFF, out);
    });
    b.st(gtid, OUT_OFF, out);
    b.exit();
    b.build().expect("dwt2d kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn diverges_every_level_with_narrow_values() {
        let w = build();
        let mut mem = w.fresh_memory();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        assert!(
            r.stats.nondivergent_ratio() < 0.85,
            "expected heavy divergence, nondiv = {}",
            r.stats.nondivergent_ratio()
        );
        // Coefficients remain 8-bit-ish.
        let out = &mem.words()[OUT_OFF as usize..];
        assert!(out.iter().all(|&v| v < 512));
    }
}
