//! `stencil` (Parboil): 7-point 3-D Jacobi stencil (flattened).
//!
//! Reproduced properties: multi-stride affine addressing (x±1, ±W, ±W·H)
//! and narrow-band values; divergence only at the domain boundary.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, if_then, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS;
// Deliberately not a multiple of the warp size: the interior guard then
// splits some warps, giving the boundary divergence a 3-D stencil has.
const W: i32 = 15; // plane width
const WH: i32 = 60; // plane size
const STEPS: usize = 6;

const IN_OFF: i32 = 0; // field[N] in 100..160
const OUT_OFF: i32 = N as i32;
const MEM_WORDS: usize = 2 * N;

/// Builds the stencil workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    words[..N].copy_from_slice(&random_words(0xB1, N, 100, 160));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![STEPS as u32, N as u32]);
    Workload::new(
        "stencil",
        "Parboil 7-point stencil: multi-stride affine neighbour addressing over a narrow-band field",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::Low,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let s = Reg(1);
    let tmp = Reg(2);
    let acc = Reg(3);
    let v = Reg(4);
    let cond = Reg(5);
    let tmp2 = Reg(6);
    let center = Reg(7);

    let mut b = KernelBuilder::new("stencil", 8);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    counted_loop(&mut b, s, tmp, Operand::Param(0), |b| {
        // Interior guard: WH <= gtid < N - WH.
        b.alu(AluOp::SetLe, cond, Operand::Imm(WH), gtid.into());
        b.alu(AluOp::Sub, tmp2, Operand::Param(1), Operand::Imm(WH));
        b.alu(AluOp::SetLt, tmp2, gtid.into(), tmp2.into());
        b.alu(AluOp::And, cond, cond.into(), tmp2.into());
        if_then(b, cond, tmp2, |b| {
            b.ld(center, gtid, IN_OFF);
            b.mov(acc, Operand::Imm(0));
            // Six neighbours at strides ±1, ±W, ±WH.
            for off in [-1, 1, -W, W, -WH, WH] {
                b.ld(v, gtid, IN_OFF + off);
                b.alu(AluOp::Add, acc, acc.into(), v.into());
            }
            // out = (acc + 2*center) / 8
            b.alu(AluOp::Add, acc, acc.into(), center.into());
            b.alu(AluOp::Add, acc, acc.into(), center.into());
            b.alu(AluOp::Div, acc, acc.into(), Operand::Imm(8));
            b.st(gtid, OUT_OFF, acc);
        });
    });
    b.exit();
    b.build().expect("stencil kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn interior_points_average_their_neighbourhood() {
        let w = build();
        let mut mem = w.fresh_memory();
        let input: Vec<u32> = mem.words()[..N].to_vec();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        // Spot-check one interior point against the reference.
        let g = 200usize;
        let acc: u32 = [-1i32, 1, -W, W, -WH, WH]
            .iter()
            .map(|&o| input[(g as i32 + o) as usize])
            .sum::<u32>()
            + 2 * input[g];
        assert_eq!(mem.word(OUT_OFF as usize + g).unwrap(), acc / 8);
        assert!(r.stats.nondivergent_ratio() > 0.6);
    }
}
