//! `lib` (GPGPU-Sim suite): LIBOR market-model Monte Carlo.
//!
//! The paper singles LIB out (§6.2): "the input data is initialized to
//! constant values, therefore it has zero dynamic range. As a result,
//! most of warp registers can be perfectly compressed." We reproduce
//! exactly that: every input word is the same constant, so nearly every
//! register the kernel writes is uniform across the warp (⟨4,0⟩).

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS;
const MATURITIES: usize = 24; // loop trip, like LIBOR's forward rates

const RATES_OFF: i32 = 0; // rates[MATURITIES], all the same constant
const LAMBDA_OFF: i32 = MATURITIES as i32; // lambda[MATURITIES], constant
const OUT_OFF: i32 = 2 * MATURITIES as i32;
const MEM_WORDS: usize = OUT_OFF as usize + N;

/// Builds the lib workload.
pub fn build() -> Workload {
    let kernel = build_kernel();
    let mut words = vec![0u32; MEM_WORDS];
    // Zero dynamic range: constant initial forward rates and vols.
    words[..MATURITIES].fill(50);
    words[MATURITIES..2 * MATURITIES].fill(3);
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![MATURITIES as u32]);
    Workload::new(
        "lib",
        "LIBOR Monte Carlo with constant-initialised inputs (zero dynamic range): near-perfect <4,0> compression",
        kernel,
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::None,
    )
}

fn build_kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let i = Reg(1);
    let tmp = Reg(2);
    let rate = Reg(3);
    let vol = Reg(4);
    let acc = Reg(5);
    let drift = Reg(6);

    let mut b = KernelBuilder::new("lib", 7);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    b.mov(acc, Operand::Imm(100));
    counted_loop(&mut b, i, tmp, Operand::Param(0), |b| {
        // Uniform loads: every thread reads the same maturity slot.
        b.ld(rate, i, RATES_OFF);
        b.ld(vol, i, LAMBDA_OFF);
        // drift = rate * vol / (rate + 1): uniform arithmetic chain.
        b.alu(AluOp::Mul, drift, rate.into(), vol.into());
        b.alu(AluOp::Add, tmp, rate.into(), Operand::Imm(1));
        b.alu(AluOp::Div, drift, drift.into(), tmp.into());
        b.alu(AluOp::Add, acc, acc.into(), drift.into());
    });
    b.st(gtid, OUT_OFF, acc);
    b.exit();
    b.build().expect("lib kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn compresses_almost_everything() {
        let w = build();
        let mut mem = w.fresh_memory();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        assert_eq!(r.stats.divergent_instructions, 0, "lib never diverges");
        // Zero dynamic range: compression ratio should be extreme.
        assert!(
            r.stats.compression_ratio_nondiv() > 5.0,
            "ratio {}",
            r.stats.compression_ratio_nondiv()
        );
        // Every thread computes the same payoff.
        let out = &mem.words()[OUT_OFF as usize..OUT_OFF as usize + N];
        assert!(out.iter().all(|&v| v == out[0] && v > 100));
    }
}
