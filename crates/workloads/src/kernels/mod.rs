//! One module per benchmark. Each exposes `build() -> Workload`.
//!
//! The memory-layout convention: every workload packs its arrays into one
//! [`gpu_sim::GlobalMemory`]; region base offsets are compile-time
//! constants baked into load/store offsets (a CUDA kernel would receive
//! them as pointer parameters — constants keep the synthetic kernels
//! short without changing the register value patterns, since PTX folds
//! parameter pointers into address arithmetic the same way).

pub mod aes;
pub mod backprop;
pub mod bfs;
pub mod dwt2d;
pub mod gaussian;
pub mod histo;
pub mod hotspot;
pub mod kmeans;
pub mod lavamd;
pub mod lib_rng;
pub mod lud;
pub mod mri_q;
pub mod nw;
pub mod pathfinder;
pub mod sgemm;
pub mod spmv;
pub mod srad;
pub mod stencil;
