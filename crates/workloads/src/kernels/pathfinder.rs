//! `pathfinder` (Rodinia): grid shortest-path, the paper's Fig. 4 example.
//!
//! Reproduced properties: wall costs with a 0–9 dynamic range, per-block
//! uniform scalars (`bx`, `small_block_cols`), thread-index addressing
//! (`xidx = blkX + tx`), and light divergence from the `IN_RANGE` guard
//! at block edges.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, if_then, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64; // threads per block
const BLOCKS: usize = 24;
const COLS: usize = BLOCK * BLOCKS;
const ITERATIONS: usize = 6;
const HALO: usize = 1;

// Memory layout (word offsets).
const PREV_OFF: i32 = 0; // prev[COLS]
const WALL_OFF: i32 = COLS as i32; // wall[ITERATIONS * COLS]
const RESULT_OFF: i32 = WALL_OFF + (ITERATIONS * COLS) as i32; // result[COLS]
const MEM_WORDS: usize = RESULT_OFF as usize + COLS;

/// Builds the pathfinder workload.
pub fn build() -> Workload {
    let kernel = build_kernel();
    let mut words = vec![0u32; MEM_WORDS];
    words[..COLS].copy_from_slice(&random_words(0x01, COLS, 0, 10));
    words[COLS..COLS + ITERATIONS * COLS].copy_from_slice(&random_words(
        0x02,
        ITERATIONS * COLS,
        0,
        10,
    ));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![
        ITERATIONS as u32, // param 0: iteration
        COLS as u32,       // param 1: cols
    ]);
    Workload::new(
        "pathfinder",
        "Rodinia grid shortest-path (the paper's Fig. 4 kernel): 0-9 wall costs, min-reductions, IN_RANGE edge divergence",
        kernel,
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::Low,
    )
}

fn build_kernel() -> simt_isa::Kernel {
    // Register map.
    let tx = Reg(0);
    let bx = Reg(1);
    let xidx = Reg(2);
    let i = Reg(3);
    let tmp = Reg(4);
    let cond = Reg(5);
    let left = Reg(6);
    let up = Reg(7);
    let right = Reg(8);
    let shortest = Reg(9);
    let addr = Reg(10);
    let tmp2 = Reg(11);
    let acc = Reg(12);
    // Dedicated scratch for the divergent body: the convergent guard code
    // must not recompress registers the body writes, or every iteration
    // would pay a dummy-MOV decompression (compilers keep these live
    // ranges in separate registers for the same reason).
    let wall = Reg(13);
    let guard = Reg(14);

    let mut b = KernelBuilder::new("pathfinder", 15);
    b.mov(tx, Operand::Special(Special::Tid));
    b.mov(bx, Operand::Special(Special::Bid));
    // small_block_cols = BLOCK - iteration*HALO*2 (uniform).
    b.alu(
        AluOp::Mul,
        tmp,
        Operand::Param(0),
        Operand::Imm((HALO * 2) as i32),
    );
    b.alu(AluOp::Sub, tmp, Operand::Imm(BLOCK as i32), tmp.into());
    // blkX = small_block_cols*bx - border(=iteration); xidx = blkX + tx.
    b.alu(AluOp::Mul, xidx, tmp.into(), bx.into());
    b.alu(AluOp::Sub, xidx, xidx.into(), Operand::Param(0));
    b.alu(AluOp::Add, xidx, xidx.into(), tx.into());
    // acc accumulates the shortest path this thread sees.
    b.mov(acc, Operand::Imm(0));

    counted_loop(&mut b, i, tmp, Operand::Param(0), |b| {
        // cond = IN_RANGE(tx, i+1, BLOCK-i-2) && IN_RANGE(xidx, 0, cols-1)
        b.alu(AluOp::Add, tmp2, i.into(), Operand::Imm(1));
        b.alu(AluOp::SetLe, cond, tmp2.into(), tx.into());
        b.alu(AluOp::Sub, tmp2, Operand::Imm((BLOCK - 2) as i32), i.into());
        b.alu(AluOp::SetLe, guard, tx.into(), tmp2.into());
        b.alu(AluOp::And, cond, cond.into(), guard.into());
        // isValid: 1 <= xidx < cols-1 so the xidx±1 neighbour loads stay
        // in range (the CUDA code clamps W/E instead; the value pattern
        // is the same).
        b.alu(AluOp::SetLe, tmp2, Operand::Imm(1), xidx.into());
        b.alu(AluOp::And, cond, cond.into(), tmp2.into());
        b.alu(AluOp::Sub, tmp2, Operand::Param(1), Operand::Imm(1));
        b.alu(AluOp::SetLt, tmp2, xidx.into(), tmp2.into());
        b.alu(AluOp::And, cond, cond.into(), tmp2.into());
        if_then(b, cond, tmp2, |b| {
            // left/up/right = prev[xidx-1], prev[xidx], prev[xidx+1]
            b.ld(left, xidx, PREV_OFF - 1);
            b.ld(up, xidx, PREV_OFF);
            b.ld(right, xidx, PREV_OFF + 1);
            b.alu(AluOp::Min, shortest, left.into(), up.into());
            b.alu(AluOp::Min, shortest, shortest.into(), right.into());
            // index = cols*i + xidx; acc = shortest + wall[index]
            b.alu(AluOp::Mul, addr, Operand::Param(1), i.into());
            b.alu(AluOp::Add, addr, addr.into(), xidx.into());
            b.ld(wall, addr, WALL_OFF);
            b.alu(AluOp::Add, acc, shortest.into(), wall.into());
        });
    });

    // result[bx*BLOCK + tx] = acc
    b.alu(AluOp::Mul, addr, bx.into(), Operand::Imm(BLOCK as i32));
    b.alu(AluOp::Add, addr, addr.into(), tx.into());
    b.st(addr, RESULT_OFF, acc);
    b.exit();
    b.build().expect("pathfinder kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn runs_and_produces_bounded_costs() {
        let w = build();
        let mut mem = w.fresh_memory();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        // Interior results are min(prev neighbours) + wall cost: both 0..9.
        let results = &mem.words()[RESULT_OFF as usize..RESULT_OFF as usize + COLS];
        assert!(results.iter().all(|&v| v <= 18), "cost out of range");
        assert!(
            results.iter().any(|&v| v > 0),
            "all-zero result is suspicious"
        );
        // Edge guard diverges a little, but most instructions are convergent.
        assert!(r.stats.divergent_instructions > 0);
        assert!(r.stats.nondivergent_ratio() > 0.5);
    }
}
