//! `backprop` (Rodinia): neural-network layer forward pass.
//!
//! Reproduced properties: strided affine addressing (`k*N + gtid` — the
//! addresses differ by 1 between adjacent lanes), small weight/input
//! ranges, no divergence.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS; // output units
const INPUTS: usize = 16; // hidden-layer inputs

const W_OFF: i32 = 0; // weights[INPUTS * N] in 0..16
const X_OFF: i32 = (INPUTS * N) as i32; // inputs[INPUTS] in 0..8
const OUT_OFF: i32 = X_OFF + INPUTS as i32;
const MEM_WORDS: usize = OUT_OFF as usize + N;

/// Builds the backprop workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    words[..INPUTS * N].copy_from_slice(&random_words(0x41, INPUTS * N, 0, 16));
    words[INPUTS * N..INPUTS * N + INPUTS].copy_from_slice(&random_words(0x42, INPUTS, 0, 8));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![INPUTS as u32, N as u32]);
    Workload::new(
        "backprop",
        "Rodinia backprop layer: strided weight addressing (affine in tid), small operand ranges, fully convergent",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::None,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let k = Reg(1);
    let tmp = Reg(2);
    let addr = Reg(3);
    let w = Reg(4);
    let x = Reg(5);
    let acc = Reg(6);
    let prod = Reg(7);

    let mut b = KernelBuilder::new("backprop", 8);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    b.mov(acc, Operand::Imm(0));
    counted_loop(&mut b, k, tmp, Operand::Param(0), |b| {
        // addr = k*N + gtid  (affine: lanes differ by exactly 1)
        b.alu(AluOp::Mul, addr, k.into(), Operand::Param(1));
        b.alu(AluOp::Add, addr, addr.into(), gtid.into());
        b.ld(w, addr, W_OFF);
        b.ld(x, k, X_OFF); // uniform across the warp
        b.alu(AluOp::Mul, prod, w.into(), x.into());
        b.alu(AluOp::Add, acc, acc.into(), prod.into());
    });
    b.st(gtid, OUT_OFF, acc);
    b.exit();
    b.build().expect("backprop kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn matches_reference_dot_products() {
        let w = build();
        let mut mem = w.fresh_memory();
        let weights: Vec<u32> = mem.words()[..INPUTS * N].to_vec();
        let xs: Vec<u32> = mem.words()[INPUTS * N..INPUTS * N + INPUTS].to_vec();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        for unit in 0..N {
            let expected: u32 = (0..INPUTS).map(|k| weights[k * N + unit] * xs[k]).sum();
            assert_eq!(
                mem.word(OUT_OFF as usize + unit).unwrap(),
                expected,
                "unit {unit}"
            );
        }
        assert_eq!(r.stats.divergent_instructions, 0);
    }
}
