//! `hotspot` (Rodinia): thermal simulation stencil.
//!
//! Reproduced properties: temperature values in a narrow band around an
//! ambient constant plus small power inputs, neighbour loads at
//! thread-index offsets, and only boundary-guard divergence.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, if_then, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS;
const STEPS: usize = 8;

const TEMP_OFF: i32 = 0; // temp[N]: 3000..3100 (fixed-point kelvin*10)
const POWER_OFF: i32 = N as i32; // power[N]: 0..50
const OUT_OFF: i32 = 2 * N as i32;
const MEM_WORDS: usize = 3 * N;

/// Builds the hotspot workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    words[..N].copy_from_slice(&random_words(0x31, N, 3000, 3100));
    words[N..2 * N].copy_from_slice(&random_words(0x32, N, 0, 50));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![STEPS as u32, N as u32]);
    Workload::new(
        "hotspot",
        "Rodinia HotSpot stencil: narrow-band temperatures, neighbour averaging, boundary-only divergence",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::Low,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let t = Reg(1);
    let step = Reg(2);
    let tmp = Reg(3);
    let left = Reg(4);
    let right = Reg(5);
    let power = Reg(6);
    let delta = Reg(7);
    let cond = Reg(8);
    let tmp2 = Reg(9);

    let mut b = KernelBuilder::new("hotspot", 10);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    b.ld(t, gtid, TEMP_OFF);
    b.ld(power, gtid, POWER_OFF);
    counted_loop(&mut b, step, tmp, Operand::Param(0), |b| {
        // Interior guard: 0 < gtid < N-1.
        b.alu(AluOp::SetLt, cond, Operand::Imm(0), gtid.into());
        b.alu(AluOp::Sub, tmp2, Operand::Param(1), Operand::Imm(1));
        b.alu(AluOp::SetLt, tmp2, gtid.into(), tmp2.into());
        b.alu(AluOp::And, cond, cond.into(), tmp2.into());
        if_then(b, cond, tmp2, |b| {
            b.ld(left, gtid, TEMP_OFF - 1);
            b.ld(right, gtid, TEMP_OFF + 1);
            // delta = (power + left + right - 2t) / 4
            b.alu(AluOp::Add, delta, left.into(), right.into());
            b.alu(AluOp::Sub, delta, delta.into(), t.into());
            b.alu(AluOp::Sub, delta, delta.into(), t.into());
            b.alu(AluOp::Add, delta, delta.into(), power.into());
            // Signed division: delta may be negative (cooling).
            b.alu(AluOp::Div, delta, delta.into(), Operand::Imm(4));
            b.alu(AluOp::Add, t, t.into(), delta.into());
        });
    });
    b.st(gtid, OUT_OFF, t);
    b.exit();
    b.build().expect("hotspot kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn temperatures_stay_in_band_and_compress_well() {
        let w = build();
        let mut mem = w.fresh_memory();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        let out = &mem.words()[OUT_OFF as usize..];
        assert!(
            out.iter().all(|&v| (2000..4200).contains(&v)),
            "temperature diverged numerically"
        );
        // Narrow dynamic range => strong compression.
        assert!(
            r.stats.compression_ratio_nondiv() > 1.5,
            "ratio {}",
            r.stats.compression_ratio_nondiv()
        );
        assert!(r.stats.nondivergent_ratio() > 0.7);
    }
}
