//! `bfs` (Rodinia): breadth-first search frontier expansion.
//!
//! Reproduced properties: heavy branch divergence (per-thread edge counts
//! differ, and only frontier nodes do work at all) and mixed value
//! similarity — neighbour indices are random, so divergent-phase writes
//! compress poorly (the paper calls BFS out as losing compressed
//! registers during divergence, Fig. 12).

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, if_then, per_thread_loop, random_words, rng, Special};
use crate::workload::{DivergenceProfile, Workload};

use rand::Rng;

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS; // nodes
const MAX_DEG: usize = 6;

const DEGREE_OFF: i32 = 0; // degree[N] in 0..MAX_DEG
const OFFSET_OFF: i32 = N as i32; // edge start offset[N]
const FRONTIER_OFF: i32 = 2 * N as i32; // frontier flag[N] in {0,1}
const COST_OFF: i32 = 3 * N as i32; // cost[N]
const EDGES_OFF: i32 = 4 * N as i32; // edges[sum degree]

/// Builds the bfs workload.
pub fn build() -> Workload {
    let degrees = random_words(0x21, N, 0, (MAX_DEG + 1) as u32);
    let mut offsets = Vec::with_capacity(N);
    let mut total = 0u32;
    for &d in &degrees {
        offsets.push(total);
        total += d;
    }
    let edges = random_words(0x22, total as usize, 0, N as u32);
    let mut frontier_rng = rng(0x23);
    let frontier: Vec<u32> = (0..N)
        .map(|_| u32::from(frontier_rng.gen_bool(0.6)))
        .collect();

    let mem_words = EDGES_OFF as usize + total as usize;
    let mut words = vec![0u32; mem_words];
    words[..N].copy_from_slice(&degrees);
    words[N..2 * N].copy_from_slice(&offsets);
    words[2 * N..3 * N].copy_from_slice(&frontier);
    // cost[] starts zero.
    words[EDGES_OFF as usize..].copy_from_slice(&edges);

    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![1 /* level */]);
    Workload::new(
        "bfs",
        "Rodinia BFS frontier expansion: per-thread edge loops and frontier gating cause heavy divergence; neighbour ids are random",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::High,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let flag = Reg(1);
    let deg = Reg(2);
    let base = Reg(3);
    let i = Reg(4);
    let tmp = Reg(5);
    let tmp2 = Reg(6);
    let edge = Reg(7);
    let addr = Reg(8);
    let level = Reg(9);

    let mut b = KernelBuilder::new("bfs", 10);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    // Convergent preprocessing: hash the node id into a tentative cost
    // seed (the CUDA kernel's index arithmetic / visited bookkeeping).
    // This is the convergent bulk of the kernel; divergence is confined
    // to the frontier expansion below, as in the real benchmark.
    b.mov(level, Operand::Imm(0));
    counted_loop(&mut b, i, tmp, Operand::Imm(12), |b| {
        b.alu(AluOp::Add, tmp2, gtid.into(), i.into());
        b.alu(AluOp::Shl, edge, tmp2.into(), Operand::Imm(3));
        b.alu(AluOp::Xor, level, level.into(), edge.into());
        b.alu(AluOp::And, level, level.into(), Operand::Imm(0xFFFF));
    });
    b.ld(flag, gtid, FRONTIER_OFF);
    if_then(&mut b, flag, tmp, |b| {
        b.ld(deg, gtid, DEGREE_OFF);
        b.ld(base, gtid, OFFSET_OFF);
        b.alu(AluOp::Add, level, Operand::Param(0), Operand::Imm(1));
        per_thread_loop(b, i, tmp, deg, |b| {
            // edge = edges[base + i]; cost[edge] = level
            b.alu(AluOp::Add, addr, base.into(), i.into());
            b.ld(edge, addr, EDGES_OFF);
            b.alu(AluOp::Add, tmp2, edge.into(), Operand::Imm(0));
            b.st(tmp2, COST_OFF, level);
        });
    });
    b.exit();
    b.build().expect("bfs kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn diverges_heavily_and_marks_neighbours() {
        let w = build();
        let mut mem = w.fresh_memory();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        // Per-thread loop bounds guarantee a large divergent fraction.
        assert!(
            r.stats.nondivergent_ratio() < 0.8,
            "expected heavy divergence, got nondiv {}",
            r.stats.nondivergent_ratio()
        );
        // Some nodes were visited (cost set to level+1 = 2).
        let cost = &mem.words()[COST_OFF as usize..COST_OFF as usize + N];
        assert!(cost.contains(&2));
    }
}
