//! `lavamd` (Rodinia): particle force computation over neighbour lists.
//!
//! Reproduced properties: per-particle loop over a fixed neighbour list
//! with a data-dependent *cutoff* branch — only close pairs compute
//! forces, so divergence is frequent but shallow — plus mid-range
//! squared-distance arithmetic.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, if_then, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS; // particles
const NEIGHBOURS: usize = 8;
const CUTOFF_SQ: i32 = 900; // 30^2

const POS_OFF: i32 = 0; // position[N]: 0..256 (1-D coordinates)
const NBR_OFF: i32 = N as i32; // neighbour ids[N * NEIGHBOURS]
const FORCE_OFF: i32 = NBR_OFF + (N * NEIGHBOURS) as i32; // force[N]
const MEM_WORDS: usize = FORCE_OFF as usize + N;

/// Builds the lavamd workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    words[..N].copy_from_slice(&random_words(0xF7, N, 0, 256));
    words[NBR_OFF as usize..NBR_OFF as usize + N * NEIGHBOURS].copy_from_slice(&random_words(
        0xF8,
        N * NEIGHBOURS,
        0,
        N as u32,
    ));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![NEIGHBOURS as u32]);
    Workload::new(
        "lavamd",
        "Rodinia LavaMD: neighbour-list force loop with a distance-cutoff branch (frequent shallow divergence)",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::High,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let i = Reg(1);
    let tmp = Reg(2);
    let my_pos = Reg(3);
    let addr = Reg(4);
    let nbr = Reg(5);
    let npos = Reg(6);
    let d = Reg(7);
    let d2 = Reg(8);
    let cond = Reg(9);
    let force = Reg(10);

    let mut b = KernelBuilder::new("lavamd", 11);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    b.ld(my_pos, gtid, POS_OFF);
    b.mov(force, Operand::Imm(0));
    counted_loop(&mut b, i, tmp, Operand::Param(0), |b| {
        // nbr = neighbours[gtid*NEIGHBOURS + i]; npos = pos[nbr]
        b.alu(
            AluOp::Mul,
            addr,
            gtid.into(),
            Operand::Imm(NEIGHBOURS as i32),
        );
        b.alu(AluOp::Add, addr, addr.into(), i.into());
        b.ld(nbr, addr, NBR_OFF);
        b.ld(npos, nbr, POS_OFF);
        // d2 = (pos - npos)^2; if (d2 < cutoff^2) force += cutoff^2 - d2
        b.alu(AluOp::Sub, d, my_pos.into(), npos.into());
        b.alu(AluOp::Mul, d2, d.into(), d.into());
        b.alu(AluOp::SetLt, cond, d2.into(), Operand::Imm(CUTOFF_SQ));
        if_then(b, cond, tmp, |b| {
            b.alu(AluOp::Sub, d2, Operand::Imm(CUTOFF_SQ), d2.into());
            b.alu(AluOp::Add, force, force.into(), d2.into());
        });
    });
    b.st(gtid, FORCE_OFF, force);
    b.exit();
    b.build().expect("lavamd kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn forces_match_reference_and_cutoff_diverges() {
        let w = build();
        let mut mem = w.fresh_memory();
        let pos: Vec<u32> = mem.words()[..N].to_vec();
        let nbrs: Vec<u32> =
            mem.words()[NBR_OFF as usize..NBR_OFF as usize + N * NEIGHBOURS].to_vec();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        for p in (0..N).step_by(89) {
            let mut expected = 0u32;
            for i in 0..NEIGHBOURS {
                let npos = pos[nbrs[p * NEIGHBOURS + i] as usize];
                let d = pos[p].wrapping_sub(npos);
                let d2 = d.wrapping_mul(d);
                if (d2 as i32) < CUTOFF_SQ && d2 as i32 >= 0 {
                    expected = expected.wrapping_add((CUTOFF_SQ as u32).wrapping_sub(d2));
                }
            }
            assert_eq!(
                mem.word(FORCE_OFF as usize + p).unwrap(),
                expected,
                "particle {p}"
            );
        }
        assert!(r.stats.nondivergent_ratio() < 0.95, "cutoff must diverge");
        assert!(r.stats.divergent_instructions > 0);
    }
}
