//! `sgemm` (Parboil): dense matrix multiply, one output element per
//! thread.
//!
//! Reproduced properties: two-operand strided addressing (row-major A,
//! column-major B), fixed-point signed values, fully convergent — the
//! classic compute-bound kernel whose addresses compress as ⟨4,1⟩ and
//! whose accumulators drift through the 32K bin.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS; // output elements
const COLS: usize = 96; // output matrix is (N/COLS) x COLS
const K: usize = 12; // inner dimension

const A_OFF: i32 = 0; // A[(N/COLS) * K], signed -50..50 (biased)
const B_OFF: i32 = A_OFF + ((N / COLS) * K) as i32; // B[K * COLS]
const C_OFF: i32 = B_OFF + (K * COLS) as i32; // C[N]
const MEM_WORDS: usize = C_OFF as usize + N;

/// Builds the sgemm workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    // Signed fixed-point entries stored biased into u32 (the kernel uses
    // wrapping arithmetic, so the bias cancels in differences).
    let a: Vec<u32> = random_words(0xD1, (N / COLS) * K, 0, 100)
        .iter()
        .map(|v| v.wrapping_sub(50))
        .collect();
    let b: Vec<u32> = random_words(0xD2, K * COLS, 0, 60)
        .iter()
        .map(|v| v.wrapping_sub(30))
        .collect();
    words[..a.len()].copy_from_slice(&a);
    words[B_OFF as usize..B_OFF as usize + b.len()].copy_from_slice(&b);
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![K as u32, COLS as u32]);
    Workload::new(
        "sgemm",
        "Parboil SGEMM (element per thread): dual strided operand streams, signed fixed-point accumulation, convergent",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::None,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let k = Reg(1);
    let tmp = Reg(2);
    let row = Reg(3);
    let col = Reg(4);
    let addr = Reg(5);
    let av = Reg(6);
    let bv = Reg(7);
    let acc = Reg(8);
    let prod = Reg(9);

    let mut b = KernelBuilder::new("sgemm", 10);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    // row = gtid / COLS; col = gtid % COLS.
    b.alu(AluOp::Div, row, gtid.into(), Operand::Param(1));
    b.alu(AluOp::Rem, col, gtid.into(), Operand::Param(1));
    b.mov(acc, Operand::Imm(0));
    counted_loop(&mut b, k, tmp, Operand::Param(0), |b| {
        // av = A[row*K + k]
        b.alu(AluOp::Mul, addr, row.into(), Operand::Param(0));
        b.alu(AluOp::Add, addr, addr.into(), k.into());
        b.ld(av, addr, A_OFF);
        // bv = B[k*COLS + col]
        b.alu(AluOp::Mul, addr, k.into(), Operand::Param(1));
        b.alu(AluOp::Add, addr, addr.into(), col.into());
        b.ld(bv, addr, B_OFF);
        b.alu(AluOp::Mul, prod, av.into(), bv.into());
        b.alu(AluOp::Add, acc, acc.into(), prod.into());
    });
    b.st(gtid, C_OFF, acc);
    b.exit();
    b.build().expect("sgemm kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn matches_reference_gemm() {
        let w = build();
        let mut mem = w.fresh_memory();
        let a: Vec<u32> = mem.words()[..(N / COLS) * K].to_vec();
        let bm: Vec<u32> = mem.words()[B_OFF as usize..B_OFF as usize + K * COLS].to_vec();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        for e in (0..N).step_by(101) {
            let (row, col) = (e / COLS, e % COLS);
            let expected: u32 = (0..K)
                .map(|k| a[row * K + k].wrapping_mul(bm[k * COLS + col]))
                .fold(0u32, u32::wrapping_add);
            assert_eq!(
                mem.word(C_OFF as usize + e).unwrap(),
                expected,
                "element {e}"
            );
        }
        assert_eq!(r.stats.divergent_instructions, 0);
    }
}
