//! `kmeans` (Rodinia): nearest-centroid assignment.
//!
//! Reproduced properties: uniform centroid loads, small feature ranges,
//! and a light data-dependent branch when a point switches membership.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, if_then, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS;
const K: usize = 5;

const FEAT_OFF: i32 = 0; // features[N] in 0..200
const CENT_OFF: i32 = N as i32; // centroids[K] in 0..200
const MEMBER_OFF: i32 = CENT_OFF + K as i32; // old membership[N] in 0..K
const ASSIGN_OFF: i32 = MEMBER_OFF + N as i32; // new membership[N]
const CHANGED_OFF: i32 = ASSIGN_OFF + N as i32; // change flags[N]
const MEM_WORDS: usize = CHANGED_OFF as usize + N;

/// Builds the kmeans workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    words[..N].copy_from_slice(&random_words(0x71, N, 0, 200));
    words[N..N + K].copy_from_slice(&random_words(0x72, K, 0, 200));
    words[MEMBER_OFF as usize..MEMBER_OFF as usize + N]
        .copy_from_slice(&random_words(0x73, N, 0, K as u32));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![K as u32]);
    Workload::new(
        "kmeans",
        "Rodinia k-means assignment: uniform centroid scans, |x-c| reductions, light membership-change divergence",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::Low,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let x = Reg(1);
    let k = Reg(2);
    let tmp = Reg(3);
    let c = Reg(4);
    let d = Reg(5);
    let best_d = Reg(6);
    let best_k = Reg(7);
    let isless = Reg(8);
    let old = Reg(9);
    let neg = Reg(10);

    let mut b = KernelBuilder::new("kmeans", 11);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    b.ld(x, gtid, FEAT_OFF);
    b.mov(best_d, Operand::Imm(i32::MAX));
    b.mov(best_k, Operand::Imm(0));
    counted_loop(&mut b, k, tmp, Operand::Param(0), |b| {
        b.ld(c, k, CENT_OFF); // uniform
                              // d = |x - c| via max(x-c, c-x)
        b.alu(AluOp::Sub, d, x.into(), c.into());
        b.alu(AluOp::Sub, neg, c.into(), x.into());
        b.alu(AluOp::Max, d, d.into(), neg.into());
        // Branch-free argmin update (as real kmeans compiles to selects).
        b.alu(AluOp::SetLt, isless, d.into(), best_d.into());
        b.alu(AluOp::Mul, tmp, isless.into(), d.into());
        b.alu(AluOp::SetEq, neg, isless.into(), Operand::Imm(0));
        b.alu(AluOp::Mul, best_d, best_d.into(), neg.into());
        b.alu(AluOp::Add, best_d, best_d.into(), tmp.into());
        b.alu(AluOp::Mul, tmp, isless.into(), k.into());
        b.alu(AluOp::Mul, best_k, best_k.into(), neg.into());
        b.alu(AluOp::Add, best_k, best_k.into(), tmp.into());
    });
    b.st(gtid, ASSIGN_OFF, best_k);
    // if (membership changed) flag it — the divergent part.
    b.ld(old, gtid, MEMBER_OFF);
    b.alu(AluOp::SetNe, isless, old.into(), best_k.into());
    if_then(&mut b, isless, tmp, |b| {
        b.mov(neg, Operand::Imm(1));
        b.st(gtid, CHANGED_OFF, neg);
    });
    b.exit();
    b.build().expect("kmeans kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn assigns_nearest_centroid() {
        let w = build();
        let mut mem = w.fresh_memory();
        let feats: Vec<u32> = mem.words()[..N].to_vec();
        let cents: Vec<u32> = mem.words()[N..N + K].to_vec();
        GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        for (p, &feat) in feats.iter().enumerate() {
            let expected = (0..K)
                .min_by_key(|&k| (feat as i64 - cents[k] as i64).abs())
                .unwrap() as u32;
            let got = mem.word(ASSIGN_OFF as usize + p).unwrap();
            let d_exp = (feat as i64 - cents[expected as usize] as i64).abs();
            let d_got = (feat as i64 - cents[got as usize] as i64).abs();
            assert_eq!(
                d_got, d_exp,
                "point {p}: got centroid {got}, expected {expected}"
            );
        }
    }
}
