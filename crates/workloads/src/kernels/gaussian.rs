//! `gaussian` (Rodinia): Gaussian elimination row update.
//!
//! Reproduced properties: per-block uniform multipliers (the pivot row is
//! shared), thread-index addressing of the matrix row, and no divergence.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const COLS: usize = BLOCK * BLOCKS;
const ROWS: usize = 6;

const PIVOT_OFF: i32 = 0; // pivot row[COLS], 1..100
const MAT_OFF: i32 = COLS as i32; // matrix[ROWS * COLS], 0..1000
const MULT_OFF: i32 = MAT_OFF + (ROWS * COLS) as i32; // multipliers[ROWS], 1..8
const MEM_WORDS: usize = MULT_OFF as usize + ROWS;

/// Builds the gaussian workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    words[..COLS].copy_from_slice(&random_words(0x61, COLS, 1, 100));
    words[COLS..COLS + ROWS * COLS].copy_from_slice(&random_words(0x62, ROWS * COLS, 0, 1000));
    words[MULT_OFF as usize..].copy_from_slice(&random_words(0x63, ROWS, 1, 8));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![ROWS as u32, COLS as u32]);
    Workload::new(
        "gaussian",
        "Rodinia Gaussian elimination: uniform pivot multipliers, affine row addressing, fully convergent",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::None,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let row = Reg(1);
    let tmp = Reg(2);
    let addr = Reg(3);
    let m = Reg(4);
    let pivot = Reg(5);
    let val = Reg(6);
    let prod = Reg(7);

    let mut b = KernelBuilder::new("gaussian", 8);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    b.ld(pivot, gtid, PIVOT_OFF);
    counted_loop(&mut b, row, tmp, Operand::Param(0), |b| {
        // m = multipliers[row] (uniform); a[row][gtid] -= m * pivot[gtid]
        b.ld(m, row, MULT_OFF);
        b.alu(AluOp::Mul, addr, row.into(), Operand::Param(1));
        b.alu(AluOp::Add, addr, addr.into(), gtid.into());
        b.ld(val, addr, MAT_OFF);
        b.alu(AluOp::Mul, prod, m.into(), pivot.into());
        b.alu(AluOp::Sub, val, val.into(), prod.into());
        // Keep values in a plausible fixed-point band.
        b.alu(AluOp::Max, val, val.into(), Operand::Imm(0));
        b.st(addr, MAT_OFF, val);
    });
    b.exit();
    b.build().expect("gaussian kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn eliminates_rows_without_divergence() {
        let w = build();
        let mut mem = w.fresh_memory();
        let before: Vec<u32> =
            mem.words()[MAT_OFF as usize..MAT_OFF as usize + ROWS * COLS].to_vec();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        let after = &mem.words()[MAT_OFF as usize..MAT_OFF as usize + ROWS * COLS];
        assert_ne!(before.as_slice(), after, "matrix unchanged");
        assert_eq!(r.stats.divergent_instructions, 0);
    }
}
