//! `aes` (GPGPU-Sim suite): AES round transformations.
//!
//! Reproduced properties from the paper: **zero branch divergence**
//! (Fig. 12 marks AES's divergent bars "N/A") and poor value similarity —
//! S-box substitutions produce effectively random per-thread values, so
//! most register writes land in the "random" bin of Fig. 2.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS;
const ROUNDS: usize = 10;

const SBOX_OFF: i32 = 0; // sbox[256], random bytes
const KEYS_OFF: i32 = 256; // round keys[ROUNDS], random words
const STATE_OFF: i32 = 256 + ROUNDS as i32; // state[N], random words
const OUT_OFF: i32 = STATE_OFF + N as i32;
const MEM_WORDS: usize = OUT_OFF as usize + N;

/// Builds the aes workload.
pub fn build() -> Workload {
    let kernel = build_kernel();
    let mut words = vec![0u32; MEM_WORDS];
    words[..256].copy_from_slice(&random_words(0x11, 256, 0, 1 << 24));
    words[256..256 + ROUNDS].copy_from_slice(&random_words(0x12, ROUNDS, 0, u32::MAX));
    words[STATE_OFF as usize..STATE_OFF as usize + N].copy_from_slice(&random_words(
        0x13,
        N,
        0,
        u32::MAX,
    ));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![ROUNDS as u32]);
    Workload::new(
        "aes",
        "AES-style S-box rounds: random state words, table lookups, zero divergence, near-incompressible registers",
        kernel,
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::None,
    )
}

fn build_kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let state = Reg(1);
    let r = Reg(2);
    let tmp = Reg(3);
    let idx = Reg(4);
    let sub = Reg(5);
    let key = Reg(6);

    let mut b = KernelBuilder::new("aes", 7);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    b.ld(state, gtid, STATE_OFF);
    counted_loop(&mut b, r, tmp, Operand::Param(0), |b| {
        // idx = state & 0xFF; sub = sbox[idx]
        b.alu(AluOp::And, idx, state.into(), Operand::Imm(0xFF));
        b.ld(sub, idx, SBOX_OFF);
        // key = keys[r]; state = (state >> 8) ^ sub ^ key
        b.ld(key, r, KEYS_OFF);
        b.alu(AluOp::Shr, state, state.into(), Operand::Imm(8));
        b.alu(AluOp::Xor, state, state.into(), sub.into());
        b.alu(AluOp::Xor, state, state.into(), key.into());
        // Diffuse: state = state * 33 + idx (keeps full 32-bit entropy)
        b.alu(AluOp::Mul, state, state.into(), Operand::Imm(33));
        b.alu(AluOp::Add, state, state.into(), idx.into());
    });
    b.st(gtid, OUT_OFF, state);
    b.exit();
    b.build().expect("aes kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn never_diverges_and_barely_compresses() {
        let w = build();
        let mut mem = w.fresh_memory();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        assert_eq!(r.stats.divergent_instructions, 0);
        assert_eq!(r.stats.compression_ratio_div(), None, "no divergent writes");
        // Much of the state stream is random; the ratio should be far
        // below a similarity-heavy benchmark like lib.
        assert!(
            r.stats.compression_ratio_nondiv() < 2.0,
            "ratio {}",
            r.stats.compression_ratio_nondiv()
        );
        // Output actually changed.
        let out = &mem.words()[OUT_OFF as usize..OUT_OFF as usize + N];
        assert!(out.iter().any(|&v| v != 0));
    }
}
