//! `spmv` (Parboil): sparse matrix–vector multiply, CSR row-per-thread.
//!
//! Reproduced properties: per-row nonzero counts differ between lanes
//! (heavy intra-warp loop divergence) and gathered column indices are
//! random, giving the mixed compressibility the paper reports for spmv.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, per_thread_loop, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS; // rows == vector length
const MAX_NNZ: usize = 5;

const LEN_OFF: i32 = 0; // row nnz[N] in 0..MAX_NNZ
const PTR_OFF: i32 = N as i32; // row start[N]
const X_OFF: i32 = 2 * N as i32; // x[N] in 0..100
const Y_OFF: i32 = 3 * N as i32; // y[N]
const VAL_OFF: i32 = 4 * N as i32; // values[total], 0..50
                                   // col[total] lives right after values; its offset is computed at build
                                   // time and passed as param 2.

/// Builds the spmv workload.
pub fn build() -> Workload {
    let lens = random_words(0xC1, N, 0, (MAX_NNZ + 1) as u32);
    let total: u32 = lens.iter().sum();
    let mut ptrs = Vec::with_capacity(N);
    let mut run = 0u32;
    for &l in &lens {
        ptrs.push(run);
        run += l;
    }
    let vals = random_words(0xC2, total as usize, 0, 50);
    let cols = random_words(0xC3, total as usize, 0, N as u32);
    let col_off = VAL_OFF as u32 + total;

    let mut words = vec![0u32; (col_off + total) as usize];
    words[..N].copy_from_slice(&lens);
    words[N..2 * N].copy_from_slice(&ptrs);
    words[2 * N..3 * N].copy_from_slice(&random_words(0xC4, N, 0, 100));
    words[VAL_OFF as usize..VAL_OFF as usize + total as usize].copy_from_slice(&vals);
    words[col_off as usize..].copy_from_slice(&cols);

    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![0, 0, col_off]);
    Workload::new(
        "spmv",
        "Parboil SpMV (CSR, row per thread): ragged row lengths diverge warps; gathered columns are random",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::High,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let len = Reg(1);
    let ptr = Reg(2);
    let i = Reg(3);
    let tmp = Reg(4);
    let addr = Reg(5);
    let val = Reg(6);
    let col = Reg(7);
    let x = Reg(8);
    let acc = Reg(9);
    let coladdr = Reg(10);

    let mut b = KernelBuilder::new("spmv", 11);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    // Convergent preprocessing, as in Parboil's JDS-format decoding: the
    // real kernel spends a large convergent prefix computing permuted row
    // indices and pad bounds before the ragged gather loop.
    b.mov(acc, Operand::Imm(0));
    counted_loop(&mut b, i, tmp, Operand::Imm(16), |b| {
        b.alu(AluOp::Add, addr, gtid.into(), i.into());
        b.alu(AluOp::Mul, val, addr.into(), Operand::Imm(7));
        b.alu(AluOp::Xor, acc, acc.into(), val.into());
        b.alu(AluOp::And, acc, acc.into(), Operand::Imm(0x3FF));
    });
    b.ld(len, gtid, LEN_OFF);
    b.ld(ptr, gtid, PTR_OFF);
    b.mov(acc, Operand::Imm(0));
    per_thread_loop(&mut b, i, tmp, len, |b| {
        b.alu(AluOp::Add, addr, ptr.into(), i.into());
        b.ld(val, addr, VAL_OFF);
        // col array base is dynamic (param 2): coladdr = addr + col_off.
        b.alu(AluOp::Add, coladdr, addr.into(), Operand::Param(2));
        b.ld(col, coladdr, 0);
        b.ld(x, col, X_OFF);
        b.alu(AluOp::Mul, val, val.into(), x.into());
        b.alu(AluOp::Add, acc, acc.into(), val.into());
    });
    b.st(gtid, Y_OFF, acc);
    b.exit();
    b.build().expect("spmv kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn matches_reference_spmv() {
        let w = build();
        let mut mem = w.fresh_memory();
        let lens: Vec<u32> = mem.words()[..N].to_vec();
        let ptrs: Vec<u32> = mem.words()[N..2 * N].to_vec();
        let xs: Vec<u32> = mem.words()[2 * N..3 * N].to_vec();
        let total: u32 = lens.iter().sum();
        let vals: Vec<u32> =
            mem.words()[VAL_OFF as usize..VAL_OFF as usize + total as usize].to_vec();
        let col_off = w.launch().param(2) as usize;
        let cols: Vec<u32> = mem.words()[col_off..col_off + total as usize].to_vec();

        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        for row in 0..N {
            let expected: u32 = (0..lens[row])
                .map(|i| {
                    let e = (ptrs[row] + i) as usize;
                    vals[e] * xs[cols[e] as usize]
                })
                .sum();
            assert_eq!(
                mem.word(Y_OFF as usize + row).unwrap(),
                expected,
                "row {row}"
            );
        }
        assert!(
            r.stats.nondivergent_ratio() < 0.85,
            "ragged rows must diverge"
        );
    }
}
