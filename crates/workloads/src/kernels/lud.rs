//! `lud` (Rodinia): LU decomposition internal-block update.
//!
//! Reproduced properties: per-row division by a uniform pivot (SFU
//! traffic), strided affine addressing, no divergence.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const COLS: usize = BLOCK * BLOCKS;
const STEPS: usize = 6;

const MAT_OFF: i32 = 0; // a[STEPS * COLS] in 1..1000 (fixed point)
const PIV_OFF: i32 = (STEPS * COLS) as i32; // pivots[STEPS] in 2..9
const OUT_OFF: i32 = PIV_OFF + STEPS as i32;
const MEM_WORDS: usize = OUT_OFF as usize + COLS;

/// Builds the lud workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    words[..STEPS * COLS].copy_from_slice(&random_words(0x81, STEPS * COLS, 1, 1000));
    words[STEPS * COLS..STEPS * COLS + STEPS].copy_from_slice(&random_words(0x82, STEPS, 2, 9));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![STEPS as u32, COLS as u32]);
    Workload::new(
        "lud",
        "Rodinia LUD perimeter update: divide-by-pivot chains (SFU heavy), affine addressing, convergent",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::None,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let s = Reg(1);
    let tmp = Reg(2);
    let addr = Reg(3);
    let piv = Reg(4);
    let val = Reg(5);
    let acc = Reg(6);

    let mut b = KernelBuilder::new("lud", 7);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    b.mov(acc, Operand::Imm(0));
    counted_loop(&mut b, s, tmp, Operand::Param(0), |b| {
        b.ld(piv, s, PIV_OFF); // uniform pivot
        b.alu(AluOp::Mul, addr, s.into(), Operand::Param(1));
        b.alu(AluOp::Add, addr, addr.into(), gtid.into());
        b.ld(val, addr, MAT_OFF);
        // l = a / pivot; a' = a - l*pivot (the LU elimination shape).
        b.alu(AluOp::Div, val, val.into(), piv.into());
        b.st(addr, MAT_OFF, val);
        b.alu(AluOp::Add, acc, acc.into(), val.into());
    });
    b.st(gtid, OUT_OFF, acc);
    b.exit();
    b.build().expect("lud kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn divides_rows_by_their_pivots() {
        let w = build();
        let mut mem = w.fresh_memory();
        let a0: Vec<u32> = mem.words()[..STEPS * COLS].to_vec();
        let piv: Vec<u32> = mem.words()[STEPS * COLS..STEPS * COLS + STEPS].to_vec();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        for s in 0..STEPS {
            for c in 0..COLS {
                assert_eq!(mem.word(s * COLS + c).unwrap(), a0[s * COLS + c] / piv[s]);
            }
        }
        assert_eq!(r.stats.divergent_instructions, 0);
    }
}
