//! `mri-q` (Parboil): MRI reconstruction Q-matrix computation.
//!
//! Reproduced properties: a long convergent inner loop over sample
//! points, phase accumulation through a sine lookup table (fixed-point
//! stand-in for the trig of the CUDA kernel), mid-range accumulator
//! values — convergent with moderate similarity.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS; // voxels
const SAMPLES: usize = 16;
const TABLE: usize = 256;

const SIN_OFF: i32 = 0; // sine table[256]: 0..2000 fixed point
const KX_OFF: i32 = TABLE as i32; // sample frequencies[SAMPLES]: 0..64
const X_OFF: i32 = KX_OFF + SAMPLES as i32; // voxel coordinates[N]: 0..512
const QR_OFF: i32 = X_OFF + N as i32; // output real[N]
const MEM_WORDS: usize = QR_OFF as usize + N;

/// Builds the mri-q workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    // A discretised half-sine: smooth, narrow second differences.
    for (i, word) in words.iter_mut().enumerate().take(TABLE) {
        let x = i as f64 / TABLE as f64 * std::f64::consts::PI;
        *word = (x.sin() * 2000.0) as u32;
    }
    words[KX_OFF as usize..KX_OFF as usize + SAMPLES]
        .copy_from_slice(&random_words(0xE1, SAMPLES, 1, 64));
    words[X_OFF as usize..X_OFF as usize + N].copy_from_slice(&random_words(0xE2, N, 0, 512));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![SAMPLES as u32]);
    Workload::new(
        "mri-q",
        "Parboil MRI-Q: phase accumulation through a sine table over k-space samples; convergent, mid-range values",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::None,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let s = Reg(1);
    let tmp = Reg(2);
    let x = Reg(3);
    let kx = Reg(4);
    let phase = Reg(5);
    let idx = Reg(6);
    let sv = Reg(7);
    let qr = Reg(8);

    let mut b = KernelBuilder::new("mri_q", 9);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    b.ld(x, gtid, X_OFF);
    b.mov(qr, Operand::Imm(0));
    counted_loop(&mut b, s, tmp, Operand::Param(0), |b| {
        b.ld(kx, s, KX_OFF); // uniform sample frequency
                             // phase = kx * x; idx = phase mod TABLE; qr += sin[idx]
        b.alu(AluOp::Mul, phase, kx.into(), x.into());
        b.alu(
            AluOp::And,
            idx,
            phase.into(),
            Operand::Imm((TABLE - 1) as i32),
        );
        b.ld(sv, idx, SIN_OFF);
        b.alu(AluOp::Add, qr, qr.into(), sv.into());
    });
    b.st(gtid, QR_OFF, qr);
    b.exit();
    b.build().expect("mri-q kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn accumulates_table_lookups_convergently() {
        let w = build();
        let mut mem = w.fresh_memory();
        let sin: Vec<u32> = mem.words()[..TABLE].to_vec();
        let kxs: Vec<u32> = mem.words()[KX_OFF as usize..KX_OFF as usize + SAMPLES].to_vec();
        let xs: Vec<u32> = mem.words()[X_OFF as usize..X_OFF as usize + N].to_vec();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        for v in (0..N).step_by(97) {
            let expected: u32 = kxs
                .iter()
                .map(|&kx| sin[(kx.wrapping_mul(xs[v]) & (TABLE as u32 - 1)) as usize])
                .sum();
            assert_eq!(
                mem.word(QR_OFF as usize + v).unwrap(),
                expected,
                "voxel {v}"
            );
        }
        assert_eq!(r.stats.divergent_instructions, 0);
        // Accumulators stay mid-range: bounded by SAMPLES * 2000.
        assert!(mem.words()[QR_OFF as usize..]
            .iter()
            .all(|&q| q <= (SAMPLES as u32) * 2000));
    }
}
