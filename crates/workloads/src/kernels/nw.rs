//! `nw` (Rodinia): Needleman-Wunsch sequence alignment anti-diagonal.
//!
//! Reproduced properties: small similarity scores (BLOSUM-like 0..15),
//! max-reduction chains, and boundary-thread divergence on each
//! anti-diagonal step. The previous-diagonal row is a read-only buffer
//! (real NW double-buffers diagonals), so runs are timing-independent.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, if_then, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS;
const DIAGS: usize = 8;
const PENALTY: i32 = 10;

const REF_OFF: i32 = 0; // similarity scores[DIAGS * N] in 0..15
const PREV_OFF: i32 = (DIAGS * N) as i32; // previous diagonal[N] (read-only)
const SCORE_OFF: i32 = PREV_OFF + N as i32; // output score row[N]
const MEM_WORDS: usize = SCORE_OFF as usize + N;

/// Builds the nw workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    words[..DIAGS * N].copy_from_slice(&random_words(0x91, DIAGS * N, 0, 15));
    words[PREV_OFF as usize..PREV_OFF as usize + N].copy_from_slice(&random_words(0x92, N, 0, 30));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![DIAGS as u32, N as u32]);
    Workload::new(
        "nw",
        "Rodinia Needleman-Wunsch: max-of-three DP recurrence with small scores; boundary threads diverge per diagonal",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::Low,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let d = Reg(1);
    let tmp = Reg(2);
    let here = Reg(3);
    let left = Reg(4);
    let diag = Reg(5);
    let sim = Reg(6);
    let cand = Reg(7);
    let cond = Reg(8);
    let addr = Reg(9);

    let mut b = KernelBuilder::new("nw", 10);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    b.ld(here, gtid, PREV_OFF);
    counted_loop(&mut b, d, tmp, Operand::Param(0), |b| {
        // Interior guard: gtid > 0 (left neighbour exists).
        b.alu(AluOp::SetLt, cond, Operand::Imm(0), gtid.into());
        if_then(b, cond, tmp, |b| {
            b.ld(left, gtid, PREV_OFF - 1);
            b.ld(diag, gtid, PREV_OFF - 1); // previous-diag approximation
                                            // sim = ref[d*N + gtid]
            b.alu(AluOp::Mul, addr, d.into(), Operand::Param(1));
            b.alu(AluOp::Add, addr, addr.into(), gtid.into());
            b.ld(sim, addr, REF_OFF);
            // score = max(diag + sim, max(left, here) - penalty)
            b.alu(AluOp::Add, cand, diag.into(), sim.into());
            b.alu(AluOp::Max, here, here.into(), left.into());
            b.alu(AluOp::Sub, here, here.into(), Operand::Imm(PENALTY));
            b.alu(AluOp::Max, here, here.into(), cand.into());
            b.alu(AluOp::Max, here, here.into(), Operand::Imm(0));
        });
    });
    b.st(gtid, SCORE_OFF, here);
    b.exit();
    b.build().expect("nw kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn scores_grow_and_stay_small() {
        let w = build();
        let mut mem = w.fresh_memory();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        let scores = &mem.words()[SCORE_OFF as usize..];
        // DP scores stay in a narrow band: at most prev(30) + 30 + 15.
        assert!(scores.iter().all(|&s| s <= 30 + 30 + 15));
        assert!(
            r.stats.divergent_instructions > 0,
            "boundary guard must diverge"
        );
        assert!(r.stats.nondivergent_ratio() > 0.5);
    }
}
