//! `srad` (Rodinia): speckle-reducing anisotropic diffusion.
//!
//! Reproduced properties: 8-bit image values, derivative stencils, and a
//! data-dependent clamp branch (the diffusion coefficient saturates) that
//! causes moderate divergence.

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, if_then, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS;
const ITERS: usize = 6;

const IMG_OFF: i32 = 0; // input image[N] in 10..250 (read-only)
const C_OFF: i32 = N as i32; // coefficient[N]
const OUT_OFF: i32 = 2 * N as i32; // diffused image[N]
const MEM_WORDS: usize = 3 * N;

/// Builds the srad workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    words[..N].copy_from_slice(&random_words(0xA1, N, 10, 250));
    let launch = LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![ITERS as u32, N as u32]);
    Workload::new(
        "srad",
        "Rodinia SRAD diffusion: 8-bit image stencil with a saturating-coefficient branch (moderate divergence)",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::Low,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let it = Reg(1);
    let tmp = Reg(2);
    let j = Reg(3);
    let dn = Reg(4);
    let ds = Reg(5);
    let c = Reg(6);
    let cond = Reg(7);
    let tmp2 = Reg(8);

    let mut b = KernelBuilder::new("srad", 9);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    // j evolves in a register; the input image is read-only (real SRAD
    // double-buffers across iterations — same value behaviour, no race).
    b.ld(j, gtid, IMG_OFF);
    counted_loop(&mut b, it, tmp, Operand::Param(0), |b| {
        // Interior guard 0 < gtid < N-1.
        b.alu(AluOp::SetLt, cond, Operand::Imm(0), gtid.into());
        b.alu(AluOp::Sub, tmp2, Operand::Param(1), Operand::Imm(1));
        b.alu(AluOp::SetLt, tmp2, gtid.into(), tmp2.into());
        b.alu(AluOp::And, cond, cond.into(), tmp2.into());
        if_then(b, cond, tmp2, |b| {
            b.ld(dn, gtid, IMG_OFF - 1);
            b.ld(ds, gtid, IMG_OFF + 1);
            // c = (dn + ds - 2j) / 8 + 16 — a small signed coefficient.
            b.alu(AluOp::Add, c, dn.into(), ds.into());
            b.alu(AluOp::Sub, c, c.into(), j.into());
            b.alu(AluOp::Sub, c, c.into(), j.into());
            b.alu(AluOp::Div, c, c.into(), Operand::Imm(8));
            b.alu(AluOp::Add, c, c.into(), Operand::Imm(16));
            // Data-dependent saturation: if (c < 0) c = 0 — divergent only
            // for strongly negative laplacians.
            b.alu(AluOp::SetLt, tmp2, c.into(), Operand::Imm(0));
            if_then(b, tmp2, tmp, |b| {
                b.mov(c, Operand::Imm(0));
            });
            b.st(gtid, C_OFF, c);
            // j' = j + c/4, clamped to the image band.
            b.alu(AluOp::Div, tmp2, c.into(), Operand::Imm(4));
            b.alu(AluOp::Add, j, j.into(), tmp2.into());
            b.alu(AluOp::Min, j, j.into(), Operand::Imm(255));
            b.alu(AluOp::Max, j, j.into(), Operand::Imm(0));
        });
    });
    b.st(gtid, OUT_OFF, j);
    b.exit();
    b.build().expect("srad kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn diffuses_within_the_image_band() {
        let w = build();
        let mut mem = w.fresh_memory();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        assert!(mem.words()[OUT_OFF as usize..].iter().all(|&v| v <= 255));
        assert!(r.stats.divergent_instructions > 0);
        // Narrow values compress well.
        assert!(r.stats.compression_ratio_nondiv() > 1.3);
    }
}
