//! `histo` (Parboil): histogramming with saturation.
//!
//! Reproduced properties: data-dependent bin addresses (scattered
//! stores), a saturation branch that only some lanes take (moderate
//! divergence), small bin indices. The CUDA kernel's atomic increments
//! are modelled as idempotent marker stores so cross-warp timing cannot
//! change results (our simulator has no atomics).

use gpu_sim::{GlobalMemory, LaunchConfig};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

use crate::builders::{counted_loop, if_then, random_words, Special};
use crate::workload::{DivergenceProfile, Workload};

const BLOCK: usize = 64;
const BLOCKS: usize = 24;
const N: usize = BLOCK * BLOCKS; // input pixels
const BINS: usize = 64;
const ITEMS: usize = 4; // pixels per thread

const IN_OFF: i32 = 0; // input[N * ITEMS]: skewed 0..1024
const FLAG_OFF: i32 = (N * ITEMS) as i32; // bin-touched flags[BINS]
const SAT_OFF: i32 = FLAG_OFF + BINS as i32; // per-thread saturation count[N]
const MEM_WORDS: usize = SAT_OFF as usize + N;

/// Builds the histo workload.
pub fn build() -> Workload {
    let mut words = vec![0u32; MEM_WORDS];
    // Skewed distribution like the benchmark's silicon-wafer input: most
    // values small, a tail of large ones that overflows the bin range and
    // exercises the saturation branch.
    let raw = random_words(0xF1, N * ITEMS, 0, 4096);
    for (w, r) in words[..N * ITEMS].iter_mut().zip(&raw) {
        *w = if r % 5 == 0 { *r } else { r % 97 };
    }
    let launch =
        LaunchConfig::new(BLOCKS, BLOCK).with_params(vec![ITEMS as u32, (BINS - 1) as u32]);
    Workload::new(
        "histo",
        "Parboil histogram: scattered data-dependent bin stores with a saturation branch (moderate divergence)",
        kernel(),
        launch,
        GlobalMemory::from_words(words),
        DivergenceProfile::Low,
    )
}

fn kernel() -> simt_isa::Kernel {
    let gtid = Reg(0);
    let i = Reg(1);
    let tmp = Reg(2);
    let addr = Reg(3);
    let v = Reg(4);
    let bin = Reg(5);
    let cond = Reg(6);
    let one = Reg(7);
    let sat = Reg(8);

    let mut b = KernelBuilder::new("histo", 9);
    b.mov(gtid, Operand::Special(Special::GlobalTid));
    b.mov(sat, Operand::Imm(0));
    b.mov(one, Operand::Imm(1));
    counted_loop(&mut b, i, tmp, Operand::Param(0), |b| {
        // v = input[i*N + gtid]
        b.alu(AluOp::Mul, addr, i.into(), Operand::Imm(N as i32));
        b.alu(AluOp::Add, addr, addr.into(), gtid.into());
        b.ld(v, addr, IN_OFF);
        // bin = v / 16, saturated at BINS-1. The clamp is arithmetic
        // (min), as the compiler would emit; the data-dependent branch
        // only books the saturation statistic, so it touches a register
        // that is never rewritten convergently (one dummy MOV per warp,
        // not one per iteration).
        b.alu(AluOp::Shr, bin, v.into(), Operand::Imm(4));
        b.alu(AluOp::SetLt, cond, Operand::Param(1), bin.into());
        b.alu(AluOp::Min, bin, bin.into(), Operand::Param(1));
        if_then(b, cond, tmp, |b| {
            b.alu(AluOp::Add, sat, sat.into(), Operand::Imm(1));
        });
        // Mark the bin (idempotent store: races write the same value).
        b.st(bin, FLAG_OFF, one);
    });
    b.st(gtid, SAT_OFF, sat);
    b.exit();
    b.build().expect("histo kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, GpuSim};

    #[test]
    fn marks_reference_bins_and_counts_saturation() {
        let w = build();
        let mut mem = w.fresh_memory();
        let input: Vec<u32> = mem.words()[..N * ITEMS].to_vec();
        let r = GpuSim::new(GpuConfig::warped_compression())
            .run(w.kernel(), w.launch(), &mut mem)
            .unwrap();
        let mut expected_flags = vec![0u32; BINS];
        let mut expected_sat = vec![0u32; N];
        for t in 0..N {
            for i in 0..ITEMS {
                let bin = (input[i * N + t] >> 4) as usize;
                if bin > BINS - 1 {
                    expected_flags[BINS - 1] = 1;
                    expected_sat[t] += 1;
                } else {
                    expected_flags[bin] = 1;
                }
            }
        }
        assert_eq!(
            &mem.words()[FLAG_OFF as usize..FLAG_OFF as usize + BINS],
            &expected_flags[..]
        );
        assert_eq!(&mem.words()[SAT_OFF as usize..], &expected_sat[..]);
        assert!(
            r.stats.divergent_instructions > 0,
            "saturation branch must diverge"
        );
    }
}
