//! The workload container.

use gpu_sim::{GlobalMemory, LaunchConfig};
use serde::{Deserialize, Serialize};
use simt_isa::Kernel;

/// The divergence character a workload is designed to exhibit — used by
/// tests to verify the synthetic kernels reproduce their CUDA
/// counterparts' behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DivergenceProfile {
    /// No divergent instructions at all (the paper's `AES`).
    None,
    /// A small divergent fraction (boundary conditions etc.).
    Low,
    /// A large divergent fraction (`BFS`, `dwt2d`, `spmv`).
    High,
}

/// A ready-to-run benchmark: kernel + launch geometry + initial memory.
#[derive(Clone, Debug)]
pub struct Workload {
    name: &'static str,
    description: &'static str,
    kernel: Kernel,
    launch: LaunchConfig,
    memory: GlobalMemory,
    divergence: DivergenceProfile,
}

impl Workload {
    /// Assembles a workload (used by the kernel builder modules).
    pub fn new(
        name: &'static str,
        description: &'static str,
        kernel: Kernel,
        launch: LaunchConfig,
        memory: GlobalMemory,
        divergence: DivergenceProfile,
    ) -> Self {
        Workload {
            name,
            description,
            kernel,
            launch,
            memory,
            divergence,
        }
    }

    /// Benchmark name as it appears in the paper's figures.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description of what the kernel models.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The kernel program.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The launch geometry and parameters.
    pub fn launch(&self) -> &LaunchConfig {
        &self.launch
    }

    /// A fresh copy of the initial device memory (runs mutate memory, so
    /// every run should start from its own copy).
    pub fn fresh_memory(&self) -> GlobalMemory {
        self.memory.clone()
    }

    /// The divergence character this workload is designed to exhibit.
    pub fn divergence(&self) -> DivergenceProfile {
        self.divergence
    }
}
