//! Shared kernel-construction idioms and input generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simt_isa::{AluOp, KernelBuilder, Operand, Reg};

/// Deterministic RNG for workload inputs; `salt` separates streams per
/// workload so adding one never perturbs another.
pub fn rng(salt: u64) -> StdRng {
    StdRng::seed_from_u64(0x5EED_CAFE ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Random words uniform in `[lo, hi)` — dynamic range is the knob that
/// controls value similarity (§3).
pub fn random_words(salt: u64, n: usize, lo: u32, hi: u32) -> Vec<u32> {
    let mut r = rng(salt);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// Emits `if (pred != 0) { body }` with proper reconvergence.
///
/// `tmp` is clobbered with the inverted predicate.
pub fn if_then(b: &mut KernelBuilder, pred: Reg, tmp: Reg, body: impl FnOnce(&mut KernelBuilder)) {
    let merge = b.label();
    b.alu(AluOp::SetEq, tmp, pred.into(), Operand::Imm(0));
    b.bra(tmp, merge, merge);
    body(b);
    b.bind(merge);
}

/// Emits `if (pred != 0) { then } else { other }` with reconvergence.
pub fn if_then_else(
    b: &mut KernelBuilder,
    pred: Reg,
    then_body: impl FnOnce(&mut KernelBuilder),
    else_body: impl FnOnce(&mut KernelBuilder),
) {
    let then_l = b.label();
    let merge = b.label();
    b.bra(pred, then_l, merge);
    else_body(b);
    b.jmp(merge);
    b.bind(then_l);
    then_body(b);
    b.bind(merge);
}

/// Emits a counted loop `for (i = 0; i < trip; ++i) { body }`.
///
/// `i` is the induction register, `tmp` holds the continuation predicate,
/// and `trip` may be any operand (usually a `Param` or `Imm`). The body
/// must not clobber `i` or `tmp`.
pub fn counted_loop(
    b: &mut KernelBuilder,
    i: Reg,
    tmp: Reg,
    trip: Operand,
    body: impl FnOnce(&mut KernelBuilder),
) {
    b.mov(i, Operand::Imm(0));
    // Guard empty trips.
    let exit = b.label();
    b.alu(AluOp::SetLt, tmp, Operand::Imm(0), trip);
    let head = b.label();
    b.bra(tmp, head, exit);
    b.jmp(exit);
    b.bind(head);
    body(b);
    b.alu(AluOp::Add, i, i.into(), Operand::Imm(1));
    b.alu(AluOp::SetLt, tmp, i.into(), trip);
    b.bra(tmp, head, exit);
    b.bind(exit);
}

/// Emits a loop whose trip count differs per thread (`while (i < bound)`)
/// — the intra-warp divergence pattern of BFS/SpMV.
pub fn per_thread_loop(
    b: &mut KernelBuilder,
    i: Reg,
    tmp: Reg,
    bound: Reg,
    body: impl FnOnce(&mut KernelBuilder),
) {
    b.mov(i, Operand::Imm(0));
    let exit = b.label();
    b.alu(AluOp::SetLt, tmp, i.into(), bound.into());
    let head = b.label();
    b.bra(tmp, head, exit);
    b.jmp(exit);
    b.bind(head);
    body(b);
    b.alu(AluOp::Add, i, i.into(), Operand::Imm(1));
    b.alu(AluOp::SetLt, tmp, i.into(), bound.into());
    b.bra(tmp, head, exit);
    b.bind(exit);
}

/// Re-export to keep kernel modules' imports terse.
pub use simt_isa::Special;

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GlobalMemory, GpuConfig, GpuSim, LaunchConfig};
    use simt_isa::Kernel;

    fn run(kernel: &Kernel, threads: usize, mem_words: usize) -> GlobalMemory {
        let mut mem = GlobalMemory::zeroed(mem_words);
        GpuSim::new(GpuConfig::warped_compression())
            .run(kernel, &LaunchConfig::new(1, threads), &mut mem)
            .expect("kernel runs");
        mem
    }

    #[test]
    fn rng_is_deterministic_and_salted() {
        assert_eq!(random_words(1, 8, 0, 100), random_words(1, 8, 0, 100));
        assert_ne!(random_words(1, 8, 0, 100), random_words(2, 8, 0, 100));
        assert!(random_words(3, 100, 5, 10)
            .iter()
            .all(|&w| (5..10).contains(&w)));
    }

    #[test]
    fn if_then_executes_conditionally() {
        // r3 = (tid < 4) ? 9 : 0; mem[tid] = r3
        let mut b = KernelBuilder::new("ifthen", 4);
        b.mov(Reg(0), Operand::Special(Special::Tid));
        b.mov(Reg(3), Operand::Imm(0));
        b.alu(AluOp::SetLt, Reg(1), Reg(0).into(), Operand::Imm(4));
        if_then(&mut b, Reg(1), Reg(2), |b| {
            b.mov(Reg(3), Operand::Imm(9));
        });
        b.st(Reg(0), 0, Reg(3));
        b.exit();
        let mem = run(&b.build().unwrap(), 32, 32);
        for t in 0..32 {
            assert_eq!(mem.word(t).unwrap(), if t < 4 { 9 } else { 0 }, "tid {t}");
        }
    }

    #[test]
    fn if_then_else_covers_both_paths() {
        let mut b = KernelBuilder::new("ite", 4);
        b.mov(Reg(0), Operand::Special(Special::Tid));
        b.alu(AluOp::Rem, Reg(1), Reg(0).into(), Operand::Imm(2));
        if_then_else(
            &mut b,
            Reg(1),
            |b| {
                b.mov(Reg(3), Operand::Imm(111));
            },
            |b| {
                b.mov(Reg(3), Operand::Imm(222));
            },
        );
        b.st(Reg(0), 0, Reg(3));
        b.exit();
        let mem = run(&b.build().unwrap(), 32, 32);
        for t in 0..32 {
            assert_eq!(
                mem.word(t).unwrap(),
                if t % 2 == 1 { 111 } else { 222 },
                "tid {t}"
            );
        }
    }

    #[test]
    fn counted_loop_runs_trip_times() {
        // acc = sum(0..5 of i) = 10; mem[tid] = acc
        let mut b = KernelBuilder::new("loop", 5);
        b.mov(Reg(3), Operand::Imm(0));
        counted_loop(&mut b, Reg(0), Reg(1), Operand::Imm(5), |b| {
            b.alu(AluOp::Add, Reg(3), Reg(3).into(), Reg(0).into());
        });
        b.mov(Reg(4), Operand::Special(Special::Tid));
        b.st(Reg(4), 0, Reg(3));
        b.exit();
        let mem = run(&b.build().unwrap(), 32, 32);
        assert!(mem.words().iter().all(|&w| w == 10));
    }

    #[test]
    fn counted_loop_handles_zero_trip() {
        let mut b = KernelBuilder::new("zerotrip", 5);
        b.mov(Reg(3), Operand::Imm(42));
        counted_loop(&mut b, Reg(0), Reg(1), Operand::Imm(0), |b| {
            b.mov(Reg(3), Operand::Imm(0));
        });
        b.mov(Reg(4), Operand::Special(Special::Tid));
        b.st(Reg(4), 0, Reg(3));
        b.exit();
        let mem = run(&b.build().unwrap(), 32, 32);
        assert!(mem.words().iter().all(|&w| w == 42));
    }

    #[test]
    fn per_thread_loop_diverges_by_bound() {
        // bound = tid % 4; acc = bound iterations.
        let mut b = KernelBuilder::new("ptloop", 6);
        b.mov(Reg(0), Operand::Special(Special::Tid));
        b.alu(AluOp::Rem, Reg(4), Reg(0).into(), Operand::Imm(4));
        b.mov(Reg(3), Operand::Imm(0));
        per_thread_loop(&mut b, Reg(1), Reg(2), Reg(4), |b| {
            b.alu(AluOp::Add, Reg(3), Reg(3).into(), Operand::Imm(1));
        });
        b.st(Reg(0), 0, Reg(3));
        b.exit();
        let mem = run(&b.build().unwrap(), 32, 32);
        for t in 0..32 {
            assert_eq!(mem.word(t).unwrap(), (t % 4) as u32, "tid {t}");
        }
    }
}
