//! Named design points of the paper's evaluation.

use bdi::{ChoiceSet, FixedChoice};
use gpu_sim::{DivergencePolicy, GpuConfig, SchedulerPolicy};
use serde::{Deserialize, Serialize};

/// A named hardware design point evaluated somewhere in §6. Each maps to
/// a complete [`GpuConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignPoint {
    /// The uncompressed baseline GPU (no compressor hardware, no gating).
    Baseline,
    /// Full warped-compression: dynamic ⟨4,0⟩/⟨4,1⟩/⟨4,2⟩, dummy-MOV
    /// divergence handling, bank power gating (the paper's proposal).
    WarpedCompression,
    /// §6.6 ablation: only one fixed compression choice.
    Only(FixedChoice),
    /// §5.2 alternative: decompress-merge-recompress on divergent writes
    /// instead of dummy MOVs.
    DecompressMergeRecompress,
    /// §6.5: warped-compression under the Loose Round-Robin scheduler.
    WarpedCompressionLrr,
    /// §6.4 baseline comparison point: baseline under LRR.
    BaselineLrr,
    /// Leakage-policy ablation: warped-compression with *drowsy* banks
    /// (the prior-work alternative to §5.3's power gating — 1-cycle
    /// wake-up but only partial leakage savings).
    WarpedCompressionDrowsy,
    /// §6.8 sweeps: warped-compression with explicit compression /
    /// decompression latencies.
    Latency {
        /// Compression latency in cycles (paper default 2; Fig. 20
        /// sweeps 2/4/8).
        compression: u64,
        /// Decompression latency in cycles (paper default 1; Fig. 21
        /// sweeps 2/4/8).
        decompression: u64,
    },
}

impl DesignPoint {
    /// Materialises the design point as a simulator configuration.
    pub fn config(self) -> GpuConfig {
        match self {
            DesignPoint::Baseline => GpuConfig::baseline(),
            DesignPoint::WarpedCompression => GpuConfig::warped_compression(),
            DesignPoint::Only(choice) => {
                let mut cfg = GpuConfig::warped_compression();
                cfg.compression.choices = ChoiceSet::only(choice);
                cfg
            }
            DesignPoint::DecompressMergeRecompress => {
                let mut cfg = GpuConfig::warped_compression();
                cfg.compression.divergence = DivergencePolicy::DecompressMergeRecompress;
                cfg
            }
            DesignPoint::WarpedCompressionLrr => {
                let mut cfg = GpuConfig::warped_compression();
                cfg.scheduler = SchedulerPolicy::Lrr;
                cfg
            }
            DesignPoint::BaselineLrr => {
                let mut cfg = GpuConfig::baseline();
                cfg.scheduler = SchedulerPolicy::Lrr;
                cfg
            }
            DesignPoint::WarpedCompressionDrowsy => {
                let mut cfg = GpuConfig::warped_compression();
                cfg.regfile.gating = gpu_regfile::GatingMode::Drowsy;
                cfg
            }
            DesignPoint::Latency {
                compression,
                decompression,
            } => {
                let mut cfg = GpuConfig::warped_compression();
                cfg.compression.compression_latency = compression;
                cfg.compression.decompression_latency = decompression;
                cfg
            }
        }
    }

    /// Short label for reports and figure legends.
    pub fn label(self) -> String {
        match self {
            DesignPoint::Baseline => "baseline".into(),
            DesignPoint::WarpedCompression => "warped-compression".into(),
            DesignPoint::Only(c) => format!("only{c}"),
            DesignPoint::DecompressMergeRecompress => "decompress-merge-recompress".into(),
            DesignPoint::WarpedCompressionLrr => "warped-compression-lrr".into(),
            DesignPoint::BaselineLrr => "baseline-lrr".into(),
            DesignPoint::WarpedCompressionDrowsy => "warped-compression-drowsy".into(),
            DesignPoint::Latency {
                compression,
                decompression,
            } => {
                format!("latency-c{compression}-d{decompression}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_disables_everything() {
        let cfg = DesignPoint::Baseline.config();
        assert!(!cfg.compression.is_enabled());
        assert!(!cfg.regfile.gating.is_enabled());
    }

    #[test]
    fn only_choice_restricts_the_set() {
        let cfg = DesignPoint::Only(FixedChoice::Delta1).config();
        assert_eq!(cfg.compression.choices.choices(), &[FixedChoice::Delta1]);
    }

    #[test]
    fn dmr_changes_divergence_policy_only() {
        let cfg = DesignPoint::DecompressMergeRecompress.config();
        assert_eq!(
            cfg.compression.divergence,
            DivergencePolicy::DecompressMergeRecompress
        );
        assert!(cfg.compression.is_enabled());
    }

    #[test]
    fn lrr_points_change_scheduler() {
        assert_eq!(
            DesignPoint::WarpedCompressionLrr.config().scheduler,
            SchedulerPolicy::Lrr
        );
        assert_eq!(
            DesignPoint::BaselineLrr.config().scheduler,
            SchedulerPolicy::Lrr
        );
        assert!(!DesignPoint::BaselineLrr.config().compression.is_enabled());
    }

    #[test]
    fn latency_point_sets_both_knobs() {
        let cfg = DesignPoint::Latency {
            compression: 8,
            decompression: 4,
        }
        .config();
        assert_eq!(cfg.compression.compression_latency, 8);
        assert_eq!(cfg.compression.decompression_latency, 4);
    }

    #[test]
    fn labels_are_unique() {
        let points = [
            DesignPoint::Baseline,
            DesignPoint::WarpedCompression,
            DesignPoint::Only(FixedChoice::Delta0),
            DesignPoint::Only(FixedChoice::Delta1),
            DesignPoint::Only(FixedChoice::Delta2),
            DesignPoint::DecompressMergeRecompress,
            DesignPoint::WarpedCompressionLrr,
            DesignPoint::BaselineLrr,
            DesignPoint::WarpedCompressionDrowsy,
            DesignPoint::Latency {
                compression: 4,
                decompression: 1,
            },
        ];
        let mut labels: Vec<String> = points.iter().map(|p| p.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), points.len());
    }
}
