//! The experiment driver: run workloads under design points, collect
//! everything the paper's figures need.

use gpu_power::{ActivityCounts, EnergyModel, EnergyParams, EnergyReport};
use gpu_sim::{GpuConfig, GpuSim, SimError, SimStats};
use gpu_workloads::Workload;
use rayon::prelude::*;
use serde::Serialize;

use crate::explorer::ChoiceBreakdown;
use crate::similarity::SimilarityHistogram;

/// Everything one (workload, design point) run produces.
#[derive(Clone, Debug, Serialize)]
pub struct RunOutput {
    /// Benchmark name.
    pub name: String,
    /// Full simulator statistics (cycles, divergence, compression ratios,
    /// bank activity).
    pub stats: SimStats,
    /// Fig. 2 similarity histogram of this run's register writes.
    pub similarity: SimilarityHistogram,
    /// Fig. 5 full-BDI selection breakdown of this run's writes.
    pub breakdown: ChoiceBreakdown,
}

/// Runs one workload under a configuration, observing every register
/// write for the similarity and explorer characterisations.
///
/// # Errors
///
/// Propagates any [`SimError`] — workloads in this repository are
/// validated to run cleanly, so an error indicates a configuration
/// problem.
pub fn run_workload(cfg: &GpuConfig, workload: &Workload) -> Result<RunOutput, SimError> {
    let mut memory = workload.fresh_memory();
    let mut similarity = SimilarityHistogram::new();
    let mut breakdown = ChoiceBreakdown::new();
    let result = GpuSim::new(cfg.clone()).run_observed(
        workload.kernel(),
        workload.launch(),
        &mut memory,
        &mut |event| {
            similarity.record(event);
            breakdown.record(event);
        },
    )?;
    Ok(RunOutput {
        name: workload.name().to_string(),
        stats: result.stats,
        similarity,
        breakdown,
    })
}

/// Runs the whole suite under one configuration, simulating workloads in
/// parallel.
///
/// Each workload's simulation is independent (own memory image, own
/// observers), so they fan out across threads; results come back in
/// workload order regardless of completion order, and each simulation is
/// internally deterministic, so the output is identical to a serial run.
/// Set `RAYON_NUM_THREADS=1` to force serial execution (e.g. for
/// reproducible wall-clock timing).
///
/// # Errors
///
/// Fails on the earliest workload (in suite order) that errors.
pub fn run_suite(cfg: &GpuConfig, workloads: &[Workload]) -> Result<Vec<RunOutput>, SimError> {
    workloads.par_iter().map(|w| run_workload(cfg, w)).collect()
}

/// Prices a finished run under the given energy parameters (§6.1).
///
/// Separating pricing from simulation lets the Fig. 17/18/19 sensitivity
/// sweeps reuse one simulation per design point: activity counts do not
/// change when only energy constants change.
pub fn energy_of(stats: &SimStats, params: &EnergyParams) -> EnergyReport {
    let activity = ActivityCounts::from_regfile_with_mode(
        &stats.regfile,
        stats.compressor_activations,
        stats.decompressor_activations,
        stats.gating.into(),
    );
    EnergyModel::new(*params).evaluate(&activity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignPoint;

    fn pathfinder() -> Workload {
        gpu_workloads::by_name("pathfinder").expect("pathfinder exists")
    }

    #[test]
    fn run_collects_similarity_and_breakdown() {
        let out = run_workload(&DesignPoint::WarpedCompression.config(), &pathfinder()).unwrap();
        assert_eq!(out.name, "pathfinder");
        assert!(out.similarity.total(false) > 0);
        assert_eq!(
            out.similarity.total(false) + out.similarity.total(true),
            out.breakdown.total()
        );
        assert!(out.stats.cycles > 0);
    }

    #[test]
    fn warped_compression_saves_energy_on_pathfinder() {
        let w = pathfinder();
        let base = run_workload(&DesignPoint::Baseline.config(), &w).unwrap();
        let wc = run_workload(&DesignPoint::WarpedCompression.config(), &w).unwrap();
        let p = EnergyParams::paper_table3();
        let saving = energy_of(&wc.stats, &p).savings_vs(&energy_of(&base.stats, &p));
        assert!(saving > 0.05, "saving was {saving}");
    }

    #[test]
    fn sensitivity_repricing_changes_energy_not_stats() {
        let wc = run_workload(&DesignPoint::WarpedCompression.config(), &pathfinder()).unwrap();
        let base_params = EnergyParams::paper_table3();
        let scaled = base_params.with_comp_decomp_scale(2.5);
        let e1 = energy_of(&wc.stats, &base_params);
        let e2 = energy_of(&wc.stats, &scaled);
        assert!(e2.compression_pj > e1.compression_pj);
        assert_eq!(e1.dynamic_pj, e2.dynamic_pj);
    }

    #[test]
    fn run_suite_covers_all_workloads() {
        // Two tiny workloads to keep the test quick.
        let workloads: Vec<Workload> = ["lib", "aes"]
            .iter()
            .map(|n| gpu_workloads::by_name(n).unwrap())
            .collect();
        let outs = run_suite(&DesignPoint::WarpedCompression.config(), &workloads).unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].name, "lib");
        assert_eq!(outs[1].name, "aes");
    }
}
