//! **Warped-Compression** — the paper's contribution, assembled.
//!
//! This is the top-level crate of the reproduction of *Warped-Compression:
//! Enabling Power Efficient GPUs through Register Compression* (ISCA
//! 2015). The substrates live in their own crates — [`bdi`] (the
//! compression algorithm), [`gpu_regfile`] (the banked register file with
//! power gating), [`gpu_sim`] (the cycle-level SIMT core) and
//! [`gpu_power`] (the Table 3 energy model). This crate adds the pieces
//! that are *about the paper itself*:
//!
//! * [`similarity`] — the register-value similarity characterisation of
//!   §3 (Fig. 2's zero / 128 / 32K / random bins),
//! * [`explorer`] — the full-BDI ⟨base, delta⟩ breakdown of Fig. 5,
//! * [`design`] — named design points ([`DesignPoint`]): baseline,
//!   warped-compression, single-choice ablations (§6.6), the
//!   decompress-merge-recompress divergence alternative (§5.2), and
//!   latency variants (§6.8),
//! * [`experiment`] — the driver that runs a workload under a design
//!   point and returns everything the figures need, plus [`energy_of`]
//!   to price a finished run under any [`gpu_power::EnergyParams`]
//!   (the Fig. 17–19 sensitivity sweeps re-price stored runs instead of
//!   re-simulating).
//!
//! # Example
//!
//! ```
//! use warped_compression::{energy_of, run_workload, DesignPoint};
//! use gpu_power::EnergyParams;
//!
//! let pf = gpu_workloads::by_name("pathfinder").unwrap();
//! let base = run_workload(&DesignPoint::Baseline.config(), &pf)?;
//! let wc = run_workload(&DesignPoint::WarpedCompression.config(), &pf)?;
//! let params = EnergyParams::paper_table3();
//! let saving = energy_of(&wc.stats, &params).savings_vs(&energy_of(&base.stats, &params));
//! assert!(saving > 0.0, "warped-compression must save register-file energy");
//! # Ok::<(), gpu_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design;
pub mod experiment;
pub mod explorer;
#[cfg(feature = "faults")]
pub mod fault_campaign;
#[cfg(feature = "fuzz")]
pub mod fuzz;
pub mod mem;
pub mod perfbound;
pub mod predict;
pub mod resilient;
pub mod schedule;
pub mod similarity;
pub mod trace;

pub use design::DesignPoint;
pub use experiment::{energy_of, run_suite, run_workload, RunOutput};
pub use explorer::ChoiceBreakdown;
#[cfg(feature = "faults")]
pub use fault_campaign::{
    kernel_seed, run_fault_campaign, run_kernel_faults, KernelFaultReport, DEFAULT_FAULT_SEED,
};
#[cfg(feature = "fuzz")]
pub use fuzz::{
    check_case, mutation_smoke, render_reproducer, run_case, shrink_case, CaseReport, CaseStats,
    Finding, FindingCategory, FindingReport, FuzzCase, FuzzConfig, Mutation, SmokeOutcome,
    DEFAULT_CYCLE_BUDGET,
};
pub use mem::{mem_suite, mem_workload, MemReport, ScheduleCheck, SiteCheck, TracedConflict};
pub use perfbound::{perf_machine, perf_suite, perf_workload, ConflictCheck, PerfReport};
pub use predict::{
    predict_suite, predict_workload, PredictError, PredictReport, SiteOutcome, SiteValidation,
};
pub use resilient::{
    catch_panic, run_many_resilient, run_suite_resilient, PanicCapture, RunPolicy, RunRecord,
    RunStatus,
};
pub use schedule::{
    schedule_slack, schedule_suite, schedule_workload, ScheduleMode, ScheduleReport,
};
pub use similarity::{SimilarityBin, SimilarityHistogram};
pub use trace::WriteTrace;
