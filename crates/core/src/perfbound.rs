//! Static-vs-measured performance bounds (`wcsim perf`).
//!
//! The perfbound analysis in [`simt_analysis::perfbound`] derives, per
//! kernel and launch, floors the simulator can never beat: a cycle
//! lower bound, minimum bank-access and compression-unit activation
//! counts, a dynamic-energy floor, and per-PC guaranteed bank-conflict
//! stall counts. This module runs the same kernel on the cycle-level
//! simulator under the same design point and joins the two views:
//!
//! * globally — static cycles ≤ measured cycles, static bank accesses
//!   ≤ measured accesses, static energy ≤ measured energy (via
//!   [`PerfComparison`]),
//! * per conflict site — the statically guaranteed operand-fetch stall
//!   count at each pc against the simulator's per-cause stall
//!   attribution (`bank_conflict + decompressor` at that pc).
//!
//! Any floor exceeding its measurement is an unsound model of the
//! pipeline and is surfaced as a hard error by the CLI.

use gpu_power::{ActivityCounts, EnergyModel, EnergyParams, PerfComparison};
use gpu_sim::{GpuConfig, GpuSim, SimError};
use gpu_workloads::Workload;
use rayon::prelude::*;
use serde::Serialize;
use simt_analysis::{bound_kernel, PerfLaunch, PerfMachine, PerfPrediction};

use crate::design::DesignPoint;

/// Derives the static machine model from a live simulator
/// configuration, so the analysis and the run can never disagree on
/// latencies, port counts or the divergence policy.
pub fn perf_machine(cfg: &GpuConfig) -> PerfMachine {
    PerfMachine {
        num_schedulers: cfg.num_schedulers,
        alu_latency: cfg.alu_latency,
        sfu_latency: cfg.sfu_latency,
        mem_latency: cfg.mem_latency,
        choices: cfg.compression.choices.clone(),
        compression_latency: cfg.compression.compression_latency,
        decompression_latency: cfg.compression.decompression_latency,
        num_compressors: cfg.compression.num_compressors,
        uncompressed_divergent_writes: cfg.compression.divergence
            == gpu_sim::DivergencePolicy::UncompressedWrites,
    }
}

/// One guaranteed-conflict site's static stall floor joined with the
/// simulator's per-PC operand-fetch stall attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct ConflictCheck {
    /// Pc of the conflicting instruction.
    pub pc: usize,
    /// Distinct register sources the instruction fetches.
    pub sources: usize,
    /// Statically guaranteed operand-fetch stalls at this pc.
    pub static_min_stalls: u64,
    /// Stalls the run attributed to this pc (bank conflicts plus
    /// decompressor-port waits — both are operand-fetch retries).
    pub measured_stalls: u64,
}

impl ConflictCheck {
    /// Whether the measurement honoured the floor.
    pub fn is_sound(&self) -> bool {
        self.static_min_stalls <= self.measured_stalls
    }
}

/// A full static-vs-measured performance report for one kernel under
/// one design point.
#[derive(Clone, Debug, Serialize)]
pub struct PerfReport {
    /// Benchmark name.
    pub kernel: String,
    /// Design-point label the run used.
    pub design: String,
    /// The static performance floor.
    pub prediction: PerfPrediction,
    /// Global floors vs. the run's counters (cycles, accesses, energy).
    pub comparison: PerfComparison,
    /// Per-conflict-site stall floors vs. the run's attribution.
    pub conflict_checks: Vec<ConflictCheck>,
    /// Program instructions the run issued (excludes injected MOVs).
    pub measured_instructions: u64,
}

impl PerfReport {
    /// Whether every static floor stayed at or below its measurement —
    /// the invariant `wcsim perf` gates CI on.
    pub fn is_sound(&self) -> bool {
        self.comparison.measured_within_static_bound()
            && self.conflict_checks.iter().all(ConflictCheck::is_sound)
    }

    /// Fraction of the measured runtime the static bound explains.
    pub fn cycle_tightness(&self) -> f64 {
        self.comparison.cycle_tightness()
    }

    /// Conflict sites whose floor the run violated — must be empty.
    pub fn unsound_sites(&self) -> Vec<&ConflictCheck> {
        self.conflict_checks
            .iter()
            .filter(|c| !c.is_sound())
            .collect()
    }
}

/// Bounds one workload statically and validates the floors against a
/// simulated run under `design`.
///
/// # Errors
///
/// Propagates any [`SimError`] from the validation run.
pub fn perf_workload(workload: &Workload, design: DesignPoint) -> Result<PerfReport, SimError> {
    let cfg = design.config();
    let machine = perf_machine(&cfg);
    let launch = workload.launch();
    let perf_launch = PerfLaunch {
        blocks: launch.blocks(),
        threads_per_block: launch.threads_per_block(),
        params: launch.params().to_vec(),
        initial_mem: None,
    };
    let prediction = bound_kernel(workload.kernel(), &perf_launch, &machine);

    let mut memory = workload.fresh_memory();
    let result = GpuSim::new(cfg).run(workload.kernel(), launch, &mut memory)?;
    let stats = result.stats;
    let activity = ActivityCounts::from_regfile_with_mode(
        &stats.regfile,
        stats.compressor_activations,
        stats.decompressor_activations,
        stats.gating.into(),
    );
    let model = EnergyModel::new(EnergyParams::paper_table3());
    let comparison = PerfComparison::new(&prediction, &model, &activity);
    let conflict_checks = prediction
        .conflicts
        .iter()
        .map(|c| ConflictCheck {
            pc: c.pc,
            sources: c.sources,
            static_min_stalls: c.min_stalls,
            measured_stalls: stats.stalls.at(c.pc).operand_fetch(),
        })
        .collect();

    Ok(PerfReport {
        kernel: workload.name().to_string(),
        design: design.label(),
        prediction,
        comparison,
        conflict_checks,
        measured_instructions: stats.instructions,
    })
}

/// Bounds and validates every workload under the warped-compression
/// design point, in parallel, in suite order.
///
/// # Errors
///
/// Fails on the earliest workload (in suite order) that errors.
pub fn perf_suite(workloads: &[Workload]) -> Result<Vec<PerfReport>, SimError> {
    workloads
        .par_iter()
        .map(|w| perf_workload(w, DesignPoint::WarpedCompression))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lib_bound_is_sound_and_tight() {
        let w = gpu_workloads::by_name("lib").unwrap();
        let r = perf_workload(&w, DesignPoint::WarpedCompression).unwrap();
        assert!(r.is_sound(), "violations: {:?}", r.unsound_sites());
        assert!(
            r.cycle_tightness() >= 0.5,
            "cycle bound explains only {:.0}% of the measured runtime",
            r.cycle_tightness() * 100.0
        );
        assert!(r.prediction.min_instructions <= r.measured_instructions);
    }

    #[test]
    fn baseline_design_is_also_bounded() {
        let w = gpu_workloads::by_name("lib").unwrap();
        let r = perf_workload(&w, DesignPoint::Baseline).unwrap();
        assert!(r.is_sound(), "violations: {:?}", r.unsound_sites());
        assert_eq!(r.prediction.min_compressor_activations, 0);
    }

    #[test]
    fn divergent_kernel_stays_sound() {
        let w = gpu_workloads::by_name("bfs").unwrap();
        let r = perf_workload(&w, DesignPoint::WarpedCompression).unwrap();
        assert!(r.is_sound(), "violations: {:?}", r.unsound_sites());
    }

    #[test]
    fn conflict_sites_are_checked_against_stall_attribution() {
        let w = gpu_workloads::by_name("lib").unwrap();
        let r = perf_workload(&w, DesignPoint::WarpedCompression).unwrap();
        assert!(
            !r.conflict_checks.is_empty(),
            "lib has two-source instructions"
        );
        assert!(r.conflict_checks.iter().any(|c| c.static_min_stalls > 0));
    }
}
