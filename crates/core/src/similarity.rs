//! Register-value similarity characterisation (§3, Fig. 2).
//!
//! Every register write is classified by the largest arithmetic distance
//! between *successive* thread registers:
//!
//! * **zero** — all 32 values identical,
//! * **128** — every successive difference within |128|,
//! * **32K** — within |2¹⁵|,
//! * **random** — anything larger.

use bdi::WarpRegister;
use gpu_sim::WriteEvent;
use serde::{Deserialize, Serialize};

/// The four Fig. 2 bins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimilarityBin {
    /// Successive thread registers are identical.
    Zero,
    /// Successive differences within |128|.
    D128,
    /// Successive differences within |2^15|.
    D32k,
    /// Larger differences: effectively incompressible.
    Random,
}

impl SimilarityBin {
    /// Classifies one warp register value.
    ///
    /// # Example
    ///
    /// ```
    /// use bdi::WarpRegister;
    /// use warped_compression::SimilarityBin;
    ///
    /// assert_eq!(SimilarityBin::of(&WarpRegister::splat(9)), SimilarityBin::Zero);
    /// let tid = WarpRegister::from_fn(|t| t as u32);
    /// assert_eq!(SimilarityBin::of(&tid), SimilarityBin::D128);
    /// ```
    pub fn of(value: &WarpRegister) -> Self {
        match value.max_successive_distance().unwrap_or(0) {
            0 => SimilarityBin::Zero,
            d if d <= 128 => SimilarityBin::D128,
            d if d <= 1 << 15 => SimilarityBin::D32k,
            _ => SimilarityBin::Random,
        }
    }

    /// All bins in Fig. 2 order.
    pub const ALL: [SimilarityBin; 4] = [
        SimilarityBin::Zero,
        SimilarityBin::D128,
        SimilarityBin::D32k,
        SimilarityBin::Random,
    ];
}

/// Counts of register writes per bin, split by divergence phase — the
/// data behind one benchmark's pair of Fig. 2 bars.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimilarityHistogram {
    nondiv: [u64; 4],
    div: [u64; 4],
}

impl SimilarityHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies and records one register write. Synthetic (injected
    /// MOV) writes are ignored: they rewrite existing values and would
    /// double-count.
    pub fn record(&mut self, event: &WriteEvent) {
        if event.synthetic {
            return;
        }
        let bin = SimilarityBin::of(&event.value) as usize;
        if event.divergent {
            self.div[bin] += 1;
        } else {
            self.nondiv[bin] += 1;
        }
    }

    /// Raw count for a bin in the given phase.
    pub fn count(&self, bin: SimilarityBin, divergent: bool) -> u64 {
        if divergent {
            self.div[bin as usize]
        } else {
            self.nondiv[bin as usize]
        }
    }

    /// Total writes in a phase.
    pub fn total(&self, divergent: bool) -> u64 {
        if divergent {
            self.div.iter().sum()
        } else {
            self.nondiv.iter().sum()
        }
    }

    /// Fraction of a phase's writes in `bin` (0 when the phase is empty).
    pub fn fraction(&self, bin: SimilarityBin, divergent: bool) -> f64 {
        let total = self.total(divergent);
        if total == 0 {
            return 0.0;
        }
        self.count(bin, divergent) as f64 / total as f64
    }

    /// Fraction of non-divergent writes that are *not* random — the
    /// paper's headline "79 % of registers are categorised as not random".
    pub fn nonrandom_fraction(&self, divergent: bool) -> f64 {
        let total = self.total(divergent);
        if total == 0 {
            return 0.0;
        }
        1.0 - self.fraction(SimilarityBin::Random, divergent)
    }

    /// Merges another histogram into this one (suite-wide averaging).
    pub fn merge(&mut self, other: &SimilarityHistogram) {
        for i in 0..4 {
            self.nondiv[i] += other.nondiv[i];
            self.div[i] += other.div[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(value: WarpRegister, divergent: bool) -> WriteEvent {
        WriteEvent {
            pc: 0,
            value,
            class: bdi::CompressionClass::Uncompressed,
            divergent,
            synthetic: false,
        }
    }

    #[test]
    fn bin_boundaries_match_the_paper() {
        assert_eq!(
            SimilarityBin::of(&WarpRegister::splat(7)),
            SimilarityBin::Zero
        );
        let d128 = WarpRegister::from_fn(|t| (t as u32) * 128);
        assert_eq!(SimilarityBin::of(&d128), SimilarityBin::D128);
        let d129 = WarpRegister::from_fn(|t| (t as u32) * 129);
        assert_eq!(SimilarityBin::of(&d129), SimilarityBin::D32k);
        let d32k = WarpRegister::from_fn(|t| (t as u32) * (1 << 15));
        assert_eq!(SimilarityBin::of(&d32k), SimilarityBin::D32k);
        let big = WarpRegister::from_fn(|t| (t as u32) * ((1 << 15) + 1));
        assert_eq!(SimilarityBin::of(&big), SimilarityBin::Random);
    }

    #[test]
    fn negative_distances_use_magnitude() {
        let falling = WarpRegister::from_fn(|t| 10_000u32.wrapping_sub(100 * t as u32));
        assert_eq!(SimilarityBin::of(&falling), SimilarityBin::D128);
    }

    #[test]
    fn histogram_buckets_by_phase() {
        let mut h = SimilarityHistogram::new();
        h.record(&event(WarpRegister::splat(1), false));
        h.record(&event(WarpRegister::splat(2), false));
        h.record(&event(WarpRegister::from_fn(|t| t as u32 * 70_000), true));
        assert_eq!(h.count(SimilarityBin::Zero, false), 2);
        assert_eq!(h.count(SimilarityBin::Random, true), 1);
        assert_eq!(h.total(false), 2);
        assert_eq!(h.total(true), 1);
        assert!((h.fraction(SimilarityBin::Zero, false) - 1.0).abs() < 1e-12);
        assert_eq!(h.nonrandom_fraction(true), 0.0);
    }

    #[test]
    fn synthetic_writes_are_ignored() {
        let mut h = SimilarityHistogram::new();
        h.record(&WriteEvent {
            synthetic: true,
            ..event(WarpRegister::splat(0), false)
        });
        assert_eq!(h.total(false), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = SimilarityHistogram::new();
        let mut b = SimilarityHistogram::new();
        a.record(&event(WarpRegister::splat(1), false));
        b.record(&event(WarpRegister::splat(1), false));
        b.record(&event(WarpRegister::splat(1), true));
        a.merge(&b);
        assert_eq!(a.total(false), 2);
        assert_eq!(a.total(true), 1);
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = SimilarityHistogram::new();
        assert_eq!(h.fraction(SimilarityBin::Zero, false), 0.0);
        assert_eq!(h.nonrandom_fraction(false), 0.0);
    }
}
