//! Panic-isolated, watchdogged, retrying run harness.
//!
//! [`run_suite`](crate::run_suite) fails the whole suite on the first
//! workload that errors and aborts the process if one panics — fine for
//! validated workloads, fatal for long fault-injection campaigns where a
//! single corrupted run must not cost the other eighteen kernels their
//! results. This module wraps each run in:
//!
//! * **panic isolation** — `catch_unwind` around every run, with the
//!   panic message and a captured backtrace recorded in the result
//!   instead of tearing down the campaign (the global panic hook is
//!   chained, so panics outside the harness still print normally),
//! * **a cycle-budget watchdog** — the simulator's own `max_cycles` cap
//!   is clamped to the budget, and the resulting
//!   [`CycleLimit`](gpu_sim::SimError::CycleLimit) is reported as
//!   [`RunStatus::TimedOut`],
//! * **bounded retry with backoff** — deterministic failures burn their
//!   attempts quickly; the hook exists for runs racing external state
//!   (checkpoint directories on shared filesystems).
//!
//! Every input item always yields exactly one [`RunRecord`], in input
//! order, so partial results degrade gracefully into a report with a
//! per-run status column.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;
use std::time::Duration;

use gpu_sim::{GpuConfig, SimError};
use gpu_workloads::Workload;
use rayon::prelude::*;

use crate::experiment::{run_workload, RunOutput};

/// How one isolated run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// The run completed, after `retries` failed attempts.
    Completed {
        /// Attempts that failed before the successful one.
        retries: u32,
    },
    /// The watchdog's cycle budget expired before the run finished.
    TimedOut {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// The run returned an error (final attempt's).
    Failed {
        /// Rendered error message.
        error: String,
    },
    /// The run panicked (final attempt's panic).
    Panicked {
        /// Panic payload, with source location when known.
        message: String,
        /// Backtrace captured inside the panic hook.
        backtrace: String,
    },
}

impl RunStatus {
    /// Short status-column spelling: `ok`, `timeout`, `failed`, `panic`.
    pub fn label(&self) -> &'static str {
        match self {
            RunStatus::Completed { .. } => "ok",
            RunStatus::TimedOut { .. } => "timeout",
            RunStatus::Failed { .. } => "failed",
            RunStatus::Panicked { .. } => "panic",
        }
    }

    /// Whether the run produced a usable output.
    pub fn is_ok(&self) -> bool {
        matches!(self, RunStatus::Completed { .. })
    }
}

/// Watchdog and retry policy for [`run_many_resilient`].
#[derive(Clone, Copy, Debug)]
pub struct RunPolicy {
    /// Clamp applied to the simulator's `max_cycles` (`None` leaves the
    /// configured cap in place). Exceeding it reports
    /// [`RunStatus::TimedOut`] instead of a generic failure.
    pub cycle_budget: Option<u64>,
    /// Total attempts per run, including the first (min 1).
    pub max_attempts: u32,
    /// Base backoff between attempts; attempt *n* sleeps `2^(n-1)` times
    /// this. Zero disables sleeping (the right choice for deterministic
    /// in-process failures).
    pub backoff: Duration,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            cycle_budget: None,
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

/// The record one isolated run leaves behind.
#[derive(Clone, Debug)]
pub struct RunRecord<R = RunOutput> {
    /// Display name of the item (workload name for suites).
    pub name: String,
    /// How the run ended.
    pub status: RunStatus,
    /// The run's output, present iff `status.is_ok()`.
    pub output: Option<R>,
}

thread_local! {
    /// Set while a harness `catch_unwind` is active on this thread, so
    /// the chained panic hook knows to capture instead of print.
    static CAPTURE: RefCell<Option<(String, String)>> = const { RefCell::new(None) };
    static CAPTURING: RefCell<bool> = const { RefCell::new(false) };
}

static HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that captures the message
/// and backtrace into thread-local state while a harness run is active,
/// and delegates to the previously installed hook otherwise.
fn install_capture_hook() {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if CAPTURING.with(|c| *c.borrow()) {
                let message = match info.payload().downcast_ref::<&str>() {
                    Some(s) => (*s).to_string(),
                    None => match info.payload().downcast_ref::<String>() {
                        Some(s) => s.clone(),
                        None => "non-string panic payload".to_string(),
                    },
                };
                let message = match info.location() {
                    Some(loc) => format!("{message} (at {}:{})", loc.file(), loc.line()),
                    None => message,
                };
                let backtrace = std::backtrace::Backtrace::force_capture().to_string();
                CAPTURE.with(|c| *c.borrow_mut() = Some((message, backtrace)));
            } else {
                previous(info);
            }
        }));
    });
}

/// The payload of a panic caught by [`catch_panic`]: the rendered
/// message (with source location when known) and the backtrace the
/// chained panic hook captured at unwind time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanicCapture {
    /// Panic payload, with source location when known.
    pub message: String,
    /// Backtrace captured inside the panic hook.
    pub backtrace: String,
}

/// Runs `f` under `catch_unwind`, returning its result or the captured
/// panic. The process-wide panic hook is chained (installed once), so
/// panics outside any [`catch_panic`] scope still print normally; inside
/// one, the message and backtrace are captured silently instead of
/// spamming stderr. This is the isolation primitive both the resilient
/// campaign runner and the kernel fuzzer build on.
pub fn catch_panic<R>(f: impl FnOnce() -> R) -> Result<R, PanicCapture> {
    install_capture_hook();
    CAPTURING.with(|c| *c.borrow_mut() = true);
    let caught = panic::catch_unwind(AssertUnwindSafe(f));
    CAPTURING.with(|c| *c.borrow_mut() = false);
    match caught {
        Ok(value) => Ok(value),
        Err(_) => {
            let (message, backtrace) = CAPTURE
                .with(|c| c.borrow_mut().take())
                .unwrap_or_else(|| ("panic hook captured nothing".into(), String::new()));
            Err(PanicCapture { message, backtrace })
        }
    }
}

/// One attempt under `catch_unwind`, translating a panic into a status.
fn attempt<R>(run: impl FnOnce() -> Result<R, SimError>) -> Result<Result<R, SimError>, RunStatus> {
    catch_panic(run).map_err(|p| RunStatus::Panicked {
        message: p.message,
        backtrace: p.backtrace,
    })
}

/// Runs every item through `run` in parallel, isolating panics,
/// classifying watchdog expiries, and retrying per `policy`. Always
/// returns one record per item, in item order.
pub fn run_many_resilient<T, R>(
    items: &[T],
    name_of: &(dyn Fn(&T) -> String + Sync),
    run: &(dyn Fn(&T) -> Result<R, SimError> + Sync),
    policy: &RunPolicy,
) -> Vec<RunRecord<R>>
where
    T: Sync,
    R: Send,
{
    let attempts = policy.max_attempts.max(1);
    items
        .par_iter()
        .map(|item| {
            let name = name_of(item);
            let mut retries = 0u32;
            loop {
                let status = match attempt(|| run(item)) {
                    Ok(Ok(output)) => {
                        return RunRecord {
                            name,
                            status: RunStatus::Completed { retries },
                            output: Some(output),
                        };
                    }
                    Ok(Err(SimError::CycleLimit { limit }))
                        if policy.cycle_budget.is_some_and(|b| limit <= b) =>
                    {
                        RunStatus::TimedOut { budget: limit }
                    }
                    Ok(Err(e)) => RunStatus::Failed {
                        error: e.to_string(),
                    },
                    Err(panicked) => panicked,
                };
                if retries + 1 >= attempts {
                    return RunRecord {
                        name,
                        status,
                        output: None,
                    };
                }
                if !policy.backoff.is_zero() {
                    std::thread::sleep(policy.backoff * 2u32.saturating_pow(retries));
                }
                retries += 1;
            }
        })
        .collect()
}

/// Resilient counterpart of [`run_suite`](crate::run_suite): the whole
/// workload suite under one configuration, with panic isolation and the
/// policy's watchdog, returning per-workload records instead of failing
/// on the first error.
pub fn run_suite_resilient(
    cfg: &GpuConfig,
    workloads: &[Workload],
    policy: &RunPolicy,
) -> Vec<RunRecord> {
    let mut cfg = cfg.clone();
    if let Some(budget) = policy.cycle_budget {
        cfg.max_cycles = cfg.max_cycles.min(budget);
    }
    run_many_resilient(
        workloads,
        &|w: &Workload| w.name().to_string(),
        &|w: &Workload| run_workload(&cfg, w),
        policy,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignPoint;

    #[test]
    fn suite_completes_like_the_plain_runner() {
        let workloads: Vec<Workload> = ["lib", "aes"]
            .iter()
            .map(|n| gpu_workloads::by_name(n).unwrap())
            .collect();
        let records = run_suite_resilient(
            &DesignPoint::WarpedCompression.config(),
            &workloads,
            &RunPolicy::default(),
        );
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "lib");
        assert_eq!(records[1].name, "aes");
        for r in &records {
            assert_eq!(r.status, RunStatus::Completed { retries: 0 });
            assert!(r.output.as_ref().unwrap().stats.cycles > 0);
        }
    }

    #[test]
    fn panicking_item_is_isolated_and_recorded() {
        let items: Vec<u32> = (0..8).collect();
        let records = run_many_resilient(
            &items,
            &|i: &u32| format!("item{i}"),
            &|i: &u32| {
                if *i == 5 {
                    panic!("deliberate failure in item {i}");
                }
                Ok(*i * 10)
            },
            &RunPolicy::default(),
        );
        assert_eq!(records.len(), 8);
        for (i, r) in records.iter().enumerate() {
            if i == 5 {
                match &r.status {
                    RunStatus::Panicked { message, .. } => {
                        assert!(
                            message.contains("deliberate failure in item 5"),
                            "{message}"
                        );
                        assert!(message.contains("resilient.rs"), "no location: {message}");
                    }
                    other => panic!("expected panic status, got {other:?}"),
                }
                assert!(r.output.is_none());
            } else {
                assert_eq!(r.output, Some(i as u32 * 10));
            }
        }
    }

    #[test]
    fn watchdog_reports_timeout() {
        let workloads = vec![gpu_workloads::by_name("bfs").unwrap()];
        let policy = RunPolicy {
            cycle_budget: Some(10),
            ..RunPolicy::default()
        };
        let records = run_suite_resilient(
            &DesignPoint::WarpedCompression.config(),
            &workloads,
            &policy,
        );
        assert_eq!(records[0].status, RunStatus::TimedOut { budget: 10 });
        assert_eq!(records[0].status.label(), "timeout");
    }

    #[test]
    fn retries_are_bounded_and_counted() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls = AtomicU32::new(0);
        let items = [0u32];
        let policy = RunPolicy {
            max_attempts: 3,
            ..RunPolicy::default()
        };
        // Fails twice, succeeds on the third attempt.
        let records = run_many_resilient(
            &items,
            &|_: &u32| "flaky".to_string(),
            &|_: &u32| {
                if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(SimError::Deadlock { cycle: 1 })
                } else {
                    Ok(())
                }
            },
            &policy,
        );
        assert_eq!(records[0].status, RunStatus::Completed { retries: 2 });
        assert_eq!(calls.load(Ordering::SeqCst), 3);

        // Always fails: attempts are bounded and the last error is kept.
        let calls2 = AtomicU32::new(0);
        let records = run_many_resilient(
            &items,
            &|_: &u32| "doomed".to_string(),
            &|_: &u32| -> Result<(), SimError> {
                calls2.fetch_add(1, Ordering::SeqCst);
                Err(SimError::Deadlock { cycle: 9 })
            },
            &policy,
        );
        assert_eq!(calls2.load(Ordering::SeqCst), 3);
        match &records[0].status {
            RunStatus::Failed { error } => assert!(error.contains("cycle 9"), "{error}"),
            other => panic!("expected failure, got {other:?}"),
        }
    }
}
