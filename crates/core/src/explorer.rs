//! Full-BDI ⟨base, delta⟩ selection breakdown (§4, Fig. 5).

use bdi::{explore_best_choice, BaseSize, ChunkLayout};
use gpu_sim::WriteEvent;
use serde::Serialize;

/// How often the full BDI explorer picked each ⟨base, delta⟩ pair, as a
/// fraction of register writes — the data behind Fig. 5, which justifies
/// restricting the hardware to the three 4-byte-base choices.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ChoiceBreakdown {
    counts: [u64; 7], // indexed like bdi::EXPLORER_CHOICES
    uncompressed: u64,
}

impl ChoiceBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the explorer on one write and records the winner.
    pub fn record(&mut self, event: &WriteEvent) {
        if event.synthetic {
            return;
        }
        match explore_best_choice(&event.value).layout() {
            Some(layout) => {
                let idx = bdi::EXPLORER_CHOICES
                    .iter()
                    .position(|&(b, d)| b == layout.base() && d == layout.delta_bytes())
                    .expect("explorer only returns its own choices");
                self.counts[idx] += 1;
            }
            None => self.uncompressed += 1,
        }
    }

    /// Count for one ⟨base, delta⟩ pair.
    pub fn count(&self, base: BaseSize, delta: usize) -> u64 {
        bdi::EXPLORER_CHOICES
            .iter()
            .position(|&(b, d)| b == base && d == delta)
            .map(|i| self.counts[i])
            .unwrap_or(0)
    }

    /// Writes no choice could compress.
    pub fn uncompressed(&self) -> u64 {
        self.uncompressed
    }

    /// Total writes recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.uncompressed
    }

    /// Fraction of writes won by `⟨base, delta⟩`.
    pub fn fraction(&self, base: BaseSize, delta: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.count(base, delta) as f64 / total as f64
    }

    /// Fraction of writes where *any* 8-byte base won — the paper found
    /// this to be negligible, motivating the ⟨4,·⟩-only hardware.
    pub fn eight_byte_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let eight: u64 = bdi::EXPLORER_CHOICES
            .iter()
            .zip(&self.counts)
            .filter(|((b, _), _)| *b == BaseSize::B8)
            .map(|(_, &c)| c)
            .sum();
        eight as f64 / total as f64
    }

    /// Iterates `(layout, count)` over all explorer choices.
    pub fn iter(&self) -> impl Iterator<Item = (ChunkLayout, u64)> + '_ {
        bdi::EXPLORER_CHOICES
            .iter()
            .zip(&self.counts)
            .map(|(&(b, d), &c)| {
                (
                    ChunkLayout::new(b, d).expect("explorer choices are valid"),
                    c,
                )
            })
    }

    /// Merges another breakdown (suite aggregation).
    pub fn merge(&mut self, other: &ChoiceBreakdown) {
        for i in 0..7 {
            self.counts[i] += other.counts[i];
        }
        self.uncompressed += other.uncompressed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi::WarpRegister;

    fn event(value: WarpRegister) -> WriteEvent {
        WriteEvent {
            pc: 0,
            value,
            class: bdi::CompressionClass::Uncompressed,
            divergent: false,
            synthetic: false,
        }
    }

    #[test]
    fn records_winning_choice() {
        let mut b = ChoiceBreakdown::new();
        b.record(&event(WarpRegister::splat(3))); // <4,0>
        b.record(&event(WarpRegister::from_fn(|t| t as u32))); // <4,1>
        b.record(&event(WarpRegister::from_fn(|t| 1000 * t as u32))); // <4,2>
        b.record(&event(WarpRegister::from_fn(|t| {
            (t as u32).wrapping_mul(0x9E37_79B9)
        })));
        assert_eq!(b.count(BaseSize::B4, 0), 1);
        assert_eq!(b.count(BaseSize::B4, 1), 1);
        assert_eq!(b.count(BaseSize::B4, 2), 1);
        assert_eq!(b.uncompressed(), 1);
        assert_eq!(b.total(), 4);
        assert!((b.fraction(BaseSize::B4, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn eight_byte_fraction_counts_pairwise_patterns() {
        let mut b = ChoiceBreakdown::new();
        // {X, Y, X, Y} with far-apart X/Y: only <8,0> fits.
        b.record(&event(WarpRegister::from_fn(|t| {
            if t % 2 == 0 {
                0
            } else {
                0x4000_0000
            }
        })));
        assert_eq!(b.count(BaseSize::B8, 0), 1);
        assert!((b.eight_byte_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_ignored_and_merge_works() {
        let mut a = ChoiceBreakdown::new();
        a.record(&WriteEvent {
            synthetic: true,
            ..event(WarpRegister::splat(0))
        });
        assert_eq!(a.total(), 0);
        let mut b = ChoiceBreakdown::new();
        b.record(&event(WarpRegister::splat(0)));
        a.merge(&b);
        assert_eq!(a.total(), 1);
    }

    #[test]
    fn iter_yields_seven_choices() {
        let b = ChoiceBreakdown::new();
        assert_eq!(b.iter().count(), 7);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let b = ChoiceBreakdown::new();
        assert_eq!(b.fraction(BaseSize::B4, 0), 0.0);
        assert_eq!(b.eight_byte_fraction(), 0.0);
    }
}
