//! Seeded fault-injection campaigns over the workload suite
//! (`faults` feature).
//!
//! A campaign injects `N` planned faults into each kernel's register
//! file ([`gpu_faults::FaultPlan`]), runs the kernel with the injector
//! armed ([`gpu_sim::GpuSim::run_faulted`]), and reports how every fault
//! resolved: masked, corrected, detected, or silent corruption. Each
//! kernel derives its own plan seed from the campaign seed and its name
//! ([`kernel_seed`]), so campaigns are reproducible end to end — the
//! same `--seed` gives byte-identical reports — while kernels still see
//! independent fault patterns.
//!
//! The write horizon of each plan comes from a clean dry run of the
//! kernel, so every planned fault lands on a write ordinal the kernel
//! actually reaches (faults planned past the end of the run would
//! resolve as `not-triggered` noise).

use gpu_faults::{FaultInjector, FaultLog, FaultPlan, ProtectionModel, RedirectionReport};
use gpu_power::EnergyParams;
use gpu_sim::GpuSim;
use gpu_workloads::Workload;

use crate::design::DesignPoint;
use crate::experiment::energy_of;
use crate::resilient::{run_many_resilient, RunPolicy, RunRecord};

/// Default campaign seed, shared with the CLI's `--seed` default.
pub const DEFAULT_FAULT_SEED: u64 = 42;

/// Per-kernel plan seed: FNV-1a over the campaign seed and the kernel
/// name. Stable across runs and platforms.
pub fn kernel_seed(campaign_seed: u64, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in campaign_seed.to_le_bytes().into_iter().chain(name.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Everything one kernel's fault campaign produces.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelFaultReport {
    /// Kernel name.
    pub name: String,
    /// The per-kernel plan seed actually used.
    pub seed: u64,
    /// Protection scheme the register file was modelled with.
    pub protection: ProtectionModel,
    /// Whether the faulted run completed (a detected uncorrectable
    /// error or a corruption-induced fault aborts the run — that is
    /// itself a campaign datum, not a harness failure).
    pub completed: bool,
    /// Rendered error when `completed` is false.
    pub error: Option<String>,
    /// Per-fault event log.
    pub log: FaultLog,
    /// RRCD-style redirection coverage from the run's footprint mix.
    pub redirection: RedirectionReport,
    /// Bank-access energy multiplier of the protection's check bits
    /// ((64 + check bits) / 64 per 64-bit word).
    pub energy_scale: f64,
    /// Register-file energy (pJ) of the faulted run priced with the
    /// protection overhead applied; `None` when the run aborted.
    pub energy_pj: Option<f64>,
}

/// Runs one kernel's fault campaign: a clean dry run to size the write
/// horizon, then the faulted run.
pub fn run_kernel_faults(
    cfg: &gpu_sim::GpuConfig,
    workload: &Workload,
    protection: ProtectionModel,
    injections: usize,
    campaign_seed: u64,
) -> KernelFaultReport {
    let seed = kernel_seed(campaign_seed, workload.name());
    let sim = GpuSim::new(cfg.clone());

    let mut clean_memory = workload.fresh_memory();
    let writes = sim
        .run(workload.kernel(), workload.launch(), &mut clean_memory)
        .map(|r| r.stats.writes)
        .unwrap_or(0);
    let plan = FaultPlan::generate(seed, injections, writes.max(1));
    let injector = FaultInjector::new(plan, protection, true);

    let mut memory = workload.fresh_memory();
    let (result, log) =
        sim.run_faulted(workload.kernel(), workload.launch(), &mut memory, injector);
    let redirection = RedirectionReport::from_footprints(&log.footprint_reads);
    let energy_scale = protection.bank_access_energy_scale();
    let params = EnergyParams::paper_table3().with_bank_access_scale(energy_scale);
    let (completed, error, energy_pj) = match result {
        Ok(r) => (true, None, Some(energy_of(&r.stats, &params).total_pj())),
        Err(e) => (false, Some(e.to_string()), None),
    };
    KernelFaultReport {
        name: workload.name().to_string(),
        seed,
        protection,
        completed,
        error,
        log,
        redirection,
        energy_scale,
        energy_pj,
    }
}

/// Runs the fault campaign over many workloads through the resilient
/// harness: each kernel is panic-isolated, and a kernel whose campaign
/// code itself dies yields a record with the failure instead of taking
/// the suite down. The design point is warped-compression — the paper's
/// proposal is the configuration whose error amplification is under
/// study.
pub fn run_fault_campaign(
    workloads: &[Workload],
    protection: ProtectionModel,
    injections: usize,
    campaign_seed: u64,
    policy: &RunPolicy,
) -> Vec<RunRecord<KernelFaultReport>> {
    let cfg = DesignPoint::WarpedCompression.config();
    run_many_resilient(
        workloads,
        &|w: &Workload| w.name().to_string(),
        &|w: &Workload| {
            Ok(run_kernel_faults(
                &cfg,
                w,
                protection,
                injections,
                campaign_seed,
            ))
        },
        policy,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_seeds_differ_by_name_and_campaign() {
        let a = kernel_seed(42, "bfs");
        assert_eq!(a, kernel_seed(42, "bfs"));
        assert_ne!(a, kernel_seed(42, "pathfinder"));
        assert_ne!(a, kernel_seed(43, "bfs"));
    }

    #[test]
    fn campaign_is_deterministic_and_accounts_for_every_fault() {
        let workloads = vec![
            gpu_workloads::by_name("lib").unwrap(),
            gpu_workloads::by_name("aes").unwrap(),
        ];
        let run = || {
            run_fault_campaign(
                &workloads,
                ProtectionModel::SecDed,
                6,
                DEFAULT_FAULT_SEED,
                &RunPolicy::default(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 2);
        for (ra, rb) in a.iter().zip(&b) {
            assert!(ra.status.is_ok());
            let (ka, kb) = (ra.output.as_ref().unwrap(), rb.output.as_ref().unwrap());
            assert_eq!(ka, kb, "same seed must reproduce {} exactly", ka.name);
            assert_eq!(ka.log.events.len(), 6);
            // SEC-DED: the CI gate's invariant.
            assert_eq!(ka.log.silent(), 0);
            assert!((ka.energy_scale - 1.125).abs() < 1e-12);
        }
    }

    #[test]
    fn unprotected_campaign_reports_are_honest() {
        let workloads = vec![gpu_workloads::by_name("lib").unwrap()];
        let records = run_fault_campaign(
            &workloads,
            ProtectionModel::Unprotected,
            8,
            7,
            &RunPolicy::default(),
        );
        let k = records[0].output.as_ref().unwrap();
        assert_eq!(k.log.events.len(), 8);
        assert_eq!(k.log.corrected() + k.log.detected(), 0);
        assert!((k.energy_scale - 1.0).abs() < 1e-12);
        if !k.completed {
            assert!(k.error.is_some());
        }
    }
}
