//! Static memory analysis vs. traced accesses (`wcsim mem`).
//!
//! The address abstract interpretation in [`simt_analysis::memabs`]
//! claims three things about a kernel under a launch:
//!
//! 1. **containment** — every load/store site's per-warp abstract
//!    address set covers every address any active lane of that warp
//!    can generate at that pc,
//! 2. **race verdict** — a `race_free == Some(true)` launch has *no*
//!    cross-warp conflicting access pair (a store and any access of
//!    the same word by a different warp); a `Some(false)` verdict
//!    lists every pair that may conflict,
//! 3. **transaction floors** — the perfbound coalescing floors
//!    ([`simt_analysis::MemFloor`]) never exceed what the simulated
//!    coalescer actually issued.
//!
//! This module machine-checks all three: it runs the kernel under the
//! warped-compression design point with per-access tracing
//! ([`gpu_sim::GpuSim::run_mem_observed`]) and joins every traced
//! [`MemEvent`] against the static verdicts. A traced address outside
//! its site's abstract set, a traced conflict inside a "race-free"
//! launch, a traced conflicting pair the static race list missed, or
//! a floor the measured traffic undercuts are each an **unsound
//! miss** — any occurrence is a bug in the abstract domain and is
//! surfaced as a hard error by the CLI (`wcsim mem`, the CI gate).
//!
//! The report also attributes the static issue scheduler's verdict:
//! either the kernel closed statically (possibly thanks to the
//! forwarding analysis arming shadow-memory replay), or the named
//! [`ScheduleBail`] reason it fell back on.

use std::collections::BTreeMap;

use gpu_sim::{GpuSim, MemEvent, SimError};
use gpu_workloads::Workload;
use rayon::prelude::*;
use serde::Serialize;
use simt_analysis::{
    analyze_cells, analyze_mem, bound_kernel, schedule_kernel, Cfg, LaunchInfo, MemAbs, MemCells,
    PerfLaunch, ScheduleBail,
};

use crate::design::DesignPoint;
use crate::perfbound::perf_machine;

/// One static load/store site joined with its traced traffic.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct SiteCheck {
    /// The pc of the `ld`/`st`.
    pub pc: usize,
    /// Whether the site writes memory.
    pub is_store: bool,
    /// The static coalescing pattern name (`uniform` / `coalesced` /
    /// `strided` / `scattered`).
    pub pattern: String,
    /// Whether the site sits in a divergence region.
    pub divergent: bool,
    /// Warp dispatches the run traced at this pc.
    pub accesses: u64,
    /// Memory transactions (32-word segments) the coalescer issued
    /// across those dispatches.
    pub transactions: u64,
    /// Traced dispatches with some active lane's address *outside*
    /// the site's per-warp abstract address set — must be zero.
    pub escapes: u64,
    /// The perfbound floor on total transactions at this pc (zero
    /// when the floor analysis proved no executions).
    pub min_transactions: u64,
    /// The perfbound floor on dispatches at this pc.
    pub min_executions: u64,
}

impl SiteCheck {
    /// Whether the measured traffic respects both perfbound floors.
    pub fn floor_holds(&self) -> bool {
        self.min_transactions <= self.transactions && self.min_executions <= self.accesses
    }
}

/// One cross-warp conflicting access pair the *run* actually produced:
/// a traced store and a traced access of the same word by different
/// warps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct TracedConflict {
    /// The storing pc.
    pub store_pc: usize,
    /// The conflicting access's pc.
    pub other_pc: usize,
    /// Whether the conflicting access also writes.
    pub other_is_store: bool,
    /// Whether the static race list predicted this pair. `false` under
    /// a `race_free == Some(false)` verdict is an unsound miss; under
    /// `race_free == Some(true)` *any* traced conflict is one.
    pub predicted: bool,
}

/// How the static issue scheduler fared on this kernel, for the
/// precision-payoff attribution `wcsim mem` reports.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ScheduleCheck {
    /// Whether the scheduler closed the kernel statically.
    pub static_mode: bool,
    /// The named bail reason when it did not (`unknown-predicate`,
    /// `fuel-exhausted`, `block-too-large`).
    pub bail: Option<String>,
    /// The pc precision was lost at, for the predicate-driven bails.
    pub bail_pc: Option<usize>,
    /// Loads the forwarding analysis proved statically resolvable
    /// from the warp's own must-available store.
    pub forwardable_loads: usize,
    /// Loads the abstract memory cells refined to a bounded value.
    pub refined_loads: usize,
}

/// The full static-vs-traced memory report for one kernel.
#[derive(Clone, Debug, Serialize)]
pub struct MemReport {
    /// Benchmark name.
    pub kernel: String,
    /// The static cross-warp race verdict (`None`: geometry unknown
    /// or too large to specialise per warp).
    pub race_free: Option<bool>,
    /// Statically detected conflicting pairs.
    pub static_races: usize,
    /// Per-site joins, in pc order.
    pub sites: Vec<SiteCheck>,
    /// Traced accesses at pcs the static analysis claims are
    /// unreachable (no site) — must be zero.
    pub untracked_accesses: u64,
    /// Load pcs the abstract memory cells refined to a bounded value.
    pub refined_loads: usize,
    /// Traced load dispatches whose loaded value fell *outside* its
    /// refined abstract value — must be zero (γ-containment of the
    /// memcell refinement).
    pub refined_value_escapes: u64,
    /// Cross-warp conflicting pairs the run actually produced,
    /// deduped by site pair.
    pub traced_conflicts: Vec<TracedConflict>,
    /// Scheduler attribution for this kernel.
    pub schedule: ScheduleCheck,
}

impl MemReport {
    /// Total traced dispatches that escaped their abstract address set.
    pub fn escape_count(&self) -> u64 {
        self.sites.iter().map(|s| s.escapes).sum()
    }

    /// Sites whose measured traffic undercuts a perfbound floor.
    pub fn floor_violations(&self) -> Vec<usize> {
        self.sites
            .iter()
            .filter(|s| !s.floor_holds())
            .map(|s| s.pc)
            .collect()
    }

    /// Traced conflicts the static race analysis failed to predict
    /// (every entry under `race_free == Some(true)`, the unpredicted
    /// ones under `Some(false)`; none can be charged when the verdict
    /// is `None`).
    pub fn missed_conflicts(&self) -> Vec<TracedConflict> {
        match self.race_free {
            Some(true) => self.traced_conflicts.clone(),
            Some(false) => self
                .traced_conflicts
                .iter()
                .filter(|c| !c.predicted)
                .copied()
                .collect(),
            None => Vec::new(),
        }
    }

    /// The machine-checked soundness invariant `wcsim mem` gates CI
    /// on: no address escaped its abstract set, no access hit a
    /// statically-unreachable pc, no traced conflict evaded the race
    /// verdict, and every transaction floor held.
    pub fn is_sound(&self) -> bool {
        self.escape_count() == 0
            && self.untracked_accesses == 0
            && self.refined_value_escapes == 0
            && self.missed_conflicts().is_empty()
            && self.sites.iter().all(SiteCheck::floor_holds)
    }

    /// Which soundness checks failed, as human-readable labels.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.escape_count() > 0 {
            v.push(format!(
                "{} traced dispatch(es) escaped their abstract address set",
                self.escape_count()
            ));
        }
        if self.untracked_accesses > 0 {
            v.push(format!(
                "{} traced access(es) at statically-unreachable pcs",
                self.untracked_accesses
            ));
        }
        if self.refined_value_escapes > 0 {
            v.push(format!(
                "{} traced load dispatch(es) escaped their refined abstract value",
                self.refined_value_escapes
            ));
        }
        for c in self.missed_conflicts() {
            v.push(format!(
                "traced cross-warp conflict @{} vs @{} evaded the race verdict",
                c.store_pc, c.other_pc
            ));
        }
        for pc in self.floor_violations() {
            v.push(format!(
                "measured traffic at @{pc} undercuts its static floor"
            ));
        }
        v
    }
}

/// The stable name of a bail reason, for reports.
fn bail_name(bail: &ScheduleBail) -> &'static str {
    match bail {
        ScheduleBail::UnknownPredicate { .. } => "unknown-predicate",
        ScheduleBail::FuelExhausted { .. } => "fuel-exhausted",
        ScheduleBail::BlockTooLarge { .. } => "block-too-large",
    }
}

/// One warp's traced touch of one word: who, where, and whether it
/// wrote. The race join collects these per address.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Touch {
    warp: (usize, usize),
    pc: usize,
    is_store: bool,
}

/// Joins one traced event against the static report: containment per
/// active lane, the per-address touch map for the race join, and — for
/// loads the memcell domain refined — γ-containment of every active
/// lane's *loaded value* in the refined abstract value.
fn join_event(
    mem: &MemAbs,
    cells: &MemCells,
    event: &MemEvent,
    escapes: &mut BTreeMap<usize, u64>,
    value_escapes: &mut BTreeMap<usize, u64>,
    untracked: &mut u64,
    touches: &mut BTreeMap<u32, Vec<Touch>>,
) {
    if !event.is_store {
        if let Some(refined) = cells.refined.get(&event.pc) {
            if !refined.contains_masked(&event.values, event.mask) {
                *value_escapes.entry(event.pc).or_default() += 1;
            }
        }
    }
    for (_, addr) in event.active_addrs() {
        let touch = Touch {
            warp: (event.block, event.warp_in_block),
            pc: event.pc,
            is_store: event.is_store,
        };
        let slot = touches.entry(addr).or_default();
        if !slot.contains(&touch) {
            slot.push(touch);
        }
    }
    let Some(site) = mem.site_index(event.pc) else {
        *untracked += 1;
        return;
    };
    let contained = match mem.address_for(
        site,
        u32::try_from(event.block).unwrap_or(u32::MAX),
        u32::try_from(event.warp_in_block).unwrap_or(u32::MAX),
    ) {
        // A per-warp `None` means the interpretation proved this warp
        // never reaches the site — yet here is a traced access.
        None => false,
        Some(abs) => abs.contains_masked(&event.addrs, event.mask),
    };
    if !contained {
        *escapes.entry(event.pc).or_default() += 1;
    }
}

/// Extracts the deduped cross-warp conflicting pairs from the
/// per-address touch map and marks each against the static race list.
fn traced_conflicts(mem: &MemAbs, touches: &BTreeMap<u32, Vec<Touch>>) -> Vec<TracedConflict> {
    let mut pairs: BTreeMap<(usize, usize, bool), bool> = BTreeMap::new();
    for accessors in touches.values() {
        for a in accessors {
            if !a.is_store {
                continue;
            }
            for b in accessors {
                if a.warp == b.warp {
                    continue;
                }
                let predicted = mem
                    .races
                    .iter()
                    .any(|r| r.store_pc == a.pc && r.other_pc == b.pc);
                pairs
                    .entry((a.pc, b.pc, b.is_store))
                    .and_modify(|p| *p &= predicted)
                    .or_insert(predicted);
            }
        }
    }
    pairs
        .into_iter()
        .map(
            |((store_pc, other_pc, other_is_store), predicted)| TracedConflict {
                store_pc,
                other_pc,
                other_is_store,
                predicted,
            },
        )
        .collect()
}

/// Runs the static memory analysis and the traced simulation on one
/// workload and joins the two.
///
/// The simulation uses the paper's warped-compression design point —
/// memory addresses and the coalescer are design-point independent,
/// so one traced run checks the static claims for all of them.
///
/// # Errors
///
/// Propagates any [`SimError`] from the traced run (including
/// attributed memory faults, which the typed
/// [`SimError::MemoryAt`](gpu_sim::SimError) path reports instead of
/// panicking).
pub fn mem_workload(workload: &Workload) -> Result<MemReport, SimError> {
    let kernel = workload.kernel();
    let launch = workload.launch();
    let image = std::sync::Arc::new(workload.fresh_memory().words().to_vec());
    let info = LaunchInfo {
        params: launch.params().to_vec(),
        blocks: u32::try_from(launch.blocks()).ok(),
        threads_per_block: u32::try_from(launch.threads_per_block()).ok(),
        mem_words: u64::try_from(image.len()).ok(),
        initial_mem: Some(std::sync::Arc::clone(&image)),
    };
    let cfg = Cfg::build(kernel.instrs());
    let mem = analyze_mem(
        kernel.name(),
        kernel.instrs(),
        kernel.num_regs(),
        &cfg,
        Some(&info),
    );
    let cells = analyze_cells(
        kernel.name(),
        kernel.instrs(),
        usize::from(kernel.num_regs()),
        &cfg,
        Some(&info),
    );

    let perf_launch = PerfLaunch {
        blocks: launch.blocks(),
        threads_per_block: launch.threads_per_block(),
        params: launch.params().to_vec(),
        initial_mem: Some(std::sync::Arc::clone(&image)),
    };
    let sim_cfg = DesignPoint::WarpedCompression.config();
    let machine = perf_machine(&sim_cfg);
    let prediction = bound_kernel(kernel, &perf_launch, &machine);

    let mut escapes: BTreeMap<usize, u64> = BTreeMap::new();
    let mut value_escapes: BTreeMap<usize, u64> = BTreeMap::new();
    let mut untracked = 0u64;
    let mut touches: BTreeMap<u32, Vec<Touch>> = BTreeMap::new();
    let mut memory = workload.fresh_memory();
    let sim = GpuSim::new(sim_cfg);
    let result = sim.run_mem_observed(kernel, launch, &mut memory, &mut |event| {
        join_event(
            &mem,
            &cells,
            event,
            &mut escapes,
            &mut value_escapes,
            &mut untracked,
            &mut touches,
        );
    })?;

    let sites = mem
        .sites
        .iter()
        .map(|s| {
            let traffic = result.stats.mem.at(s.pc);
            let floor = prediction.mem_floor_at(s.pc);
            SiteCheck {
                pc: s.pc,
                is_store: s.is_store,
                pattern: s.pattern.name().to_string(),
                divergent: s.divergent,
                accesses: traffic.accesses,
                transactions: traffic.transactions,
                escapes: escapes.get(&s.pc).copied().unwrap_or(0),
                min_transactions: floor.map_or(0, |f| f.min_transactions),
                min_executions: floor.map_or(0, |f| f.min_executions),
            }
        })
        .collect();

    let residency = sim.max_resident_warps(kernel);
    let schedule = match schedule_kernel(kernel, &perf_launch, &machine, residency) {
        Ok(_) => ScheduleCheck {
            static_mode: true,
            bail: None,
            bail_pc: None,
            forwardable_loads: mem.forwardable.len(),
            refined_loads: cells.refined.len(),
        },
        Err(bail) => ScheduleCheck {
            static_mode: false,
            bail: Some(bail_name(&bail).to_string()),
            bail_pc: bail.pc(),
            forwardable_loads: mem.forwardable.len(),
            refined_loads: cells.refined.len(),
        },
    };

    Ok(MemReport {
        kernel: workload.name().to_string(),
        race_free: mem.race_free,
        static_races: mem.races.len(),
        sites,
        untracked_accesses: untracked,
        refined_loads: cells.refined.len(),
        refined_value_escapes: value_escapes.values().sum(),
        traced_conflicts: traced_conflicts(&mem, &touches),
        schedule,
    })
}

/// Checks every workload, in parallel, in suite order.
///
/// # Errors
///
/// Fails on the earliest workload (in suite order) that errors.
pub fn mem_suite(workloads: &[Workload]) -> Result<Vec<MemReport>, SimError> {
    workloads.par_iter().map(mem_workload).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lib_is_race_free_and_sound() {
        let w = gpu_workloads::by_name("lib").unwrap();
        let r = mem_workload(&w).unwrap();
        assert_eq!(r.kernel, "lib");
        assert!(r.is_sound(), "violations: {:?}", r.violations());
        assert!(!r.sites.is_empty());
        assert!(r.sites.iter().any(|s| s.accesses > 0));
    }

    #[test]
    fn divergent_kernel_joins_soundly() {
        let w = gpu_workloads::by_name("bfs").unwrap();
        let r = mem_workload(&w).unwrap();
        assert!(r.is_sound(), "violations: {:?}", r.violations());
        assert_eq!(r.untracked_accesses, 0);
    }

    #[test]
    fn race_free_suite_kernels_trace_no_conflicts() {
        // Any kernel the static analysis proves warp-isolated must
        // trace zero cross-warp conflicts — this is the heart of the
        // race-verdict soundness gate.
        let mut isolated = 0;
        for w in gpu_workloads::suite() {
            let r = mem_workload(&w).unwrap();
            if r.race_free == Some(true) {
                isolated += 1;
                assert!(
                    r.traced_conflicts.is_empty(),
                    "{}: traced conflicts under a race-free verdict: {:?}",
                    r.kernel,
                    r.traced_conflicts
                );
            }
        }
        assert!(isolated > 0, "some suite kernel must be warp-isolated");
    }

    #[test]
    fn fallback_kernels_name_their_bail() {
        for w in gpu_workloads::suite() {
            let r = mem_workload(&w).unwrap();
            if !r.schedule.static_mode {
                let bail = r.schedule.bail.as_deref().expect("bail name");
                assert!(
                    ["unknown-predicate", "fuel-exhausted", "block-too-large"].contains(&bail),
                    "{}: unexpected bail `{bail}`",
                    r.kernel
                );
            }
        }
    }
}
