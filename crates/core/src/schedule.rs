//! Static issue scheduling, validated end to end (`wcsim schedule`).
//!
//! The scheduler in [`simt_analysis::schedule`] compiles a kernel into
//! an [`simt_analysis::IssuePlan`]: per warp and per pc, the exact
//! cycle every instruction issues, dispatches and retires, with all
//! RAW/WAW/WAR hazards, compression latencies and operand-collector
//! port conflicts resolved ahead of time. The scheduled backend in
//! `gpu-sim` replays that plan with the scoreboard and collector
//! arbitration bypassed. This module joins the two against the dynamic
//! core and machine-checks three soundness properties per kernel:
//!
//! 1. **bit identity** — every warp's final architectural register
//!    values (and all of global memory) match the dynamic core
//!    bit for bit,
//! 2. **floor** — the scheduled makespan never beats the perfbound
//!    static cycle lower bound (the schedule cannot be faster than a
//!    proven floor),
//! 3. **slack** — the scheduled makespan never exceeds the dynamic
//!    runtime by more than [`schedule_slack`] (a static schedule that
//!    loses badly to dynamic arbitration is a scheduling bug, not a
//!    modelling choice).
//!
//! Kernels the scheduler cannot close statically (data-dependent
//! branch predicates, replay fuel) fall back to the dynamic engine;
//! the report records the bail reason and the three checks hold
//! trivially. Any violation is surfaced as a hard error by the CLI —
//! this is the `wcsim schedule` CI gate.

use gpu_power::{ActivityCounts, EnergyModel, EnergyParams, ScheduleComparison};
use gpu_sim::{GpuSim, SimError, SimStats};
use gpu_workloads::Workload;
use rayon::prelude::*;
use serde::Serialize;
use simt_analysis::{bound_kernel, schedule_kernel, PerfLaunch};

use crate::design::DesignPoint;
use crate::perfbound::perf_machine;

/// Fixed slack head-room: covers drain/launch edge effects that do
/// not scale with run length.
pub const SCHEDULE_SLACK_BASE: u64 = 64;

/// Proportional slack divisor: the schedule may trail the dynamic
/// core by at most one quarter of the dynamic runtime. The greedy
/// list scheduler serialises same-cycle issue ties that the dynamic
/// operand collectors overlap; across the 18-workload suite the
/// worst measured scheduled/dynamic ratio is ~1.19 (`lib`), so a 25 %
/// proportional budget bounds it with margin while still catching a
/// scheduler regression that loses to dynamic arbitration outright.
pub const SCHEDULE_SLACK_DIVISOR: u64 = 4;

/// The maximum number of cycles a sound static schedule may trail the
/// dynamic core on the same launch:
/// `SCHEDULE_SLACK_BASE + dynamic_cycles / SCHEDULE_SLACK_DIVISOR`.
pub fn schedule_slack(dynamic_cycles: u64) -> u64 {
    SCHEDULE_SLACK_BASE + dynamic_cycles / SCHEDULE_SLACK_DIVISOR
}

/// How a kernel was executed for its schedule report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum ScheduleMode {
    /// The scheduler closed the kernel statically and the plan was
    /// replayed on the scheduled backend.
    Static,
    /// The scheduler bailed; the dynamic engine ran instead and the
    /// soundness checks hold trivially.
    DynamicFallback {
        /// The scheduler's bail reason, human-readable.
        reason: String,
    },
}

impl ScheduleMode {
    /// Whether the kernel actually replayed a static plan.
    pub fn is_static(&self) -> bool {
        matches!(self, ScheduleMode::Static)
    }
}

/// A full static-schedule-vs-dynamic report for one kernel under one
/// design point.
#[derive(Clone, Debug, Serialize)]
pub struct ScheduleReport {
    /// Benchmark name.
    pub kernel: String,
    /// Design-point label the runs used.
    pub design: String,
    /// Static plan replayed, or dynamic fallback with the bail reason.
    pub mode: ScheduleMode,
    /// Perfbound static cycle lower bound for the same launch.
    pub static_floor_cycles: u64,
    /// Makespan of the scheduled replay (dynamic cycles when the
    /// kernel fell back).
    pub scheduled_cycles: u64,
    /// Cycles the dynamic core took.
    pub dynamic_cycles: u64,
    /// Slack budget the scheduled run had to stay within.
    pub slack_cycles: u64,
    /// Program instructions the scheduled replay issued (the plan's
    /// count; the dynamic count when the kernel fell back).
    pub scheduled_instructions: u64,
    /// Program instructions the dynamic core issued (excludes
    /// injected dummy MOVs).
    pub dynamic_instructions: u64,
    /// Final architectural register values bit-identical to the
    /// dynamic core (soundness check 1a).
    pub registers_match: bool,
    /// Global memory bit-identical after both runs (soundness
    /// check 1b).
    pub memory_matches: bool,
    /// Scheduled vs. dynamic activity priced through the Table 3
    /// energy model.
    pub comparison: ScheduleComparison,
}

impl ScheduleReport {
    /// Soundness check 2: the schedule never beats the proven floor.
    pub fn floor_holds(&self) -> bool {
        self.static_floor_cycles <= self.scheduled_cycles
    }

    /// Soundness check 3: the schedule stays within slack of the
    /// dynamic core.
    pub fn slack_holds(&self) -> bool {
        self.scheduled_cycles <= self.dynamic_cycles + self.slack_cycles
    }

    /// All three machine-checked soundness properties — the invariant
    /// `wcsim schedule` gates CI on.
    pub fn is_sound(&self) -> bool {
        self.registers_match && self.memory_matches && self.floor_holds() && self.slack_holds()
    }

    /// Which soundness checks failed, as human-readable labels.
    pub fn violations(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if !self.registers_match {
            v.push("final registers differ from the dynamic core");
        }
        if !self.memory_matches {
            v.push("global memory differs from the dynamic core");
        }
        if !self.floor_holds() {
            v.push("scheduled cycles beat the static floor");
        }
        if !self.slack_holds() {
            v.push("scheduled cycles exceed dynamic + slack");
        }
        v
    }
}

fn activity_of(stats: &SimStats) -> ActivityCounts {
    ActivityCounts::from_regfile_with_mode(
        &stats.regfile,
        stats.compressor_activations,
        stats.decompressor_activations,
        stats.gating.into(),
    )
}

/// Schedules one workload statically, replays the plan on the
/// scheduled backend, and validates bit identity, the perfbound floor
/// and the slack bound against a dynamic run under the same `design`.
/// Falls back to the dynamic engine when the scheduler bails.
///
/// # Errors
///
/// Propagates any [`SimError`] from either engine — including
/// `SimError::Plan` when the replayer catches the plan contradicting
/// the machine, which is itself a soundness failure.
pub fn schedule_workload(
    workload: &Workload,
    design: DesignPoint,
) -> Result<ScheduleReport, SimError> {
    let cfg = design.config();
    let machine = perf_machine(&cfg);
    let sim = GpuSim::new(cfg);
    let kernel = workload.kernel();
    let launch = workload.launch();
    let perf_launch = PerfLaunch {
        blocks: launch.blocks(),
        threads_per_block: launch.threads_per_block(),
        params: launch.params().to_vec(),
        initial_mem: Some(std::sync::Arc::new(
            workload.fresh_memory().words().to_vec(),
        )),
    };
    let floor = bound_kernel(kernel, &perf_launch, &machine).cycle_lower_bound;

    let mut dyn_mem = workload.fresh_memory();
    let (dyn_result, dyn_regs) = sim.run_capturing(kernel, launch, &mut dyn_mem)?;
    let dynamic_cycles = dyn_result.stats.cycles;
    let model = EnergyModel::new(EnergyParams::paper_table3());
    let dyn_activity = activity_of(&dyn_result.stats);

    let residency = sim.max_resident_warps(kernel);
    let report = match schedule_kernel(kernel, &perf_launch, &machine, residency) {
        Ok(plan) => {
            let mut sched_mem = workload.fresh_memory();
            let sched = sim.run_scheduled(kernel, &plan, launch, &mut sched_mem)?;
            ScheduleReport {
                kernel: workload.name().to_string(),
                design: design.label(),
                mode: ScheduleMode::Static,
                static_floor_cycles: floor,
                scheduled_cycles: sched.stats.cycles,
                dynamic_cycles,
                slack_cycles: schedule_slack(dynamic_cycles),
                scheduled_instructions: sched.stats.instructions,
                dynamic_instructions: dyn_result.stats.instructions,
                registers_match: sched.final_regs == dyn_regs,
                memory_matches: sched_mem == dyn_mem,
                comparison: ScheduleComparison::new(
                    workload.name(),
                    &model,
                    &activity_of(&sched.stats),
                    &dyn_activity,
                ),
            }
        }
        Err(bail) => ScheduleReport {
            kernel: workload.name().to_string(),
            design: design.label(),
            mode: ScheduleMode::DynamicFallback {
                reason: format!("kernel `{}`: {bail}", workload.name()),
            },
            static_floor_cycles: floor,
            scheduled_cycles: dynamic_cycles,
            dynamic_cycles,
            slack_cycles: schedule_slack(dynamic_cycles),
            scheduled_instructions: dyn_result.stats.instructions,
            dynamic_instructions: dyn_result.stats.instructions,
            registers_match: true,
            memory_matches: true,
            comparison: ScheduleComparison::new(
                workload.name(),
                &model,
                &dyn_activity,
                &dyn_activity,
            ),
        },
    };
    Ok(report)
}

/// Schedules and validates every workload under the warped-compression
/// design point, in parallel, in suite order.
///
/// # Errors
///
/// Fails on the earliest workload (in suite order) that errors.
pub fn schedule_suite(workloads: &[Workload]) -> Result<Vec<ScheduleReport>, SimError> {
    workloads
        .par_iter()
        .map(|w| schedule_workload(w, DesignPoint::WarpedCompression))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "diagnostic"]
    fn dump_suite_numbers() {
        for w in gpu_workloads::suite() {
            let r = schedule_workload(&w, DesignPoint::WarpedCompression).unwrap();
            println!(
                "{:>12} mode={:?} floor={} sched={} dyn={} ratio={:.3}",
                r.kernel,
                r.mode.is_static(),
                r.static_floor_cycles,
                r.scheduled_cycles,
                r.dynamic_cycles,
                r.scheduled_cycles as f64 / r.dynamic_cycles as f64
            );
        }
    }

    #[test]
    fn slack_is_base_plus_a_quarter() {
        assert_eq!(schedule_slack(0), SCHEDULE_SLACK_BASE);
        assert_eq!(schedule_slack(800), SCHEDULE_SLACK_BASE + 200);
    }

    #[test]
    fn lib_schedules_statically_and_is_sound() {
        let w = gpu_workloads::by_name("lib").unwrap();
        let r = schedule_workload(&w, DesignPoint::WarpedCompression).unwrap();
        assert!(
            r.mode.is_static(),
            "lib must close statically: {:?}",
            r.mode
        );
        assert!(
            r.is_sound(),
            "violations: {:?} (floor {} scheduled {} dynamic {} slack {})",
            r.violations(),
            r.static_floor_cycles,
            r.scheduled_cycles,
            r.dynamic_cycles,
            r.slack_cycles
        );
        assert!(r.registers_match && r.memory_matches);
        assert!(r.comparison.scheduled_energy_pj > 0.0);
    }

    #[test]
    fn lib_baseline_design_is_also_sound() {
        let w = gpu_workloads::by_name("lib").unwrap();
        let r = schedule_workload(&w, DesignPoint::Baseline).unwrap();
        assert!(r.mode.is_static(), "{:?}", r.mode);
        assert!(r.is_sound(), "violations: {:?}", r.violations());
        assert_eq!(r.comparison.scheduled_compressor_activations, 0);
    }

    #[test]
    fn data_dependent_branches_fall_back_soundly() {
        let w = gpu_workloads::by_name("bfs").unwrap();
        let r = schedule_workload(&w, DesignPoint::WarpedCompression).unwrap();
        assert!(
            !r.mode.is_static(),
            "bfs branches on loaded data; expected a fallback"
        );
        assert!(r.is_sound());
        assert_eq!(r.scheduled_cycles, r.dynamic_cycles);
    }
}
