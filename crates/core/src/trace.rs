//! Register-write traces: capture once, analyse many times.
//!
//! A [`WriteTrace`] records every register write of a simulation run.
//! Because compression decisions are purely a function of the written
//! values, a single captured trace can then be re-priced under *any*
//! [`ChoiceSet`] offline — the paper's §6.6 style design-space questions
//! ("what would ⟨4,1⟩-only compress?") answered without re-simulating.

use bdi::{BdiCodec, ChoiceSet, CompressionClass, WarpRegister, WARP_REGISTER_BYTES};
use gpu_sim::WriteEvent;
use serde::{Deserialize, Serialize};

use crate::explorer::ChoiceBreakdown;
use crate::similarity::SimilarityHistogram;

/// A recorded stream of register writes.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WriteTrace {
    values: Vec<WarpRegister>,
    divergent: Vec<bool>,
}

impl WriteTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one write event (synthetic MOVs are skipped — they rewrite
    /// existing values).
    pub fn record(&mut self, event: &WriteEvent) {
        if event.synthetic {
            return;
        }
        self.values.push(event.value);
        self.divergent.push(event.divergent);
    }

    /// Number of recorded writes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(value, divergent)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&WarpRegister, bool)> + '_ {
        self.values.iter().zip(self.divergent.iter().copied())
    }

    /// The compression ratio this trace would achieve under `choices`,
    /// with divergent writes stored uncompressed (the §5.2 policy).
    pub fn compression_ratio_under(&self, choices: &ChoiceSet) -> f64 {
        let codec = BdiCodec::new(choices.clone());
        let mut logical = 0u64;
        let mut stored = 0u64;
        for (value, divergent) in self.iter() {
            logical += WARP_REGISTER_BYTES as u64;
            stored += if divergent {
                WARP_REGISTER_BYTES as u64
            } else {
                codec.compress(value).stored_len() as u64
            };
        }
        if stored == 0 {
            1.0
        } else {
            logical as f64 / stored as f64
        }
    }

    /// The Fig. 2 similarity histogram of the trace.
    pub fn similarity(&self) -> SimilarityHistogram {
        let mut h = SimilarityHistogram::new();
        for (value, divergent) in self.iter() {
            h.record(&replay_event(*value, divergent));
        }
        h
    }

    /// The Fig. 5 full-BDI breakdown of the trace.
    pub fn breakdown(&self) -> ChoiceBreakdown {
        let mut b = ChoiceBreakdown::new();
        for (value, divergent) in self.iter() {
            b.record(&replay_event(*value, divergent));
        }
        b
    }
}

/// Traces record only what the offline collectors consume; pc and the
/// stored compression class are meaningful only during a live run.
fn replay_event(value: WarpRegister, divergent: bool) -> WriteEvent {
    WriteEvent {
        pc: 0,
        value,
        class: CompressionClass::Uncompressed,
        divergent,
        synthetic: false,
    }
}

impl Extend<WriteEvent> for WriteTrace {
    fn extend<T: IntoIterator<Item = WriteEvent>>(&mut self, iter: T) {
        for e in iter {
            self.record(&e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi::FixedChoice;

    fn event(value: WarpRegister, divergent: bool) -> WriteEvent {
        replay_event(value, divergent)
    }

    fn sample_trace() -> WriteTrace {
        let mut t = WriteTrace::new();
        t.record(&event(WarpRegister::splat(7), false)); // <4,0>
        t.record(&event(WarpRegister::from_fn(|l| l as u32), false)); // <4,1>
        t.record(&event(
            WarpRegister::from_fn(|l| (l as u32).wrapping_mul(0x9E37_79B9)),
            false,
        ));
        t.record(&event(WarpRegister::splat(1), true)); // divergent: stored raw
        t
    }

    #[test]
    fn records_and_iterates() {
        let t = sample_trace();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.iter().filter(|(_, d)| *d).count(), 1);
    }

    #[test]
    fn synthetic_events_are_skipped() {
        let mut t = WriteTrace::new();
        t.record(&WriteEvent {
            synthetic: true,
            ..replay_event(WarpRegister::ZERO, false)
        });
        assert!(t.is_empty());
    }

    #[test]
    fn ratio_under_respects_choice_set() {
        let t = sample_trace();
        let full = t.compression_ratio_under(&ChoiceSet::warped_compression());
        let d0 = t.compression_ratio_under(&ChoiceSet::only(FixedChoice::Delta0));
        let none = t.compression_ratio_under(&ChoiceSet::disabled());
        assert!(full > d0, "dynamic {full} should beat <4,0>-only {d0}");
        assert!((none - 1.0).abs() < 1e-12);
        // 4 writes of 128 B; stored: 4 + 35 + 128 + 128 = 295.
        assert!((full - 512.0 / 295.0).abs() < 1e-12);
    }

    #[test]
    fn trace_analyses_match_online_collectors() {
        // Replaying the trace through the similarity/breakdown collectors
        // must equal feeding events online.
        let t = sample_trace();
        let sim = t.similarity();
        assert_eq!(sim.total(false), 3);
        assert_eq!(sim.total(true), 1);
        let br = t.breakdown();
        assert_eq!(br.total(), 4);
        assert_eq!(br.uncompressed(), 1);
    }

    #[test]
    fn extend_collects_events() {
        let mut t = WriteTrace::new();
        t.extend(vec![
            event(WarpRegister::splat(1), false),
            event(WarpRegister::splat(2), true),
        ]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn trace_from_a_real_run_predicts_the_run_ratio() {
        // Capture a trace from one simulation and check the offline ratio
        // matches the simulator's own nondivergent accounting.
        use crate::design::DesignPoint;
        let w = gpu_workloads::by_name("lib").unwrap();
        let mut trace = WriteTrace::new();
        let mut memory = w.fresh_memory();
        let result = gpu_sim::GpuSim::new(DesignPoint::WarpedCompression.config())
            .run_observed(w.kernel(), w.launch(), &mut memory, &mut |e| {
                trace.record(e)
            })
            .unwrap();
        let offline = trace.compression_ratio_under(&ChoiceSet::warped_compression());
        let online = result.stats.compression_ratio();
        assert!(
            (offline - online).abs() < 1e-9,
            "offline {offline} vs online {online}"
        );
    }
}
