//! Differential kernel fuzzer with crash triage and automatic
//! shrinking (feature `fuzz`).
//!
//! Every soundness gate in this repo — bit-identical scheduled replay,
//! absint compressibility predictions, perfbound cycle floors, the
//! sanitize hazard oracle — is stated over the 18 curated workloads.
//! This module re-states them over *arbitrary* kernels: a seeded
//! generator draws [`gpu_workloads::testgen`] shapes (straight-line,
//! counted loops, loop nests, data- and lane-divergence, value
//! patterns, in-warp memory aliasing) and [`check_case`] drives each
//! one through every backend pair:
//!
//! 1. **dynamic vs scheduled** — when the static scheduler closes the
//!    kernel, the replayed plan must match the dynamic core bit for bit
//!    (registers and memory), beat no perfbound floor, and stay within
//!    [`schedule_slack`](crate::schedule::schedule_slack) of the
//!    dynamic runtime; a scheduler bail is a benign dynamic fallback,
//!    mirroring [`ScheduleMode::DynamicFallback`](crate::schedule::ScheduleMode),
//! 2. **absint vs trace** — no traced write may exceed its statically
//!    predicted bank footprint,
//! 3. **perfbound vs measurement** — the dynamic run may not beat the
//!    static cycle or instruction floor,
//! 4. **panic freedom** — any panic (including a `sanitize:` oracle
//!    assertion) is caught via [`catch_panic`] and triaged, never
//!    propagated,
//! 5. **watchdog** — the simulator's `max_cycles` is clamped to the
//!    case budget, so a runaway kernel reports
//!    [`FindingCategory::Timeout`] deterministically,
//! 6. **memabs vs traced addresses** — every traced memory access
//!    (per-access [`gpu_sim::MemEvent`]s, collected under *both* the
//!    baseline and warped-compression design points) must land inside
//!    its site's per-warp abstract address set, and the cross-warp
//!    race verdict must survive the trace: no conflict under a
//!    `race_free` claim, and every traced conflicting pair listed
//!    when races were predicted. The `aliased_mem` and `lane_split`
//!    shapes are what drive warps onto overlapping addresses, so they
//!    exercise the race detector directly.
//!
//! Any disagreement is classified into a typed [`Finding`] and the
//! offending case is delta-debug **shrunk** ([`shrink_case`]): first
//! the launch geometry, then ddmin over the instruction list (branch
//! targets remapped, candidates re-validated by `Kernel::new`), always
//! re-checking that the *same* finding category still reproduces. The
//! result renders as a standalone assemblable reproducer
//! ([`render_reproducer`]).
//!
//! The fuzzer validates itself with [`mutation_smoke`]: one deliberate
//! bug injection per finding category (a flipped hazard window, an
//! off-by-one bank footprint, a corrupted replay register, …) must be
//! caught, classified and shrunk — proving every detector actually
//! fires.

use std::collections::HashMap;

use gpu_sim::{GlobalMemory, GpuSim, LaunchConfig, MemEvent, SimError};
use gpu_workloads::testgen;
use rand::prelude::{Rng, SeedableRng, StdRng};
use simt_analysis::{
    analyze_mem, analyze_with_launch, bound_kernel, schedule_kernel, Cfg, IssuePlan, LaunchInfo,
    MemAbs, PerfLaunch,
};
use simt_isa::{to_asm, Instruction, Kernel, Operand};

use crate::design::DesignPoint;
use crate::perfbound::perf_machine;
use crate::resilient::catch_panic;
use crate::schedule::schedule_slack;

/// Default per-case cycle watchdog: far above anything the bounded
/// generator can legitimately produce, far below "hung".
pub const DEFAULT_CYCLE_BUDGET: u64 = 200_000;

/// Launch geometries the generator draws from (blocks, threads per
/// block) — small enough to keep a case under a millisecond, varied
/// enough to cover partial warps and multi-block residency.
const LAUNCHES: [(usize, usize); 6] = [(1, 32), (1, 64), (2, 32), (2, 48), (4, 32), (1, 48)];

/// A deliberate bug injection for the self-validation smoke test: each
/// variant breaks exactly one invariant the fuzzer claims to check, and
/// must be caught as its [`expected_category`](Mutation::expected_category).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Panic outright inside the checker (panic isolation path).
    InjectPanic,
    /// Panic with the sanitize oracle's message prefix (triage path).
    InjectSanitizePanic,
    /// Clamp the cycle budget to 1 so the watchdog must fire.
    StarveWatchdog,
    /// Run with zero global memory so memory kernels must fault.
    ShrinkMemory,
    /// Bump one planned step's issue cycle, breaking the plan's
    /// serialized-fetch dispatch equation — the replayer must reject.
    FlipHazardWindow,
    /// Flip one bit of the scheduled replay's final registers — the
    /// bit-identity check must fire.
    CorruptReplayMemory,
    /// Raise the static cycle floor above the measurement.
    RaiseCycleFloor,
    /// Treat the schedule slack budget as zero.
    ZeroSlack,
    /// Lower one write site's predicted bank footprint below the
    /// traced measurement.
    ShrinkBankPrediction,
    /// Knock the first traced memory access's addresses out of their
    /// site's abstract address set — the memabs containment join must
    /// reject.
    ShrinkAddressSet,
}

impl Mutation {
    /// Every mutation, one per finding category.
    pub const ALL: [Mutation; 10] = [
        Mutation::InjectPanic,
        Mutation::InjectSanitizePanic,
        Mutation::StarveWatchdog,
        Mutation::ShrinkMemory,
        Mutation::FlipHazardWindow,
        Mutation::CorruptReplayMemory,
        Mutation::RaiseCycleFloor,
        Mutation::ZeroSlack,
        Mutation::ShrinkBankPrediction,
        Mutation::ShrinkAddressSet,
    ];

    /// Stable kebab-case spelling (CLI / JSON).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::InjectPanic => "inject-panic",
            Mutation::InjectSanitizePanic => "inject-sanitize-panic",
            Mutation::StarveWatchdog => "starve-watchdog",
            Mutation::ShrinkMemory => "shrink-memory",
            Mutation::FlipHazardWindow => "flip-hazard-window",
            Mutation::CorruptReplayMemory => "corrupt-replay-memory",
            Mutation::RaiseCycleFloor => "raise-cycle-floor",
            Mutation::ZeroSlack => "zero-slack",
            Mutation::ShrinkBankPrediction => "shrink-bank-prediction",
            Mutation::ShrinkAddressSet => "shrink-address-set",
        }
    }

    /// Parses the kebab-case spelling back.
    pub fn parse(text: &str) -> Option<Mutation> {
        Mutation::ALL.into_iter().find(|m| m.name() == text)
    }

    /// The finding category this injected bug must be triaged as.
    pub fn expected_category(self) -> FindingCategory {
        match self {
            Mutation::InjectPanic => FindingCategory::Panic,
            Mutation::InjectSanitizePanic => FindingCategory::SanitizeViolation,
            Mutation::StarveWatchdog => FindingCategory::Timeout,
            Mutation::ShrinkMemory => FindingCategory::SimFailure,
            Mutation::FlipHazardWindow => FindingCategory::PlanRejected,
            Mutation::CorruptReplayMemory => FindingCategory::ScheduleMismatch,
            Mutation::RaiseCycleFloor => FindingCategory::FloorViolation,
            Mutation::ZeroSlack => FindingCategory::SlackViolation,
            Mutation::ShrinkBankPrediction => FindingCategory::AbsintUnsound,
            Mutation::ShrinkAddressSet => FindingCategory::MemabsUnsound,
        }
    }
}

/// The triage taxonomy: every way a fuzz case can disagree with the
/// invariants, ordered roughly by severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FindingCategory {
    /// A panic escaped the simulator or an analysis.
    Panic,
    /// The sanitize shadow/hazard oracle tripped (panic message with
    /// the `sanitize:` prefix).
    SanitizeViolation,
    /// The per-case cycle watchdog expired.
    Timeout,
    /// The simulator returned an error on a structurally valid case.
    SimFailure,
    /// The replayer rejected the scheduler's plan as unsound.
    PlanRejected,
    /// Scheduled replay and dynamic run disagree bit-for-bit.
    ScheduleMismatch,
    /// A measured run beat a static perfbound floor.
    FloorViolation,
    /// The scheduled makespan exceeded dynamic + slack.
    SlackViolation,
    /// A traced write exceeded its predicted bank footprint.
    AbsintUnsound,
    /// A traced memory access escaped its abstract address set, or a
    /// cross-warp conflict evaded the static race verdict.
    MemabsUnsound,
}

impl FindingCategory {
    /// Stable kebab-case spelling (reports / JSON).
    pub fn label(self) -> &'static str {
        match self {
            FindingCategory::Panic => "panic",
            FindingCategory::SanitizeViolation => "sanitize-violation",
            FindingCategory::Timeout => "timeout",
            FindingCategory::SimFailure => "sim-failure",
            FindingCategory::PlanRejected => "plan-rejected",
            FindingCategory::ScheduleMismatch => "schedule-mismatch",
            FindingCategory::FloorViolation => "floor-violation",
            FindingCategory::SlackViolation => "slack-violation",
            FindingCategory::AbsintUnsound => "absint-unsound",
            FindingCategory::MemabsUnsound => "memabs-unsound",
        }
    }
}

/// One triaged disagreement: the category plus a human-readable detail
/// line (panic message, mismatch description, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which invariant broke.
    pub category: FindingCategory,
    /// What exactly disagreed.
    pub detail: String,
}

/// One generated fuzz case: a kernel plus its launch geometry and
/// memory size, reproducible from `(campaign seed, index)` alone.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// Case index within the campaign.
    pub index: usize,
    /// Per-case seed (splitmix of campaign seed and index), so cases
    /// are independent of generation order — the resume path depends
    /// on this.
    pub seed: u64,
    /// The generated kernel.
    pub kernel: Kernel,
    /// Thread blocks.
    pub blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Global memory words the case runs with.
    pub mem_words: usize,
    /// Initial-memory image prefix (padded with zeroes to
    /// `mem_words`): the `table_trip_count` shape loads its loop bound
    /// from here, and every check arms the analysis with the full
    /// image so the abstract memory cells are exercised on all shapes.
    pub init_words: Vec<u32>,
}

/// SplitMix64 of the campaign seed and case index: each case gets an
/// independent, well-mixed generator stream.
fn case_seed(campaign_seed: u64, index: usize) -> u64 {
    let mut z = campaign_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn gen_raw(rng: &mut StdRng, len: usize) -> Vec<testgen::RawInstr> {
    (0..len)
        .map(|_| {
            let imm = if rng.gen_bool(0.5) {
                rng.gen_range(-8i32..=8)
            } else {
                rng.gen_range(-100_000i32..=100_000)
            };
            (
                rng.gen_range(0u8..=255),
                rng.gen_range(0u8..=255),
                rng.gen_range(0u8..=255),
                imm,
                rng.gen_range(0u8..=255),
                rng.gen_range(0u8..=255),
            )
        })
        .collect()
}

impl FuzzCase {
    /// Deterministically generates case `index` of the campaign with
    /// the given seed, drawing one of the seven testgen shapes with
    /// bounded bodies, trip counts and launch geometry.
    pub fn generate(campaign_seed: u64, index: usize) -> FuzzCase {
        let seed = case_seed(campaign_seed, index);
        let mut rng = StdRng::seed_from_u64(seed);
        let (blocks, threads_per_block) = LAUNCHES[rng.gen_range(0usize..LAUNCHES.len())];
        let specials = rng.gen_bool(0.7);
        let body_len = rng.gen_range(1usize..=6);
        let body = gen_raw(&mut rng, body_len);
        let suffix_len = rng.gen_range(0usize..=2);
        let suffix = gen_raw(&mut rng, suffix_len);
        let shape = rng.gen_range(0u8..8);
        let mut mem_words = 4;
        let mut init_words = Vec::new();
        let instrs = match shape {
            0 => testgen::straight_line(&body, specials),
            1 => testgen::counted_loop(&body, rng.gen_range(1i32..=4), &suffix, specials),
            2 => {
                let inner_len = rng.gen_range(1usize..=3);
                let inner = gen_raw(&mut rng, inner_len);
                testgen::nested_counted_loops(
                    &body,
                    &inner,
                    rng.gen_range(1i32..=3),
                    rng.gen_range(1i32..=3),
                    &suffix,
                    specials,
                )
            }
            3 => {
                let prefix_len = rng.gen_range(1usize..=3);
                let prefix = gen_raw(&mut rng, prefix_len);
                let pred = rng.gen_range(0u8..=255);
                testgen::skip_if_zero(&prefix, &body, &suffix, pred, specials)
            }
            4 => testgen::lane_split(rng.gen_range(0u8..=255), &body, &suffix, specials),
            5 => testgen::value_pattern(
                rng.gen_range(0u8..=255),
                rng.gen_range(-64i32..=64),
                &body,
                specials,
            ),
            6 => {
                mem_words = testgen::aliased_mem_words(blocks, threads_per_block);
                let mask = rng.gen_range(0u8..=255);
                let split = if rng.gen_bool(0.5) {
                    rng.gen_range(1u8..=30)
                } else {
                    0
                };
                let wpb = threads_per_block.div_ceil(32);
                testgen::aliased_mem(mask, split, &body, wpb, specials)
            }
            _ => {
                mem_words = testgen::TRIP_TABLE_WORDS;
                let raw: Vec<u32> = (0..testgen::TRIP_TABLE_WORDS)
                    .map(|_| rng.gen_range(0u32..=u32::MAX))
                    .collect();
                init_words = testgen::trip_table_image(&raw);
                testgen::table_trip_count(rng.gen_range(0u8..=255), &body, &suffix, specials)
            }
        };
        let kernel = Kernel::new(format!("fuzz{index}"), instrs, testgen::NUM_REGS)
            .expect("testgen shapes are structurally valid");
        FuzzCase {
            index,
            seed,
            kernel,
            blocks,
            threads_per_block,
            mem_words,
            init_words,
        }
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.blocks, self.threads_per_block)
    }

    /// The case's full initial-memory image at the given size: the
    /// init words truncated or zero-padded to `mem_words`.
    fn image(&self, mem_words: usize) -> Vec<u32> {
        let mut image = self.init_words.clone();
        image.resize(mem_words, 0);
        image
    }

    /// Fresh global memory holding the case's initial image.
    fn memory(&self, mem_words: usize) -> GlobalMemory {
        GlobalMemory::from_words(self.image(mem_words))
    }
}

/// Measurements from a clean (finding-free) case.
#[derive(Clone, Copy, Debug, Default)]
pub struct CaseStats {
    /// Cycles the dynamic core took.
    pub dynamic_cycles: u64,
    /// Program instructions the dynamic core issued.
    pub instructions: u64,
    /// Whether the static scheduler closed the kernel (vs a benign
    /// dynamic fallback).
    pub static_close: bool,
}

fn finding(category: FindingCategory, detail: impl Into<String>) -> Finding {
    Finding {
        category,
        detail: detail.into(),
    }
}

/// Classifies a simulator error from a required run: a clamped
/// `CycleLimit` is the watchdog, everything else is a sim failure.
fn sim_finding(err: SimError, stage: &str) -> Finding {
    match err {
        SimError::CycleLimit { limit } => finding(
            FindingCategory::Timeout,
            format!("{stage}: cycle watchdog expired at {limit}"),
        ),
        other => finding(FindingCategory::SimFailure, format!("{stage}: {other}")),
    }
}

/// Flips the lowest bit of the first register lane of the scheduled
/// replay's captured state (the `CorruptReplayMemory` smoke mutation).
fn corrupt_final_regs(regs: &mut gpu_sim::FinalRegs) -> bool {
    if let Some(warp) = regs.values_mut().next() {
        if let Some(reg) = warp.first_mut() {
            let v = reg.lane(0);
            reg.set_lane(0, v ^ 1);
            return true;
        }
    }
    false
}

/// Bumps the issue cycle of the first dispatching planned step (the
/// `FlipHazardWindow` smoke mutation): the replayer's serialized-fetch
/// dispatch equation must then reject the plan. Returns `false` when
/// the plan has no dispatching step to perturb.
fn flip_hazard_window(plan: &mut IssuePlan) -> bool {
    for warp in &mut plan.warps {
        for step in &mut warp.steps {
            if step.dispatch.is_some() {
                step.issue += 1;
                return true;
            }
        }
    }
    false
}

/// One warp's traced touch of one word, for the fuzzer's race join.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Touch {
    warp: (usize, usize),
    pc: usize,
    is_store: bool,
}

/// The memabs-vs-trace oracle: re-runs the case under `sim` with
/// per-access tracing and joins every [`MemEvent`] against the static
/// address abstraction — containment of every active lane's address in
/// its site's per-warp abstract set, and the cross-warp race verdict
/// against the conflicts the trace actually produced. The
/// `ShrinkAddressSet` mutation knocks the first traced access's
/// addresses far outside any bounded abstract set, which this join
/// must catch.
fn memabs_join(
    case: &FuzzCase,
    mem_words: usize,
    mem: &MemAbs,
    sim: &GpuSim,
    design: &str,
    mutation: Option<Mutation>,
) -> Result<(), Finding> {
    let mut events: Vec<MemEvent> = Vec::new();
    let mut memory = case.memory(mem_words);
    sim.run_mem_observed(&case.kernel, &case.launch(), &mut memory, &mut |e| {
        events.push(*e);
    })
    .map_err(|e| sim_finding(e, &format!("{design} mem-traced run")))?;

    let mut inject = mutation == Some(Mutation::ShrinkAddressSet);
    let mut touches: HashMap<u32, Vec<Touch>> = HashMap::new();
    for event in &mut events {
        if inject && event.mask != 0 {
            for addr in &mut event.addrs {
                *addr ^= 0x4000_0000;
            }
            inject = false;
        }
        let Some(site) = mem.site_index(event.pc) else {
            return Err(finding(
                FindingCategory::MemabsUnsound,
                format!(
                    "{design}: traced access at statically-unreachable pc {}",
                    event.pc
                ),
            ));
        };
        let contained = match mem.address_for(
            site,
            u32::try_from(event.block).unwrap_or(u32::MAX),
            u32::try_from(event.warp_in_block).unwrap_or(u32::MAX),
        ) {
            None => false,
            Some(abs) => abs.contains_masked(&event.addrs, event.mask),
        };
        if !contained {
            return Err(finding(
                FindingCategory::MemabsUnsound,
                format!(
                    "{design}: traced address escaped the abstract set at pc {}",
                    event.pc
                ),
            ));
        }
        for (_, addr) in event.active_addrs() {
            let touch = Touch {
                warp: (event.block, event.warp_in_block),
                pc: event.pc,
                is_store: event.is_store,
            };
            let slot = touches.entry(addr).or_default();
            if !slot.contains(&touch) {
                slot.push(touch);
            }
        }
    }

    let Some(race_free) = mem.race_free else {
        return Ok(());
    };
    for accessors in touches.values() {
        for a in accessors {
            if !a.is_store {
                continue;
            }
            for b in accessors {
                if a.warp == b.warp {
                    continue;
                }
                if race_free {
                    return Err(finding(
                        FindingCategory::MemabsUnsound,
                        format!(
                            "{design}: traced cross-warp conflict @{} vs @{} under a \
                             race-free verdict",
                            a.pc, b.pc
                        ),
                    ));
                }
                if !mem
                    .races
                    .iter()
                    .any(|r| r.store_pc == a.pc && r.other_pc == b.pc)
                {
                    return Err(finding(
                        FindingCategory::MemabsUnsound,
                        format!(
                            "{design}: traced cross-warp conflict @{} vs @{} missing from \
                             the static race list",
                            a.pc, b.pc
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Runs every differential check on one case. `mutation` injects one
/// deliberate bug for the smoke test; `None` is the production path.
///
/// # Errors
///
/// The triaged [`Finding`] when any invariant disagrees.
pub fn check_case(
    case: &FuzzCase,
    cycle_budget: u64,
    mutation: Option<Mutation>,
) -> Result<CaseStats, Finding> {
    match catch_panic(|| run_checks(case, cycle_budget, mutation)) {
        Ok(outcome) => outcome,
        Err(panic) => {
            let category = if panic.message.starts_with("sanitize:") {
                FindingCategory::SanitizeViolation
            } else {
                FindingCategory::Panic
            };
            Err(finding(category, panic.message))
        }
    }
}

fn run_checks(
    case: &FuzzCase,
    cycle_budget: u64,
    mutation: Option<Mutation>,
) -> Result<CaseStats, Finding> {
    match mutation {
        Some(Mutation::InjectPanic) => panic!("fuzz: injected panic (mutation smoke test)"),
        Some(Mutation::InjectSanitizePanic) => {
            panic!("sanitize: injected hazard-oracle violation (mutation smoke test)")
        }
        _ => {}
    }
    let budget = if mutation == Some(Mutation::StarveWatchdog) {
        1
    } else {
        cycle_budget
    };
    let mem_words = if mutation == Some(Mutation::ShrinkMemory) {
        0
    } else {
        case.mem_words
    };
    let mut cfg = DesignPoint::WarpedCompression.config();
    cfg.max_cycles = cfg.max_cycles.min(budget);
    let kernel = &case.kernel;
    let launch = case.launch();
    let machine = perf_machine(&cfg);
    let image = std::sync::Arc::new(case.image(mem_words));
    let perf_launch = PerfLaunch::new(case.blocks, case.threads_per_block)
        .with_memory(std::sync::Arc::clone(&image));
    let sim = GpuSim::new(cfg);

    // Static predictions first: they must exist however the run ends.
    let bound = bound_kernel(kernel, &perf_launch, &machine);
    let mut floor = bound.cycle_lower_bound;
    let info = LaunchInfo {
        params: Vec::new(),
        blocks: u32::try_from(case.blocks).ok(),
        threads_per_block: u32::try_from(case.threads_per_block).ok(),
        mem_words: u64::try_from(mem_words).ok(),
        initial_mem: Some(image),
    };
    let prediction = analyze_with_launch(kernel, Some(&info)).prediction;

    // Dynamic reference run, traced for per-site write classes.
    let mut worst: Vec<Option<usize>> = vec![None; kernel.len()];
    let mut dyn_mem = case.memory(mem_words);
    let mut observer = |event: &gpu_sim::WriteEvent| {
        if !event.synthetic {
            let banks = event.class.banks();
            let slot = &mut worst[event.pc];
            *slot = Some(slot.map_or(banks, |b: usize| b.max(banks)));
        }
    };
    let dyn_result = sim
        .run_observed(kernel, &launch, &mut dyn_mem, &mut observer)
        .map_err(|e| sim_finding(e, "dynamic run"))?;
    let dynamic_cycles = dyn_result.stats.cycles;

    if mutation == Some(Mutation::RaiseCycleFloor) {
        floor = dynamic_cycles + 1;
    }
    if dynamic_cycles < floor {
        return Err(finding(
            FindingCategory::FloorViolation,
            format!("dynamic run took {dynamic_cycles} cycles, below the static floor {floor}"),
        ));
    }
    if dyn_result.stats.instructions < bound.min_instructions {
        return Err(finding(
            FindingCategory::FloorViolation,
            format!(
                "dynamic run issued {} instructions, below the static floor {}",
                dyn_result.stats.instructions, bound.min_instructions
            ),
        ));
    }

    // Absint join: no traced write may exceed its predicted footprint.
    if let Some(prediction) = &prediction {
        let mut mutated = mutation == Some(Mutation::ShrinkBankPrediction);
        for site in &prediction.sites {
            let Some(measured) = worst.get(site.pc).copied().flatten() else {
                continue;
            };
            let mut predicted = site.class.banks();
            if mutated && measured >= 1 {
                predicted = measured - 1;
                mutated = false;
            }
            if measured > predicted {
                return Err(finding(
                    FindingCategory::AbsintUnsound,
                    format!(
                        "write site pc {} r{} measured {measured} banks, predicted {predicted}",
                        site.pc, site.reg
                    ),
                ));
            }
        }
    }

    // Memabs join, under BOTH design points: addresses and the
    // coalescer are design-independent, so the abstract address sets
    // and the race verdict must survive the trace of each.
    let mem_cfg = Cfg::build(kernel.instrs());
    let memabs = analyze_mem(
        kernel.name(),
        kernel.instrs(),
        kernel.num_regs(),
        &mem_cfg,
        Some(&info),
    );
    memabs_join(
        case,
        mem_words,
        &memabs,
        &sim,
        "warped-compression",
        mutation,
    )?;
    let mut base_cfg = DesignPoint::Baseline.config();
    base_cfg.max_cycles = base_cfg.max_cycles.min(budget);
    let base_sim = GpuSim::new(base_cfg);
    memabs_join(case, mem_words, &memabs, &base_sim, "baseline", mutation)?;

    // Bit-identity vs the scheduled replay (a scheduler bail is a
    // benign dynamic fallback, exactly like `wcsim schedule`).
    let mut static_close = false;
    let mut cap_mem = case.memory(mem_words);
    let (_, dyn_regs) = sim
        .run_capturing(kernel, &launch, &mut cap_mem)
        .map_err(|e| sim_finding(e, "dynamic capture run"))?;
    let residency = sim.max_resident_warps(kernel);
    if let Ok(mut plan) = schedule_kernel(kernel, &perf_launch, &machine, residency) {
        if mutation == Some(Mutation::FlipHazardWindow) && !flip_hazard_window(&mut plan) {
            // No dispatching step to perturb: the smoke scan moves on.
            return Ok(CaseStats {
                dynamic_cycles,
                instructions: dyn_result.stats.instructions,
                static_close: false,
            });
        }
        let mut sched_mem = case.memory(mem_words);
        let sched = match sim.run_scheduled(kernel, &plan, &launch, &mut sched_mem) {
            Ok(sched) => sched,
            Err(err @ SimError::Plan { .. }) => {
                return Err(finding(FindingCategory::PlanRejected, err.to_string()));
            }
            Err(e) => return Err(sim_finding(e, "scheduled replay")),
        };
        static_close = true;
        let mut sched_regs = sched.final_regs;
        if mutation == Some(Mutation::CorruptReplayMemory) {
            corrupt_final_regs(&mut sched_regs);
        }
        if sched_regs != dyn_regs {
            return Err(finding(
                FindingCategory::ScheduleMismatch,
                "scheduled replay's final registers differ from the dynamic core",
            ));
        }
        if sched_mem != cap_mem {
            return Err(finding(
                FindingCategory::ScheduleMismatch,
                "scheduled replay's global memory differs from the dynamic core",
            ));
        }
        if sched.stats.cycles < floor {
            return Err(finding(
                FindingCategory::FloorViolation,
                format!(
                    "scheduled replay took {} cycles, below the static floor {floor}",
                    sched.stats.cycles
                ),
            ));
        }
        let slack = if mutation == Some(Mutation::ZeroSlack) {
            0
        } else {
            schedule_slack(dynamic_cycles)
        };
        if sched.stats.cycles > dynamic_cycles + slack {
            return Err(finding(
                FindingCategory::SlackViolation,
                format!(
                    "scheduled replay took {} cycles, dynamic {dynamic_cycles} + slack {slack}",
                    sched.stats.cycles
                ),
            ));
        }
    }

    Ok(CaseStats {
        dynamic_cycles,
        instructions: dyn_result.stats.instructions,
        static_close,
    })
}

/// Whether `case` still produces a finding of the given category under
/// the same budget and mutation — the shrinker's oracle.
fn reproduces(
    case: &FuzzCase,
    cycle_budget: u64,
    mutation: Option<Mutation>,
    category: FindingCategory,
) -> bool {
    matches!(
        check_case(case, cycle_budget, mutation),
        Err(f) if f.category == category
    )
}

/// Removes instructions `[lo, hi)` and remaps every branch/jump target
/// across the gap (targets inside it collapse onto `lo`). Returns
/// `None` for degenerate requests; structurally invalid candidates are
/// rejected later by `Kernel::new`.
fn remove_range(instrs: &[Instruction], lo: usize, hi: usize) -> Option<Vec<Instruction>> {
    let dropped = hi.checked_sub(lo)?;
    if dropped == 0 || hi > instrs.len() || dropped >= instrs.len() {
        return None;
    }
    let remap = |t: usize| {
        if t >= hi {
            t - dropped
        } else if t >= lo {
            lo
        } else {
            t
        }
    };
    Some(
        instrs
            .iter()
            .enumerate()
            .filter(|(pc, _)| !(lo..hi).contains(pc))
            .map(|(_, ins)| match *ins {
                Instruction::Bra {
                    pred,
                    target,
                    reconv,
                } => Instruction::Bra {
                    pred,
                    target: remap(target),
                    reconv: remap(reconv),
                },
                Instruction::Jmp { target } => Instruction::Jmp {
                    target: remap(target),
                },
                other => other,
            })
            .collect(),
    )
}

fn with_instrs(case: &FuzzCase, instrs: Vec<Instruction>) -> Option<FuzzCase> {
    let kernel = Kernel::new(case.kernel.name(), instrs, case.kernel.num_regs()).ok()?;
    let mut shrunk = case.clone();
    shrunk.kernel = kernel;
    Some(shrunk)
}

/// Delta-debug shrinks a failing case to a minimal reproducer: launch
/// geometry first, then ddmin over the instruction list (halving chunk
/// sizes down to single instructions, iterated to a fixpoint), then the
/// launch again. Every accepted candidate re-reproduces the *same*
/// finding category, so the returned case is a verified reproducer by
/// construction. Fully deterministic for a given input.
pub fn shrink_case(
    case: &FuzzCase,
    cycle_budget: u64,
    mutation: Option<Mutation>,
    category: FindingCategory,
) -> FuzzCase {
    let mut best = case.clone();
    shrink_launch(&mut best, cycle_budget, mutation, category);

    let mut instrs = best.kernel.instrs().to_vec();
    let mut chunk = (instrs.len() / 2).max(1);
    loop {
        let mut removed = false;
        let mut lo = 0;
        while lo < instrs.len() && instrs.len() > 1 {
            let hi = (lo + chunk).min(instrs.len());
            let candidate = remove_range(&instrs, lo, hi)
                .and_then(|cand| with_instrs(&best, cand))
                .filter(|cand| reproduces(cand, cycle_budget, mutation, category));
            match candidate {
                Some(cand) => {
                    instrs = cand.kernel.instrs().to_vec();
                    best = cand;
                    removed = true;
                }
                None => lo += chunk,
            }
        }
        if chunk == 1 {
            if !removed {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }

    shrink_operands(&mut best, cycle_budget, mutation, category);
    shrink_launch(&mut best, cycle_budget, mutation, category);
    best
}

/// Candidate simplifications of one operand, most aggressive first:
/// registers, specials and params collapse to `Imm(0)`; non-zero
/// immediates try zero, then a halved magnitude.
fn operand_reductions(op: Operand) -> Vec<Operand> {
    match op {
        Operand::Imm(0) => Vec::new(),
        Operand::Imm(i) => vec![Operand::Imm(0), Operand::Imm(i / 2)],
        _ => vec![Operand::Imm(0)],
    }
}

/// Candidate simplifications of one instruction, one operand slot at a
/// time. Control flow is left to ddmin; only value operands, load/store
/// offsets and immediates are reduced toward zero.
fn instr_reductions(instr: &Instruction) -> Vec<Instruction> {
    let mut out = Vec::new();
    match *instr {
        Instruction::Mov { dst, src } => {
            out.extend(
                operand_reductions(src)
                    .into_iter()
                    .map(|src| Instruction::Mov { dst, src }),
            );
        }
        Instruction::Alu { op, dst, a, b } => {
            out.extend(operand_reductions(a).into_iter().map(|a| Instruction::Alu {
                op,
                dst,
                a,
                b,
            }));
            out.extend(operand_reductions(b).into_iter().map(|b| Instruction::Alu {
                op,
                dst,
                a,
                b,
            }));
        }
        Instruction::Ld { dst, base, offset } if offset != 0 => {
            out.push(Instruction::Ld {
                dst,
                base,
                offset: 0,
            });
            out.push(Instruction::Ld {
                dst,
                base,
                offset: offset / 2,
            });
        }
        Instruction::St { base, offset, src } if offset != 0 => {
            out.push(Instruction::St {
                base,
                offset: 0,
                src,
            });
            out.push(Instruction::St {
                base,
                offset: offset / 2,
                src,
            });
        }
        _ => {}
    }
    out
}

/// Operand-level reduction after ddmin: rewrites each surviving
/// instruction's operands and immediates toward zero, keeping a rewrite
/// only when the candidate still reproduces the same finding category.
/// Iterated to a fixpoint under a bounded pass count so shrinking stays
/// deterministic and cheap.
fn shrink_operands(
    best: &mut FuzzCase,
    cycle_budget: u64,
    mutation: Option<Mutation>,
    category: FindingCategory,
) {
    const MAX_PASSES: usize = 4;
    for _ in 0..MAX_PASSES {
        let mut changed = false;
        for pc in 0..best.kernel.len() {
            for reduced in instr_reductions(&best.kernel.instrs()[pc]) {
                if best.kernel.instrs()[pc] == reduced {
                    continue;
                }
                let mut instrs = best.kernel.instrs().to_vec();
                instrs[pc] = reduced;
                let Some(cand) = with_instrs(best, instrs) else {
                    continue;
                };
                if reproduces(&cand, cycle_budget, mutation, category) {
                    *best = cand;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Tries smaller launch geometries (fewest warps first), adopting the
/// first that still reproduces.
fn shrink_launch(
    best: &mut FuzzCase,
    cycle_budget: u64,
    mutation: Option<Mutation>,
    category: FindingCategory,
) {
    let candidates = [(1, 32), (1, best.threads_per_block), (best.blocks, 32)];
    for (blocks, threads_per_block) in candidates {
        let warps = |b: usize, t: usize| b * t.div_ceil(32);
        if warps(blocks, threads_per_block) >= warps(best.blocks, best.threads_per_block) {
            continue;
        }
        let mut cand = best.clone();
        cand.blocks = blocks;
        cand.threads_per_block = threads_per_block;
        if reproduces(&cand, cycle_budget, mutation, category) {
            *best = cand;
            return;
        }
    }
}

/// Renders a failing (already shrunk) case as a standalone reproducer:
/// a `#`-commented provenance header the assembler ignores, followed by
/// the kernel in assemblable syntax.
pub fn render_reproducer(
    campaign_seed: u64,
    cycle_budget: u64,
    mutation: Option<Mutation>,
    original: &FuzzCase,
    shrunk: &FuzzCase,
    found: &Finding,
) -> String {
    let mut out = String::new();
    out.push_str("# wcsim fuzz reproducer\n");
    out.push_str(&format!(
        "# campaign seed {campaign_seed}, case {} (case seed {:#018x})\n",
        original.index, original.seed
    ));
    out.push_str(&format!("# category: {}\n", found.category.label()));
    for line in found.detail.lines() {
        out.push_str(&format!("# detail: {line}\n"));
    }
    if let Some(m) = mutation {
        out.push_str(&format!("# injected mutation: {}\n", m.name()));
    }
    out.push_str(&format!(
        "# launch: blocks={} threads_per_block={} mem_words={} cycle_budget={cycle_budget}\n",
        shrunk.blocks, shrunk.threads_per_block, shrunk.mem_words
    ));
    out.push_str(&format!(
        "# shrunk {} -> {} instructions\n",
        original.kernel.len(),
        shrunk.kernel.len()
    ));
    out.push_str(&to_asm(&shrunk.kernel));
    out
}

/// Campaign parameters for [`run_case`] and [`mutation_smoke`].
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Campaign seed: case `i` derives its stream from
    /// `splitmix(seed, i)`.
    pub seed: u64,
    /// Per-case cycle watchdog (`max_cycles` clamp).
    pub cycle_budget: u64,
    /// Deliberate bug injection for the smoke test (`None` in
    /// production campaigns).
    pub mutation: Option<Mutation>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            cycle_budget: DEFAULT_CYCLE_BUDGET,
            mutation: None,
        }
    }
}

/// The per-case record a campaign persists: generation facts, clean
/// measurements, and — when a finding was triaged — the shrunk
/// reproducer.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// Case index within the campaign.
    pub index: usize,
    /// The case's derived seed.
    pub case_seed: u64,
    /// Instructions of the generated kernel.
    pub kernel_instructions: usize,
    /// Launch blocks.
    pub blocks: usize,
    /// Launch threads per block.
    pub threads_per_block: usize,
    /// Global memory words.
    pub mem_words: usize,
    /// Clean-case measurements (zeroed when a finding aborted the
    /// checks).
    pub stats: CaseStats,
    /// The triaged finding, if any.
    pub finding: Option<FindingReport>,
}

/// A triaged finding plus its shrunk reproducer.
#[derive(Clone, Debug)]
pub struct FindingReport {
    /// Which invariant broke.
    pub category: FindingCategory,
    /// What exactly disagreed.
    pub detail: String,
    /// Instructions left after shrinking.
    pub shrunk_instructions: usize,
    /// Launch blocks after shrinking.
    pub shrunk_blocks: usize,
    /// Threads per block after shrinking.
    pub shrunk_threads_per_block: usize,
    /// The standalone reproducer (header + assemblable kernel).
    pub reproducer: String,
}

/// Generates, checks, and — on a finding — shrinks one campaign case.
pub fn run_case(cfg: &FuzzConfig, index: usize) -> CaseReport {
    let case = FuzzCase::generate(cfg.seed, index);
    let mut report = CaseReport {
        index,
        case_seed: case.seed,
        kernel_instructions: case.kernel.len(),
        blocks: case.blocks,
        threads_per_block: case.threads_per_block,
        mem_words: case.mem_words,
        stats: CaseStats::default(),
        finding: None,
    };
    match check_case(&case, cfg.cycle_budget, cfg.mutation) {
        Ok(stats) => report.stats = stats,
        Err(found) => {
            let shrunk = shrink_case(&case, cfg.cycle_budget, cfg.mutation, found.category);
            let reproducer = render_reproducer(
                cfg.seed,
                cfg.cycle_budget,
                cfg.mutation,
                &case,
                &shrunk,
                &found,
            );
            report.finding = Some(FindingReport {
                category: found.category,
                detail: found.detail,
                shrunk_instructions: shrunk.kernel.len(),
                shrunk_blocks: shrunk.blocks,
                shrunk_threads_per_block: shrunk.threads_per_block,
                reproducer,
            });
        }
    }
    report
}

/// The outcome of one smoke mutation: how many cases were scanned
/// before the injected bug was caught, and the caught case's report
/// (with its shrunk reproducer) when it was.
#[derive(Clone, Debug)]
pub struct SmokeOutcome {
    /// The injected bug.
    pub mutation: Mutation,
    /// The category the bug must be triaged as.
    pub expected: FindingCategory,
    /// Case indices scanned (the last one is the catch, when caught).
    pub cases_scanned: usize,
    /// The report of the case that caught the bug, `None` if the scan
    /// budget ran out — a smoke failure.
    pub caught: Option<CaseReport>,
}

impl SmokeOutcome {
    /// Whether the injected bug was caught, correctly classified, and
    /// shrunk to a reproducer.
    pub fn passed(&self) -> bool {
        self.caught.as_ref().is_some_and(|report| {
            report
                .finding
                .as_ref()
                .is_some_and(|f| f.category == self.expected && !f.reproducer.is_empty())
        })
    }
}

/// Self-validation: injects each [`Mutation`] in turn and scans cases
/// `0..max_scan` until the bug is caught as its expected category —
/// proving every finding detector, classifier and the shrinker work
/// end to end. Fully deterministic for a given seed.
pub fn mutation_smoke(seed: u64, cycle_budget: u64, max_scan: usize) -> Vec<SmokeOutcome> {
    Mutation::ALL
        .into_iter()
        .map(|mutation| {
            let cfg = FuzzConfig {
                seed,
                cycle_budget,
                mutation: Some(mutation),
            };
            let expected = mutation.expected_category();
            let mut caught = None;
            let mut scanned = 0;
            for index in 0..max_scan {
                scanned = index + 1;
                let report = run_case(&cfg, index);
                if report
                    .finding
                    .as_ref()
                    .is_some_and(|f| f.category == expected)
                {
                    caught = Some(report);
                    break;
                }
            }
            SmokeOutcome {
                mutation,
                expected,
                cases_scanned: scanned,
                caught,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_per_seed() {
        let a = FuzzCase::generate(42, 7);
        let b = FuzzCase::generate(42, 7);
        assert_eq!(a.kernel, b.kernel);
        assert_eq!(
            (a.blocks, a.threads_per_block),
            (b.blocks, b.threads_per_block)
        );
        let c = FuzzCase::generate(43, 7);
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn clean_cases_produce_no_findings() {
        let cfg = FuzzConfig::default();
        for index in 0..40 {
            let report = run_case(&cfg, index);
            assert!(
                report.finding.is_none(),
                "case {index} found {:?}",
                report.finding
            );
        }
    }

    #[test]
    fn injected_panic_is_caught_and_shrunk_to_one_instruction() {
        let cfg = FuzzConfig {
            mutation: Some(Mutation::InjectPanic),
            ..FuzzConfig::default()
        };
        let report = run_case(&cfg, 0);
        let finding = report.finding.expect("injected panic must be caught");
        assert_eq!(finding.category, FindingCategory::Panic);
        // The panic fires before the kernel matters, so ddmin strips
        // the kernel to the minimal valid one.
        assert_eq!(finding.shrunk_instructions, 1);
        assert!(finding.reproducer.contains("# category: panic"));
    }

    #[test]
    fn shrunk_address_set_is_caught_as_memabs_unsound() {
        let cfg = FuzzConfig {
            mutation: Some(Mutation::ShrinkAddressSet),
            ..FuzzConfig::default()
        };
        let caught = (0..64)
            .map(|index| run_case(&cfg, index))
            .find_map(|report| {
                report
                    .finding
                    .filter(|f| f.category == FindingCategory::MemabsUnsound)
            })
            .expect("the memabs join must catch the knocked-out address set");
        assert!(caught.reproducer.contains("# category: memabs-unsound"));
    }

    #[test]
    fn aliasing_shapes_exercise_the_race_detector() {
        // Across a modest scan of generated cases, the `aliased_mem`
        // and `lane_split` shapes must produce both definite verdicts:
        // some kernels proven warp-isolated, some with a non-empty
        // cross-warp race list. The memabs join in every clean case
        // (see `clean_cases_produce_no_findings`) then validates those
        // verdicts against the traced accesses.
        let mut raced = 0;
        let mut isolated = 0;
        for index in 0..120 {
            let case = FuzzCase::generate(42, index);
            let info = LaunchInfo {
                params: Vec::new(),
                blocks: u32::try_from(case.blocks).ok(),
                threads_per_block: u32::try_from(case.threads_per_block).ok(),
                mem_words: u64::try_from(case.mem_words).ok(),
                initial_mem: None,
            };
            let cfg = Cfg::build(case.kernel.instrs());
            let mem = analyze_mem(
                case.kernel.name(),
                case.kernel.instrs(),
                case.kernel.num_regs(),
                &cfg,
                Some(&info),
            );
            match mem.race_free {
                Some(false) if !mem.races.is_empty() => raced += 1,
                Some(true) => isolated += 1,
                _ => {}
            }
        }
        assert!(raced > 0, "no generated case tripped the race detector");
        assert!(isolated > 0, "no generated case was proven warp-isolated");
    }

    #[test]
    fn remove_range_remaps_branches() {
        use simt_isa::{Operand, Reg};
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Imm(1),
            },
            Instruction::Mov {
                dst: Reg(1),
                src: Operand::Imm(2),
            },
            Instruction::Bra {
                pred: Reg(0),
                target: 4,
                reconv: 4,
            },
            Instruction::Mov {
                dst: Reg(2),
                src: Operand::Imm(3),
            },
            Instruction::Exit,
        ];
        let out = remove_range(&instrs, 1, 2).expect("removable");
        assert_eq!(out.len(), 4);
        match out[1] {
            Instruction::Bra { target, reconv, .. } => {
                assert_eq!(target, 3);
                assert_eq!(reconv, 3);
            }
            ref other => panic!("expected branch, got {other:?}"),
        }
        // Removing the range a target points into collapses it to lo.
        let out = remove_range(&instrs, 3, 5).expect("removable");
        match out[2] {
            Instruction::Bra { target, .. } => assert_eq!(target, 3),
            ref other => panic!("expected branch, got {other:?}"),
        }
    }
}
