//! Static-vs-dynamic compressibility validation (`wcsim predict`).
//!
//! The abstract interpreter in [`simt_analysis::absint`] assigns every
//! register write site a worst-case [`CompressionClass`] before the
//! kernel ever runs. This module runs the kernel under the
//! warped-compression design point with per-write tracing and joins the
//! two views per write site:
//!
//! * **exact** — the static class matches the worst form the run
//!   actually stored at that site,
//! * **conservative** — the static class over-approximates (predicts a
//!   larger footprint than any stored write needed, or the site never
//!   executed),
//! * **unsound miss** — the run stored a form *larger* than the static
//!   class allows. This must never happen: any occurrence is a bug in
//!   the abstract domain and is surfaced as a hard error by the CLI.

use bdi::CompressionClass;
use gpu_power::CompressibilityComparison;
use gpu_sim::SimError;
use gpu_workloads::Workload;
use rayon::prelude::*;
use serde::Serialize;
use simt_analysis::{analyze_with_launch, KernelPrediction, LaunchInfo};

use crate::design::DesignPoint;

/// How a static site prediction compared against the simulated run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum SiteOutcome {
    /// Static class equals the worst class stored at this site.
    Exact,
    /// Static class over-approximates (or the site never executed).
    Conservative,
    /// The run stored a larger footprint than the static class allows.
    UnsoundMiss,
}

impl SiteOutcome {
    /// Stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SiteOutcome::Exact => "exact",
            SiteOutcome::Conservative => "conservative",
            SiteOutcome::UnsoundMiss => "unsound-miss",
        }
    }
}

/// One write site's static prediction joined with what the run stored.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct SiteValidation {
    /// Program counter of the writing instruction.
    pub pc: usize,
    /// Destination register.
    pub reg: u8,
    /// The statically predicted worst-case class.
    pub predicted: CompressionClass,
    /// The worst (largest-footprint) class the run stored at this pc,
    /// or `None` if the site never retired a write.
    pub measured: Option<CompressionClass>,
    /// Non-synthetic writes the site retired.
    pub executions: u64,
    /// The per-site verdict.
    pub outcome: SiteOutcome,
}

/// A full static-vs-dynamic compressibility report for one kernel.
#[derive(Clone, Debug, Serialize)]
pub struct PredictReport {
    /// Benchmark name.
    pub kernel: String,
    /// The static prediction the sites were validated against.
    pub prediction: KernelPrediction,
    /// Per-write-site validation verdicts, in pc order.
    pub sites: Vec<SiteValidation>,
    /// Static gateable-bank bound vs. measured mean gated banks.
    pub comparison: CompressibilityComparison,
}

impl PredictReport {
    /// Sites whose static class matched the measured worst class.
    pub fn exact_count(&self) -> usize {
        self.count(SiteOutcome::Exact)
    }

    /// Sites where the static class over-approximated.
    pub fn conservative_count(&self) -> usize {
        self.count(SiteOutcome::Conservative)
    }

    /// Sites where the run beat the static guarantee — must be zero.
    pub fn unsound_count(&self) -> usize {
        self.count(SiteOutcome::UnsoundMiss)
    }

    fn count(&self, outcome: SiteOutcome) -> usize {
        self.sites.iter().filter(|s| s.outcome == outcome).count()
    }

    /// Fraction of write sites predicted exactly (1.0 for a kernel with
    /// no write sites).
    pub fn exact_fraction(&self) -> f64 {
        if self.sites.is_empty() {
            return 1.0;
        }
        self.exact_count() as f64 / self.sites.len() as f64
    }

    /// Whether the report is sound: no site stored a larger form than
    /// its static class allows, and the static gateable-bank bound
    /// stayed below the measured figure.
    pub fn is_sound(&self) -> bool {
        self.unsound_count() == 0 && self.comparison.measured_within_static_bound()
    }
}

/// Prediction failures.
#[derive(Clone, Debug, PartialEq)]
pub enum PredictError {
    /// The simulation failed.
    Sim(SimError),
    /// The kernel has structural errors, so no prediction exists.
    Static {
        /// Benchmark name.
        kernel: String,
    },
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::Sim(e) => write!(f, "simulation failed: {e}"),
            PredictError::Static { kernel } => {
                write!(f, "kernel `{kernel}` has structural errors; no prediction")
            }
        }
    }
}

impl std::error::Error for PredictError {}

impl From<SimError> for PredictError {
    fn from(e: SimError) -> Self {
        PredictError::Sim(e)
    }
}

/// Runs the abstract interpreter and the simulator on one workload and
/// joins the two per write site.
///
/// The simulation uses the paper's warped-compression design point, the
/// configuration whose stored forms the static classes model.
///
/// # Errors
///
/// [`PredictError::Static`] if the kernel fails verification (no
/// workload in this repository does), [`PredictError::Sim`] if the
/// simulation fails.
pub fn predict_workload(workload: &Workload) -> Result<PredictReport, PredictError> {
    let launch = workload.launch();
    let info = LaunchInfo {
        params: launch.params().to_vec(),
        blocks: u32::try_from(launch.blocks()).ok(),
        threads_per_block: u32::try_from(launch.threads_per_block()).ok(),
        mem_words: u64::try_from(workload.fresh_memory().len()).ok(),
        initial_mem: None,
    };
    let analysis = analyze_with_launch(workload.kernel(), Some(&info));
    let prediction = analysis.prediction.ok_or_else(|| PredictError::Static {
        kernel: workload.name().to_string(),
    })?;

    // Trace the run: per-pc worst stored class and execution count,
    // plus the mean stored footprint in banks. Synthetic dummy MOVs
    // rewrite existing values and are not program write sites.
    let num_pcs = workload.kernel().instrs().len();
    let mut worst: Vec<Option<CompressionClass>> = vec![None; num_pcs];
    let mut execs: Vec<u64> = vec![0; num_pcs];
    let mut total_banks: u64 = 0;
    let mut total_writes: u64 = 0;
    let mut memory = workload.fresh_memory();
    gpu_sim::GpuSim::new(DesignPoint::WarpedCompression.config()).run_observed(
        workload.kernel(),
        launch,
        &mut memory,
        &mut |event| {
            if event.synthetic {
                return;
            }
            execs[event.pc] += 1;
            total_banks += event.class.banks() as u64;
            total_writes += 1;
            worst[event.pc] = Some(match worst[event.pc] {
                Some(prev) if prev.banks() >= event.class.banks() => prev,
                _ => event.class,
            });
        },
    )?;

    let sites = prediction
        .sites
        .iter()
        .map(|site| {
            let measured = worst[site.pc];
            let outcome = match measured {
                None => SiteOutcome::Conservative,
                Some(m) if m.banks() > site.class.banks() => SiteOutcome::UnsoundMiss,
                Some(m) if m.banks() == site.class.banks() => SiteOutcome::Exact,
                Some(_) => SiteOutcome::Conservative,
            };
            SiteValidation {
                pc: site.pc,
                reg: site.reg,
                predicted: site.class,
                measured,
                executions: execs[site.pc],
                outcome,
            }
        })
        .collect();

    let mean_footprint = if total_writes == 0 {
        CompressionClass::Uncompressed.banks() as f64
    } else {
        total_banks as f64 / total_writes as f64
    };
    let comparison = CompressibilityComparison::new(&prediction, mean_footprint);

    Ok(PredictReport {
        kernel: workload.name().to_string(),
        prediction,
        sites,
        comparison,
    })
}

/// Predicts and validates every workload, in parallel, in suite order.
///
/// # Errors
///
/// Fails on the earliest workload (in suite order) that errors.
pub fn predict_suite(workloads: &[Workload]) -> Result<Vec<PredictReport>, PredictError> {
    workloads.par_iter().map(predict_workload).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lib_is_sound_and_mostly_exact() {
        let w = gpu_workloads::by_name("lib").unwrap();
        let r = predict_workload(&w).unwrap();
        assert_eq!(r.kernel, "lib");
        assert_eq!(r.unsound_count(), 0, "unsound sites: {:?}", r.sites);
        assert!(r.is_sound());
        assert!(!r.sites.is_empty());
        assert_eq!(
            r.exact_count() + r.conservative_count(),
            r.sites.len(),
            "every site gets a verdict"
        );
    }

    #[test]
    fn divergent_kernel_stays_conservative() {
        // bfs diverges; divergent-region sites are pinned to
        // Uncompressed statically and the run stores them raw, so the
        // join stays sound.
        let w = gpu_workloads::by_name("bfs").unwrap();
        let r = predict_workload(&w).unwrap();
        assert_eq!(r.unsound_count(), 0, "unsound sites: {:?}", r.sites);
        assert!(r.comparison.measured_within_static_bound());
    }

    #[test]
    fn executed_sites_count_executions() {
        let w = gpu_workloads::by_name("lib").unwrap();
        let r = predict_workload(&w).unwrap();
        assert!(r.sites.iter().any(|s| s.executions > 0));
    }
}
