//! Cycle-level SIMT GPU core simulator.
//!
//! This crate plays the role GPGPU-Sim plays in the paper's methodology
//! (§6.1): it executes [`simt_isa`] kernels on a detailed model of one
//! streaming multiprocessor with
//!
//! * dual warp schedulers (Greedy-Then-Oldest or Loose Round-Robin,
//!   Table 2 / §6.5),
//! * a SIMT reconvergence stack per warp for branch divergence,
//! * a scoreboard (RAW/WAW/WAR) and operand collectors fetching operands
//!   through the banked register file's per-bank ports,
//! * a compression-aware writeback path: results pass through a limited
//!   pool of compressor units (2-cycle latency by default), compressed
//!   operand reads pass through decompressor units (1 cycle), and the
//!   dummy-MOV mechanism of §5.2 decompresses registers that are about to
//!   be written divergently,
//! * bank-level power gating with a 10-cycle wake-up stall (§5.3).
//!
//! The output is a [`SimResult`]: cycle count, instruction and divergence
//! statistics, compression ratios, and the raw bank activity that the
//! `gpu-power` crate turns into the paper's energy numbers.
//!
//! # Example
//!
//! ```
//! use gpu_sim::{GpuConfig, GpuSim, LaunchConfig, GlobalMemory};
//! use simt_isa::{AluOp, KernelBuilder, Operand, Reg, Special};
//!
//! // mem[gtid] = gtid + 10
//! let mut b = KernelBuilder::new("fill", 2);
//! b.mov(Reg(0), Operand::Special(Special::GlobalTid));
//! b.alu(AluOp::Add, Reg(1), Reg(0).into(), Operand::Imm(10));
//! b.st(Reg(0), 0, Reg(1));
//! b.exit();
//! let kernel = b.build()?;
//!
//! let mut memory = GlobalMemory::zeroed(64);
//! let launch = LaunchConfig::new(2, 32);
//! let result = GpuSim::new(GpuConfig::warped_compression())
//!     .run(&kernel, &launch, &mut memory)?;
//! assert_eq!(memory.word(63).unwrap(), 73);
//! assert!(result.stats.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chip;
mod config;
mod launch;
mod memory;
#[cfg(feature = "sanitize")]
mod sanitize;
mod scheduled;
mod scoreboard;
mod simt_stack;
mod sm;
mod stats;
mod warp;

pub use chip::ChipResult;
pub use config::{CompressionConfig, DivergencePolicy, GpuConfig, SchedulerPolicy};
pub use launch::{LaunchConfig, LaunchError};
pub use memory::{GlobalMemory, MemoryFault};
pub use scheduled::ScheduledResult;
pub use simt_stack::SimtStack;
pub use sm::{FinalRegs, GpuSim, SimError, SimResult};
pub use stats::{
    CensusStats, MemEvent, MemTrafficStats, PcMemTraffic, PcStalls, SimStats, StallCause,
    StallStats, WriteEvent,
};
