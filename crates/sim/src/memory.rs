//! Word-addressed global memory with bounds-checked access.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// An out-of-range global memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryFault {
    /// The faulting word address.
    pub addr: u32,
    /// Memory size in words.
    pub size: usize,
}

impl fmt::Display for MemoryFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "global memory access at word {} out of range (size {})",
            self.addr, self.size
        )
    }
}

impl Error for MemoryFault {}

/// Global device memory, addressed in 32-bit words.
///
/// The paper's observations hinge on register *values*, so a flat
/// fixed-latency memory (latency modelled in the pipeline, not here) is a
/// faithful substitute for GPGPU-Sim's DRAM model.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalMemory {
    words: Vec<u32>,
}

impl GlobalMemory {
    /// Memory of `size` words, all zero.
    pub fn zeroed(size: usize) -> Self {
        GlobalMemory {
            words: vec![0; size],
        }
    }

    /// Memory initialised from the given words.
    pub fn from_words(words: Vec<u32>) -> Self {
        GlobalMemory { words }
    }

    /// Size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory has zero words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Loads one word.
    ///
    /// # Errors
    ///
    /// [`MemoryFault`] when `addr` is out of range.
    pub fn load(&self, addr: u32) -> Result<u32, MemoryFault> {
        self.words.get(addr as usize).copied().ok_or(MemoryFault {
            addr,
            size: self.words.len(),
        })
    }

    /// Stores one word.
    ///
    /// # Errors
    ///
    /// [`MemoryFault`] when `addr` is out of range.
    pub fn store(&mut self, addr: u32, value: u32) -> Result<(), MemoryFault> {
        let size = self.words.len();
        match self.words.get_mut(addr as usize) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(MemoryFault { addr, size }),
        }
    }

    /// Direct read of a word for test assertions.
    ///
    /// # Errors
    ///
    /// [`MemoryFault`] when `addr` is out of range — the same typed
    /// error as [`load`](Self::load), so host-side checks never panic
    /// on untrusted addresses.
    pub fn word(&self, addr: usize) -> Result<u32, MemoryFault> {
        self.words.get(addr).copied().ok_or(MemoryFault {
            addr: u32::try_from(addr).unwrap_or(u32::MAX),
            size: self.words.len(),
        })
    }

    /// The full word array.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Mutable view for host-side initialisation.
    pub fn words_mut(&mut self) -> &mut [u32] {
        &mut self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_round_trip() {
        let mut m = GlobalMemory::zeroed(4);
        m.store(2, 99).unwrap();
        assert_eq!(m.load(2), Ok(99));
        assert_eq!(m.word(2).unwrap(), 99);
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = GlobalMemory::zeroed(4);
        assert_eq!(m.load(4), Err(MemoryFault { addr: 4, size: 4 }));
        assert_eq!(m.store(100, 1), Err(MemoryFault { addr: 100, size: 4 }));
    }

    #[test]
    fn from_words_preserves_content() {
        let m = GlobalMemory::from_words(vec![5, 6, 7]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.words(), &[5, 6, 7]);
    }

    #[test]
    fn fault_display() {
        let f = MemoryFault { addr: 9, size: 4 };
        assert!(f.to_string().contains("word 9"));
    }
}
