//! The SIMT reconvergence stack (GPGPU-Sim style).
//!
//! Each warp carries a stack of `(pc, active mask, reconvergence pc)`
//! entries. Execution always proceeds at the top entry. On a divergent
//! branch the current entry is rewritten to wait at the reconvergence
//! point and one entry per outcome is pushed; an entry pops when its pc
//! reaches its reconvergence pc, merging its threads back. This exactly
//! reproduces the divergence/reconvergence phases whose compression
//! behaviour §3 and §5.2 characterise.

use serde::{Deserialize, Serialize};

/// Sentinel reconvergence pc of the base entry: never popped by pc match.
const TOP_LEVEL: usize = usize::MAX;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    pc: usize,
    mask: u32,
    reconv: usize,
}

/// Per-warp SIMT reconvergence stack.
///
/// # Example
///
/// ```
/// use gpu_sim::SimtStack;
///
/// let mut s = SimtStack::new(0xF, 0);          // 4 threads at pc 0
/// s.branch(0x3, 10, 5);                        // threads 0,1 take; reconv at 5
/// assert_eq!(s.pc(), Some(10));                // taken path runs first
/// assert_eq!(s.mask(), 0x3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimtStack {
    entries: Vec<Entry>,
}

impl SimtStack {
    /// A converged warp of the given threads starting at `start_pc`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_mask` is zero — a warp needs at least one
    /// thread.
    pub fn new(initial_mask: u32, start_pc: usize) -> Self {
        assert!(initial_mask != 0, "warp needs a non-empty initial mask");
        SimtStack {
            entries: vec![Entry {
                pc: start_pc,
                mask: initial_mask,
                reconv: TOP_LEVEL,
            }],
        }
    }

    /// Current pc, or `None` once every thread has exited.
    pub fn pc(&self) -> Option<usize> {
        self.entries.last().map(|e| e.pc)
    }

    /// Current active mask (0 when the warp is done).
    pub fn mask(&self) -> u32 {
        self.entries.last().map(|e| e.mask).unwrap_or(0)
    }

    /// Whether the warp is executing below top level — i.e. some threads
    /// are parked at a reconvergence point. Combined with a partial mask
    /// this is the "divergent" state of §3.
    pub fn is_diverged(&self) -> bool {
        self.entries.len() > 1
    }

    /// Stack depth (1 = converged).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Advances past a non-control instruction: `pc += 1`, then pops any
    /// entries that reached their reconvergence point.
    pub fn advance(&mut self) {
        if let Some(top) = self.entries.last_mut() {
            top.pc += 1;
        }
        self.pop_reconverged();
    }

    /// Unconditional jump of the whole active mask.
    pub fn jump(&mut self, target: usize) {
        if let Some(top) = self.entries.last_mut() {
            top.pc = target;
        }
        self.pop_reconverged();
    }

    /// Resolves a conditional branch at the current pc.
    ///
    /// `taken_mask` must be a subset of the current mask. Returns `true`
    /// if the branch diverged (both outcomes non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `taken_mask` has bits outside the active mask or the
    /// stack is empty.
    pub fn branch(&mut self, taken_mask: u32, target: usize, reconv: usize) -> bool {
        let top = *self.entries.last().expect("branch on finished warp");
        assert_eq!(taken_mask & !top.mask, 0, "taken mask outside active mask");
        let fall_mask = top.mask & !taken_mask;
        let fall_pc = top.pc + 1;
        let diverged = taken_mask != 0 && fall_mask != 0;
        if !diverged {
            let top = self.entries.last_mut().expect("checked non-empty");
            top.pc = if taken_mask != 0 { target } else { fall_pc };
        } else {
            // Current entry waits at the reconvergence point; push the
            // fall-through path, then the taken path (runs first).
            let top = self.entries.last_mut().expect("checked non-empty");
            top.pc = reconv;
            self.entries.push(Entry {
                pc: fall_pc,
                mask: fall_mask,
                reconv,
            });
            self.entries.push(Entry {
                pc: target,
                mask: taken_mask,
                reconv,
            });
        }
        self.pop_reconverged();
        diverged
    }

    /// Retires the currently active threads (an `exit` instruction):
    /// removes them from every stack entry and drops empty entries.
    pub fn exit_threads(&mut self) {
        let mask = self.mask();
        for e in &mut self.entries {
            e.mask &= !mask;
        }
        self.entries.retain(|e| e.mask != 0);
        self.pop_reconverged();
    }

    /// Whether every thread has exited.
    pub fn is_done(&self) -> bool {
        self.entries.is_empty()
    }

    fn pop_reconverged(&mut self) {
        while let Some(top) = self.entries.last() {
            if self.entries.len() > 1 && top.pc == top.reconv {
                self.entries.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_execution() {
        let mut s = SimtStack::new(0xFFFF_FFFF, 0);
        s.advance();
        s.advance();
        assert_eq!(s.pc(), Some(2));
        assert_eq!(s.mask(), 0xFFFF_FFFF);
        assert!(!s.is_diverged());
    }

    #[test]
    fn uniform_taken_branch_jumps() {
        let mut s = SimtStack::new(0xF, 0);
        assert!(!s.branch(0xF, 7, 9));
        assert_eq!(s.pc(), Some(7));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn uniform_not_taken_branch_falls_through() {
        let mut s = SimtStack::new(0xF, 3);
        assert!(!s.branch(0, 7, 9));
        assert_eq!(s.pc(), Some(4));
    }

    #[test]
    fn divergent_branch_runs_taken_then_fall_then_reconverges() {
        // if (tid < 2) { pc 1..3 } else { pc 3.. } reconv at 5
        let mut s = SimtStack::new(0xF, 0);
        assert!(s.branch(0x3, 3, 5));
        // Taken path first.
        assert_eq!((s.pc(), s.mask()), (Some(3), 0x3));
        assert!(s.is_diverged());
        s.advance(); // pc 4
        s.advance(); // pc 5 == reconv -> pop to fall path
        assert_eq!((s.pc(), s.mask()), (Some(1), 0xC));
        s.advance(); // 2
        s.advance(); // 3
        s.advance(); // 4
        s.advance(); // 5 == reconv -> pop to base
        assert_eq!((s.pc(), s.mask()), (Some(5), 0xF));
        assert!(!s.is_diverged());
    }

    #[test]
    fn nested_divergence() {
        let mut s = SimtStack::new(0xF, 0);
        s.branch(0x3, 10, 20); // outer
        assert_eq!((s.pc(), s.mask()), (Some(10), 0x3));
        s.branch(0x1, 15, 18); // inner, within taken path
        assert_eq!((s.pc(), s.mask()), (Some(15), 0x1));
        // base(reconv) + outer-fall + outer-taken(waiting) + inner-fall +
        // inner-taken = 5 entries.
        assert_eq!(s.depth(), 5);
        // Inner taken reaches 18 -> inner fall (pc 11, mask 0x2).
        s.jump(18);
        assert_eq!((s.pc(), s.mask()), (Some(11), 0x2));
        // Inner fall reaches 18 -> inner reconv entry (mask 0x3) at 18.
        s.jump(18);
        assert_eq!((s.pc(), s.mask()), (Some(18), 0x3));
        // Proceed to outer reconv 20 -> outer fall path pc 1 mask 0xC.
        s.jump(20);
        assert_eq!((s.pc(), s.mask()), (Some(1), 0xC));
        s.jump(20);
        assert_eq!((s.pc(), s.mask()), (Some(20), 0xF));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn loop_branch_diverges_each_trip() {
        // while (pred) body; branch at pc 2 back to 1, reconv (exit) at 3.
        let mut s = SimtStack::new(0x7, 2);
        // Two threads keep looping, one exits.
        assert!(s.branch(0x3, 1, 3));
        assert_eq!((s.pc(), s.mask()), (Some(1), 0x3));
        s.advance(); // pc 2 (branch again)
                     // Now all remaining threads exit the loop.
        assert!(!s.branch(0x0, 1, 3));
        // Fall-through entry reaches pc 3 == reconv, pops; base entry at 3.
        assert_eq!((s.pc(), s.mask()), (Some(3), 0x7));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn exit_under_divergence_keeps_other_paths() {
        let mut s = SimtStack::new(0xF, 0);
        s.branch(0x3, 10, 20);
        // Taken threads exit inside the branch.
        s.exit_threads();
        // Fall path continues.
        assert_eq!((s.pc(), s.mask()), (Some(1), 0xC));
        // Fall path reconverges and finishes at top level.
        s.jump(20);
        assert_eq!((s.pc(), s.mask()), (Some(20), 0xC));
        s.exit_threads();
        assert!(s.is_done());
        assert_eq!(s.mask(), 0);
        assert_eq!(s.pc(), None);
    }

    #[test]
    fn full_warp_exit_finishes() {
        let mut s = SimtStack::new(u32::MAX, 0);
        s.exit_threads();
        assert!(s.is_done());
    }

    #[test]
    #[should_panic(expected = "non-empty initial mask")]
    fn empty_mask_rejected() {
        let _ = SimtStack::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "outside active mask")]
    fn taken_mask_must_be_subset() {
        let mut s = SimtStack::new(0x1, 0);
        s.branch(0x2, 1, 2);
    }
}
