//! Whole-chip simulation: blocks distributed across multiple SMs.
//!
//! The paper's GPU has 15 SMs (Table 2); register-file energy is per-SM,
//! so the single-SM results of the figures are representative. This
//! module adds the chip view for users who want whole-launch numbers:
//! the grid's blocks are partitioned contiguously across
//! [`GpuConfig::num_sms`] SMs, each SM runs its share, and the chip
//! statistics are aggregated (cycles = slowest SM; event counters
//! summed).
//!
//! SMs are simulated one after another against the same global memory.
//! For the (race-free) workloads in this repository the result is
//! identical to a true parallel interleaving; kernels with cross-block
//! races would see one legal interleaving, exactly as on real hardware.

use simt_isa::Kernel;

use crate::launch::LaunchConfig;
use crate::memory::GlobalMemory;
use crate::sm::{GpuSim, SimError, SimResult};
use crate::stats::{SimStats, WriteEvent};

/// Result of a whole-chip run.
#[derive(Clone, Debug, PartialEq)]
pub struct ChipResult {
    /// Each SM's individual result, indexed by SM id. SMs that received
    /// no blocks report empty stats.
    pub per_sm: Vec<SimResult>,
    /// Aggregated chip statistics: `cycles` is the slowest SM (the
    /// launch's makespan), event counters are sums, and the register-file
    /// per-bank vectors are element-wise sums across the SMs' private
    /// register files.
    pub chip: SimStats,
}

impl GpuSim {
    /// Runs a launch across all configured SMs.
    ///
    /// # Errors
    ///
    /// Fails on the first SM that errors (see [`SimError`]).
    pub fn run_chip(
        &self,
        kernel: &Kernel,
        launch: &LaunchConfig,
        memory: &mut GlobalMemory,
    ) -> Result<ChipResult, SimError> {
        self.run_chip_observed(kernel, launch, memory, &mut |_| {})
    }

    /// Like [`run_chip`](Self::run_chip) with a register-write observer
    /// (events from all SMs are interleaved in SM order).
    ///
    /// # Errors
    ///
    /// Fails on the first SM that errors.
    pub fn run_chip_observed(
        &self,
        kernel: &Kernel,
        launch: &LaunchConfig,
        memory: &mut GlobalMemory,
        observer: &mut dyn FnMut(&WriteEvent),
    ) -> Result<ChipResult, SimError> {
        let num_sms = self.config().num_sms.max(1);
        let blocks = launch.blocks();
        let per_sm_blocks = blocks.div_ceil(num_sms);
        let mut per_sm = Vec::with_capacity(num_sms);
        let mut chip = SimStats::default();
        for sm in 0..num_sms {
            let start = (sm * per_sm_blocks).min(blocks);
            let end = ((sm + 1) * per_sm_blocks).min(blocks);
            let result = if start < end {
                self.run_block_range(kernel, launch, memory, start..end, observer)?
            } else {
                SimResult {
                    stats: SimStats::default(),
                }
            };
            merge_stats(&mut chip, &result.stats);
            per_sm.push(result);
        }
        Ok(ChipResult { per_sm, chip })
    }
}

/// Aggregates one SM's stats into the chip totals.
fn merge_stats(chip: &mut SimStats, sm: &SimStats) {
    chip.cycles = chip.cycles.max(sm.cycles);
    chip.instructions += sm.instructions;
    chip.synthetic_movs += sm.synthetic_movs;
    chip.divergent_instructions += sm.divergent_instructions;
    chip.writes += sm.writes;
    chip.writes_compressed += sm.writes_compressed;
    chip.nondiv_logical_bytes += sm.nondiv_logical_bytes;
    chip.nondiv_stored_bytes += sm.nondiv_stored_bytes;
    chip.div_logical_bytes += sm.div_logical_bytes;
    chip.div_stored_bytes += sm.div_stored_bytes;
    chip.compressor_activations += sm.compressor_activations;
    chip.decompressor_activations += sm.decompressor_activations;
    chip.collector_retry_cycles += sm.collector_retry_cycles;
    chip.census.nondiv_compressed += sm.census.nondiv_compressed;
    chip.census.nondiv_total += sm.census.nondiv_total;
    chip.census.div_compressed += sm.census.div_compressed;
    chip.census.div_total += sm.census.div_total;

    let banks = sm.regfile.bank_reads.len();
    if chip.regfile.bank_reads.len() < banks {
        chip.regfile.bank_reads.resize(banks, 0);
        chip.regfile.bank_writes.resize(banks, 0);
        chip.regfile.gated_cycles.resize(banks, 0);
    }
    for b in 0..banks {
        chip.regfile.bank_reads[b] += sm.regfile.bank_reads[b];
        chip.regfile.bank_writes[b] += sm.regfile.bank_writes[b];
        chip.regfile.gated_cycles[b] += sm.regfile.gated_cycles[b];
    }
    chip.gating = sm.gating;
    chip.regfile.wakeups += sm.regfile.wakeups;
    chip.regfile.total_cycles = chip.regfile.total_cycles.max(sm.regfile.total_cycles);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use simt_isa::{AluOp, KernelBuilder, Operand, Reg, Special};

    /// mem[gtid] = gtid + 5
    fn kernel() -> Kernel {
        let mut b = KernelBuilder::new("chip", 2);
        b.mov(Reg(0), Operand::Special(Special::GlobalTid));
        b.alu(AluOp::Add, Reg(1), Reg(0).into(), Operand::Imm(5));
        b.st(Reg(0), 0, Reg(1));
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn chip_run_matches_single_sm_results() {
        let kernel = kernel();
        let launch = LaunchConfig::new(30, 64);
        let mut cfg = GpuConfig::warped_compression();
        cfg.num_sms = 15;
        let mut m_chip = GlobalMemory::zeroed(30 * 64);
        let chip = GpuSim::new(cfg.clone())
            .run_chip(&kernel, &launch, &mut m_chip)
            .unwrap();

        let mut m_single = GlobalMemory::zeroed(30 * 64);
        let single = GpuSim::new(cfg)
            .run(&kernel, &launch, &mut m_single)
            .unwrap();

        assert_eq!(m_chip, m_single, "chip and single-SM results differ");
        assert_eq!(chip.chip.instructions, single.stats.instructions);
        assert_eq!(chip.per_sm.len(), 15);
        // 30 blocks over 15 SMs = 2 blocks per SM: every SM worked.
        assert!(chip.per_sm.iter().all(|r| r.stats.instructions > 0));
        // The makespan of 2 blocks is far less than 30 blocks queued on
        // one SM... but 30 blocks already fit concurrently on one SM
        // (2 warps each), so just sanity-check the makespan is plausible.
        assert!(chip.chip.cycles <= single.stats.cycles);
    }

    #[test]
    fn uneven_block_partition_is_complete() {
        let kernel = kernel();
        let launch = LaunchConfig::new(7, 32);
        let mut cfg = GpuConfig::warped_compression();
        cfg.num_sms = 3;
        let mut mem = GlobalMemory::zeroed(7 * 32);
        let chip = GpuSim::new(cfg)
            .run_chip(&kernel, &launch, &mut mem)
            .unwrap();
        // ceil(7/3) = 3 blocks on SM0, 3 on SM1, 1 on SM2.
        for i in 0..7 * 32 {
            assert_eq!(mem.word(i).unwrap(), i as u32 + 5);
        }
        let total: u64 = chip.per_sm.iter().map(|r| r.stats.instructions).sum();
        assert_eq!(total, chip.chip.instructions);
        assert_eq!(
            chip.per_sm[2].stats.instructions * 3,
            chip.per_sm[0].stats.instructions
        );
    }

    #[test]
    fn more_sms_than_blocks_leaves_idle_sms() {
        let kernel = kernel();
        let launch = LaunchConfig::new(2, 32);
        let mut cfg = GpuConfig::baseline();
        cfg.num_sms = 8;
        let mut mem = GlobalMemory::zeroed(64);
        let chip = GpuSim::new(cfg)
            .run_chip(&kernel, &launch, &mut mem)
            .unwrap();
        let busy = chip
            .per_sm
            .iter()
            .filter(|r| r.stats.instructions > 0)
            .count();
        assert!((1..=2).contains(&busy));
        for i in 0..64 {
            assert_eq!(mem.word(i).unwrap(), i as u32 + 5);
        }
    }

    #[test]
    fn chip_observer_sees_all_sms_writes() {
        let kernel = kernel();
        let launch = LaunchConfig::new(4, 32);
        let mut cfg = GpuConfig::warped_compression();
        cfg.num_sms = 2;
        let mut mem = GlobalMemory::zeroed(128);
        let mut events = 0u64;
        GpuSim::new(cfg)
            .run_chip_observed(&kernel, &launch, &mut mem, &mut |_| events += 1)
            .unwrap();
        // Two register writes per warp (mov + add), 4 blocks × 1 warp.
        assert_eq!(events, 8);
    }
}
