//! Per-warp runtime state.

use crate::simt_stack::SimtStack;

/// A resident warp's execution context: identity within its block plus
/// the SIMT stack. Register values live in the register file, not here.
#[derive(Clone, Debug)]
pub struct WarpState {
    /// Hardware warp slot (register file cluster = slot % 4).
    pub slot: usize,
    /// Index of this warp's block in the grid.
    pub block: usize,
    /// Warp index within the block.
    pub warp_in_block: usize,
    /// Bits set for threads that exist (partial last warp has fewer).
    pub full_mask: u32,
    /// SIMT reconvergence stack.
    pub stack: SimtStack,
    /// Waiting on an unresolved branch: cannot issue.
    pub blocked: bool,
    /// Monotonic launch sequence number (GTO "oldest" order).
    pub launch_seq: u64,
    /// In-flight instructions (issue .. retire); a warp frees its slot
    /// only when done and drained.
    pub inflight: usize,
    /// Memory instructions issued but not yet dispatched. The LSU keeps
    /// per-warp program order for memory effects, so a warp may not issue
    /// a new load/store while one is still collecting operands.
    pub pending_mem: usize,
}

impl WarpState {
    /// Creates a warp ready to run from pc 0.
    pub fn new(
        slot: usize,
        block: usize,
        warp_in_block: usize,
        threads: usize,
        launch_seq: u64,
    ) -> Self {
        assert!((1..=32).contains(&threads), "warp needs 1..=32 threads");
        let full_mask = if threads == 32 {
            u32::MAX
        } else {
            (1u32 << threads) - 1
        };
        WarpState {
            slot,
            block,
            warp_in_block,
            full_mask,
            stack: SimtStack::new(full_mask, 0),
            blocked: false,
            launch_seq,
            inflight: 0,
            pending_mem: 0,
        }
    }

    /// Whether the warp currently executes with a partial mask or below
    /// top level — the paper's "divergent" execution phase.
    pub fn is_divergent(&self) -> bool {
        self.stack.is_diverged() || (self.stack.mask() != self.full_mask && !self.stack.is_done())
    }

    /// All threads exited.
    pub fn is_done(&self) -> bool {
        self.stack.is_done()
    }

    /// Done and no in-flight instructions: slot may be recycled.
    pub fn is_drained(&self) -> bool {
        self.is_done() && self.inflight == 0
    }

    /// The thread index (within the block) of `lane`.
    pub fn tid_of_lane(&self, lane: usize, warp_size: usize) -> u32 {
        (self.warp_in_block * warp_size + lane) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_warp_mask() {
        let w = WarpState::new(0, 0, 0, 32, 0);
        assert_eq!(w.full_mask, u32::MAX);
        assert!(!w.is_divergent());
        assert!(!w.is_done());
    }

    #[test]
    fn partial_warp_mask() {
        let w = WarpState::new(0, 0, 1, 8, 0);
        assert_eq!(w.full_mask, 0xFF);
        // A partial warp running all its threads is not divergent.
        assert!(!w.is_divergent());
    }

    #[test]
    fn divergence_detection() {
        let mut w = WarpState::new(0, 0, 0, 4, 0);
        w.stack.branch(0x3, 5, 9);
        assert!(w.is_divergent());
    }

    #[test]
    fn tid_mapping() {
        let w = WarpState::new(0, 2, 3, 32, 0);
        assert_eq!(w.tid_of_lane(5, 32), 3 * 32 + 5);
    }

    #[test]
    fn drained_requires_no_inflight() {
        let mut w = WarpState::new(0, 0, 0, 1, 0);
        w.inflight = 1;
        w.stack.exit_threads();
        assert!(w.is_done());
        assert!(!w.is_drained());
        w.inflight = 0;
        assert!(w.is_drained());
    }

    #[test]
    #[should_panic(expected = "1..=32 threads")]
    fn oversized_warp_rejected() {
        let _ = WarpState::new(0, 0, 0, 33, 0);
    }
}
