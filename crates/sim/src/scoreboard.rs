//! Per-warp register scoreboard: RAW, WAW and WAR hazard tracking.

use std::collections::HashMap;

/// Tracks pending register reads and writes per (warp slot, register).
///
/// An instruction may issue only if
/// * none of its sources has a pending write (RAW),
/// * its destination has no pending write (WAW), and
/// * its destination has no pending read (WAR — operand values are
///   captured when the collector fetches them, so a later write must not
///   land first).
#[derive(Clone, Debug, Default)]
pub struct Scoreboard {
    pending_writes: HashMap<(usize, usize), u32>,
    pending_reads: HashMap<(usize, usize), u32>,
}

impl Scoreboard {
    /// An empty scoreboard.
    pub fn new() -> Self {
        Scoreboard::default()
    }

    /// Whether an instruction reading `srcs` and writing `dst` may issue
    /// on `warp`.
    pub fn can_issue(&self, warp: usize, srcs: &[usize], dst: Option<usize>) -> bool {
        if srcs
            .iter()
            .any(|&r| self.pending_writes.contains_key(&(warp, r)))
        {
            return false; // RAW
        }
        if let Some(d) = dst {
            if self.pending_writes.contains_key(&(warp, d)) {
                return false; // WAW
            }
            if self.pending_reads.contains_key(&(warp, d)) {
                return false; // WAR
            }
        }
        true
    }

    /// Registers the hazards of an issuing instruction.
    pub fn issue(&mut self, warp: usize, srcs: &[usize], dst: Option<usize>) {
        for &r in srcs {
            *self.pending_reads.entry((warp, r)).or_insert(0) += 1;
        }
        if let Some(d) = dst {
            *self.pending_writes.entry((warp, d)).or_insert(0) += 1;
        }
    }

    /// Releases the read reservations (operands captured by the
    /// collector).
    ///
    /// # Panics
    ///
    /// Panics if a read was never registered — an accounting bug.
    pub fn release_reads(&mut self, warp: usize, srcs: &[usize]) {
        for &r in srcs {
            let n = self
                .pending_reads
                .get_mut(&(warp, r))
                .expect("release of unregistered read");
            *n -= 1;
            if *n == 0 {
                self.pending_reads.remove(&(warp, r));
            }
        }
    }

    /// Releases the write reservation (result written back).
    ///
    /// # Panics
    ///
    /// Panics if the write was never registered.
    pub fn release_write(&mut self, warp: usize, dst: usize) {
        let n = self
            .pending_writes
            .get_mut(&(warp, dst))
            .expect("release of unregistered write");
        *n -= 1;
        if *n == 0 {
            self.pending_writes.remove(&(warp, dst));
        }
    }

    /// Whether the warp has no in-flight register activity.
    pub fn is_warp_idle(&self, warp: usize) -> bool {
        !self.pending_writes.keys().any(|&(w, _)| w == warp)
            && !self.pending_reads.keys().any(|&(w, _)| w == warp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_hazard_blocks() {
        let mut sb = Scoreboard::new();
        sb.issue(0, &[1], Some(2));
        assert!(!sb.can_issue(0, &[2], None)); // RAW on r2
        sb.release_write(0, 2);
        assert!(sb.can_issue(0, &[2], None));
    }

    #[test]
    fn waw_hazard_blocks() {
        let mut sb = Scoreboard::new();
        sb.issue(0, &[], Some(3));
        assert!(!sb.can_issue(0, &[], Some(3)));
        sb.release_write(0, 3);
        assert!(sb.can_issue(0, &[], Some(3)));
    }

    #[test]
    fn war_hazard_blocks_until_operands_captured() {
        let mut sb = Scoreboard::new();
        sb.issue(0, &[5], Some(6));
        assert!(!sb.can_issue(0, &[], Some(5))); // WAR on r5
        sb.release_reads(0, &[5]);
        assert!(sb.can_issue(0, &[], Some(5)));
    }

    #[test]
    fn warps_are_independent() {
        let mut sb = Scoreboard::new();
        sb.issue(0, &[1], Some(2));
        assert!(sb.can_issue(1, &[2], Some(2)));
        assert!(!sb.is_warp_idle(0));
        assert!(sb.is_warp_idle(1));
    }

    #[test]
    fn duplicate_reads_are_counted() {
        let mut sb = Scoreboard::new();
        sb.issue(0, &[1], None);
        sb.issue(0, &[1], None);
        sb.release_reads(0, &[1]);
        assert!(!sb.can_issue(0, &[], Some(1)));
        sb.release_reads(0, &[1]);
        assert!(sb.can_issue(0, &[], Some(1)));
    }

    #[test]
    #[should_panic(expected = "unregistered write")]
    fn unbalanced_write_release_panics() {
        Scoreboard::new().release_write(0, 1);
    }

    #[test]
    #[should_panic(expected = "unregistered read")]
    fn unbalanced_read_release_panics() {
        Scoreboard::new().release_reads(0, &[1]);
    }
}
