//! Simulator configuration (the paper's Table 2).

use bdi::ChoiceSet;
use gpu_regfile::RegFileConfig;
use serde::{Deserialize, Serialize};

/// Warp scheduling policy (§6.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Greedy-Then-Oldest: keep issuing from the same warp until it
    /// stalls, then switch to the oldest ready warp (Table 2 default).
    Gto,
    /// Loose Round-Robin: rotate to the next ready warp every cycle.
    Lrr,
}

/// How divergent register writes interact with compression (§5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DivergencePolicy {
    /// The paper's choice: registers written by divergent instructions
    /// are stored uncompressed; a compressed destination is first
    /// decompressed by an injected dummy MOV.
    UncompressedWrites,
    /// The rejected alternative: read + decompress the old value, merge
    /// the active lanes, recompress, store. No MOVs, but extra reads,
    /// decompressions and compressor work on every divergent write.
    DecompressMergeRecompress,
}

/// Compression datapath configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompressionConfig {
    /// The BDI choices the compressor may use. `ChoiceSet::disabled()`
    /// yields the no-compression baseline.
    pub choices: ChoiceSet,
    /// Divergent-write handling.
    pub divergence: DivergencePolicy,
    /// Compression pipeline latency in cycles (Table 2: 2; Fig. 20 sweeps
    /// 2/4/8).
    pub compression_latency: u64,
    /// Decompression pipeline latency in cycles (Table 2: 1; Fig. 21
    /// sweeps 2/4/8).
    pub decompression_latency: u64,
    /// Compressor units per SM (Table 2: 2) — at most this many
    /// compressions can start per cycle.
    pub num_compressors: usize,
    /// Decompressor units per SM (Table 2: 4) — at most this many
    /// compressed-operand reads can start per cycle.
    pub num_decompressors: usize,
}

impl CompressionConfig {
    /// The paper's warped-compression configuration.
    pub fn warped_compression() -> Self {
        CompressionConfig {
            choices: ChoiceSet::warped_compression(),
            divergence: DivergencePolicy::UncompressedWrites,
            compression_latency: 2,
            decompression_latency: 1,
            num_compressors: 2,
            num_decompressors: 4,
        }
    }

    /// The uncompressed baseline: no compressor hardware at all.
    pub fn disabled() -> Self {
        CompressionConfig {
            choices: ChoiceSet::disabled(),
            ..CompressionConfig::warped_compression()
        }
    }

    /// Whether compression is active.
    pub fn is_enabled(&self) -> bool {
        !self.choices.is_disabled()
    }
}

/// Full single-SM configuration.
///
/// Constructors [`GpuConfig::baseline`] and
/// [`GpuConfig::warped_compression`] give the two designs the paper
/// compares; everything else is a field tweak away.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// SMs on the chip (Table 2: 15). The simulator models one SM; this
    /// only scales whole-chip reporting.
    pub num_sms: usize,
    /// Threads per warp (Table 2: 32).
    pub warp_size: usize,
    /// Maximum resident warps per SM (Table 2: 48).
    pub max_warps_per_sm: usize,
    /// Warp schedulers per SM (Table 2: 2); warp slot *s* belongs to
    /// scheduler `s % num_schedulers`.
    pub num_schedulers: usize,
    /// Scheduling policy (Table 2: GTO).
    pub scheduler: SchedulerPolicy,
    /// Operand-collector units buffering in-flight operand fetches.
    pub num_collectors: usize,
    /// Dependent-issue latency of simple ALU ops, cycles.
    pub alu_latency: u64,
    /// Latency of mul/div (SFU-class) ops, cycles.
    pub sfu_latency: u64,
    /// Global memory round-trip latency, cycles.
    pub mem_latency: u64,
    /// Register file geometry and gating.
    pub regfile: RegFileConfig,
    /// Compression datapath.
    pub compression: CompressionConfig,
    /// Cycles interval at which the Fig. 12 compressed-register census is
    /// sampled.
    pub census_interval: u64,
    /// Hard cycle cap — exceeding it aborts the run with
    /// [`SimError::CycleLimit`](crate::SimError).
    pub max_cycles: u64,
}

impl GpuConfig {
    /// The paper's baseline GPU: no compression, no power gating.
    pub fn baseline() -> Self {
        GpuConfig {
            num_sms: 15,
            warp_size: 32,
            max_warps_per_sm: 48,
            num_schedulers: 2,
            scheduler: SchedulerPolicy::Gto,
            num_collectors: 8,
            alu_latency: 4,
            sfu_latency: 16,
            mem_latency: 100,
            regfile: RegFileConfig {
                gating: gpu_regfile::GatingMode::Off,
                ..RegFileConfig::paper_baseline()
            },
            compression: CompressionConfig::disabled(),
            census_interval: 128,
            max_cycles: 200_000_000,
        }
    }

    /// The paper's warped-compression GPU: BDI compression with dynamic
    /// ⟨4,0⟩/⟨4,1⟩/⟨4,2⟩ selection, dummy-MOV divergence handling and
    /// bank-level power gating.
    pub fn warped_compression() -> Self {
        GpuConfig {
            regfile: RegFileConfig::paper_baseline(),
            compression: CompressionConfig::warped_compression(),
            ..GpuConfig::baseline()
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::warped_compression()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_no_compression_or_gating() {
        let c = GpuConfig::baseline();
        assert!(!c.compression.is_enabled());
        assert!(!c.regfile.gating.is_enabled());
    }

    #[test]
    fn warped_compression_matches_table_2() {
        let c = GpuConfig::warped_compression();
        assert!(c.compression.is_enabled());
        assert!(c.regfile.gating.is_enabled());
        assert_eq!(c.compression.compression_latency, 2);
        assert_eq!(c.compression.decompression_latency, 1);
        assert_eq!(c.compression.num_compressors, 2);
        assert_eq!(c.compression.num_decompressors, 4);
        assert_eq!(c.max_warps_per_sm, 48);
        assert_eq!(c.num_schedulers, 2);
        assert_eq!(c.scheduler, SchedulerPolicy::Gto);
    }
}
