//! Independent hazard oracle for `sanitize` builds.
//!
//! The pipeline's [`Scoreboard`](crate::scoreboard::Scoreboard) is what
//! *prevents* RAW/WAW/WAR hazards; this oracle re-derives the same
//! pending-read/pending-write state from the issue, operand-capture and
//! writeback events and panics if an instruction ever issues into a
//! hazard the scoreboard should have blocked. Because it is fed by the
//! events themselves (not by the scoreboard's internal state), a
//! scoreboard bookkeeping bug cannot hide from it.
//!
//! Every violation message carries the kernel name plus the offending
//! slot (and pc at issue) so a fuzzer-shrunk reproducer or triage log is
//! self-describing without the surrounding run context.

/// Per-(warp slot, register) pending-access counters.
#[derive(Clone, Debug)]
pub(crate) struct HazardOracle {
    /// Kernel name, for self-describing violation messages.
    kernel: String,
    /// `pending_reads[slot][reg]`: operands issued but not yet captured.
    pending_reads: Vec<Vec<u32>>,
    /// `pending_writes[slot][reg]`: results issued but not yet retired.
    pending_writes: Vec<Vec<u32>>,
}

impl HazardOracle {
    pub(crate) fn new(kernel: &str, max_slots: usize, num_regs: usize) -> Self {
        HazardOracle {
            kernel: kernel.to_string(),
            pending_reads: vec![vec![0; num_regs]; max_slots],
            pending_writes: vec![vec![0; num_regs]; max_slots],
        }
    }

    /// Checks an issuing instruction against the three hazard classes,
    /// then registers its reservations.
    pub(crate) fn on_issue(&mut self, slot: usize, pc: usize, srcs: &[usize], dst: Option<usize>) {
        let kernel = &self.kernel;
        for &r in srcs {
            assert_eq!(
                self.pending_writes[slot][r], 0,
                "sanitize: RAW hazard in kernel `{kernel}` — slot {slot} at pc {pc} issues a read of r{r} with a write in flight"
            );
        }
        if let Some(d) = dst {
            assert_eq!(
                self.pending_writes[slot][d], 0,
                "sanitize: WAW hazard in kernel `{kernel}` — slot {slot} at pc {pc} issues a write of r{d} with a write in flight"
            );
            assert_eq!(
                self.pending_reads[slot][d], 0,
                "sanitize: WAR hazard in kernel `{kernel}` — slot {slot} at pc {pc} issues a write of r{d} with a read in flight"
            );
        }
        for &r in srcs {
            self.pending_reads[slot][r] += 1;
        }
        if let Some(d) = dst {
            self.pending_writes[slot][d] += 1;
        }
    }

    /// The collector captured the operand values (WAR window closes).
    pub(crate) fn on_capture(&mut self, slot: usize, srcs: &[usize]) {
        for &r in srcs {
            assert!(
                self.pending_reads[slot][r] > 0,
                "sanitize: kernel `{}` — slot {slot} captures r{r} with no read in flight",
                self.kernel
            );
            self.pending_reads[slot][r] -= 1;
        }
    }

    /// The result reached the register file (RAW/WAW windows close).
    pub(crate) fn on_retire_write(&mut self, slot: usize, reg: usize) {
        assert!(
            self.pending_writes[slot][reg] > 0,
            "sanitize: kernel `{}` — slot {slot} retires a write of r{reg} with no write in flight",
            self.kernel
        );
        self.pending_writes[slot][reg] -= 1;
    }

    /// A warp slot is being freed: nothing may still be in flight.
    pub(crate) fn on_warp_free(&self, slot: usize) {
        let reads: u32 = self.pending_reads[slot].iter().sum();
        let writes: u32 = self.pending_writes[slot].iter().sum();
        assert!(
            reads == 0 && writes == 0,
            "sanitize: kernel `{}` — slot {slot} freed with {reads} read(s) and {writes} write(s) in flight",
            self.kernel
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sequence_passes() {
        let mut o = HazardOracle::new("clean", 2, 4);
        o.on_issue(0, 0, &[1, 2], Some(3));
        o.on_capture(0, &[1, 2]);
        o.on_retire_write(0, 3);
        o.on_warp_free(0);
    }

    #[test]
    #[should_panic(expected = "RAW hazard in kernel `k`")]
    fn raw_hazard_caught() {
        let mut o = HazardOracle::new("k", 1, 4);
        o.on_issue(0, 0, &[], Some(2));
        o.on_issue(0, 1, &[2], None);
    }

    #[test]
    #[should_panic(expected = "WAW hazard")]
    fn waw_hazard_caught() {
        let mut o = HazardOracle::new("k", 1, 4);
        o.on_issue(0, 0, &[], Some(1));
        o.on_issue(0, 1, &[], Some(1));
    }

    #[test]
    #[should_panic(expected = "at pc 7")]
    fn war_hazard_caught_with_pc() {
        let mut o = HazardOracle::new("k", 1, 4);
        o.on_issue(0, 3, &[3], None);
        o.on_issue(0, 7, &[], Some(3));
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn premature_free_caught() {
        let mut o = HazardOracle::new("k", 1, 4);
        o.on_issue(0, 0, &[], Some(0));
        o.on_warp_free(0);
    }
}
