//! Scheduled execution: replay an ahead-of-time [`IssuePlan`] with the
//! dynamic scoreboard and collector arbitration bypassed.
//!
//! `simt-analysis`'s scheduler compiles a kernel × launch × machine
//! into absolute per-warp event cycles (issue / dispatch / retire).
//! This module executes that plan on the *real* datapath — the banked
//! register file, the BDI codec, global memory, the SIMT stack — while
//! replacing the scoreboard with a **slot checker**:
//!
//! * a static pre-check re-derives every hazard rule the scheduler
//!   claims to have honoured (RAW/WAW/WAR windows, collector
//!   serialization, issue-port and compressor-port caps, slot-lifetime
//!   disjointness) directly from the plan's cycles, independently of
//!   the scheduler's own bookkeeping;
//! * at runtime each issue is checked against the warp's live SIMT
//!   stack (pc **and** active mask must match the plan exactly), each
//!   operand fetch is checked against the stored compression state (an
//!   operand found compressed when the plan charged no decompression
//!   latency is an error), and branches resolve with real register
//!   values at their planned dispatch cycle.
//!
//! Any mismatch is a hard [`SimError::Plan`] — an unsound plan never
//! silently produces numbers.
//!
//! Differences from the dynamic engine, by design:
//!
//! * **No dummy MOVs.** The §5.2 policy stores divergent writes
//!   uncompressed; the dynamic engine gets there by injecting a
//!   decompress-in-place MOV. The replayer simply stores the merged
//!   value uncompressed — architecturally identical state, zero extra
//!   instructions. This is the DICE-style win static scheduling buys.
//! * **Static pre-wake.** Power-gated banks are modelled with zero
//!   wake-up latency: the plan's cycles are the wake schedule. Gated
//!   cycles are still counted for the energy model.
//! * **Provisioned decompressors.** The plan serializes each warp's
//!   operand fetches but does not arbitrate the decompressor pool
//!   across warps; activations are counted, the per-cycle cap is
//!   assumed provisioned.
//!
//! Replay is event-driven: events execute in `(cycle, kind, slot)`
//! order with retires before dispatches before slot frees before
//! allocations before issues, so a dependent issue can share a cycle
//! with the branch resolution or slot handoff it waits on.

use std::collections::{BTreeMap, HashMap};

use bdi::{BdiCodec, CompressedRegister, WarpRegister};
use gpu_regfile::{RegisterFile, WarpSlot, WriteError};
use simt_analysis::IssuePlan;
use simt_isa::{Instruction, Kernel, LatencyClass, Operand, Special};

use crate::config::{DivergencePolicy, GpuConfig};
use crate::launch::LaunchConfig;
use crate::memory::GlobalMemory;
use crate::simt_stack::SimtStack;
use crate::sm::{unique_srcs, FinalRegs, GpuSim, SimError};
use crate::stats::SimStats;

/// Result of a scheduled replay.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduledResult {
    /// Replay statistics; `stats.cycles` equals the plan's makespan.
    pub stats: SimStats,
    /// Final architectural register state of every warp, captured at
    /// its planned drain — compared bit-for-bit against the dynamic
    /// core's [`run_capturing`](GpuSim::run_capturing).
    pub final_regs: FinalRegs,
}

fn plan_err(message: impl Into<String>) -> SimError {
    SimError::Plan {
        kernel: String::new(),
        warp: None,
        pc: None,
        message: message.into(),
    }
}

/// A plan rejection attributed to one warp (global index).
fn plan_err_warp(warp: usize, message: impl Into<String>) -> SimError {
    SimError::Plan {
        kernel: String::new(),
        warp: Some(warp),
        pc: None,
        message: message.into(),
    }
}

/// A plan rejection attributed to one planned step (warp + pc).
fn plan_err_at(warp: usize, pc: usize, message: impl Into<String>) -> SimError {
    SimError::Plan {
        kernel: String::new(),
        warp: Some(warp),
        pc: Some(pc),
        message: message.into(),
    }
}

/// Fills the kernel name into a plan rejection bubbling out of
/// validation or replay, so triage output is self-describing.
fn tag_plan_kernel(mut err: SimError, name: &str) -> SimError {
    if let SimError::Plan { kernel, .. } = &mut err {
        if kernel.is_empty() {
            name.clone_into(kernel);
        }
    }
    err
}

impl GpuSim {
    /// Replays a static issue plan for `kernel` under this
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::Plan`] when the plan fails the static hazard
    /// re-check or diverges from the machine state during replay;
    /// otherwise the same failures as [`run`](GpuSim::run).
    pub fn run_scheduled(
        &self,
        kernel: &Kernel,
        plan: &IssuePlan,
        launch: &LaunchConfig,
        memory: &mut GlobalMemory,
    ) -> Result<ScheduledResult, SimError> {
        validate_plan(self.config(), kernel, plan, launch)
            .map_err(|e| tag_plan_kernel(e, kernel.name()))?;
        Replayer::new(self.config(), kernel, plan, launch, memory)
            .run()
            .map_err(|e| tag_plan_kernel(e, kernel.name()))
    }
}

/// The mask of an `n`-thread warp.
fn full_mask_of(threads: usize) -> u32 {
    if threads >= 32 {
        u32::MAX
    } else {
        (1u32 << threads) - 1
    }
}

fn latency_of(cfg: &GpuConfig, class: LatencyClass) -> u64 {
    match class {
        LatencyClass::Sfu => cfg.sfu_latency,
        LatencyClass::Memory => cfg.mem_latency,
        _ => cfg.alu_latency,
    }
}

/// The scoreboard replacement: re-derives every constraint the
/// scheduler promises from the plan's cycles alone and rejects the
/// plan if any is violated.
fn validate_plan(
    cfg: &GpuConfig,
    kernel: &Kernel,
    plan: &IssuePlan,
    launch: &LaunchConfig,
) -> Result<(), SimError> {
    if plan.kernel != kernel.name() {
        return Err(plan_err(format!(
            "plan is for kernel '{}', not '{}'",
            plan.kernel,
            kernel.name()
        )));
    }
    if plan.num_schedulers != cfg.num_schedulers {
        return Err(plan_err(format!(
            "plan arbitrated {} issue ports, machine has {}",
            plan.num_schedulers, cfg.num_schedulers
        )));
    }
    if plan.num_compressors != cfg.compression.num_compressors {
        return Err(plan_err(format!(
            "plan arbitrated {} compressor ports, machine has {}",
            plan.num_compressors, cfg.compression.num_compressors
        )));
    }
    let wpb = launch.warps_per_block(cfg.warp_size);
    if plan.warps_per_block != wpb {
        return Err(plan_err(format!(
            "plan laid out {} warps per block, launch needs {wpb}",
            plan.warps_per_block
        )));
    }
    if plan.warps.len() != launch.blocks() * wpb {
        return Err(plan_err(format!(
            "plan schedules {} warps, launch has {}",
            plan.warps.len(),
            launch.blocks() * wpb
        )));
    }
    let num_regs = usize::from(kernel.num_regs()).max(1);
    let max_resident = cfg
        .max_warps_per_sm
        .min(RegisterFile::new(cfg.regfile).max_slots(num_regs));
    if plan.max_resident_warps > max_resident {
        return Err(plan_err(format!(
            "plan assumes {} resident warps, machine offers {max_resident}",
            plan.max_resident_warps
        )));
    }
    let instrs = kernel.instrs();
    let comp = &cfg.compression;
    let mut per_port: BTreeMap<(u64, usize), u32> = BTreeMap::new();
    let mut per_comp: BTreeMap<u64, u32> = BTreeMap::new();
    let mut lifetimes: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
    for (gid, w) in plan.warps.iter().enumerate() {
        if (w.block, w.warp_in_block) != (gid / wpb, gid % wpb) {
            return Err(plan_err(format!(
                "warp {gid} labelled block {} warp {}, expected ({}, {})",
                w.block,
                w.warp_in_block,
                gid / wpb,
                gid % wpb
            )));
        }
        if w.slot >= plan.max_resident_warps {
            return Err(plan_err(format!(
                "warp {gid} placed in slot {} beyond residency {}",
                w.slot, plan.max_resident_warps
            )));
        }
        let threads =
            (launch.threads_per_block() - w.warp_in_block * cfg.warp_size).min(cfg.warp_size);
        let full_mask = full_mask_of(threads);
        lifetimes
            .entry(w.slot)
            .or_default()
            .push((w.launch_cycle, w.free_cycle));

        // Per-warp hazard windows, re-derived exactly as the
        // scheduler's timing model defines them.
        let mut next_issue = 0u64;
        let mut avail_write = vec![0u64; num_regs];
        let mut reader_release = vec![0u64; num_regs];
        let mut mem_release = 0u64;
        for (i, s) in w.steps.iter().enumerate() {
            let at = format!("step {i}");
            let Some(instr) = instrs.get(s.pc) else {
                return Err(plan_err_at(gid, s.pc, format!("{at}: pc out of range")));
            };
            if s.mask == 0 || s.mask & !full_mask != 0 {
                return Err(plan_err_at(
                    gid,
                    s.pc,
                    format!("{at}: mask {:#x} invalid", s.mask),
                ));
            }
            let srcs = unique_srcs(instr);
            if s.sources != srcs {
                return Err(plan_err_at(
                    gid,
                    s.pc,
                    format!("{at}: operand order mismatch"),
                ));
            }
            if s.dst != instr.dst().map(|d| d.index()) {
                return Err(plan_err_at(
                    gid,
                    s.pc,
                    format!("{at}: destination mismatch"),
                ));
            }
            let expect_comp = s.dst.is_some()
                && comp.is_enabled()
                && !(s.divergent && comp.divergence == DivergencePolicy::UncompressedWrites);
            if s.compresses != expect_comp {
                return Err(plan_err_at(
                    gid,
                    s.pc,
                    format!("{at}: compressor routing mismatch"),
                ));
            }
            let want_comp = if s.compresses {
                comp.compression_latency
            } else {
                0
            };
            if s.comp_cycles != want_comp {
                return Err(plan_err_at(
                    gid,
                    s.pc,
                    format!("{at}: compressor latency mismatch"),
                ));
            }
            if s.decomp_cycles != 0 && s.decomp_cycles != comp.decompression_latency {
                return Err(plan_err_at(
                    gid,
                    s.pc,
                    format!("{at}: decompressor latency mismatch"),
                ));
            }

            let mut earliest = next_issue;
            for &r in &srcs {
                earliest = earliest.max(avail_write[r]);
            }
            if let Some(d) = s.dst {
                earliest = earliest.max(avail_write[d]).max(reader_release[d]);
            }
            if instr.latency_class() == LatencyClass::Memory {
                earliest = earliest.max(mem_release);
            }
            if s.issue < earliest.max(w.launch_cycle) {
                return Err(plan_err(format!(
                    "{at}: issue at {} violates a hazard window (earliest {})",
                    s.issue,
                    earliest.max(w.launch_cycle)
                )));
            }
            *per_port
                .entry((s.issue, w.slot % cfg.num_schedulers))
                .or_insert(0) += 1;

            match instr {
                Instruction::Jmp { .. } | Instruction::Exit => {
                    if s.dispatch.is_some() || s.retire.is_some() {
                        return Err(plan_err_at(
                            gid,
                            s.pc,
                            format!("{at}: control-only step dispatches"),
                        ));
                    }
                    next_issue = s.issue + 1;
                }
                _ => {
                    let dispatch = s.issue + (srcs.len() as u64).max(1);
                    if s.dispatch != Some(dispatch) {
                        return Err(plan_err(format!(
                            "{at}: dispatch {:?} should be {dispatch} (serialized fetches)",
                            s.dispatch
                        )));
                    }
                    for &r in &srcs {
                        reader_release[r] = reader_release[r].max(dispatch);
                    }
                    if instr.latency_class() == LatencyClass::Memory {
                        mem_release = dispatch;
                    }
                    match instr {
                        Instruction::Bra { .. } => {
                            if s.retire.is_some() {
                                return Err(plan_err_at(
                                    gid,
                                    s.pc,
                                    format!("{at}: branch retires"),
                                ));
                            }
                            next_issue = dispatch;
                        }
                        Instruction::St { .. } => {
                            if s.retire.is_some() {
                                return Err(plan_err_at(gid, s.pc, format!("{at}: store retires")));
                            }
                            next_issue = s.issue + 1;
                        }
                        _ => {
                            let retire = dispatch
                                + latency_of(cfg, instr.latency_class())
                                + s.decomp_cycles
                                + s.comp_cycles;
                            if s.retire != Some(retire) {
                                return Err(plan_err(format!(
                                    "{at}: retire {:?} should be {retire}",
                                    s.retire
                                )));
                            }
                            let d = s.dst.expect("writer has a destination");
                            avail_write[d] = retire;
                            next_issue = s.issue + 1;
                            if s.compresses {
                                *per_comp.entry(retire - s.comp_cycles).or_insert(0) += 1;
                            }
                        }
                    }
                }
            }
            let last = s.retire.or(s.dispatch).unwrap_or(s.issue);
            if last >= w.free_cycle {
                return Err(plan_err(format!(
                    "{at}: event at {last} past slot free at {}",
                    w.free_cycle
                )));
            }
        }
    }
    if let Some(((cycle, port), _)) = per_port.iter().find(|(_, &n)| n > 1) {
        return Err(plan_err(format!(
            "issue port {port} double-booked at cycle {cycle}"
        )));
    }
    if let Some((cycle, _)) = per_comp
        .iter()
        .find(|(_, &n)| n > comp.num_compressors as u32)
    {
        return Err(plan_err(format!(
            "more than {} compressions start at cycle {cycle}",
            comp.num_compressors
        )));
    }
    for (slot, spans) in lifetimes.iter_mut() {
        spans.sort_unstable();
        for pair in spans.windows(2) {
            if pair[0].1 > pair[1].0 {
                return Err(plan_err(format!("slot {slot} lifetimes overlap")));
            }
        }
    }
    let makespan = plan.warps.iter().map(|w| w.free_cycle).max().unwrap_or(0);
    if plan.total_cycles != makespan {
        return Err(plan_err(format!(
            "total_cycles {} is not the makespan {makespan}",
            plan.total_cycles
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Event-driven replay
// ---------------------------------------------------------------------

/// Same-cycle event ordering: results land before dependents read,
/// branches resolve before the issue they unblock, slots free before
/// they are reallocated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Retire,
    Dispatch,
    Free,
    Alloc,
    Issue,
}

#[derive(Clone, Copy, Debug)]
struct Event {
    time: u64,
    kind: Kind,
    slot: usize,
    gid: usize,
    step: usize,
}

struct Active {
    gid: usize,
    block: usize,
    warp_in_block: usize,
    full_mask: u32,
    stack: SimtStack,
}

struct Replayer<'a> {
    cfg: &'a GpuConfig,
    kernel: &'a Kernel,
    plan: &'a IssuePlan,
    launch: &'a LaunchConfig,
    memory: &'a mut GlobalMemory,
    codec: BdiCodec,
    regfile: RegisterFile,
    active: Vec<Option<Active>>,
    /// Results computed at dispatch, awaiting their retire cycle.
    pending: HashMap<(usize, usize), WarpRegister>,
    num_regs: usize,
    initial_reg: CompressedRegister,
    stats: SimStats,
    final_regs: FinalRegs,
}

impl<'a> Replayer<'a> {
    fn new(
        cfg: &'a GpuConfig,
        kernel: &'a Kernel,
        plan: &'a IssuePlan,
        launch: &'a LaunchConfig,
        memory: &'a mut GlobalMemory,
    ) -> Self {
        // Static pre-wake: the plan is the wake schedule, so gated
        // banks respond immediately; gated cycles still accrue for the
        // energy model.
        let mut rf_cfg = cfg.regfile;
        rf_cfg.wakeup_latency = 0;
        rf_cfg.drowsy_wakeup_latency = 0;
        let codec = BdiCodec::new(cfg.compression.choices.clone());
        let initial_reg = if cfg.compression.is_enabled() {
            codec.compress(&WarpRegister::ZERO)
        } else {
            CompressedRegister::Uncompressed(WarpRegister::ZERO)
        };
        Replayer {
            regfile: RegisterFile::new(rf_cfg),
            active: (0..plan.max_resident_warps).map(|_| None).collect(),
            pending: HashMap::new(),
            num_regs: usize::from(kernel.num_regs()).max(1),
            initial_reg,
            stats: SimStats::default(),
            final_regs: FinalRegs::new(),
            cfg,
            kernel,
            plan,
            launch,
            memory,
            codec,
        }
    }

    fn run(mut self) -> Result<ScheduledResult, SimError> {
        let mut events: Vec<Event> = Vec::new();
        for (gid, w) in self.plan.warps.iter().enumerate() {
            let ev = |time, kind, step| Event {
                time,
                kind,
                slot: w.slot,
                gid,
                step,
            };
            events.push(ev(w.launch_cycle, Kind::Alloc, 0));
            events.push(ev(w.free_cycle, Kind::Free, 0));
            for (i, s) in w.steps.iter().enumerate() {
                events.push(ev(s.issue, Kind::Issue, i));
                if let Some(d) = s.dispatch {
                    events.push(ev(d, Kind::Dispatch, i));
                }
                if let Some(r) = s.retire {
                    events.push(ev(r, Kind::Retire, i));
                }
            }
        }
        events.sort_by_key(|e| (e.time, e.kind, e.slot, e.gid, e.step));
        for e in events {
            match e.kind {
                Kind::Alloc => self.alloc(e)?,
                Kind::Issue => self.issue(e)?,
                Kind::Dispatch => self.dispatch(e)?,
                Kind::Retire => self.retire(e)?,
                Kind::Free => self.free(e)?,
            }
        }
        debug_assert!(self.active.iter().all(Option::is_none));
        self.stats.cycles = self.plan.total_cycles;
        self.stats.regfile = self.regfile.stats(self.plan.total_cycles);
        self.stats.gating = self.cfg.regfile.gating;
        Ok(ScheduledResult {
            stats: self.stats,
            final_regs: self.final_regs,
        })
    }

    fn alloc(&mut self, e: Event) -> Result<(), SimError> {
        if self.active[e.slot].is_some() {
            return Err(plan_err(format!(
                "slot {} reallocated while occupied at cycle {}",
                e.slot, e.time
            )));
        }
        self.regfile.allocate_warp_with(
            WarpSlot(e.slot),
            self.num_regs,
            &self.initial_reg,
            e.time,
        )?;
        let w = &self.plan.warps[e.gid];
        let threads = (self.launch.threads_per_block() - w.warp_in_block * self.cfg.warp_size)
            .min(self.cfg.warp_size);
        let full_mask = full_mask_of(threads);
        self.active[e.slot] = Some(Active {
            gid: e.gid,
            block: w.block,
            warp_in_block: w.warp_in_block,
            full_mask,
            stack: SimtStack::new(full_mask, 0),
        });
        Ok(())
    }

    fn issue(&mut self, e: Event) -> Result<(), SimError> {
        let s = &self.plan.warps[e.gid].steps[e.step];
        let a = self.active[e.slot]
            .as_mut()
            .filter(|a| a.gid == e.gid)
            .ok_or_else(|| {
                plan_err_warp(e.gid, format!("issue for warp {} on a foreign slot", e.gid))
            })?;
        if a.stack.pc() != Some(s.pc) {
            return Err(plan_err_at(
                e.gid,
                s.pc,
                format!(
                    "warp {} at cycle {}: plan issues pc {}, stack is at {:?}",
                    e.gid,
                    e.time,
                    s.pc,
                    a.stack.pc()
                ),
            ));
        }
        if a.stack.mask() != s.mask {
            return Err(plan_err_at(
                e.gid,
                s.pc,
                format!(
                    "warp {} pc {}: plan mask {:#x}, stack mask {:#x}",
                    e.gid,
                    s.pc,
                    s.mask,
                    a.stack.mask()
                ),
            ));
        }
        let divergent = a.stack.is_diverged() || s.mask != a.full_mask;
        if divergent != s.divergent {
            return Err(plan_err_at(
                e.gid,
                s.pc,
                format!("warp {} pc {}: divergence state mismatch", e.gid, s.pc),
            ));
        }
        self.stats.instructions += 1;
        if divergent {
            self.stats.divergent_instructions += 1;
        }
        match self.kernel.instr(s.pc).expect("pc validated") {
            Instruction::Jmp { target } => a.stack.jump(*target),
            Instruction::Exit => a.stack.exit_threads(),
            // Branches resolve with real operand values at dispatch.
            Instruction::Bra { .. } => {}
            _ => a.stack.advance(),
        }
        Ok(())
    }

    fn dispatch(&mut self, e: Event) -> Result<(), SimError> {
        let s = &self.plan.warps[e.gid].steps[e.step];
        let instr = *self.kernel.instr(s.pc).expect("pc validated");

        // Operand capture. The stored compression state is checked
        // against the plan's charge: a compressed operand the plan
        // modelled as a plain read would have delivered early.
        let mut values: HashMap<usize, WarpRegister> = HashMap::new();
        for &reg in &s.sources {
            if self.regfile.is_compressed(WarpSlot(e.slot), reg) {
                if s.decomp_cycles == 0 {
                    return Err(plan_err_at(
                        e.gid,
                        s.pc,
                        format!(
                            "warp {} pc {}: r{reg} is stored compressed but the plan \
                         charged no decompression latency",
                            e.gid, s.pc
                        ),
                    ));
                }
                self.stats.decompressor_activations += 1;
            }
            let sample = self
                .regfile
                .try_read(WarpSlot(e.slot), reg, e.time)
                .map_err(|source| SimError::Read {
                    slot: e.slot,
                    reg,
                    source,
                })?;
            let value =
                self.codec
                    .try_decompress(&sample.register)
                    .map_err(|err| SimError::Read {
                        slot: e.slot,
                        reg,
                        source: gpu_regfile::ReadError::Corrupted(err),
                    })?;
            values.insert(reg, value);
        }

        let a = self.active[e.slot].as_mut().expect("warp alive");
        let (block, warp_in_block) = (a.block, a.warp_in_block);
        let warp_size = self.cfg.warp_size;
        let launch = self.launch;
        let eval = |op: Operand, lane: usize| -> u32 {
            match op {
                Operand::Reg(r) => values[&r.index()].lane(lane),
                Operand::Imm(v) => v as u32,
                Operand::Param(i) => launch.param(i as usize),
                Operand::Special(sp) => {
                    let tid = (warp_in_block * warp_size + lane) as u32;
                    match sp {
                        Special::Tid => tid,
                        Special::Bid => block as u32,
                        Special::BlockDim => launch.threads_per_block() as u32,
                        Special::GridDim => launch.blocks() as u32,
                        Special::GlobalTid => {
                            block as u32 * launch.threads_per_block() as u32 + tid
                        }
                        Special::LaneId => lane as u32,
                        Special::WarpId => warp_in_block as u32,
                    }
                }
            }
        };

        match instr {
            Instruction::Mov { src, .. } => {
                let result = WarpRegister::from_fn(|lane| eval(src, lane));
                self.pending.insert((e.gid, e.step), result);
            }
            Instruction::Alu { op, a, b, .. } => {
                let result = WarpRegister::from_fn(|lane| op.apply(eval(a, lane), eval(b, lane)));
                self.pending.insert((e.gid, e.step), result);
            }
            Instruction::Ld { base, offset, .. } => {
                let mut result = WarpRegister::ZERO;
                for lane in 0..warp_size {
                    if s.mask & (1 << lane) != 0 {
                        let addr = values[&base.index()].lane(lane).wrapping_add(offset as u32);
                        result.set_lane(lane, self.memory.load(addr)?);
                    }
                }
                self.pending.insert((e.gid, e.step), result);
            }
            Instruction::St { base, offset, src } => {
                for lane in 0..warp_size {
                    if s.mask & (1 << lane) != 0 {
                        let addr = values[&base.index()].lane(lane).wrapping_add(offset as u32);
                        self.memory.store(addr, values[&src.index()].lane(lane))?;
                    }
                }
            }
            Instruction::Bra {
                pred,
                target,
                reconv,
            } => {
                let pv = &values[&pred.index()];
                let mut taken = 0u32;
                for lane in 0..warp_size {
                    if s.mask & (1 << lane) != 0 && pv.lane(lane) != 0 {
                        taken |= 1 << lane;
                    }
                }
                a.stack.branch(taken, target, reconv);
            }
            Instruction::Jmp { .. } | Instruction::Exit => {
                unreachable!("control-only steps have no dispatch (validated)")
            }
        }
        Ok(())
    }

    fn retire(&mut self, e: Event) -> Result<(), SimError> {
        let s = &self.plan.warps[e.gid].steps[e.step];
        let reg = s.dst.expect("retiring step writes (validated)");
        let mut result = self
            .pending
            .remove(&(e.gid, e.step))
            .expect("dispatch precedes retire (validated ordering)");

        if s.mask != u32::MAX {
            // Merge the stored value into inactive lanes. Under the
            // §5.2 policy per-lane write enables make this free; under
            // decompress-merge-recompress a divergent merge costs a
            // counted read (and a decompressor pass when compressed).
            let counted = self.cfg.compression.is_enabled()
                && self.cfg.compression.divergence == DivergencePolicy::DecompressMergeRecompress
                && s.divergent;
            let stored = if counted {
                let read = self.regfile.read(WarpSlot(e.slot), reg, e.time);
                if read.register.is_compressed() {
                    self.stats.decompressor_activations += 1;
                }
                *read.register
            } else {
                self.regfile
                    .peek(WarpSlot(e.slot), reg)
                    .copied()
                    .ok_or(SimError::Read {
                        slot: e.slot,
                        reg,
                        source: gpu_regfile::ReadError::Unallocated,
                    })?
            };
            let old = self
                .codec
                .try_decompress(&stored)
                .map_err(|err| SimError::Read {
                    slot: e.slot,
                    reg,
                    source: gpu_regfile::ReadError::Corrupted(err),
                })?;
            result = old.merge_masked(&result, s.mask);
        }

        let compressed = if s.compresses {
            self.stats.compressor_activations += 1;
            self.codec.compress(&result)
        } else {
            CompressedRegister::Uncompressed(result)
        };
        let class = compressed.class();
        self.stats.writes += 1;
        if class.is_compressed() {
            self.stats.writes_compressed += 1;
        }
        let logical = bdi::WARP_REGISTER_BYTES as u64;
        let stored_len = compressed.stored_len() as u64;
        if s.divergent {
            self.stats.div_logical_bytes += logical;
            self.stats.div_stored_bytes += stored_len;
        } else {
            self.stats.nondiv_logical_bytes += logical;
            self.stats.nondiv_stored_bytes += stored_len;
        }
        match self
            .regfile
            .write(WarpSlot(e.slot), reg, compressed, e.time)
        {
            Ok(_) => Ok(()),
            Err(WriteError::NotReady { ready_at }) => Err(plan_err_at(
                e.gid,
                s.pc,
                format!(
                    "warp {} pc {}: bank not ready until {ready_at} despite static pre-wake",
                    e.gid, s.pc
                ),
            )),
            Err(WriteError::Unallocated) => Err(plan_err_at(
                e.gid,
                s.pc,
                format!("warp {} pc {}: write to a freed slot", e.gid, s.pc),
            )),
        }
    }

    fn free(&mut self, e: Event) -> Result<(), SimError> {
        let a = self.active[e.slot]
            .take()
            .filter(|a| a.gid == e.gid)
            .ok_or_else(|| {
                plan_err_warp(e.gid, format!("free of warp {} on a foreign slot", e.gid))
            })?;
        if !a.stack.is_done() {
            return Err(plan_err_warp(
                e.gid,
                format!(
                    "warp {} freed at cycle {} with threads still at pc {:?}",
                    e.gid,
                    e.time,
                    a.stack.pc()
                ),
            ));
        }
        let regs = (0..self.num_regs)
            .map(|r| {
                let stored = self
                    .regfile
                    .peek(WarpSlot(e.slot), r)
                    .expect("still allocated");
                self.codec.decompress(stored)
            })
            .collect();
        self.final_regs.insert((a.block, a.warp_in_block), regs);
        self.regfile.free_warp(WarpSlot(e.slot), e.time);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_analysis::{schedule_kernel, PerfLaunch, PerfMachine};
    use simt_isa::{AluOp, KernelBuilder, Reg};

    fn machine_for(cfg: &GpuConfig) -> PerfMachine {
        if cfg.compression.is_enabled() {
            PerfMachine::warped_compression()
        } else {
            PerfMachine::baseline()
        }
    }

    fn residency(cfg: &GpuConfig, kernel: &Kernel) -> usize {
        let num_regs = usize::from(kernel.num_regs()).max(1);
        cfg.max_warps_per_sm
            .min(RegisterFile::new(cfg.regfile).max_slots(num_regs))
    }

    /// Plans and replays `kernel`, checking the three-way agreement
    /// with the dynamic core: bit-identical registers and memory.
    fn check_scheduled(kernel: &Kernel, blocks: usize, tpb: usize, cfg: GpuConfig, words: usize) {
        let machine = machine_for(&cfg);
        let plan = schedule_kernel(
            kernel,
            &PerfLaunch::new(blocks, tpb),
            &machine,
            residency(&cfg, kernel),
        )
        .expect("kernel is schedulable");
        let launch = LaunchConfig::new(blocks, tpb);
        let sim = GpuSim::new(cfg);

        let mut dyn_mem = GlobalMemory::zeroed(words);
        let (dyn_result, dyn_regs) = sim
            .run_capturing(kernel, &launch, &mut dyn_mem)
            .expect("dynamic run succeeds");

        let mut sched_mem = GlobalMemory::zeroed(words);
        let sched = sim
            .run_scheduled(kernel, &plan, &launch, &mut sched_mem)
            .expect("scheduled replay succeeds");

        assert_eq!(sched.stats.cycles, plan.total_cycles);
        assert_eq!(sched.final_regs, dyn_regs, "register state must match");
        assert_eq!(sched_mem, dyn_mem, "memory must match");
        assert_eq!(sched.stats.instructions, plan.planned_instructions);
        assert_eq!(
            sched.stats.synthetic_movs, 0,
            "no dummy MOVs when scheduled"
        );
        // The static floor bounds the plan from below (by construction,
        // but verified here end-to-end), and the dynamic core executes
        // at least as many program instructions.
        let floor = simt_analysis::bound_kernel(kernel, &PerfLaunch::new(blocks, tpb), &machine);
        assert!(plan.total_cycles >= floor.cycle_lower_bound);
        assert!(dyn_result.stats.instructions >= plan.planned_instructions);
    }

    fn straight_kernel() -> Kernel {
        let mut b = KernelBuilder::new("straight", 3);
        b.mov(Reg(0), Operand::Special(Special::GlobalTid));
        b.alu(AluOp::Mul, Reg(1), Reg(0).into(), Operand::Imm(2));
        b.alu(AluOp::Add, Reg(2), Reg(1).into(), Reg(0).into());
        b.st(Reg(0), 0, Reg(2));
        b.exit();
        b.build().unwrap()
    }

    fn loop_kernel() -> Kernel {
        let mut b = KernelBuilder::new("loop", 4);
        b.mov(Reg(0), Operand::Imm(0));
        b.mov(Reg(1), Operand::Imm(0));
        let head = b.here();
        b.alu(AluOp::Add, Reg(1), Reg(1).into(), Reg(0).into());
        b.alu(AluOp::Add, Reg(0), Reg(0).into(), Operand::Imm(1));
        b.alu(AluOp::SetLt, Reg(2), Reg(0).into(), Operand::Imm(10));
        let exit = b.label();
        b.bra(Reg(2), head, exit);
        b.bind(exit);
        b.mov(Reg(3), Operand::Special(Special::GlobalTid));
        b.st(Reg(3), 0, Reg(1));
        b.exit();
        b.build().unwrap()
    }

    /// Uniform-per-warp but lane-divergent: `if (lane < 16)`.
    fn divergent_kernel() -> Kernel {
        let mut b = KernelBuilder::new("div", 3);
        b.mov(Reg(0), Operand::Special(Special::LaneId));
        b.alu(AluOp::SetLt, Reg(1), Reg(0).into(), Operand::Imm(16));
        let then = b.label();
        let merge = b.label();
        b.bra(Reg(1), then, merge);
        b.mov(Reg(2), Operand::Imm(2));
        b.jmp(merge);
        b.bind(then);
        b.mov(Reg(2), Operand::Imm(1));
        b.bind(merge);
        b.mov(Reg(0), Operand::Special(Special::GlobalTid));
        b.st(Reg(0), 0, Reg(2));
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn straight_line_matches_dynamic_core() {
        check_scheduled(
            &straight_kernel(),
            2,
            64,
            GpuConfig::warped_compression(),
            128,
        );
        check_scheduled(&straight_kernel(), 2, 64, GpuConfig::baseline(), 128);
    }

    #[test]
    fn loop_matches_dynamic_core() {
        check_scheduled(&loop_kernel(), 1, 32, GpuConfig::warped_compression(), 32);
        check_scheduled(&loop_kernel(), 1, 32, GpuConfig::baseline(), 32);
    }

    #[test]
    fn divergent_kernel_matches_dynamic_core() {
        check_scheduled(
            &divergent_kernel(),
            1,
            32,
            GpuConfig::warped_compression(),
            32,
        );
        check_scheduled(&divergent_kernel(), 1, 32, GpuConfig::baseline(), 32);
    }

    #[test]
    fn block_waves_replay_through_slot_reuse() {
        // More blocks than resident slots forces slot reuse.
        let mut cfg = GpuConfig::warped_compression();
        cfg.max_warps_per_sm = 4;
        check_scheduled(&straight_kernel(), 8, 64, cfg, 512);
    }

    #[test]
    fn tampered_plan_is_rejected() {
        let kernel = straight_kernel();
        let cfg = GpuConfig::warped_compression();
        let machine = machine_for(&cfg);
        let mut plan = schedule_kernel(
            &kernel,
            &PerfLaunch::new(1, 32),
            &machine,
            residency(&cfg, &kernel),
        )
        .unwrap();
        // Pull one issue a cycle earlier: a hazard window must break.
        let step = &mut plan.warps[0].steps[1];
        step.issue -= 1;
        *step.dispatch.as_mut().unwrap() -= 1;
        *step.retire.as_mut().unwrap() -= 1;
        let launch = LaunchConfig::new(1, 32);
        let mut mem = GlobalMemory::zeroed(32);
        let err = GpuSim::new(cfg)
            .run_scheduled(&kernel, &plan, &launch, &mut mem)
            .unwrap_err();
        assert!(matches!(err, SimError::Plan { .. }), "got {err}");
    }

    #[test]
    fn mismatched_config_is_rejected() {
        let kernel = straight_kernel();
        let cfg = GpuConfig::warped_compression();
        let plan = schedule_kernel(
            &kernel,
            &PerfLaunch::new(1, 32),
            &machine_for(&cfg),
            residency(&cfg, &kernel),
        )
        .unwrap();
        // Replaying a compression-machine plan on the baseline fails
        // the static compressor-routing check.
        let launch = LaunchConfig::new(1, 32);
        let mut mem = GlobalMemory::zeroed(32);
        let err = GpuSim::new(GpuConfig::baseline())
            .run_scheduled(&kernel, &plan, &launch, &mut mem)
            .unwrap_err();
        assert!(matches!(err, SimError::Plan { .. }), "got {err}");
    }
}
