//! Simulation statistics and the register-write observation hook.

use std::collections::BTreeMap;

use bdi::{CompressionClass, WarpRegister};
use gpu_regfile::{GatingMode, RegFileStats};
use serde::{Deserialize, Serialize};

/// One retired register write, delivered to the observer callback.
///
/// The `warped-compression` crate uses this stream for the value
/// similarity characterisation (Fig. 2), the full-BDI breakdown
/// (Fig. 5), and — via `pc` and `class` — the per-write-site
/// validation of the static compressibility predictions
/// (`wcsim predict`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WriteEvent {
    /// The pc of the producing instruction (for injected dummy MOVs,
    /// the pc of the program instruction they shadow).
    pub pc: usize,
    /// The full merged register value as stored.
    pub value: WarpRegister,
    /// The compression class of the form actually stored in the
    /// register file banks.
    pub class: CompressionClass,
    /// Whether the producing instruction executed divergently.
    pub divergent: bool,
    /// Whether this was an injected dummy MOV rather than program code.
    pub synthetic: bool,
}

/// One retired global-memory access, delivered to the memory-trace
/// observer callback.
///
/// The `warped-compression` crate joins this stream against the static
/// address abstraction (`simt-analysis::memabs`): every active lane's
/// address must fall inside the site's abstract access set, and a
/// kernel judged race-free must never trace a cross-warp conflicting
/// pair (`wcsim mem`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemEvent {
    /// The pc of the load/store instruction.
    pub pc: usize,
    /// The issuing warp's block index.
    pub block: usize,
    /// The issuing warp's index within its block.
    pub warp_in_block: usize,
    /// Active-lane mask at dispatch (bit `i` = lane `i`).
    pub mask: u32,
    /// Per-lane effective word addresses; only lanes set in `mask`
    /// are meaningful.
    pub addrs: [u32; 32],
    /// Per-lane data values — loaded words for a load, stored words
    /// for a store; only lanes set in `mask` are meaningful. Joined
    /// against the memory-cell value refinement
    /// (`simt-analysis::memcell`): every active lane of a refined load
    /// must lie in its abstract value.
    pub values: [u32; 32],
    /// Whether the access was a store.
    pub is_store: bool,
}

impl MemEvent {
    /// Iterator over the `(lane, address)` pairs of active lanes.
    pub fn active_addrs(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        (0..32)
            .filter(|lane| self.mask >> lane & 1 == 1)
            .map(|lane| (lane, self.addrs[lane]))
    }

    /// Iterator over the `(lane, value)` pairs of active lanes.
    pub fn active_values(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        (0..32)
            .filter(|lane| self.mask >> lane & 1 == 1)
            .map(|lane| (lane, self.values[lane]))
    }
}

/// Coalescer traffic charged to one program counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcMemTraffic {
    /// Dynamic load/store dispatches at this pc.
    pub accesses: u64,
    /// 32-word-segment transactions those dispatches required.
    pub transactions: u64,
}

/// Per-PC memory transaction counts for a whole run.
///
/// An access's transaction count is the number of distinct 32-word
/// segments its active lanes touch — the same coalescing model the
/// static analyzer's `min_transactions` floor assumes, so the floor
/// check is `floor ≤ transactions / accesses` per site.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemTrafficStats {
    /// Traffic counters per program counter.
    pub by_pc: BTreeMap<usize, PcMemTraffic>,
}

impl MemTrafficStats {
    /// Charges one access issuing `transactions` segment transactions
    /// at `pc`.
    pub fn record(&mut self, pc: usize, transactions: u64) {
        let t = self.by_pc.entry(pc).or_default();
        t.accesses += 1;
        t.transactions += transactions;
    }

    /// The counters charged to `pc` (zero if it never accessed memory).
    pub fn at(&self, pc: usize) -> PcMemTraffic {
        self.by_pc.get(&pc).copied().unwrap_or_default()
    }

    /// Run-wide access count.
    pub fn total_accesses(&self) -> u64 {
        self.by_pc.values().map(|t| t.accesses).sum()
    }

    /// Run-wide transaction count.
    pub fn total_transactions(&self) -> u64 {
        self.by_pc.values().map(|t| t.transactions).sum()
    }
}

/// The Fig. 12 census: compressed-register counts sampled periodically,
/// bucketed by the sampled warp's divergence phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CensusStats {
    /// Compressed registers observed while the owning warp was
    /// non-divergent.
    pub nondiv_compressed: u64,
    /// Registers observed while the owning warp was non-divergent.
    pub nondiv_total: u64,
    /// Compressed registers observed during divergence.
    pub div_compressed: u64,
    /// Registers observed during divergence.
    pub div_total: u64,
}

impl CensusStats {
    /// Fraction of registers compressed in non-divergent phases.
    pub fn nondiv_fraction(&self) -> f64 {
        fraction(self.nondiv_compressed, self.nondiv_total)
    }

    /// Fraction of registers compressed in divergent phases, or `None`
    /// if the benchmark never diverged (the paper's "N/A" bars).
    pub fn div_fraction(&self) -> Option<f64> {
        (self.div_total > 0).then(|| fraction(self.div_compressed, self.div_total))
    }
}

fn fraction(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Why a pipeline opportunity was lost for one cycle.
///
/// Each variant maps to exactly one stall site in the engine, so the
/// per-cause totals partition cleanly: the legacy aggregate
/// `collector_retry_cycles` equals `BankConflict + Decompressor` by
/// construction (tested below), and the static analyzer's per-PC
/// conflict bounds are compared against exactly that pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StallCause {
    /// An operand fetch lost the bank read-port arbitration.
    BankConflict,
    /// An operand fetch of a compressed register hit the per-cycle
    /// decompressor limit.
    Decompressor,
    /// Issue blocked on a scoreboard hazard (RAW/WAW/WAR) or on LSU
    /// memory ordering.
    Scoreboard,
    /// Issue found no free operand collector.
    CollectorFull,
    /// Writeback lost the bank write-port arbitration (or the target
    /// bank was still waking up).
    WritebackPort,
}

impl StallCause {
    /// All causes, in the order stall tables render them.
    pub const ALL: [StallCause; 5] = [
        StallCause::BankConflict,
        StallCause::Decompressor,
        StallCause::Scoreboard,
        StallCause::CollectorFull,
        StallCause::WritebackPort,
    ];

    /// Stable snake_case name (used by the JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::BankConflict => "bank_conflict",
            StallCause::Decompressor => "decompressor",
            StallCause::Scoreboard => "scoreboard",
            StallCause::CollectorFull => "collector_full",
            StallCause::WritebackPort => "writeback_port",
        }
    }
}

/// Per-cause stall cycles charged to one program counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcStalls {
    /// Operand-fetch bank-port losses.
    pub bank_conflict: u64,
    /// Operand-fetch decompressor-limit losses.
    pub decompressor: u64,
    /// Scoreboard / memory-ordering issue blocks.
    pub scoreboard: u64,
    /// Collector-full issue blocks.
    pub collector_full: u64,
    /// Writeback write-port losses.
    pub writeback_port: u64,
}

impl PcStalls {
    /// Count for one cause.
    pub fn get(&self, cause: StallCause) -> u64 {
        match cause {
            StallCause::BankConflict => self.bank_conflict,
            StallCause::Decompressor => self.decompressor,
            StallCause::Scoreboard => self.scoreboard,
            StallCause::CollectorFull => self.collector_full,
            StallCause::WritebackPort => self.writeback_port,
        }
    }

    fn slot_mut(&mut self, cause: StallCause) -> &mut u64 {
        match cause {
            StallCause::BankConflict => &mut self.bank_conflict,
            StallCause::Decompressor => &mut self.decompressor,
            StallCause::Scoreboard => &mut self.scoreboard,
            StallCause::CollectorFull => &mut self.collector_full,
            StallCause::WritebackPort => &mut self.writeback_port,
        }
    }

    /// Stalls charged to this pc across every cause.
    pub fn total(&self) -> u64 {
        StallCause::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// The operand-fetch retry portion — the pair the legacy aggregate
    /// counter and the static conflict bound both refer to.
    pub fn operand_fetch(&self) -> u64 {
        self.bank_conflict + self.decompressor
    }
}

/// Per-PC, per-cause stall attribution for a whole run.
///
/// Keyed by the pc of the stalled instruction (for injected dummy MOVs,
/// the pc of the program instruction they shadow — same convention as
/// [`WriteEvent::pc`]). The `BTreeMap` keeps report iteration
/// deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallStats {
    /// Stall counters per program counter.
    pub by_pc: BTreeMap<usize, PcStalls>,
}

impl StallStats {
    /// Charges one lost cycle at `pc` to `cause`.
    pub fn record(&mut self, pc: usize, cause: StallCause) {
        *self.by_pc.entry(pc).or_default().slot_mut(cause) += 1;
    }

    /// The counters charged to `pc` (zero if it never stalled).
    pub fn at(&self, pc: usize) -> PcStalls {
        self.by_pc.get(&pc).copied().unwrap_or_default()
    }

    /// Run-wide total for one cause.
    pub fn total(&self, cause: StallCause) -> u64 {
        self.by_pc.values().map(|p| p.get(cause)).sum()
    }

    /// Run-wide total across all causes.
    pub fn grand_total(&self) -> u64 {
        self.by_pc.values().map(PcStalls::total).sum()
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Warp instructions issued from program code (excludes injected
    /// MOVs).
    pub instructions: u64,
    /// Injected dummy MOV instructions (§5.2, Fig. 11).
    pub synthetic_movs: u64,
    /// Program instructions issued while the warp was divergent (Fig. 3).
    pub divergent_instructions: u64,
    /// Register writes retired.
    pub writes: u64,
    /// Register writes stored in compressed form.
    pub writes_compressed: u64,
    /// Logical bytes of non-divergent register writes (128 × writes).
    pub nondiv_logical_bytes: u64,
    /// Bytes actually stored for non-divergent writes.
    pub nondiv_stored_bytes: u64,
    /// Logical bytes of divergent register writes.
    pub div_logical_bytes: u64,
    /// Bytes actually stored for divergent writes.
    pub div_stored_bytes: u64,
    /// Compressor-unit activations.
    pub compressor_activations: u64,
    /// Decompressor-unit activations.
    pub decompressor_activations: u64,
    /// Cycles an issue opportunity was lost to bank-port conflicts
    /// (operand fetch retries). Kept as the aggregate of the
    /// `bank_conflict` and `decompressor` causes in [`SimStats::stalls`].
    pub collector_retry_cycles: u64,
    /// Per-PC, per-cause stall attribution.
    pub stalls: StallStats,
    /// Per-PC memory coalescer traffic.
    pub mem: MemTrafficStats,
    /// The Fig. 12 census samples.
    pub census: CensusStats,
    /// Register file bank counters (reads/writes/gating).
    pub regfile: RegFileStats,
    /// The leakage-management mode the run used (needed to price the
    /// low-power bank-cycles: gated cycles leak nothing, drowsy cycles
    /// leak a fraction).
    pub gating: GatingMode,
}

impl SimStats {
    /// Total instructions including injected MOVs.
    pub fn total_instructions(&self) -> u64 {
        self.instructions + self.synthetic_movs
    }

    /// Fraction of program instructions that executed non-divergently
    /// (Fig. 3; paper average 79 %).
    pub fn nondivergent_ratio(&self) -> f64 {
        if self.instructions == 0 {
            return 1.0;
        }
        1.0 - self.divergent_instructions as f64 / self.instructions as f64
    }

    /// Injected-MOV fraction of total instructions (Fig. 11; paper <2 %).
    pub fn mov_fraction(&self) -> f64 {
        let total = self.total_instructions();
        if total == 0 {
            return 0.0;
        }
        self.synthetic_movs as f64 / total as f64
    }

    /// Compression ratio of non-divergent register writes (Fig. 8 first
    /// bars; paper average 2.5).
    pub fn compression_ratio_nondiv(&self) -> f64 {
        ratio(self.nondiv_logical_bytes, self.nondiv_stored_bytes)
    }

    /// Compression ratio of divergent register writes (Fig. 8 second
    /// bars; paper average 1.3), or `None` without divergence.
    pub fn compression_ratio_div(&self) -> Option<f64> {
        (self.div_logical_bytes > 0).then(|| ratio(self.div_logical_bytes, self.div_stored_bytes))
    }

    /// Overall compression ratio across all writes.
    pub fn compression_ratio(&self) -> f64 {
        ratio(
            self.nondiv_logical_bytes + self.div_logical_bytes,
            self.nondiv_stored_bytes + self.div_stored_bytes,
        )
    }
}

fn ratio(logical: u64, stored: u64) -> f64 {
    if stored == 0 {
        1.0
    } else {
        logical as f64 / stored as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_fractions() {
        let c = CensusStats {
            nondiv_compressed: 75,
            nondiv_total: 100,
            div_compressed: 10,
            div_total: 40,
        };
        assert!((c.nondiv_fraction() - 0.75).abs() < 1e-12);
        assert!((c.div_fraction().unwrap() - 0.25).abs() < 1e-12);
        let none = CensusStats::default();
        assert_eq!(none.div_fraction(), None);
        assert_eq!(none.nondiv_fraction(), 0.0);
    }

    #[test]
    fn ratios() {
        let s = SimStats {
            instructions: 100,
            divergent_instructions: 21,
            synthetic_movs: 2,
            nondiv_logical_bytes: 1280,
            nondiv_stored_bytes: 512,
            div_logical_bytes: 128,
            div_stored_bytes: 128,
            ..Default::default()
        };
        assert!((s.nondivergent_ratio() - 0.79).abs() < 1e-12);
        assert!((s.mov_fraction() - 2.0 / 102.0).abs() < 1e-12);
        assert!((s.compression_ratio_nondiv() - 2.5).abs() < 1e-12);
        assert!((s.compression_ratio_div().unwrap() - 1.0).abs() < 1e-12);
        assert!((s.compression_ratio() - 1408.0 / 640.0).abs() < 1e-12);
        assert_eq!(s.total_instructions(), 102);
    }

    #[test]
    fn stall_stats_record_and_total() {
        let mut s = StallStats::default();
        s.record(3, StallCause::BankConflict);
        s.record(3, StallCause::BankConflict);
        s.record(3, StallCause::Decompressor);
        s.record(7, StallCause::Scoreboard);
        s.record(9, StallCause::WritebackPort);
        s.record(9, StallCause::CollectorFull);
        assert_eq!(s.at(3).bank_conflict, 2);
        assert_eq!(s.at(3).operand_fetch(), 3);
        assert_eq!(s.at(7).scoreboard, 1);
        assert_eq!(s.at(42), PcStalls::default());
        assert_eq!(s.total(StallCause::BankConflict), 2);
        assert_eq!(s.grand_total(), 6);
        let per_cause: u64 = StallCause::ALL.iter().map(|&c| s.total(c)).sum();
        assert_eq!(per_cause, s.grand_total(), "causes partition the total");
    }

    #[test]
    fn mem_traffic_record_and_totals() {
        let mut m = MemTrafficStats::default();
        m.record(4, 1);
        m.record(4, 3);
        m.record(9, 2);
        assert_eq!(m.at(4).accesses, 2);
        assert_eq!(m.at(4).transactions, 4);
        assert_eq!(m.at(42), PcMemTraffic::default());
        assert_eq!(m.total_accesses(), 3);
        assert_eq!(m.total_transactions(), 6);
    }

    #[test]
    fn mem_event_active_addrs_respects_mask() {
        let mut addrs = [0u32; 32];
        addrs[0] = 10;
        addrs[5] = 50;
        let mut values = [0u32; 32];
        values[0] = 7;
        values[5] = 9;
        let e = MemEvent {
            pc: 2,
            block: 0,
            warp_in_block: 1,
            mask: 1 | 1 << 5,
            addrs,
            values,
            is_store: false,
        };
        let got: Vec<(usize, u32)> = e.active_addrs().collect();
        assert_eq!(got, vec![(0, 10), (5, 50)]);
        let vals: Vec<(usize, u32)> = e.active_values().collect();
        assert_eq!(vals, vec![(0, 7), (5, 9)]);
    }

    #[test]
    fn stall_cause_names_are_stable() {
        let names: Vec<&str> = StallCause::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "bank_conflict",
                "decompressor",
                "scoreboard",
                "collector_full",
                "writeback_port"
            ]
        );
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.nondivergent_ratio(), 1.0);
        assert_eq!(s.mov_fraction(), 0.0);
        assert_eq!(s.compression_ratio(), 1.0);
        assert_eq!(s.compression_ratio_div(), None);
    }
}
