//! Kernel launch configuration: grid geometry and scalar parameters.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A structurally invalid launch geometry, reported by
/// [`LaunchConfig::try_new`] — the typed path for untrusted input
/// (CLI arguments, fuzzed cases) where a panic would be wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// The grid had zero blocks.
    ZeroBlocks,
    /// A block had zero threads.
    ZeroThreads,
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::ZeroBlocks => write!(f, "launch needs at least one block"),
            LaunchError::ZeroThreads => {
                write!(f, "launch needs at least one thread per block")
            }
        }
    }
}

impl Error for LaunchError {}

/// A kernel launch: `<<<blocks, threads_per_block>>>(params…)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    blocks: usize,
    threads_per_block: usize,
    params: Vec<u32>,
}

impl LaunchConfig {
    /// A launch with no scalar parameters.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` or `threads_per_block` is zero. Use
    /// [`LaunchConfig::try_new`] when the geometry comes from
    /// untrusted input.
    pub fn new(blocks: usize, threads_per_block: usize) -> Self {
        match Self::try_new(blocks, threads_per_block) {
            Ok(launch) => launch,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validating counterpart of [`LaunchConfig::new`]: returns a typed
    /// [`LaunchError`] instead of panicking on degenerate geometry.
    ///
    /// # Errors
    ///
    /// [`LaunchError::ZeroBlocks`] / [`LaunchError::ZeroThreads`] when
    /// the respective dimension is zero.
    pub fn try_new(blocks: usize, threads_per_block: usize) -> Result<Self, LaunchError> {
        if blocks == 0 {
            return Err(LaunchError::ZeroBlocks);
        }
        if threads_per_block == 0 {
            return Err(LaunchError::ZeroThreads);
        }
        Ok(LaunchConfig {
            blocks,
            threads_per_block,
            params: Vec::new(),
        })
    }

    /// Adds the scalar kernel parameters readable via `Operand::Param(i)`.
    pub fn with_params(mut self, params: Vec<u32>) -> Self {
        self.params = params;
        self
    }

    /// Number of thread blocks in the grid.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> usize {
        self.threads_per_block
    }

    /// Scalar parameter `i`, or 0 when absent (CUDA would fault; a benign
    /// default keeps kernel authoring forgiving and deterministic).
    pub fn param(&self, i: usize) -> u32 {
        self.params.get(i).copied().unwrap_or(0)
    }

    /// All parameters.
    pub fn params(&self) -> &[u32] {
        &self.params
    }

    /// Warps needed per block at the given warp size.
    pub fn warps_per_block(&self, warp_size: usize) -> usize {
        self.threads_per_block.div_ceil(warp_size)
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.blocks * self.threads_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let l = LaunchConfig::new(3, 96);
        assert_eq!(l.blocks(), 3);
        assert_eq!(l.threads_per_block(), 96);
        assert_eq!(l.warps_per_block(32), 3);
        assert_eq!(l.total_threads(), 288);
    }

    #[test]
    fn partial_warp_rounds_up() {
        assert_eq!(LaunchConfig::new(1, 33).warps_per_block(32), 2);
    }

    #[test]
    fn params_default_to_zero() {
        let l = LaunchConfig::new(1, 32).with_params(vec![7, 8]);
        assert_eq!(l.param(0), 7);
        assert_eq!(l.param(1), 8);
        assert_eq!(l.param(2), 0);
        assert_eq!(l.params(), &[7, 8]);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = LaunchConfig::new(0, 32);
    }

    #[test]
    #[should_panic(expected = "thread per block")]
    fn zero_threads_panics() {
        let _ = LaunchConfig::new(1, 0);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(LaunchConfig::try_new(0, 32), Err(LaunchError::ZeroBlocks));
        assert_eq!(LaunchConfig::try_new(1, 0), Err(LaunchError::ZeroThreads));
        let l = LaunchConfig::try_new(2, 64).unwrap();
        assert_eq!((l.blocks(), l.threads_per_block()), (2, 64));
    }
}
