//! The streaming-multiprocessor pipeline: issue → operand collection →
//! execution → compression-aware writeback.

use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::mem;

use bdi::{BdiCodec, CompressedRegister, CompressionClass, WarpRegister};
use gpu_regfile::{BankPorts, RegFileError, RegisterFile, WarpSlot, WriteError};
use simt_isa::{Instruction, Kernel, LatencyClass, Operand, Special};

use crate::config::{DivergencePolicy, GpuConfig, SchedulerPolicy};
use crate::launch::LaunchConfig;
use crate::memory::{GlobalMemory, MemoryFault};
use crate::scoreboard::Scoreboard;
use crate::stats::{MemEvent, SimStats, StallCause, WriteEvent};
use crate::warp::WarpState;

/// Simulation failures.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// A thread accessed global memory out of range.
    Memory(MemoryFault),
    /// A thread accessed global memory out of range, with the faulting
    /// access site attributed (kernel, warp, pc). The engine raises
    /// this instead of the bare [`SimError::Memory`] whenever the
    /// context is known.
    MemoryAt {
        /// Kernel the faulting instruction belongs to.
        kernel: String,
        /// Block index of the faulting warp.
        block: usize,
        /// Warp index within its block.
        warp_in_block: usize,
        /// Program counter of the faulting load/store.
        pc: usize,
        /// The underlying out-of-range access.
        fault: MemoryFault,
    },
    /// The configured cycle cap was exceeded.
    CycleLimit {
        /// The cap that was hit.
        limit: u64,
    },
    /// No instruction issued or retired for a very long time — a
    /// simulator or kernel bug.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
    },
    /// A block needs more warp slots or register-file entries than the SM
    /// has.
    BlockTooLarge {
        /// Warps the block needs.
        warps_needed: usize,
        /// Warp slots the SM can offer for this kernel.
        slots_available: usize,
    },
    /// Register file rejected an allocation (geometry exhausted).
    RegFile(RegFileError),
    /// An operand read failed: the stored form was structurally corrupt,
    /// or register protection flagged an uncorrectable bit error (only
    /// reachable with fault injection armed).
    Read {
        /// Warp slot whose read failed.
        slot: usize,
        /// Architectural register index.
        reg: usize,
        /// The underlying register-file failure.
        source: gpu_regfile::ReadError,
    },
    /// A static issue plan failed validation or diverged from the
    /// machine state during scheduled replay — the plan does not
    /// soundly describe this kernel × launch × configuration.
    Plan {
        /// Name of the kernel whose plan was rejected (empty when not
        /// yet attributed).
        kernel: String,
        /// Global warp index the violation was detected in, if the
        /// check is warp-specific.
        warp: Option<usize>,
        /// Program counter of the offending planned step, if any.
        pc: Option<usize>,
        /// What the plan got wrong.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Memory(m) => write!(f, "memory fault: {m}"),
            SimError::MemoryAt {
                kernel,
                block,
                warp_in_block,
                pc,
                fault,
            } => write!(
                f,
                "memory fault in kernel `{kernel}` (block {block}, warp {warp_in_block}, pc {pc}): {fault}"
            ),
            SimError::CycleLimit { limit } => write!(f, "cycle limit of {limit} exceeded"),
            SimError::Deadlock { cycle } => write!(f, "no forward progress by cycle {cycle}"),
            SimError::BlockTooLarge {
                warps_needed,
                slots_available,
            } => write!(
                f,
                "block needs {warps_needed} warps but only {slots_available} slots fit this kernel"
            ),
            SimError::RegFile(e) => write!(f, "register file: {e}"),
            SimError::Read { slot, reg, source } => {
                write!(f, "read of slot {slot} r{reg} failed: {source}")
            }
            SimError::Plan {
                kernel,
                warp,
                pc,
                message,
            } => {
                write!(f, "unsound issue plan")?;
                if !kernel.is_empty() {
                    write!(f, " for kernel `{kernel}`")?;
                }
                if let Some(w) = warp {
                    write!(f, " (warp {w}")?;
                    if let Some(p) = pc {
                        write!(f, ", pc {p}")?;
                    }
                    write!(f, ")")?;
                } else if let Some(p) = pc {
                    write!(f, " (pc {p})")?;
                }
                write!(f, ": {message}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Memory(m) => Some(m),
            SimError::MemoryAt { fault, .. } => Some(fault),
            SimError::RegFile(e) => Some(e),
            SimError::Read { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<MemoryFault> for SimError {
    fn from(m: MemoryFault) -> Self {
        SimError::Memory(m)
    }
}

impl From<RegFileError> for SimError {
    fn from(e: RegFileError) -> Self {
        SimError::RegFile(e)
    }
}

/// Attributes a [`MemoryFault`] to its access site.
fn mem_fault_at(
    kernel: &str,
    block: usize,
    warp_in_block: usize,
    pc: usize,
    fault: MemoryFault,
) -> SimError {
    SimError::MemoryAt {
        kernel: kernel.to_string(),
        block,
        warp_in_block,
        pc,
        fault,
    }
}

/// Result of a completed simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResult {
    /// All collected statistics.
    pub stats: SimStats,
}

/// Final architectural register state of every warp, keyed by
/// `(block, warp_in_block)` and captured (decompressed) at the instant
/// the warp drains, just before its slot is freed. This is the
/// bit-identity witness the scheduled backend is checked against.
pub type FinalRegs = BTreeMap<(usize, usize), Vec<WarpRegister>>;

/// The simulator front-end: configure once, run kernels.
#[derive(Clone, Debug)]
pub struct GpuSim {
    cfg: GpuConfig,
}

impl GpuSim {
    /// Creates a simulator with the given configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        GpuSim { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Resident-warp slots this configuration offers `kernel`: the
    /// SM's warp-slot count capped by register-file capacity. An
    /// ahead-of-time issue plan must be laid out for exactly this
    /// residency to replay here.
    pub fn max_resident_warps(&self, kernel: &Kernel) -> usize {
        let num_regs = kernel.num_regs().max(1) as usize;
        self.cfg
            .max_warps_per_sm
            .min(RegisterFile::new(self.cfg.regfile).max_slots(num_regs))
    }

    /// Runs a kernel to completion.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(
        &self,
        kernel: &Kernel,
        launch: &LaunchConfig,
        memory: &mut GlobalMemory,
    ) -> Result<SimResult, SimError> {
        self.run_observed(kernel, launch, memory, &mut |_| {})
    }

    /// Runs a kernel, delivering every retired register write to
    /// `observer` (used for the Fig. 2 / Fig. 5 value characterisations).
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_observed(
        &self,
        kernel: &Kernel,
        launch: &LaunchConfig,
        memory: &mut GlobalMemory,
        observer: &mut dyn FnMut(&WriteEvent),
    ) -> Result<SimResult, SimError> {
        self.run_block_range(kernel, launch, memory, 0..launch.blocks(), observer)
    }

    /// Runs a kernel and additionally captures every warp's final
    /// architectural register values (decompressed) at drain time.
    ///
    /// The scheduled backend replays an ahead-of-time issue plan with
    /// the scoreboard bypassed; this method provides the dynamic-core
    /// ground truth its bit-identity soundness check compares against.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_capturing(
        &self,
        kernel: &Kernel,
        launch: &LaunchConfig,
        memory: &mut GlobalMemory,
    ) -> Result<(SimResult, FinalRegs), SimError> {
        let mut observer = |_: &WriteEvent| {};
        let mut engine = Engine::new(
            &self.cfg,
            kernel,
            launch,
            memory,
            0..launch.blocks(),
            &mut observer,
        )?;
        engine.capture = Some(FinalRegs::new());
        let result = engine.run_loop()?;
        let regs = engine.capture.take().expect("armed above");
        Ok((result, regs))
    }

    /// Runs a kernel, delivering every dispatched global-memory access
    /// (pc, warp, active mask, per-lane effective addresses) to
    /// `mem_observer`.
    ///
    /// This is the trace the `wcsim mem` soundness gate joins against
    /// the static address abstraction.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run_mem_observed(
        &self,
        kernel: &Kernel,
        launch: &LaunchConfig,
        memory: &mut GlobalMemory,
        mem_observer: &mut dyn FnMut(&MemEvent),
    ) -> Result<SimResult, SimError> {
        let mut observer = |_: &WriteEvent| {};
        let mut engine = Engine::new(
            &self.cfg,
            kernel,
            launch,
            memory,
            0..launch.blocks(),
            &mut observer,
        )?;
        engine.mem_observer = Some(mem_observer);
        engine.run_loop()
    }

    /// Runs only the blocks in `range` of the launch on this SM — the
    /// building block of [`run_chip`](Self::run_chip).
    pub(crate) fn run_block_range(
        &self,
        kernel: &Kernel,
        launch: &LaunchConfig,
        memory: &mut GlobalMemory,
        range: std::ops::Range<usize>,
        observer: &mut dyn FnMut(&WriteEvent),
    ) -> Result<SimResult, SimError> {
        Engine::new(&self.cfg, kernel, launch, memory, range, observer)?.run()
    }

    /// Runs a kernel with the given fault injector armed in the register
    /// file. Unlike [`run`](Self::run), the fault event log is returned
    /// even when the simulation fails — a detected uncorrectable error
    /// surfaces as `Err(SimError::Read { .. })` *and* the log records the
    /// detection, so campaigns can account for every injected fault.
    #[cfg(feature = "faults")]
    pub fn run_faulted(
        &self,
        kernel: &Kernel,
        launch: &LaunchConfig,
        memory: &mut GlobalMemory,
        injector: gpu_faults::FaultInjector,
    ) -> (Result<SimResult, SimError>, gpu_faults::FaultLog) {
        let mut observer = |_: &WriteEvent| {};
        let engine = Engine::new(
            self.config(),
            kernel,
            launch,
            memory,
            0..launch.blocks(),
            &mut observer,
        );
        match engine {
            Ok(mut engine) => {
                engine.regfile.arm_faults(injector);
                let result = engine.run_loop();
                let log = engine
                    .regfile
                    .take_fault_log()
                    .expect("injector armed above");
                (result, log)
            }
            // Launch never started: every planned fault is untriggered.
            Err(e) => (Err(e), injector.finish()),
        }
    }
}

// ---------------------------------------------------------------------
// Internal pipeline structures
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Fetch {
    reg: usize,
    value: Option<WarpRegister>,
}

#[derive(Clone, Debug)]
struct Collector {
    slot: usize,
    pc: usize,
    instr: Instruction,
    mask: u32,
    divergent: bool,
    synthetic: bool,
    fetches: Vec<Fetch>,
    /// Extra result latency from decompressing compressed operands: the
    /// decompressor sits *between* the register file and the execution
    /// units (Fig. 1), a pipelined stage that lengthens the dependent
    /// path without holding the collector.
    decomp_extra: u64,
}

#[derive(Clone, Debug)]
enum WbState {
    Await {
        done_at: u64,
    },
    NeedCompressor,
    Compressing {
        done_at: u64,
        compressed: CompressedRegister,
    },
    Ready {
        compressed: CompressedRegister,
        not_before: u64,
    },
}

#[derive(Clone, Debug)]
struct WbEntry {
    slot: usize,
    pc: usize,
    reg: usize,
    result: WarpRegister,
    mask: u32,
    divergent: bool,
    synthetic: bool,
    state: WbState,
}

struct Engine<'a> {
    cfg: &'a GpuConfig,
    kernel: &'a Kernel,
    launch: &'a LaunchConfig,
    memory: &'a mut GlobalMemory,
    observer: &'a mut dyn FnMut(&WriteEvent),
    codec: BdiCodec,
    regfile: RegisterFile,
    ports: BankPorts,
    scoreboard: Scoreboard,
    warps: Vec<Option<WarpState>>,
    collectors: Vec<Option<Collector>>,
    writebacks: Vec<WbEntry>,
    sched_last: Vec<Option<usize>>,
    now: u64,
    comp_starts: usize,
    decomp_starts: usize,
    next_block: usize,
    last_block: usize,
    launch_seq: u64,
    num_regs: usize,
    initial_reg: CompressedRegister,
    stats: SimStats,
    last_progress: u64,
    /// When armed, drained warps deposit their decompressed registers
    /// here just before the slot is freed.
    capture: Option<FinalRegs>,
    /// When armed, every dispatched load/store delivers a [`MemEvent`]
    /// (pc, warp, active mask, per-lane addresses) here.
    mem_observer: Option<&'a mut dyn FnMut(&MemEvent)>,
    /// Uncompressed mirror every decompressed read is checked against.
    #[cfg(feature = "sanitize")]
    shadow: gpu_regfile::ShadowRegisterFile,
    /// Independent RAW/WAW/WAR re-check of every issue/capture/retire.
    #[cfg(feature = "sanitize")]
    oracle: crate::sanitize::HazardOracle,
}

/// Declare a deadlock after this many cycles without an issue or retire.
const DEADLOCK_WINDOW: u64 = 100_000;

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a GpuConfig,
        kernel: &'a Kernel,
        launch: &'a LaunchConfig,
        memory: &'a mut GlobalMemory,
        block_range: std::ops::Range<usize>,
        observer: &'a mut dyn FnMut(&WriteEvent),
    ) -> Result<Self, SimError> {
        let num_regs = kernel.num_regs().max(1) as usize;
        let regfile = RegisterFile::new(cfg.regfile);
        let max_resident = cfg.max_warps_per_sm.min(regfile.max_slots(num_regs));
        let warps_needed = launch.warps_per_block(cfg.warp_size);
        if warps_needed > max_resident {
            return Err(SimError::BlockTooLarge {
                warps_needed,
                slots_available: max_resident,
            });
        }
        let codec = BdiCodec::new(cfg.compression.choices.clone());
        let initial_reg = if cfg.compression.is_enabled() {
            codec.compress(&WarpRegister::ZERO)
        } else {
            CompressedRegister::Uncompressed(WarpRegister::ZERO)
        };
        Ok(Engine {
            ports: BankPorts::new(cfg.regfile.num_banks),
            scoreboard: Scoreboard::new(),
            warps: vec![None; max_resident],
            collectors: vec![None; cfg.num_collectors],
            writebacks: Vec::new(),
            sched_last: vec![None; cfg.num_schedulers],
            now: 0,
            comp_starts: 0,
            decomp_starts: 0,
            next_block: block_range.start,
            last_block: block_range.end,
            launch_seq: 0,
            num_regs,
            initial_reg,
            stats: SimStats::default(),
            last_progress: 0,
            capture: None,
            mem_observer: None,
            #[cfg(feature = "sanitize")]
            shadow: gpu_regfile::ShadowRegisterFile::new(),
            #[cfg(feature = "sanitize")]
            oracle: crate::sanitize::HazardOracle::new(kernel.name(), max_resident, num_regs),
            cfg,
            kernel,
            launch,
            memory,
            observer,
            codec,
            regfile,
        })
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        self.run_loop()
    }

    /// The main cycle loop, separated from [`run`](Self::run) so
    /// `run_faulted` can recover the fault log from the register file
    /// after an `Err` return.
    fn run_loop(&mut self) -> Result<SimResult, SimError> {
        self.launch_blocks()?;
        while !self.is_done() {
            self.ports.begin_cycle();
            self.comp_starts = 0;
            self.decomp_starts = 0;
            self.writeback_stage()?;
            self.collector_stage()?;
            self.issue_stage();
            if self.cfg.census_interval > 0 && self.now.is_multiple_of(self.cfg.census_interval) {
                self.sample_census();
            }
            self.retire_warps();
            self.launch_blocks()?;
            self.now += 1;
            if self.now > self.cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.cfg.max_cycles,
                });
            }
            if self.now.saturating_sub(self.last_progress) > DEADLOCK_WINDOW {
                return Err(SimError::Deadlock { cycle: self.now });
            }
        }
        self.stats.cycles = self.now;
        self.stats.regfile = self.regfile.stats(self.now);
        self.stats.gating = self.cfg.regfile.gating;
        Ok(SimResult {
            stats: mem::take(&mut self.stats),
        })
    }

    fn is_done(&self) -> bool {
        self.next_block >= self.last_block && self.warps.iter().all(Option::is_none)
    }

    // -----------------------------------------------------------------
    // Block launch / warp retirement
    // -----------------------------------------------------------------

    fn launch_blocks(&mut self) -> Result<(), SimError> {
        let wpb = self.launch.warps_per_block(self.cfg.warp_size);
        loop {
            if self.next_block >= self.last_block {
                return Ok(());
            }
            let free: Vec<usize> = (0..self.warps.len())
                .filter(|&s| self.warps[s].is_none())
                .take(wpb)
                .collect();
            if free.len() < wpb {
                return Ok(());
            }
            let block = self.next_block;
            let tpb = self.launch.threads_per_block();
            for (w, &slot) in free.iter().enumerate() {
                let threads = (tpb - w * self.cfg.warp_size).min(self.cfg.warp_size);
                self.regfile.allocate_warp_with(
                    WarpSlot(slot),
                    self.num_regs,
                    &self.initial_reg,
                    self.now,
                )?;
                #[cfg(feature = "sanitize")]
                self.shadow.allocate_warp(
                    WarpSlot(slot),
                    self.num_regs,
                    self.codec.decompress(&self.initial_reg),
                );
                self.warps[slot] = Some(WarpState::new(slot, block, w, threads, self.launch_seq));
                self.launch_seq += 1;
            }
            self.next_block += 1;
        }
    }

    fn retire_warps(&mut self) {
        for slot in 0..self.warps.len() {
            let drained_slot = match &self.warps[slot] {
                Some(w) if w.is_drained() => Some(w.slot),
                _ => None,
            };
            if let Some(s) = drained_slot {
                debug_assert!(self.scoreboard.is_warp_idle(s));
                #[cfg(feature = "sanitize")]
                {
                    self.oracle.on_warp_free(s);
                    self.shadow.free_warp(WarpSlot(s));
                }
                if let Some(cap) = self.capture.as_mut() {
                    let w = self.warps[s].as_ref().expect("drained warp present");
                    let regs = (0..self.num_regs)
                        .map(|r| {
                            let stored =
                                self.regfile.peek(WarpSlot(s), r).expect("still allocated");
                            self.codec.decompress(stored)
                        })
                        .collect();
                    cap.insert((w.block, w.warp_in_block), regs);
                }
                self.regfile.free_warp(WarpSlot(s), self.now);
                self.warps[s] = None;
            }
        }
    }

    // -----------------------------------------------------------------
    // Issue
    // -----------------------------------------------------------------

    fn issue_stage(&mut self) {
        for s in 0..self.cfg.num_schedulers {
            let order = self.schedule_order(s);
            for slot in order {
                if self.try_issue(slot) {
                    self.sched_last[s] = Some(slot);
                    self.last_progress = self.now;
                    break;
                }
            }
        }
    }

    /// Candidate warps of scheduler `s`, in policy priority order.
    fn schedule_order(&self, s: usize) -> Vec<usize> {
        let mut slots: Vec<usize> = (0..self.warps.len())
            .filter(|&slot| slot % self.cfg.num_schedulers == s)
            .filter(|&slot| matches!(&self.warps[slot], Some(w) if !w.is_done() && !w.blocked))
            .collect();
        match self.cfg.scheduler {
            SchedulerPolicy::Gto => {
                slots.sort_by_key(|&slot| {
                    self.warps[slot]
                        .as_ref()
                        .map(|w| w.launch_seq)
                        .unwrap_or(u64::MAX)
                });
                if let Some(last) = self.sched_last[s] {
                    if let Some(pos) = slots.iter().position(|&x| x == last) {
                        let greedy = slots.remove(pos);
                        slots.insert(0, greedy);
                    }
                }
            }
            SchedulerPolicy::Lrr => {
                if let Some(last) = self.sched_last[s] {
                    // Rotate so iteration starts just after `last`.
                    let split = slots.iter().position(|&x| x > last).unwrap_or(0);
                    slots.rotate_left(split);
                }
            }
        }
        slots
    }

    /// Attempts to issue one instruction from the warp in `slot`.
    fn try_issue(&mut self, slot: usize) -> bool {
        let Some(warp) = self.warps[slot].as_ref() else {
            return false;
        };
        let Some(pc) = warp.stack.pc() else {
            return false;
        };
        let instr = *self.kernel.instr(pc).expect("pc validated by Kernel");
        let mask = warp.stack.mask();
        let divergent = warp.is_divergent();

        // §5.2: a divergent write to a compressed register is preceded by
        // an injected dummy MOV that decompresses it in place.
        let inject = self.cfg.compression.is_enabled()
            && self.cfg.compression.divergence == DivergencePolicy::UncompressedWrites
            && divergent
            && instr
                .dst()
                .map(|d| self.regfile.is_compressed(WarpSlot(slot), d.index()))
                .unwrap_or(false);
        let (actual, actual_mask, synthetic) = if inject {
            let d = instr.dst().expect("inject requires a destination");
            (
                Instruction::Mov {
                    dst: d,
                    src: Operand::Reg(d),
                },
                self.warps[slot].as_ref().expect("checked").full_mask,
                true,
            )
        } else {
            (instr, mask, false)
        };

        let srcs = unique_srcs(&actual);
        let dst = actual.dst().map(|r| r.index());
        if !self.scoreboard.can_issue(slot, &srcs, dst) {
            self.stats.stalls.record(pc, StallCause::Scoreboard);
            return false;
        }
        // LSU ordering: memory effects happen at dispatch, so a new
        // load/store must wait until the warp's previous one has
        // dispatched — otherwise same-address accesses could reorder.
        let is_mem = actual.latency_class() == LatencyClass::Memory;
        if is_mem && self.warps[slot].as_ref().expect("checked").pending_mem > 0 {
            self.stats.stalls.record(pc, StallCause::Scoreboard);
            return false;
        }

        match actual {
            Instruction::Jmp { target } => {
                let warp = self.warps[slot].as_mut().expect("checked");
                warp.stack.jump(target);
                self.count_issue(divergent, synthetic);
                true
            }
            Instruction::Exit => {
                let warp = self.warps[slot].as_mut().expect("checked");
                warp.stack.exit_threads();
                self.count_issue(divergent, synthetic);
                true
            }
            _ => {
                let Some(ci) = self.collectors.iter().position(Option::is_none) else {
                    self.stats.stalls.record(pc, StallCause::CollectorFull);
                    return false;
                };
                self.scoreboard.issue(slot, &srcs, dst);
                #[cfg(feature = "sanitize")]
                self.oracle.on_issue(slot, pc, &srcs, dst);
                let warp = self.warps[slot].as_mut().expect("checked");
                warp.inflight += 1;
                if is_mem {
                    warp.pending_mem += 1;
                }
                match actual {
                    Instruction::Bra { .. } => warp.blocked = true,
                    _ if synthetic => {} // pc unchanged; real instruction issues later
                    _ => warp.stack.advance(),
                }
                let fetches = srcs.iter().map(|&reg| Fetch { reg, value: None }).collect();
                self.collectors[ci] = Some(Collector {
                    slot,
                    pc,
                    instr: actual,
                    mask: actual_mask,
                    divergent,
                    synthetic,
                    fetches,
                    decomp_extra: 0,
                });
                self.count_issue(divergent, synthetic);
                true
            }
        }
    }

    fn count_issue(&mut self, divergent: bool, synthetic: bool) {
        if synthetic {
            self.stats.synthetic_movs += 1;
        } else {
            self.stats.instructions += 1;
            if divergent {
                self.stats.divergent_instructions += 1;
            }
        }
    }

    // -----------------------------------------------------------------
    // Operand collection and dispatch
    // -----------------------------------------------------------------

    fn collector_stage(&mut self) -> Result<(), SimError> {
        for ci in 0..self.collectors.len() {
            let Some(mut c) = self.collectors[ci].take() else {
                continue;
            };
            self.fetch_operands(&mut c)?;
            if c.fetches.iter().all(|f| f.value.is_some()) {
                self.dispatch(c)?;
                self.last_progress = self.now;
            } else {
                self.collectors[ci] = Some(c);
            }
        }
        Ok(())
    }

    fn fetch_operands(&mut self, c: &mut Collector) -> Result<(), SimError> {
        let cluster = c.slot % self.cfg.regfile.num_clusters();
        let bank_base = cluster * self.cfg.regfile.banks_per_cluster;
        for f in c.fetches.iter_mut().filter(|f| f.value.is_none()) {
            let indicator = self
                .regfile
                .indicator(WarpSlot(c.slot), f.reg)
                .expect("operand register is allocated");
            let compressed = indicator.is_compressed();
            if compressed && self.decomp_starts >= self.cfg.compression.num_decompressors {
                self.stats.collector_retry_cycles += 1;
                self.stats.stalls.record(c.pc, StallCause::Decompressor);
                continue;
            }
            let banks = indicator.banks_accessed();
            if !self.ports.try_read(bank_base..bank_base + banks) {
                self.stats.collector_retry_cycles += 1;
                self.stats.stalls.record(c.pc, StallCause::BankConflict);
                continue;
            }
            let sample = self
                .regfile
                .try_read(WarpSlot(c.slot), f.reg, self.now)
                .map_err(|source| SimError::Read {
                    slot: c.slot,
                    reg: f.reg,
                    source,
                })?;
            let value =
                self.codec
                    .try_decompress(&sample.register)
                    .map_err(|e| SimError::Read {
                        slot: c.slot,
                        reg: f.reg,
                        source: gpu_regfile::ReadError::Corrupted(e),
                    })?;
            #[cfg(feature = "sanitize")]
            {
                use gpu_regfile::FaultDisposition;
                if sample.fault == Some(FaultDisposition::SilentCorruption) {
                    // The injector claims the delivered value is wrong;
                    // the shadow must agree, or the classification lies.
                    assert!(
                        !self.shadow.matches(WarpSlot(c.slot), f.reg, &value),
                        "sanitize: injector reported silent corruption of slot {} r{} \
                         but the delivered value matches the shadow",
                        c.slot,
                        f.reg,
                    );
                } else {
                    self.shadow.check_read(WarpSlot(c.slot), f.reg, &value);
                }
            }
            f.value = Some(value);
            if compressed {
                self.decomp_starts += 1;
                self.stats.decompressor_activations += 1;
                c.decomp_extra = c
                    .decomp_extra
                    .max(self.cfg.compression.decompression_latency);
            }
        }
        Ok(())
    }

    fn dispatch(&mut self, c: Collector) -> Result<(), SimError> {
        let srcs: Vec<usize> = c.fetches.iter().map(|f| f.reg).collect();
        self.scoreboard.release_reads(c.slot, &srcs);
        #[cfg(feature = "sanitize")]
        self.oracle.on_capture(c.slot, &srcs);
        let values: HashMap<usize, WarpRegister> = c
            .fetches
            .iter()
            .map(|f| (f.reg, f.value.expect("dispatch requires all operands")))
            .collect();
        let warp = self.warps[c.slot]
            .as_ref()
            .expect("warp alive while in flight");
        let warp_size = self.cfg.warp_size;

        let eval = |op: Operand, lane: usize| -> u32 {
            match op {
                Operand::Reg(r) => values[&r.index()].lane(lane),
                Operand::Imm(v) => v as u32,
                Operand::Param(i) => self.launch.param(i as usize),
                Operand::Special(s) => {
                    let tid = warp.tid_of_lane(lane, warp_size);
                    match s {
                        Special::Tid => tid,
                        Special::Bid => warp.block as u32,
                        Special::BlockDim => self.launch.threads_per_block() as u32,
                        Special::GridDim => self.launch.blocks() as u32,
                        Special::GlobalTid => {
                            warp.block as u32 * self.launch.threads_per_block() as u32 + tid
                        }
                        Special::LaneId => lane as u32,
                        Special::WarpId => warp.warp_in_block as u32,
                    }
                }
            }
        };

        match c.instr {
            Instruction::Mov { dst, src } => {
                let result = WarpRegister::from_fn(|lane| eval(src, lane));
                let done_at = self.now + self.cfg.alu_latency + c.decomp_extra;
                self.push_writeback(&c, dst.index(), result, done_at);
            }
            Instruction::Alu { op, dst, a, b } => {
                let result = WarpRegister::from_fn(|lane| op.apply(eval(a, lane), eval(b, lane)));
                let latency = match op.latency_class() {
                    LatencyClass::Sfu => self.cfg.sfu_latency,
                    _ => self.cfg.alu_latency,
                };
                let done_at = self.now + latency + c.decomp_extra;
                self.push_writeback(&c, dst.index(), result, done_at);
            }
            Instruction::Ld { dst, base, offset } => {
                let (wblock, wwarp) = (warp.block, warp.warp_in_block);
                let mut result = WarpRegister::ZERO;
                let mut addrs = [0u32; 32];
                let mut vals = [0u32; 32];
                for (lane, slot) in addrs.iter_mut().enumerate().take(warp_size) {
                    if c.mask & (1 << lane) != 0 {
                        let addr = values[&base.index()].lane(lane).wrapping_add(offset as u32);
                        *slot = addr;
                        let word = self.memory.load(addr).map_err(|fault| {
                            mem_fault_at(self.kernel.name(), wblock, wwarp, c.pc, fault)
                        })?;
                        result.set_lane(lane, word);
                        vals[lane] = word;
                    }
                }
                self.record_mem(&c, wblock, wwarp, addrs, vals, false);
                let done_at = self.now + self.cfg.mem_latency + c.decomp_extra;
                self.push_writeback(&c, dst.index(), result, done_at);
                let warp = self.warps[c.slot].as_mut().expect("warp alive");
                warp.pending_mem -= 1;
            }
            Instruction::St { base, offset, src } => {
                let (wblock, wwarp) = (warp.block, warp.warp_in_block);
                let mut addrs = [0u32; 32];
                let mut vals = [0u32; 32];
                for (lane, slot) in addrs.iter_mut().enumerate().take(warp_size) {
                    if c.mask & (1 << lane) != 0 {
                        let addr = values[&base.index()].lane(lane).wrapping_add(offset as u32);
                        *slot = addr;
                        let word = values[&src.index()].lane(lane);
                        self.memory.store(addr, word).map_err(|fault| {
                            mem_fault_at(self.kernel.name(), wblock, wwarp, c.pc, fault)
                        })?;
                        vals[lane] = word;
                    }
                }
                self.record_mem(&c, wblock, wwarp, addrs, vals, true);
                let warp = self.warps[c.slot].as_mut().expect("warp alive");
                warp.inflight -= 1;
                warp.pending_mem -= 1;
            }
            Instruction::Bra {
                pred,
                target,
                reconv,
            } => {
                let pv = &values[&pred.index()];
                let mut taken = 0u32;
                for lane in 0..warp_size {
                    if c.mask & (1 << lane) != 0 && pv.lane(lane) != 0 {
                        taken |= 1 << lane;
                    }
                }
                let warp = self.warps[c.slot].as_mut().expect("warp alive");
                warp.stack.branch(taken, target, reconv);
                warp.blocked = false;
                warp.inflight -= 1;
            }
            Instruction::Jmp { .. } | Instruction::Exit => {
                unreachable!("control-only instructions issue without a collector")
            }
        }
        Ok(())
    }

    /// Charges coalescer traffic for one dispatched access (distinct
    /// 32-word segments across the active lanes) and feeds the armed
    /// memory-trace observer, if any.
    #[allow(clippy::too_many_arguments)]
    fn record_mem(
        &mut self,
        c: &Collector,
        block: usize,
        warp_in_block: usize,
        addrs: [u32; 32],
        values: [u32; 32],
        is_store: bool,
    ) {
        if c.mask == 0 {
            return;
        }
        let mut segs: Vec<u32> = (0..self.cfg.warp_size)
            .filter(|lane| c.mask >> lane & 1 == 1)
            .map(|lane| addrs[lane] >> 5)
            .collect();
        segs.sort_unstable();
        segs.dedup();
        self.stats.mem.record(c.pc, segs.len() as u64);
        if let Some(observer) = self.mem_observer.as_mut() {
            observer(&MemEvent {
                pc: c.pc,
                block,
                warp_in_block,
                mask: c.mask,
                addrs,
                values,
                is_store,
            });
        }
    }

    fn push_writeback(&mut self, c: &Collector, reg: usize, result: WarpRegister, done_at: u64) {
        self.writebacks.push(WbEntry {
            slot: c.slot,
            pc: c.pc,
            reg,
            result,
            mask: c.mask,
            divergent: c.divergent,
            synthetic: c.synthetic,
            state: WbState::Await { done_at },
        });
    }

    // -----------------------------------------------------------------
    // Writeback: merge → compress → bank write
    // -----------------------------------------------------------------

    fn writeback_stage(&mut self) -> Result<(), SimError> {
        let entries = mem::take(&mut self.writebacks);
        for mut e in entries {
            loop {
                match self.step_writeback(&mut e)? {
                    StepOutcome::Progress => continue,
                    StepOutcome::Stalled => {
                        self.writebacks.push(e);
                        break;
                    }
                    StepOutcome::Retired => {
                        self.last_progress = self.now;
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    fn step_writeback(&mut self, e: &mut WbEntry) -> Result<StepOutcome, SimError> {
        let comp = &self.cfg.compression;
        match &e.state {
            WbState::Await { done_at } => {
                if self.now < *done_at {
                    return Ok(StepOutcome::Stalled);
                }
                self.merge_result(e)?;
                let skip_compressor = !comp.is_enabled()
                    || e.synthetic
                    || (e.divergent && comp.divergence == DivergencePolicy::UncompressedWrites);
                e.state = if skip_compressor {
                    WbState::Ready {
                        compressed: CompressedRegister::Uncompressed(e.result),
                        not_before: self.now,
                    }
                } else {
                    WbState::NeedCompressor
                };
                Ok(StepOutcome::Progress)
            }
            WbState::NeedCompressor => {
                if self.comp_starts >= comp.num_compressors {
                    return Ok(StepOutcome::Stalled);
                }
                self.comp_starts += 1;
                self.stats.compressor_activations += 1;
                let compressed = self.codec.compress(&e.result);
                e.state = WbState::Compressing {
                    done_at: self.now + comp.compression_latency,
                    compressed,
                };
                Ok(StepOutcome::Progress)
            }
            WbState::Compressing {
                done_at,
                compressed,
            } => {
                if self.now < *done_at {
                    return Ok(StepOutcome::Stalled);
                }
                e.state = WbState::Ready {
                    compressed: *compressed,
                    not_before: self.now,
                };
                Ok(StepOutcome::Progress)
            }
            WbState::Ready {
                compressed,
                not_before,
            } => {
                if self.now < *not_before {
                    return Ok(StepOutcome::Stalled);
                }
                let cluster = e.slot % self.cfg.regfile.num_clusters();
                let bank_base = cluster * self.cfg.regfile.banks_per_cluster;
                let banks = compressed.banks_required();
                if !self.ports.try_write(bank_base..bank_base + banks) {
                    self.stats.stalls.record(e.pc, StallCause::WritebackPort);
                    return Ok(StepOutcome::Stalled);
                }
                match self
                    .regfile
                    .write(WarpSlot(e.slot), e.reg, *compressed, self.now)
                {
                    Ok(_) => {
                        #[cfg(feature = "sanitize")]
                        self.shadow.record_write(WarpSlot(e.slot), e.reg, &e.result);
                        self.retire_write(e, compressed.class());
                        Ok(StepOutcome::Retired)
                    }
                    Err(WriteError::NotReady { ready_at }) => {
                        self.stats.stalls.record(e.pc, StallCause::WritebackPort);
                        e.state = WbState::Ready {
                            compressed: *compressed,
                            not_before: ready_at,
                        };
                        Ok(StepOutcome::Stalled)
                    }
                    Err(WriteError::Unallocated) => {
                        unreachable!("warp cannot drain with writes in flight")
                    }
                }
            }
        }
    }

    /// Folds the old register value into the inactive lanes of a partial
    /// write, charging energy according to the divergence policy.
    ///
    /// The merge read deliberately bypasses the fault injector: the
    /// injection point is operand fetch, and a pending corruption of the
    /// destination is about to be overwritten (the injector resolves it
    /// as masked on the subsequent write).
    fn merge_result(&mut self, e: &mut WbEntry) -> Result<(), SimError> {
        if e.mask == u32::MAX {
            return Ok(());
        }
        let comp = &self.cfg.compression;
        let use_counted_read = comp.is_enabled()
            && comp.divergence == DivergencePolicy::DecompressMergeRecompress
            && e.divergent;
        let old = if use_counted_read {
            // The rejected §5.2 alternative: the destination is read (and
            // decompressed) before the merge, costing bank reads and a
            // decompressor activation.
            let read = self.regfile.read(WarpSlot(e.slot), e.reg, self.now);
            if read.register.is_compressed() {
                self.stats.decompressor_activations += 1;
            }
            let register = *read.register;
            self.try_decompress(e.slot, e.reg, &register)?
        } else {
            // Per-lane write enables: merging costs nothing.
            let stored =
                self.regfile
                    .peek(WarpSlot(e.slot), e.reg)
                    .copied()
                    .ok_or(SimError::Read {
                        slot: e.slot,
                        reg: e.reg,
                        source: gpu_regfile::ReadError::Unallocated,
                    })?;
            self.try_decompress(e.slot, e.reg, &stored)?
        };
        #[cfg(feature = "sanitize")]
        self.shadow.check_read(WarpSlot(e.slot), e.reg, &old);
        e.result = old.merge_masked(&e.result, e.mask);
        Ok(())
    }

    /// Decode with the stored-form validation of [`BdiCodec::try_decompress`],
    /// lifting failures into [`SimError::Read`].
    fn try_decompress(
        &self,
        slot: usize,
        reg: usize,
        stored: &CompressedRegister,
    ) -> Result<WarpRegister, SimError> {
        self.codec
            .try_decompress(stored)
            .map_err(|e| SimError::Read {
                slot,
                reg,
                source: gpu_regfile::ReadError::Corrupted(e),
            })
    }

    fn retire_write(&mut self, e: &WbEntry, class: CompressionClass) {
        self.stats.writes += 1;
        if class.is_compressed() {
            self.stats.writes_compressed += 1;
        }
        if !e.synthetic {
            let logical = bdi::WARP_REGISTER_BYTES as u64;
            let stored = match &e.state {
                WbState::Ready { compressed, .. } => compressed.stored_len() as u64,
                _ => unreachable!("retire only from Ready"),
            };
            if e.divergent {
                self.stats.div_logical_bytes += logical;
                self.stats.div_stored_bytes += stored;
            } else {
                self.stats.nondiv_logical_bytes += logical;
                self.stats.nondiv_stored_bytes += stored;
            }
        }
        (self.observer)(&WriteEvent {
            pc: e.pc,
            value: e.result,
            class,
            divergent: e.divergent,
            synthetic: e.synthetic,
        });
        self.scoreboard.release_write(e.slot, e.reg);
        #[cfg(feature = "sanitize")]
        self.oracle.on_retire_write(e.slot, e.reg);
        let warp = self.warps[e.slot]
            .as_mut()
            .expect("warp alive while in flight");
        warp.inflight -= 1;
    }

    // -----------------------------------------------------------------
    // Census (Fig. 12)
    // -----------------------------------------------------------------

    fn sample_census(&mut self) {
        for slot in 0..self.warps.len() {
            let Some(w) = self.warps[slot].as_ref() else {
                continue;
            };
            if w.is_done() {
                continue;
            }
            let divergent = w.is_divergent();
            let (compressed, total) = self.regfile.warp_census(WarpSlot(slot));
            if divergent {
                self.stats.census.div_compressed += compressed as u64;
                self.stats.census.div_total += total as u64;
            } else {
                self.stats.census.nondiv_compressed += compressed as u64;
                self.stats.census.nondiv_total += total as u64;
            }
        }
    }
}

enum StepOutcome {
    Progress,
    Stalled,
    Retired,
}

/// Unique source registers of an instruction, in first-use order.
pub(crate) fn unique_srcs(instr: &Instruction) -> Vec<usize> {
    let mut srcs: Vec<usize> = Vec::new();
    for r in instr.src_regs() {
        if !srcs.contains(&r.index()) {
            srcs.push(r.index());
        }
    }
    srcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{AluOp, KernelBuilder, Reg};

    fn run_kernel(
        cfg: GpuConfig,
        kernel: &Kernel,
        launch: &LaunchConfig,
        memory: &mut GlobalMemory,
    ) -> SimResult {
        GpuSim::new(cfg)
            .run(kernel, launch, memory)
            .expect("simulation succeeds")
    }

    /// mem[gtid] = gtid * 2 + 1
    fn affine_kernel() -> Kernel {
        let mut b = KernelBuilder::new("affine", 3);
        b.mov(Reg(0), Operand::Special(Special::GlobalTid));
        b.alu(AluOp::Mul, Reg(1), Reg(0).into(), Operand::Imm(2));
        b.alu(AluOp::Add, Reg(2), Reg(1).into(), Operand::Imm(1));
        b.st(Reg(0), 0, Reg(2));
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn straight_line_kernel_computes_correctly_baseline() {
        let kernel = affine_kernel();
        let mut mem = GlobalMemory::zeroed(128);
        run_kernel(
            GpuConfig::baseline(),
            &kernel,
            &LaunchConfig::new(2, 64),
            &mut mem,
        );
        for i in 0..128 {
            assert_eq!(mem.word(i).unwrap(), (i * 2 + 1) as u32, "word {i}");
        }
    }

    #[test]
    fn straight_line_kernel_computes_correctly_compressed() {
        let kernel = affine_kernel();
        let mut mem = GlobalMemory::zeroed(128);
        let r = run_kernel(
            GpuConfig::warped_compression(),
            &kernel,
            &LaunchConfig::new(2, 64),
            &mut mem,
        );
        for i in 0..128 {
            assert_eq!(mem.word(i).unwrap(), (i * 2 + 1) as u32, "word {i}");
        }
        // Affine values compress; some writes must be compressed.
        assert!(r.stats.writes_compressed > 0);
        assert!(r.stats.compression_ratio() > 1.0);
    }

    #[test]
    fn compressed_run_accesses_fewer_banks() {
        let kernel = affine_kernel();
        let launch = LaunchConfig::new(2, 64);
        let mut m1 = GlobalMemory::zeroed(128);
        let base = run_kernel(GpuConfig::baseline(), &kernel, &launch, &mut m1);
        let mut m2 = GlobalMemory::zeroed(128);
        let wc = run_kernel(GpuConfig::warped_compression(), &kernel, &launch, &mut m2);
        assert!(
            wc.stats.regfile.total_accesses() < base.stats.regfile.total_accesses(),
            "wc {} vs base {}",
            wc.stats.regfile.total_accesses(),
            base.stats.regfile.total_accesses()
        );
    }

    #[test]
    fn divergent_kernel_counts_divergence() {
        // if (tid < 16) r1 = 1 else r1 = 2; mem[gtid] = r1
        let mut b = KernelBuilder::new("div", 3);
        b.mov(Reg(0), Operand::Special(Special::Tid));
        b.alu(AluOp::SetLt, Reg(1), Reg(0).into(), Operand::Imm(16));
        let then = b.label();
        let merge = b.label();
        b.bra(Reg(1), then, merge);
        b.mov(Reg(2), Operand::Imm(2)); // else path (fallthrough)
        b.jmp(merge);
        b.bind(then);
        b.mov(Reg(2), Operand::Imm(1));
        b.bind(merge);
        b.mov(Reg(0), Operand::Special(Special::GlobalTid));
        b.st(Reg(0), 0, Reg(2));
        b.exit();
        let kernel = b.build().unwrap();

        let mut mem = GlobalMemory::zeroed(32);
        let r = run_kernel(
            GpuConfig::warped_compression(),
            &kernel,
            &LaunchConfig::new(1, 32),
            &mut mem,
        );
        for i in 0..32 {
            assert_eq!(mem.word(i).unwrap(), if i < 16 { 1 } else { 2 }, "word {i}");
        }
        assert!(r.stats.divergent_instructions > 0);
        assert!(r.stats.nondivergent_ratio() < 1.0);
    }

    #[test]
    fn divergent_writes_to_compressed_registers_inject_movs() {
        // r2 starts compressed (uniform write), then a divergent write
        // hits it -> dummy MOV must be injected.
        let mut b = KernelBuilder::new("movinject", 3);
        b.mov(Reg(0), Operand::Special(Special::Tid));
        b.mov(Reg(2), Operand::Imm(7)); // compressed <4,0>
        b.alu(AluOp::SetLt, Reg(1), Reg(0).into(), Operand::Imm(8));
        let then = b.label();
        let merge = b.label();
        b.bra(Reg(1), then, merge);
        b.jmp(merge);
        b.bind(then);
        b.alu(AluOp::Mul, Reg(2), Reg(0).into(), Reg(0).into()); // divergent write to r2
        b.bind(merge);
        b.st(Reg(0), 0, Reg(2));
        b.exit();
        let kernel = b.build().unwrap();

        let mut mem = GlobalMemory::zeroed(32);
        let r = run_kernel(
            GpuConfig::warped_compression(),
            &kernel,
            &LaunchConfig::new(1, 32),
            &mut mem,
        );
        assert!(r.stats.synthetic_movs > 0, "expected injected MOVs");
        for i in 0..32u32 {
            assert_eq!(mem.word(i as usize).unwrap(), if i < 8 { i * i } else { 7 });
        }
    }

    #[test]
    fn no_movs_without_compression() {
        let mut b = KernelBuilder::new("nomov", 3);
        b.mov(Reg(0), Operand::Special(Special::Tid));
        b.mov(Reg(2), Operand::Imm(7));
        b.alu(AluOp::SetLt, Reg(1), Reg(0).into(), Operand::Imm(8));
        let then = b.label();
        let merge = b.label();
        b.bra(Reg(1), then, merge);
        b.jmp(merge);
        b.bind(then);
        b.mov(Reg(2), Operand::Imm(9));
        b.bind(merge);
        b.exit();
        let kernel = b.build().unwrap();
        let mut mem = GlobalMemory::zeroed(1);
        let r = run_kernel(
            GpuConfig::baseline(),
            &kernel,
            &LaunchConfig::new(1, 32),
            &mut mem,
        );
        assert_eq!(r.stats.synthetic_movs, 0);
    }

    #[test]
    fn loop_kernel_terminates_and_counts() {
        // for (i = 0; i < 10; i++) acc += i; mem[gtid] = acc
        let mut b = KernelBuilder::new("loop", 4);
        b.mov(Reg(0), Operand::Imm(0)); // i
        b.mov(Reg(1), Operand::Imm(0)); // acc
        let head = b.here();
        b.alu(AluOp::Add, Reg(1), Reg(1).into(), Reg(0).into());
        b.alu(AluOp::Add, Reg(0), Reg(0).into(), Operand::Imm(1));
        b.alu(AluOp::SetLt, Reg(2), Reg(0).into(), Operand::Imm(10));
        let exit = b.label();
        b.bra(Reg(2), head, exit);
        b.bind(exit);
        b.mov(Reg(3), Operand::Special(Special::GlobalTid));
        b.st(Reg(3), 0, Reg(1));
        b.exit();
        let kernel = b.build().unwrap();
        let mut mem = GlobalMemory::zeroed(32);
        let r = run_kernel(
            GpuConfig::warped_compression(),
            &kernel,
            &LaunchConfig::new(1, 32),
            &mut mem,
        );
        for i in 0..32 {
            assert_eq!(mem.word(i).unwrap(), 45);
        }
        assert!(r.stats.instructions >= 4 * 10);
    }

    #[test]
    fn stall_breakdown_partitions_the_retry_aggregate() {
        // The legacy aggregate counts exactly the operand-fetch retry
        // causes; every other cause is attributed separately. Checked on
        // a run busy enough to exercise conflicts and hazards.
        let kernel = affine_kernel();
        let launch = LaunchConfig::new(4, 64);
        for cfg in [GpuConfig::baseline(), GpuConfig::warped_compression()] {
            let mut mem = GlobalMemory::zeroed(256);
            let r = run_kernel(cfg, &kernel, &launch, &mut mem);
            let fetch: u64 = r
                .stats
                .stalls
                .by_pc
                .values()
                .map(|p| p.operand_fetch())
                .sum();
            assert_eq!(
                fetch, r.stats.collector_retry_cycles,
                "bank_conflict + decompressor must equal collector_retry_cycles"
            );
            // Every stalled pc is a real program counter.
            for &pc in r.stats.stalls.by_pc.keys() {
                assert!(kernel.instr(pc).is_some(), "stall at unknown pc {pc}");
            }
            // The dependent ALU chain must block on the scoreboard at
            // least once somewhere.
            assert!(r.stats.stalls.total(StallCause::Scoreboard) > 0);
        }
    }

    #[test]
    fn memory_fault_is_reported() {
        let mut b = KernelBuilder::new("oob", 1);
        b.mov(Reg(0), Operand::Imm(1_000_000));
        b.st(Reg(0), 0, Reg(0));
        b.exit();
        let kernel = b.build().unwrap();
        let mut mem = GlobalMemory::zeroed(4);
        let err = GpuSim::new(GpuConfig::baseline())
            .run(&kernel, &LaunchConfig::new(1, 32), &mut mem)
            .unwrap_err();
        match err {
            SimError::MemoryAt {
                ref kernel,
                block,
                warp_in_block,
                pc,
                fault,
            } => {
                assert_eq!(kernel, "oob");
                assert_eq!((block, warp_in_block), (0, 0));
                assert_eq!(pc, 1);
                assert_eq!(fault.addr, 1_000_000);
                let msg = err.to_string();
                assert!(msg.contains("`oob`"), "context in message: {msg}");
                assert!(msg.contains("pc 1"), "pc in message: {msg}");
            }
            other => panic!("expected attributed memory fault, got {other:?}"),
        }
    }

    #[test]
    fn mem_trace_reports_addresses_and_coalescing() {
        // tid-indexed store (coalesced, 1 transaction) then a strided
        // load at stride 2 (64 words → 2 segments per access).
        let mut b = KernelBuilder::new("trace", 3);
        b.mov(Reg(0), Operand::Special(Special::Tid));
        b.alu(AluOp::Mul, Reg(1), Operand::Reg(Reg(0)), Operand::Imm(2));
        b.st(Reg(0), 0, Reg(0));
        b.ld(Reg(2), Reg(1), 0);
        b.exit();
        let kernel = b.build().unwrap();
        let mut mem = GlobalMemory::zeroed(64);
        let mut events = Vec::new();
        let r = GpuSim::new(GpuConfig::baseline())
            .run_mem_observed(&kernel, &LaunchConfig::new(1, 32), &mut mem, &mut |e| {
                events.push(*e)
            })
            .unwrap();
        assert_eq!(events.len(), 2);
        let st = &events[0];
        assert!(st.is_store);
        assert_eq!((st.pc, st.block, st.warp_in_block), (2, 0, 0));
        assert_eq!(st.mask, u32::MAX);
        let addrs: Vec<u32> = st.active_addrs().map(|(_, a)| a).collect();
        assert_eq!(addrs, (0..32).collect::<Vec<u32>>());
        let ld = &events[1];
        assert!(!ld.is_store);
        assert_eq!(ld.addrs[5], 10);
        // Coalescing traffic: the store touches one 32-word segment,
        // the strided load two.
        assert_eq!(r.stats.mem.at(2).accesses, 1);
        assert_eq!(r.stats.mem.at(2).transactions, 1);
        assert_eq!(r.stats.mem.at(3).accesses, 1);
        assert_eq!(r.stats.mem.at(3).transactions, 2);
        assert_eq!(r.stats.mem.total_accesses(), 2);
    }

    #[test]
    fn block_too_large_is_reported() {
        let kernel = affine_kernel();
        let mut mem = GlobalMemory::zeroed(4);
        // 49 warps per block exceeds the 48-slot SM.
        let err = GpuSim::new(GpuConfig::baseline())
            .run(&kernel, &LaunchConfig::new(1, 49 * 32), &mut mem)
            .unwrap_err();
        assert!(matches!(err, SimError::BlockTooLarge { .. }));
    }

    #[test]
    fn many_blocks_round_robin_through_slots() {
        let kernel = affine_kernel();
        let mut mem = GlobalMemory::zeroed(32 * 64);
        run_kernel(
            GpuConfig::warped_compression(),
            &kernel,
            &LaunchConfig::new(64, 32),
            &mut mem,
        );
        for i in 0..(32 * 64) {
            assert_eq!(mem.word(i).unwrap(), (i * 2 + 1) as u32);
        }
    }

    #[test]
    fn lrr_scheduler_also_completes() {
        let mut cfg = GpuConfig::warped_compression();
        cfg.scheduler = SchedulerPolicy::Lrr;
        let kernel = affine_kernel();
        let mut mem = GlobalMemory::zeroed(256);
        run_kernel(cfg, &kernel, &LaunchConfig::new(4, 64), &mut mem);
        for i in 0..256 {
            assert_eq!(mem.word(i).unwrap(), (i * 2 + 1) as u32);
        }
    }

    #[test]
    fn observer_sees_register_writes() {
        let kernel = affine_kernel();
        let mut mem = GlobalMemory::zeroed(32);
        let mut events = Vec::new();
        GpuSim::new(GpuConfig::warped_compression())
            .run_observed(&kernel, &LaunchConfig::new(1, 32), &mut mem, &mut |e| {
                events.push(*e)
            })
            .unwrap();
        assert_eq!(events.len() as u64, 3); // three register-writing instructions
        assert!(events.iter().all(|e| !e.divergent && !e.synthetic));
        // First write is gtid: 0..32.
        assert_eq!(events[0].value.lane(5), 5);
    }

    #[test]
    fn compression_latency_slows_execution() {
        let kernel = affine_kernel();
        let launch = LaunchConfig::new(4, 64);
        let run_at = |cl: u64, dl: u64| {
            let mut cfg = GpuConfig::warped_compression();
            cfg.compression.compression_latency = cl;
            cfg.compression.decompression_latency = dl;
            let mut mem = GlobalMemory::zeroed(256);
            run_kernel(cfg, &kernel, &launch, &mut mem).stats.cycles
        };
        let fast = run_at(2, 1);
        let slow = run_at(8, 8);
        assert!(slow >= fast, "slow {slow} < fast {fast}");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn run_faulted_accounts_for_every_fault_and_is_deterministic() {
        use gpu_faults::{FaultInjector, FaultPlan, ProtectionModel};
        let kernel = affine_kernel();
        let run_once = || {
            let plan = FaultPlan::generate(7, 16, 64);
            let inj = FaultInjector::new(plan, ProtectionModel::SecDed, true);
            let mut mem = GlobalMemory::zeroed(128);
            GpuSim::new(GpuConfig::warped_compression()).run_faulted(
                &kernel,
                &LaunchConfig::new(2, 64),
                &mut mem,
                inj,
            )
        };
        let (r1, log1) = run_once();
        let (r2, log2) = run_once();
        assert_eq!(r1, r2, "same plan must give the same outcome");
        assert_eq!(log1, log2, "same plan must give the same fault log");
        assert_eq!(log1.events.len(), 16, "every planned fault resolves");
        // SEC-DED: nothing slips through silently.
        assert_eq!(log1.silent(), 0);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn run_faulted_unprotected_still_completes_or_reports() {
        use gpu_faults::{FaultInjector, FaultPlan, ProtectionModel};
        let kernel = affine_kernel();
        let plan = FaultPlan::generate(42, 32, 128);
        let inj = FaultInjector::new(plan, ProtectionModel::Unprotected, false);
        let mut mem = GlobalMemory::zeroed(128);
        let (result, log) = GpuSim::new(GpuConfig::warped_compression()).run_faulted(
            &kernel,
            &LaunchConfig::new(2, 64),
            &mut mem,
            inj,
        );
        assert_eq!(log.events.len(), 32);
        // Unprotected: nothing is ever corrected or flagged.
        assert_eq!(log.corrected() + log.detected(), 0);
        if let Err(e) = result {
            // A corrupted stored form may fail decode, and a silently
            // corrupted address register may fault in memory downstream.
            assert!(
                matches!(
                    e,
                    SimError::Read { .. } | SimError::Memory(_) | SimError::MemoryAt { .. }
                ),
                "unexpected: {e}"
            );
        }
    }

    #[test]
    fn gated_cycles_appear_only_with_compression() {
        let kernel = affine_kernel();
        let launch = LaunchConfig::new(2, 64);
        let mut m1 = GlobalMemory::zeroed(128);
        let base = run_kernel(GpuConfig::baseline(), &kernel, &launch, &mut m1);
        assert_eq!(base.stats.regfile.gated_cycles.iter().sum::<u64>(), 0);
        let mut m2 = GlobalMemory::zeroed(128);
        // Short kernel: disable the gating hysteresis so the gated
        // intervals are visible within the run.
        let mut cfg = GpuConfig::warped_compression();
        cfg.regfile.gating_hysteresis = 0;
        let wc = run_kernel(cfg, &kernel, &launch, &mut m2);
        assert!(wc.stats.regfile.gated_cycles.iter().sum::<u64>() > 0);
    }
}
