//! Structured-kernel fuzzing: for randomly generated (but well-formed,
//! terminating, memory-safe) kernels, compression must be *semantically
//! invisible* — baseline, warped-compression and the
//! decompress-merge-recompress variant all produce identical memory — and
//! simulation must be deterministic.

use bdi::ChoiceSet;
use gpu_sim::{CompressionConfig, DivergencePolicy, GlobalMemory, GpuConfig, GpuSim, LaunchConfig};
use proptest::prelude::*;
use simt_isa::{AluOp, Kernel, Operand, Reg, Special};

/// Registers: r0 = gtid (set in the prologue), r1 = predicate scratch,
/// r2..NUM_REGS = data.
const NUM_REGS: u8 = 8;

#[derive(Clone, Debug)]
enum Stmt {
    Alu {
        op: AluOp,
        dst: u8,
        a: Src,
        b: Src,
    },
    Load {
        dst: u8,
    },
    Store {
        src: u8,
    },
    IfThenElse {
        cmp: AluOp,
        threshold: i32,
        then_s: Vec<Stmt>,
        else_s: Vec<Stmt>,
    },
    Loop {
        trips: u8,
        body: Vec<Stmt>,
    },
}

#[derive(Clone, Copy, Debug)]
enum Src {
    Reg(u8),
    Imm(i32),
    Special(Special),
    Param(u8),
}

fn arb_src() -> impl Strategy<Value = Src> {
    prop_oneof![
        (2u8..NUM_REGS).prop_map(Src::Reg),
        (-100i32..100).prop_map(Src::Imm),
        prop::sample::select(vec![
            Special::Tid,
            Special::Bid,
            Special::LaneId,
            Special::GlobalTid
        ])
        .prop_map(Src::Special),
        (0u8..3).prop_map(Src::Param),
    ]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::Min,
        AluOp::Max,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
    ])
}

fn arb_cmp() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![AluOp::SetLt, AluOp::SetLe, AluOp::SetEq, AluOp::SetNe])
}

/// `in_loop` forbids nested `Loop`s: all loops share the r1 counter, and
/// an inner loop resetting r1 would make the outer loop infinite.
fn arb_stmt(depth: u32, in_loop: bool) -> BoxedStrategy<Stmt> {
    let leaf =
        prop_oneof![
            (arb_alu(), 2u8..NUM_REGS, arb_src(), arb_src())
                .prop_map(|(op, dst, a, b)| Stmt::Alu { op, dst, a, b }),
            (2u8..NUM_REGS).prop_map(|dst| Stmt::Load { dst }),
            (2u8..NUM_REGS).prop_map(|src| Stmt::Store { src }),
        ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let if_body = prop::collection::vec(arb_stmt(depth - 1, in_loop), 1..4);
        let ite = (arb_cmp(), -20i32..60, if_body.clone(), if_body).prop_map(
            |(cmp, threshold, then_s, else_s)| Stmt::IfThenElse {
                cmp,
                threshold,
                then_s,
                else_s,
            },
        );
        if in_loop {
            prop_oneof![4 => leaf, 1 => ite].boxed()
        } else {
            let loop_body = prop::collection::vec(arb_stmt(depth - 1, true), 1..4);
            prop_oneof![
                4 => leaf,
                1 => ite,
                1 => ((1u8..4), loop_body).prop_map(|(trips, body)| Stmt::Loop { trips, body }),
            ]
            .boxed()
        }
    }
}

#[derive(Clone, Debug)]
struct Program {
    stmts: Vec<Stmt>,
    blocks: usize,
    threads_per_block: usize,
    params: Vec<u32>,
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(arb_stmt(2, false), 2..8),
        1usize..4,
        prop::sample::select(vec![32usize, 64, 96]),
        prop::collection::vec(any::<u32>(), 3),
    )
        .prop_map(|(stmts, blocks, threads_per_block, params)| Program {
            stmts,
            blocks,
            threads_per_block,
            params,
        })
}

/// Lowers the structured program to a kernel. All loads/stores address
/// `mem[gtid]`, so any memory of `total_threads` words is safe.
fn lower(p: &Program) -> Kernel {
    use simt_isa::KernelBuilder;

    fn src_op(s: Src) -> Operand {
        match s {
            Src::Reg(r) => Operand::Reg(Reg(r)),
            Src::Imm(v) => Operand::Imm(v),
            Src::Special(sp) => Operand::Special(sp),
            Src::Param(i) => Operand::Param(i),
        }
    }

    fn emit(b: &mut KernelBuilder, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Alu { op, dst, a, b: bb } => {
                    b.alu(*op, Reg(*dst), src_op(*a), src_op(*bb));
                }
                Stmt::Load { dst } => {
                    b.ld(Reg(*dst), Reg(0), 0);
                }
                Stmt::Store { src } => {
                    b.st(Reg(0), 0, Reg(*src));
                }
                Stmt::IfThenElse {
                    cmp,
                    threshold,
                    then_s,
                    else_s,
                } => {
                    // Predicate goes in r2, never r1: r1 is the loop
                    // counter and clobbering it inside a loop body would
                    // change (or unbound) the trip count. The branch
                    // consumes r2 immediately, so later r2 writes are
                    // harmless.
                    b.alu(*cmp, Reg(2), Reg(0).into(), Operand::Imm(*threshold));
                    let then_l = b.label();
                    let merge = b.label();
                    b.bra(Reg(2), then_l, merge);
                    emit(b, else_s);
                    b.jmp(merge);
                    b.bind(then_l);
                    emit(b, then_s);
                    b.bind(merge);
                }
                Stmt::Loop { trips, body } => {
                    // r1 is the loop counter; the generator guarantees
                    // loops never nest (an inner loop resetting r1 would
                    // run the outer loop forever).
                    b.mov(Reg(1), Operand::Imm(0));
                    let head = b.here();
                    emit(b, body);
                    b.alu(AluOp::Add, Reg(1), Reg(1).into(), Operand::Imm(1));
                    let pred = Reg(1);
                    // tmp compare into r1 would destroy the counter, so
                    // compare via SetLt into the counter's successor trick:
                    // use a dedicated compare into r2? Keep it simple and
                    // compare in place: counter < trips.
                    let exit = b.label();
                    b.alu(
                        AluOp::SetLt,
                        Reg(2),
                        pred.into(),
                        Operand::Imm(i32::from(*trips)),
                    );
                    b.bra(Reg(2), head, exit);
                    b.bind(exit);
                }
            }
        }
    }

    let mut b = KernelBuilder::new("fuzz", NUM_REGS);
    b.mov(Reg(0), Operand::Special(Special::GlobalTid));
    // Give the data registers deterministic, thread-varying initials.
    for r in 2..NUM_REGS {
        b.alu(
            AluOp::Add,
            Reg(r),
            Reg(0).into(),
            Operand::Imm(i32::from(r)),
        );
    }
    emit(&mut b, &p.stmts);
    b.st(Reg(0), 0, Reg(2));
    b.exit();
    b.build().expect("lowered kernel is valid")
}

fn run(p: &Program, kernel: &Kernel, mut cfg: GpuConfig) -> (GlobalMemory, u64, u64) {
    // Generated kernels run in thousands of cycles; a tight cap converts
    // any future unbounded-loop generator bug into a fast test failure
    // instead of a hung suite.
    cfg.max_cycles = 2_000_000;
    let launch = LaunchConfig::new(p.blocks, p.threads_per_block).with_params(p.params.clone());
    let mut mem = GlobalMemory::zeroed(p.blocks * p.threads_per_block);
    let result = GpuSim::new(cfg)
        .run(kernel, &launch, &mut mem)
        .unwrap_or_else(|e| panic!("fuzz kernel failed: {e}\n{}", kernel.disassemble()));
    (mem, result.stats.instructions, result.stats.cycles)
}

fn dmr_config() -> GpuConfig {
    let mut cfg = GpuConfig::warped_compression();
    cfg.compression.divergence = DivergencePolicy::DecompressMergeRecompress;
    cfg
}

fn single_choice_config() -> GpuConfig {
    let mut cfg = GpuConfig::warped_compression();
    cfg.compression = CompressionConfig {
        choices: ChoiceSet::only(bdi::FixedChoice::Delta1),
        ..cfg.compression
    };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compression never changes program results, under any policy.
    #[test]
    fn compression_is_semantically_invisible(p in arb_program()) {
        let kernel = lower(&p);
        let (m_base, i_base, _) = run(&p, &kernel, GpuConfig::baseline());
        let (m_wc, i_wc, _) = run(&p, &kernel, GpuConfig::warped_compression());
        let (m_dmr, i_dmr, _) = run(&p, &kernel, dmr_config());
        let (m_d1, _, _) = run(&p, &kernel, single_choice_config());
        prop_assert_eq!(&m_base, &m_wc, "warped-compression changed results");
        prop_assert_eq!(&m_base, &m_dmr, "DMR changed results");
        prop_assert_eq!(&m_base, &m_d1, "<4,1>-only changed results");
        prop_assert_eq!(i_base, i_wc);
        prop_assert_eq!(i_base, i_dmr);
    }

    /// Simulation is bit-deterministic across repeated runs.
    #[test]
    fn simulation_is_deterministic(p in arb_program()) {
        let kernel = lower(&p);
        let (m1, _, c1) = run(&p, &kernel, GpuConfig::warped_compression());
        let (m2, _, c2) = run(&p, &kernel, GpuConfig::warped_compression());
        prop_assert_eq!(m1, m2);
        prop_assert_eq!(c1, c2);
    }

    /// Extreme compression/decompression latencies change timing but
    /// never results.
    #[test]
    fn latency_never_changes_results(p in arb_program()) {
        let kernel = lower(&p);
        let (m_fast, _, c_fast) = run(&p, &kernel, GpuConfig::warped_compression());
        let mut slow = GpuConfig::warped_compression();
        slow.compression.compression_latency = 8;
        slow.compression.decompression_latency = 8;
        let (m_slow, _, c_slow) = run(&p, &kernel, slow);
        prop_assert_eq!(m_fast, m_slow);
        prop_assert!(c_slow >= c_fast / 2, "slower config finished implausibly fast");
    }
}
