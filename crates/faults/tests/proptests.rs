//! Property-based tests for the fault-semantics guarantees the ISSUE
//! demands: every injected single-bit transient in a compressed register
//! is either masked or flagged by parity, corrected by SEC-DED, and —
//! crucially — **never** silent corruption under SEC-DED.

use bdi::{BdiCodec, CompressedRegister, CompressionIndicator, WarpRegister, WARP_SIZE};
use gpu_faults::{
    parse_image, stored_image, FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultTarget,
    ProtectionModel, ReadDisposition, RedirectionReport,
};
use proptest::prelude::*;

/// Registers biased towards the similar-value patterns GPU code produces
/// (these are the ones that actually compress, i.e. the interesting fault
/// targets).
fn arb_similar_register() -> impl Strategy<Value = WarpRegister> {
    (any::<u32>(), -300i64..300, prop::array::uniform32(-4i64..4)).prop_map(
        |(base, stride, jitter)| {
            WarpRegister::from_fn(|t| {
                let v = base as i64 + stride * t as i64 + jitter[t % WARP_SIZE];
                v as u32
            })
        },
    )
}

fn single_flip_plan(target: FaultTarget, bit: u32) -> FaultPlan {
    FaultPlan {
        seed: 0,
        specs: vec![FaultSpec {
            id: 0,
            at_write: 1,
            target,
            kind: FaultKind::TransientSingle,
            bit_a: bit,
            bit_b: 0,
            stuck_bank: 0,
            stuck_bit: 0,
            stuck_value: false,
        }],
    }
}

fn arb_target() -> impl Strategy<Value = FaultTarget> {
    prop_oneof![
        Just(FaultTarget::RawCell),
        Just(FaultTarget::Payload),
        Just(FaultTarget::Metadata),
    ]
}

proptest! {
    /// Under SEC-DED no single-bit transient is ever delivered as silent
    /// corruption: it is masked, corrected, or (never, for single flips)
    /// detected — the ECC guarantee the CI gate enforces.
    #[test]
    fn secded_never_silent_on_single_flips(
        reg in arb_similar_register(),
        target in arb_target(),
        bit in any::<u32>(),
    ) {
        let codec = BdiCodec::default();
        let value = codec.compress(&reg);
        let mut inj = FaultInjector::new(
            single_flip_plan(target, bit),
            ProtectionModel::SecDed,
            false,
        );
        inj.on_write(0, 0, &value);
        match inj.on_read(0, 0, &value) {
            Ok(None) => {}
            Ok(Some((delivered, disp))) => {
                prop_assert_ne!(disp, ReadDisposition::SilentCorruption);
                prop_assert_eq!(codec.decompress(&delivered), reg);
            }
            Err(_) => {} // detected is acceptable (never silent)
        }
        let log = inj.finish();
        prop_assert_eq!(log.silent(), 0);
    }

    /// Under parity every single-bit transient is masked or *flagged*:
    /// a lone flip always breaks word parity, so the only way it evades
    /// detection is to never reach a read (or decode identically).
    #[test]
    fn parity_masks_or_flags_single_flips(
        reg in arb_similar_register(),
        target in arb_target(),
        bit in any::<u32>(),
    ) {
        let codec = BdiCodec::default();
        let value = codec.compress(&reg);
        let mut inj = FaultInjector::new(
            single_flip_plan(target, bit),
            ProtectionModel::Parity,
            false,
        );
        inj.on_write(0, 0, &value);
        match inj.on_read(0, 0, &value) {
            Ok(None) | Err(_) => {}
            Ok(Some((_, disp))) => prop_assert_ne!(disp, ReadDisposition::SilentCorruption),
        }
        let log = inj.finish();
        prop_assert_eq!(log.silent(), 0);
    }

    /// Negative control: without protection, a payload flip in a
    /// *compressed* register that survives to a read and changes the
    /// decoded bits is reported as silent corruption — the injector does
    /// not sweep anything under the rug.
    #[test]
    fn unprotected_flips_are_reported_honestly(
        reg in arb_similar_register(),
        bit in any::<u32>(),
    ) {
        let codec = BdiCodec::default();
        let value = codec.compress(&reg);
        let mut inj = FaultInjector::new(
            single_flip_plan(FaultTarget::Payload, bit),
            ProtectionModel::Unprotected,
            false,
        );
        inj.on_write(0, 0, &value);
        let delivered = inj.on_read(0, 0, &value);
        prop_assert!(delivered.is_ok(), "nothing can be detected without check bits");
        let log = inj.finish();
        // Exactly one fault, resolved as either masked (flip landed on a
        // semantically dead bit) or silent — never corrected/detected.
        prop_assert_eq!(log.corrected() + log.detected(), 0);
        prop_assert_eq!(log.masked() + log.silent(), 1);
        match delivered.unwrap() {
            Some((d, ReadDisposition::SilentCorruption)) => {
                prop_assert_ne!(codec.decompress(&d), reg);
                prop_assert_eq!(log.silent(), 1);
            }
            Some((d, ReadDisposition::Masked)) => {
                prop_assert_eq!(codec.decompress(&d), reg);
            }
            None => {}
            Some((_, ReadDisposition::Corrected)) => prop_assert!(false, "no ECC configured"),
        }
    }

    /// The byte-image serialization round-trips every compressible form.
    #[test]
    fn image_round_trip(reg in arb_similar_register()) {
        let codec = BdiCodec::default();
        let stored = codec.compress(&reg);
        let (ind, row) = stored_image(&stored);
        let parsed = parse_image(CompressionIndicator::from_bits(ind), &row);
        prop_assert_eq!(codec.decompress(&parsed), reg);
        if let CompressedRegister::Compressed { .. } = stored {
            prop_assert_eq!(parsed, stored);
        }
    }

    /// Coverage numbers are probabilities and redirection never covers
    /// less than slack alone.
    #[test]
    fn redirection_coverage_dominates_slack(h in prop::array::uniform32(0u64..1000)) {
        let mut hist = [0u64; 9];
        for (i, v) in h.iter().enumerate() {
            hist[i % 9] += v;
        }
        let r = RedirectionReport::from_footprints(&hist);
        prop_assert!((0.0..=1.0).contains(&r.slack_only_coverage));
        prop_assert!((0.0..=1.0).contains(&r.redirection_coverage));
        prop_assert!(r.redirection_coverage >= r.slack_only_coverage - 1e-12);
    }
}
