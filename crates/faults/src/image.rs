//! Physical byte-image model of a stored register.
//!
//! The register file stores a [`CompressedRegister`] as typed Rust data,
//! but a soft error strikes *bits in SRAM cells*. This module maps between
//! the two views: [`stored_image`] serializes the stored form into the
//! 128-byte physical cluster row it would occupy in hardware (compressed
//! payload in the low banks, stale/gated bytes zeroed), and
//! [`parse_image`] reinterprets such a row under a 2-bit compression
//! indicator — including an indicator the fault injector has flipped, which
//! is exactly how metadata corruption manifests: the *same* row decoded
//! under the *wrong* layout.

use bdi::{
    BdiCodec, CompressedRegister, CompressionIndicator, DeltaArray, FixedChoice, WarpRegister,
    WARP_REGISTER_BYTES,
};

/// Bytes in one physical cluster row (8 banks × 16 bytes).
pub const ROW_BYTES: usize = WARP_REGISTER_BYTES;

/// The 2-bit indicator plus the physical row — everything the hardware
/// stores for one warp register, and therefore everything a fault can
/// touch.
pub type StoredBits = (u8, [u8; ROW_BYTES]);

/// Serializes a stored register into its 2-bit indicator and the 128-byte
/// physical row it occupies.
///
/// Compressed forms place the base chunk at offset 0 (little-endian)
/// followed by the truncated two's-complement deltas; bytes past the
/// stored length model the power-gated slack banks and read as zero.
/// Non-runtime layouts (8-byte bases from the explorer) have no hardware
/// indicator, so they serialize through their decompressed form, matching
/// [`CompressedRegister::indicator`].
pub fn stored_image(reg: &CompressedRegister) -> StoredBits {
    let ind = reg.indicator();
    let mut row = [0u8; ROW_BYTES];
    match reg {
        CompressedRegister::Uncompressed(r) => row = r.to_bytes(),
        CompressedRegister::Compressed {
            layout,
            base,
            deltas,
        } => {
            if ind == CompressionIndicator::Uncompressed {
                // Explorer-only layout: the hardware would store it raw.
                row = BdiCodec::default().decompress(reg).to_bytes();
            } else {
                let bb = layout.base().bytes();
                row[..bb].copy_from_slice(&base.to_le_bytes()[..bb]);
                let db = layout.delta_bytes();
                if db > 0 {
                    for (i, d) in deltas.iter().enumerate() {
                        let off = bb + i * db;
                        row[off..off + db].copy_from_slice(&(d as u64).to_le_bytes()[..db]);
                    }
                }
            }
        }
    }
    (ind.bits(), row)
}

/// Reinterprets a physical row under an indicator.
///
/// This is the decompressor's-eye view: given 128 raw bytes and a 2-bit
/// range indicator, reconstruct the typed stored form. Never fails
/// structurally — a full row always holds enough bytes for any runtime
/// layout — which mirrors hardware, where a flipped indicator silently
/// re-frames the same cells rather than raising an error.
pub fn parse_image(ind: CompressionIndicator, row: &[u8; ROW_BYTES]) -> CompressedRegister {
    let layout = match ind {
        CompressionIndicator::Uncompressed => {
            return CompressedRegister::Uncompressed(WarpRegister::from_bytes(row));
        }
        CompressionIndicator::Delta0 => FixedChoice::Delta0.layout(),
        CompressionIndicator::Delta1 => FixedChoice::Delta1.layout(),
        CompressionIndicator::Delta2 => FixedChoice::Delta2.layout(),
    };
    let bb = layout.base().bytes();
    let mut base_buf = [0u8; 8];
    base_buf[..bb].copy_from_slice(&row[..bb]);
    let base = u64::from_le_bytes(base_buf);
    let db = layout.delta_bytes();
    let count = layout.chunk_count() - 1;
    let deltas = if db == 0 {
        DeltaArray::zeros(count)
    } else {
        let mut vals = [0i32; DeltaArray::CAPACITY];
        for (i, slot) in vals.iter_mut().take(count).enumerate() {
            let off = bb + i * db;
            let mut raw: u64 = 0;
            for (b, &byte) in row[off..off + db].iter().enumerate() {
                raw |= u64::from(byte) << (8 * b);
            }
            let shift = 64 - (db as u32 * 8);
            *slot = (((raw << shift) as i64) >> shift) as i32;
        }
        DeltaArray::from_stored(&vals[..count])
    };
    CompressedRegister::Compressed {
        layout,
        base,
        deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi::ChoiceSet;

    fn codec() -> BdiCodec {
        BdiCodec::new(ChoiceSet::warped_compression())
    }

    fn round_trip(reg: &WarpRegister) {
        let stored = codec().compress(reg);
        let (ind, row) = stored_image(&stored);
        let parsed = parse_image(CompressionIndicator::from_bits(ind), &row);
        assert_eq!(parsed, stored, "image round trip must be lossless");
        assert_eq!(codec().decompress(&parsed), *reg);
    }

    #[test]
    fn images_round_trip_for_every_runtime_form() {
        round_trip(&WarpRegister::splat(0xDEAD_BEEF)); // <4,0>
        round_trip(&WarpRegister::from_fn(|t| 40 + t as u32)); // <4,1>
        round_trip(&WarpRegister::from_fn(|t| 9000 + 300 * t as u32)); // <4,2>
        round_trip(&WarpRegister::from_fn(|t| {
            (t as u32).wrapping_mul(0x9E37_79B9)
        })); // uncompressed
        round_trip(&WarpRegister::from_fn(|t| {
            10_000u32.wrapping_sub(3 * t as u32)
        }));
    }

    #[test]
    fn slack_bytes_are_zero() {
        let stored = codec().compress(&WarpRegister::splat(7));
        let (_, row) = stored_image(&stored);
        assert!(row[stored.stored_len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn delta0_row_reinterpreted_as_delta1_is_value_preserving() {
        // The stale delta bytes of a <4,0> row are zero, so widening the
        // indicator to <4,1> decodes the same warp register — the
        // "masked metadata flip" case the injector relies on.
        let reg = WarpRegister::splat(0x1234_5678);
        let stored = codec().compress(&reg);
        let (ind, row) = stored_image(&stored);
        assert_eq!(ind, CompressionIndicator::Delta0.bits());
        let widened = parse_image(CompressionIndicator::Delta1, &row);
        assert_eq!(BdiCodec::default().decompress(&widened), reg);
    }

    #[test]
    fn delta1_row_reinterpreted_as_delta0_drops_deltas() {
        // Narrowing the indicator discards real payload: silent
        // corruption unless every delta happened to be zero.
        let reg = WarpRegister::from_fn(|t| 40 + t as u32);
        let stored = codec().compress(&reg);
        let (_, row) = stored_image(&stored);
        let narrowed = parse_image(CompressionIndicator::Delta0, &row);
        assert_ne!(BdiCodec::default().decompress(&narrowed), reg);
    }

    #[test]
    fn explorer_layout_serializes_through_decompressed_form() {
        use bdi::{BaseSize, ChunkLayout};
        let layout = ChunkLayout::new(BaseSize::B8, 1).unwrap();
        let stored = CompressedRegister::Compressed {
            layout,
            base: 0x77,
            deltas: DeltaArray::filled(15, 1),
        };
        let (ind, row) = stored_image(&stored);
        assert_eq!(ind, CompressionIndicator::Uncompressed.bits());
        let parsed = parse_image(CompressionIndicator::from_bits(ind), &row);
        assert_eq!(
            BdiCodec::default().decompress(&parsed),
            BdiCodec::default().decompress(&stored)
        );
    }
}
