//! The runtime fault injector wired into the register file.
//!
//! The injector sits beside `BankedRegisterFile` storage: writes pass
//! through [`FaultInjector::on_write`] (which counts write ordinals,
//! strikes planned transients, and activates stuck-at faults) and reads
//! pass through [`FaultInjector::on_read`], which merges all live
//! corruption into the stored byte image, runs the configured
//! [`ProtectionModel`], classifies the outcome, and hands back the value
//! the hardware would actually deliver.
//!
//! Outcome taxonomy (per fault):
//!
//! * **masked** — the corruption never became architecturally visible:
//!   overwritten before a read, confined to slack banks, latent at the
//!   end of the run, or semantically neutral (the corrupted image decodes
//!   to the same warp register).
//! * **corrected** — SEC-DED restored the exact written bits.
//! * **detected** — parity or a SEC-DED double-error syndrome flagged the
//!   read; surfaces as an `Err` so the simulator aborts the run the way a
//!   machine-check would.
//! * **silent corruption** — a different warp register was delivered with
//!   no indication; the worst case, and the one the CI gate forbids
//!   under SEC-DED.

use std::collections::HashMap;

use bdi::{BdiCodec, CompressedRegister, CompressionIndicator};

use crate::image::{parse_image, stored_image, ROW_BYTES};
use crate::plan::{FaultKind, FaultPlan, FaultSpec, FaultTarget};
use crate::protect::{ProtectionModel, VerifyOutcome};

/// Bytes per register bank (the cluster row is 8 of these).
const BANK_BYTES: usize = ROW_BYTES / 8;

/// How an injected fault ultimately resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The planned write ordinal was never reached.
    NotTriggered,
    /// Architecturally invisible (see module docs for the sub-cases).
    Masked,
    /// SEC-DED restored the written bits on read.
    Corrected,
    /// Protection flagged the read; the run aborted with an error.
    Detected,
    /// A wrong value was silently delivered.
    SilentCorruption,
}

impl FaultOutcome {
    /// Report spelling.
    pub fn name(self) -> &'static str {
        match self {
            FaultOutcome::NotTriggered => "not-triggered",
            FaultOutcome::Masked => "masked",
            FaultOutcome::Corrected => "corrected",
            FaultOutcome::Detected => "detected",
            FaultOutcome::SilentCorruption => "silent-corruption",
        }
    }
}

/// The resolution record of one planned fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// [`FaultSpec::id`] this event resolves.
    pub spec_id: usize,
    /// Temporal class of the fault.
    pub kind: FaultKind,
    /// Target class of the fault.
    pub target: FaultTarget,
    /// How it resolved.
    pub outcome: FaultOutcome,
    /// Human-readable sub-case (e.g. `"overwritten before read"`).
    pub note: &'static str,
}

/// What the injector did to one faulty read that still returned a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadDisposition {
    /// Corruption was present but the delivered value decodes
    /// identically to the written one.
    Masked,
    /// SEC-DED corrected the bits; the clean value is delivered.
    Corrected,
    /// A semantically different value is being delivered undetected.
    SilentCorruption,
}

/// Marker error: protection detected an uncorrectable pattern on read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DetectedFault;

impl std::fmt::Display for DetectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "uncorrectable bit error detected by register protection")
    }
}

impl std::error::Error for DetectedFault {}

/// Aggregate record of one faulted run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// One event per planned fault (same order as the plan).
    pub events: Vec<FaultEvent>,
    /// Register-file writes observed.
    pub writes: u64,
    /// Register-file reads observed.
    pub reads: u64,
    /// Stuck-at read encounters confined to slack banks freed by
    /// compression (no redirection needed).
    pub stuck_masked_by_slack: u64,
    /// Stuck-at read encounters remapped into a slack bank by RRCD
    /// redirection.
    pub stuck_redirected: u64,
    /// Stuck-at read encounters that corrupted live data.
    pub stuck_applied: u64,
    /// Histogram of read footprints in banks (`footprint_reads[n]` =
    /// reads of registers occupying `n` banks); feeds the RRCD coverage
    /// report.
    pub footprint_reads: [u64; 9],
}

impl FaultLog {
    fn count(&self, outcome: FaultOutcome) -> u64 {
        self.events.iter().filter(|e| e.outcome == outcome).count() as u64
    }

    /// Faults whose write ordinal was never reached.
    pub fn not_triggered(&self) -> u64 {
        self.count(FaultOutcome::NotTriggered)
    }

    /// Faults that stayed architecturally invisible.
    pub fn masked(&self) -> u64 {
        self.count(FaultOutcome::Masked)
    }

    /// Faults corrected by SEC-DED.
    pub fn corrected(&self) -> u64 {
        self.count(FaultOutcome::Corrected)
    }

    /// Faults detected (run aborted).
    pub fn detected(&self) -> u64 {
        self.count(FaultOutcome::Detected)
    }

    /// Faults that silently corrupted architectural state.
    pub fn silent(&self) -> u64 {
        self.count(FaultOutcome::SilentCorruption)
    }
}

/// Transient corruption written over one stored register, waiting to be
/// observed by a read.
#[derive(Clone, Debug)]
struct Pending {
    spec_idx: usize,
    ind: u8,
    row: [u8; ROW_BYTES],
    /// Set once the first read classified this fault (the event exists);
    /// the corruption itself persists until overwritten.
    resolved: bool,
}

/// An activated permanent fault.
#[derive(Clone, Debug)]
struct ActiveStuck {
    spec_idx: usize,
    bank: u8,
    bit: u8,
    value: bool,
    /// Set once an event has been recorded for this fault.
    recorded: bool,
    /// Whether it ever landed in slack / was redirected (for the final
    /// masked note when it never corrupts live data).
    saw_slack: bool,
    saw_redirect: bool,
}

/// Seed-driven fault injector; one per simulation run.
///
/// `Clone` so it can live inside a clonable register file; cloning mid-run
/// forks the fault state, which campaign code never does.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    protection: ProtectionModel,
    redirection: bool,
    codec: BdiCodec,
    writes: u64,
    reads: u64,
    next_spec: usize,
    pending: HashMap<(u32, u16), Pending>,
    stuck: Vec<ActiveStuck>,
    triggered: Vec<bool>,
    events: Vec<FaultEvent>,
    stuck_masked_by_slack: u64,
    stuck_redirected: u64,
    stuck_applied: u64,
    footprint_reads: [u64; 9],
}

impl FaultInjector {
    /// Creates an injector for one run.
    pub fn new(plan: FaultPlan, protection: ProtectionModel, redirection: bool) -> Self {
        let n = plan.specs.len();
        FaultInjector {
            plan,
            protection,
            redirection,
            codec: BdiCodec::default(),
            writes: 0,
            reads: 0,
            next_spec: 0,
            pending: HashMap::new(),
            stuck: Vec::new(),
            triggered: vec![false; n],
            events: Vec::new(),
            stuck_masked_by_slack: 0,
            stuck_redirected: 0,
            stuck_applied: 0,
            footprint_reads: [0; 9],
        }
    }

    /// The configured protection model.
    pub fn protection(&self) -> ProtectionModel {
        self.protection
    }

    /// Whether RRCD-style bank redirection is enabled.
    pub fn redirection(&self) -> bool {
        self.redirection
    }

    /// Observes a register write: resolves any unread corruption of the
    /// overwritten cell as masked, then strikes every planned fault whose
    /// write ordinal is this write.
    pub fn on_write(&mut self, slot: u32, reg: u16, value: &CompressedRegister) {
        self.writes += 1;
        if let Some(p) = self.pending.remove(&(slot, reg)) {
            if !p.resolved {
                self.record(p.spec_idx, FaultOutcome::Masked, "overwritten before read");
            }
        }
        while self.next_spec < self.plan.specs.len()
            && self.plan.specs[self.next_spec].at_write <= self.writes
        {
            let spec = self.plan.specs[self.next_spec];
            self.next_spec += 1;
            self.triggered[spec.id] = true;
            match spec.kind {
                FaultKind::StuckAt => self.stuck.push(ActiveStuck {
                    spec_idx: spec.id,
                    bank: spec.stuck_bank,
                    bit: spec.stuck_bit,
                    value: spec.stuck_value,
                    recorded: false,
                    saw_slack: false,
                    saw_redirect: false,
                }),
                FaultKind::TransientSingle | FaultKind::TransientDouble => {
                    self.strike_transient(slot, reg, value, spec);
                }
            }
        }
    }

    /// Flips the planned bits over the current stored image of
    /// `(slot, reg)` — layering onto earlier unread corruption, as real
    /// back-to-back upsets would.
    fn strike_transient(&mut self, slot: u32, reg: u16, value: &CompressedRegister, s: FaultSpec) {
        let prior = self
            .pending
            .get(&(slot, reg))
            .map(|p| (p.ind, p.row, p.resolved));
        let (mut ind, mut row) = match prior {
            Some((ind, row, resolved)) => {
                if !resolved {
                    let overlaid = self.pending[&(slot, reg)].spec_idx;
                    self.record(overlaid, FaultOutcome::Masked, "overlaid by a later fault");
                }
                (ind, row)
            }
            None => stored_image(value),
        };
        let domain = match s.target {
            FaultTarget::RawCell => (ROW_BYTES * 8) as u32,
            FaultTarget::Payload => (value.stored_len() * 8).max(1) as u32,
            FaultTarget::Metadata => 2,
        };
        let mut flip = |bit: u32| match s.target {
            FaultTarget::Metadata => ind ^= 1 << bit,
            _ => row[(bit / 8) as usize] ^= 1 << (bit % 8),
        };
        let a = s.bit_a % domain;
        flip(a);
        if s.kind == FaultKind::TransientDouble {
            let mut b = s.bit_b % domain;
            if b == a {
                b = (b + 1) % domain;
            }
            flip(b);
        }
        self.pending.insert(
            (slot, reg),
            Pending {
                spec_idx: s.id,
                ind,
                row,
                resolved: false,
            },
        );
    }

    /// Observes a read of the clean stored value; returns the value the
    /// hardware delivers.
    ///
    /// * `Ok(None)` — no corruption visible; the caller serves `clean`.
    /// * `Ok(Some((value, disposition)))` — corruption was present;
    ///   serve `value` (equal to the clean one for
    ///   [`ReadDisposition::Corrected`], possibly different for the
    ///   others).
    /// * `Err(DetectedFault)` — protection detected an uncorrectable
    ///   error; the read must fail.
    pub fn on_read(
        &mut self,
        slot: u32,
        reg: u16,
        clean: &CompressedRegister,
    ) -> Result<Option<(CompressedRegister, ReadDisposition)>, DetectedFault> {
        self.reads += 1;
        let footprint = clean.banks_required();
        self.footprint_reads[footprint] += 1;

        let (clean_ind, clean_row) = stored_image(clean);
        let (mut ind, mut row, pending_spec) = match self.pending.get(&(slot, reg)) {
            Some(p) => (p.ind, p.row, (!p.resolved).then_some(p.spec_idx)),
            None => (clean_ind, clean_row, None),
        };

        // Permanent faults afflict every read whose physical row they
        // intersect; compression shrinks the footprint, turning faulty
        // banks into harmless slack (or RRCD redirection targets).
        let mut stuck_hits: Vec<usize> = Vec::new();
        for i in 0..self.stuck.len() {
            let (bank, bit, value) = {
                let s = &self.stuck[i];
                (s.bank as usize, s.bit as usize, s.value)
            };
            if bank >= footprint {
                self.stuck_masked_by_slack += 1;
                self.stuck[i].saw_slack = true;
                continue;
            }
            if self.redirection && footprint < 8 {
                // RRCD: the compressed register leaves >= 1 slack bank in
                // the cluster; the faulty bank's content is remapped there.
                self.stuck_redirected += 1;
                self.stuck[i].saw_redirect = true;
                continue;
            }
            let byte = bank * BANK_BYTES + bit / 8;
            let mask = 1u8 << (bit % 8);
            let forced = if value {
                row[byte] | mask
            } else {
                row[byte] & !mask
            };
            if forced != row[byte] {
                row[byte] = forced;
                self.stuck_applied += 1;
                if !self.stuck[i].recorded {
                    stuck_hits.push(i);
                }
            }
        }

        if ind == clean_ind && row == clean_row {
            // Nothing visible this read (e.g. a stuck-at agreeing with the
            // stored bit). A pending transient can only get here if a
            // stuck-at forced its flipped bit back — call that masked.
            if let Some(spec) = pending_spec {
                self.record(spec, FaultOutcome::Masked, "cancelled by a permanent fault");
                self.mark_resolved(slot, reg);
            }
            return Ok(None);
        }

        // Run the protection the hardware would run on this read. The
        // check code is whatever was computed at write time; recomputing
        // from the clean value is equivalent and avoids storing codes.
        let code = self.protection.encode(clean_ind, &clean_row);
        match self.protection.verify(&mut ind, &mut row, &code) {
            VerifyOutcome::Uncorrectable => {
                self.resolve_read(
                    slot,
                    reg,
                    pending_spec,
                    &stuck_hits,
                    FaultOutcome::Detected,
                    "uncorrectable under protection",
                );
                return Err(DetectedFault);
            }
            VerifyOutcome::Corrected { .. } if ind == clean_ind && row == clean_row => {
                self.resolve_read(
                    slot,
                    reg,
                    pending_spec,
                    &stuck_hits,
                    FaultOutcome::Corrected,
                    "restored by SEC-DED",
                );
                // Correction scrubs the transient from the cell.
                self.pending.remove(&(slot, reg));
                return Ok(Some((*clean, ReadDisposition::Corrected)));
            }
            // Clean verify (parity satisfied / unprotected) or a SEC-DED
            // miscorrection that "fixed" the word to the wrong bits: the
            // corruption reaches the decompressor.
            VerifyOutcome::Clean | VerifyOutcome::Corrected { .. } => {}
        }

        let delivered = parse_image(CompressionIndicator::from_bits(ind & 0b11), &row);
        if self.codec.decompress(&delivered) == self.codec.decompress(clean) {
            self.resolve_read(
                slot,
                reg,
                pending_spec,
                &stuck_hits,
                FaultOutcome::Masked,
                "decodes to the written value",
            );
            Ok(Some((delivered, ReadDisposition::Masked)))
        } else {
            self.resolve_read(
                slot,
                reg,
                pending_spec,
                &stuck_hits,
                FaultOutcome::SilentCorruption,
                "wrong value delivered undetected",
            );
            Ok(Some((delivered, ReadDisposition::SilentCorruption)))
        }
    }

    /// Observes a warp being freed: its unread corruption becomes latent.
    pub fn on_free(&mut self, slot: u32) {
        let keys: Vec<(u32, u16)> = self
            .pending
            .keys()
            .filter(|(s, _)| *s == slot)
            .copied()
            .collect();
        for key in keys {
            if let Some(p) = self.pending.remove(&key) {
                if !p.resolved {
                    self.record(p.spec_idx, FaultOutcome::Masked, "warp freed before read");
                }
            }
        }
    }

    fn mark_resolved(&mut self, slot: u32, reg: u16) {
        if let Some(p) = self.pending.get_mut(&(slot, reg)) {
            p.resolved = true;
        }
    }

    /// Records the same read outcome for the pending transient (if any)
    /// and every first-time stuck-at contributor.
    fn resolve_read(
        &mut self,
        slot: u32,
        reg: u16,
        pending_spec: Option<usize>,
        stuck_hits: &[usize],
        outcome: FaultOutcome,
        note: &'static str,
    ) {
        if let Some(spec) = pending_spec {
            self.record(spec, outcome, note);
            self.mark_resolved(slot, reg);
        }
        for &i in stuck_hits {
            let spec = self.stuck[i].spec_idx;
            self.stuck[i].recorded = true;
            self.record(spec, outcome, note);
        }
    }

    fn record(&mut self, spec_idx: usize, outcome: FaultOutcome, note: &'static str) {
        let spec = self.plan.specs.iter().find(|s| s.id == spec_idx).copied();
        let (kind, target) = spec
            .map(|s| (s.kind, s.target))
            .unwrap_or((FaultKind::TransientSingle, FaultTarget::RawCell));
        self.events.push(FaultEvent {
            spec_id: spec_idx,
            kind,
            target,
            outcome,
            note,
        });
    }

    /// Closes the run: unresolved corruption becomes latent-masked, never
    /// -triggered specs are recorded as such, and the log is produced.
    pub fn finish(mut self) -> FaultLog {
        let latent: Vec<usize> = self
            .pending
            .values()
            .filter(|p| !p.resolved)
            .map(|p| p.spec_idx)
            .collect();
        for spec in latent {
            self.record(spec, FaultOutcome::Masked, "latent at end of run");
        }
        for i in 0..self.stuck.len() {
            if !self.stuck[i].recorded {
                let s = &self.stuck[i];
                let note = if s.saw_redirect {
                    "remapped into slack banks (RRCD)"
                } else if s.saw_slack {
                    "confined to slack banks freed by compression"
                } else {
                    "never intersected a live footprint"
                };
                let spec = self.stuck[i].spec_idx;
                self.record(spec, FaultOutcome::Masked, note);
            }
        }
        let untriggered: Vec<usize> = (0..self.triggered.len())
            .filter(|&id| !self.triggered[id])
            .collect();
        for id in untriggered {
            self.record(
                id,
                FaultOutcome::NotTriggered,
                "write ordinal never reached",
            );
        }
        self.events.sort_by_key(|e| e.spec_id);
        FaultLog {
            events: self.events,
            writes: self.writes,
            reads: self.reads,
            stuck_masked_by_slack: self.stuck_masked_by_slack,
            stuck_redirected: self.stuck_redirected,
            stuck_applied: self.stuck_applied,
            footprint_reads: self.footprint_reads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdi::{ChoiceSet, WarpRegister};

    fn codec() -> BdiCodec {
        BdiCodec::new(ChoiceSet::warped_compression())
    }

    fn single_flip_plan(target: FaultTarget, bit: u32) -> FaultPlan {
        FaultPlan {
            seed: 0,
            specs: vec![FaultSpec {
                id: 0,
                at_write: 1,
                target,
                kind: FaultKind::TransientSingle,
                bit_a: bit,
                bit_b: 0,
                stuck_bank: 0,
                stuck_bit: 0,
                stuck_value: false,
            }],
        }
    }

    #[test]
    fn unprotected_payload_flip_is_silent_corruption() {
        let mut inj = FaultInjector::new(
            single_flip_plan(FaultTarget::Payload, 0),
            ProtectionModel::Unprotected,
            false,
        );
        let value = codec().compress(&WarpRegister::from_fn(|t| 50 + t as u32));
        inj.on_write(0, 0, &value);
        let out = inj.on_read(0, 0, &value).unwrap();
        let (delivered, disp) = out.expect("corruption must be visible");
        assert_eq!(disp, ReadDisposition::SilentCorruption);
        assert_ne!(codec().decompress(&delivered), codec().decompress(&value));
        let log = inj.finish();
        assert_eq!(log.silent(), 1);
        assert_eq!(log.events.len(), 1);
    }

    #[test]
    fn secded_corrects_single_payload_flip() {
        let mut inj = FaultInjector::new(
            single_flip_plan(FaultTarget::Payload, 13),
            ProtectionModel::SecDed,
            false,
        );
        let value = codec().compress(&WarpRegister::from_fn(|t| 50 + t as u32));
        inj.on_write(0, 0, &value);
        let (delivered, disp) = inj.on_read(0, 0, &value).unwrap().unwrap();
        assert_eq!(disp, ReadDisposition::Corrected);
        assert_eq!(delivered, value);
        let log = inj.finish();
        assert_eq!(log.corrected(), 1);
        assert_eq!(log.silent(), 0);
    }

    #[test]
    fn parity_detects_single_flip() {
        let mut inj = FaultInjector::new(
            single_flip_plan(FaultTarget::Payload, 13),
            ProtectionModel::Parity,
            false,
        );
        let value = codec().compress(&WarpRegister::from_fn(|t| 50 + t as u32));
        inj.on_write(0, 0, &value);
        assert_eq!(inj.on_read(0, 0, &value), Err(DetectedFault));
        let log = inj.finish();
        assert_eq!(log.detected(), 1);
    }

    #[test]
    fn metadata_widening_flip_is_masked_for_uniform_register() {
        // <4,0> stored; flipping indicator 0b01 -> 0b11 reinterprets as
        // <4,2> whose stale delta bytes are zero: same value.
        let mut inj = FaultInjector::new(
            single_flip_plan(FaultTarget::Metadata, 1),
            ProtectionModel::Unprotected,
            false,
        );
        let value = codec().compress(&WarpRegister::splat(9));
        assert_eq!(value.indicator(), CompressionIndicator::Delta0);
        inj.on_write(0, 0, &value);
        let (_, disp) = inj.on_read(0, 0, &value).unwrap().unwrap();
        assert_eq!(disp, ReadDisposition::Masked);
        assert_eq!(inj.finish().masked(), 1);
    }

    #[test]
    fn overwrite_before_read_masks_the_fault() {
        let mut inj = FaultInjector::new(
            single_flip_plan(FaultTarget::Payload, 0),
            ProtectionModel::Unprotected,
            false,
        );
        let value = codec().compress(&WarpRegister::splat(1));
        inj.on_write(0, 0, &value); // struck here
        inj.on_write(0, 0, &value); // overwritten
        assert_eq!(inj.on_read(0, 0, &value).unwrap(), None);
        let log = inj.finish();
        assert_eq!(log.masked(), 1);
        assert_eq!(log.events[0].note, "overwritten before read");
    }

    #[test]
    fn untriggered_spec_reports_not_triggered() {
        let mut plan = single_flip_plan(FaultTarget::Payload, 0);
        plan.specs[0].at_write = 100;
        let mut inj = FaultInjector::new(plan, ProtectionModel::Unprotected, false);
        let value = codec().compress(&WarpRegister::splat(1));
        inj.on_write(0, 0, &value);
        let log = inj.finish();
        assert_eq!(log.not_triggered(), 1);
    }

    fn stuck_plan(bank: u8, value: bool) -> FaultPlan {
        FaultPlan {
            seed: 0,
            specs: vec![FaultSpec {
                id: 0,
                at_write: 1,
                target: FaultTarget::RawCell,
                kind: FaultKind::StuckAt,
                bit_a: 0,
                bit_b: 0,
                stuck_bank: bank,
                stuck_bit: 5,
                stuck_value: value,
            }],
        }
    }

    #[test]
    fn stuck_bank_in_slack_is_masked_by_compression() {
        let mut inj = FaultInjector::new(stuck_plan(7, true), ProtectionModel::Unprotected, false);
        let value = codec().compress(&WarpRegister::splat(3)); // 1 bank
        inj.on_write(0, 0, &value);
        assert_eq!(inj.on_read(0, 0, &value).unwrap(), None);
        let log = inj.finish();
        assert_eq!(log.stuck_masked_by_slack, 1);
        assert_eq!(log.masked(), 1);
    }

    #[test]
    fn redirection_remaps_faulty_bank_when_footprint_leaves_slack() {
        let mut inj = FaultInjector::new(stuck_plan(0, true), ProtectionModel::Unprotected, true);
        let value = codec().compress(&WarpRegister::from_fn(|t| 50 + t as u32)); // 3 banks
        inj.on_write(0, 0, &value);
        assert_eq!(inj.on_read(0, 0, &value).unwrap(), None);
        let log = inj.finish();
        assert_eq!(log.stuck_redirected, 1);
        assert_eq!(log.stuck_applied, 0);
    }

    #[test]
    fn stuck_bank_without_redirection_corrupts_live_data() {
        let mut inj = FaultInjector::new(stuck_plan(0, true), ProtectionModel::Unprotected, false);
        // Base word all-zeros so forcing a bit to 1 definitely changes it.
        let value = codec().compress(&WarpRegister::splat(0));
        inj.on_write(0, 0, &value);
        let (_, disp) = inj.on_read(0, 0, &value).unwrap().unwrap();
        assert_eq!(disp, ReadDisposition::SilentCorruption);
        let log = inj.finish();
        assert_eq!(log.stuck_applied, 1);
        assert_eq!(log.silent(), 1);
    }

    #[test]
    fn uncompressed_register_cannot_be_redirected() {
        let mut inj = FaultInjector::new(stuck_plan(0, true), ProtectionModel::Unprotected, true);
        let raw = WarpRegister::from_fn(|t| (t as u32).wrapping_mul(0x9E37_79B9));
        let value = codec().compress(&raw);
        assert_eq!(value.banks_required(), 8);
        inj.on_write(0, 0, &value);
        // Bit 5 of bank 0 belongs to lane 1's low byte region; whether it
        // changes depends on the data — force a deterministic check.
        let _ = inj.on_read(0, 0, &value).unwrap();
        let log = inj.finish();
        assert_eq!(log.stuck_redirected, 0);
    }

    #[test]
    fn same_plan_same_outcomes() {
        let plan = FaultPlan::generate(42, 8, 50);
        let run = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(plan, ProtectionModel::SecDed, false);
            let value = codec().compress(&WarpRegister::from_fn(|t| 7 * t as u32));
            for w in 0..50u64 {
                inj.on_write((w % 4) as u32, (w % 8) as u16, &value);
                let _ = inj.on_read((w % 4) as u32, (w % 8) as u16, &value);
            }
            inj.finish()
        };
        assert_eq!(run(plan.clone()), run(plan));
    }
}
