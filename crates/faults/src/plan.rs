//! Deterministic, seed-driven fault plans.
//!
//! A [`FaultPlan`] is drawn up front from a single `u64` seed, so a
//! campaign is byte-reproducible: the same seed always yields the same
//! specs, struck at the same global write ordinals, flipping the same
//! bits. Nothing about injection consults a clock or ambient randomness.

use rand::prelude::*;

/// What part of the stored register a transient fault strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// Any bit of the 128-byte physical cluster row, including the
    /// stale bytes in gated slack banks.
    RawCell,
    /// A bit inside the live compressed payload (`stored_len` bytes) —
    /// guaranteed to hit base or delta bits, the error-amplifying case.
    Payload,
    /// One of the 2 compression-indicator bits in the bank arbiter.
    Metadata,
}

impl FaultTarget {
    /// Report spelling.
    pub fn name(self) -> &'static str {
        match self {
            FaultTarget::RawCell => "raw-cell",
            FaultTarget::Payload => "payload",
            FaultTarget::Metadata => "metadata",
        }
    }
}

/// The temporal class of an injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// One bit flips once (soft error); repaired by any overwrite.
    TransientSingle,
    /// Two distinct bits flip at once (multi-cell upset).
    TransientDouble,
    /// A bank cell is permanently stuck at a value from its activation
    /// write onward; candidates for RRCD-style redirection.
    StuckAt,
}

impl FaultKind {
    /// Report spelling.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TransientSingle => "single",
            FaultKind::TransientDouble => "double",
            FaultKind::StuckAt => "stuck-at",
        }
    }
}

/// One planned fault.
///
/// Transient faults strike the register written by global write number
/// `at_write`; `bit_a`/`bit_b` are reduced modulo the target domain at
/// injection time (the domain depends on the victim's compressed form,
/// which is unknown when the plan is drawn). Stuck-at faults activate at
/// `at_write` and then afflict every read whose footprint covers
/// `stuck_bank`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Index in the plan (stable across runs for a given seed).
    pub id: usize,
    /// Global write ordinal (1-based) this fault strikes/activates at.
    pub at_write: u64,
    /// Target class (ignored for stuck-at faults).
    pub target: FaultTarget,
    /// Temporal class.
    pub kind: FaultKind,
    /// Primary bit pick (reduced mod the target domain at injection).
    pub bit_a: u32,
    /// Secondary bit pick, used by double flips.
    pub bit_b: u32,
    /// Cluster-relative bank index (0..8) for stuck-at faults.
    pub stuck_bank: u8,
    /// Bit within the stuck bank's 16-byte row (0..128).
    pub stuck_bit: u8,
    /// The value the cell is stuck at.
    pub stuck_value: bool,
}

/// A deterministic set of faults for one simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was drawn from (recorded for reports).
    pub seed: u64,
    /// Specs in ascending `at_write` order.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Draws `injections` faults over the first `write_horizon` register
    /// writes.
    ///
    /// Mix: 60% single transients, 20% double transients, 20% stuck-at;
    /// transient targets split 40% raw cell / 40% payload / 20%
    /// metadata. Sorted by `at_write` so the injector can walk them in
    /// write order.
    pub fn generate(seed: u64, injections: usize, write_horizon: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = write_horizon.max(1);
        let mut specs: Vec<FaultSpec> = (0..injections)
            .map(|id| {
                let at_write = rng.gen_range(1..=horizon);
                let kind = match rng.gen_range(0u32..10) {
                    0..=5 => FaultKind::TransientSingle,
                    6..=7 => FaultKind::TransientDouble,
                    _ => FaultKind::StuckAt,
                };
                let target = match rng.gen_range(0u32..10) {
                    0..=3 => FaultTarget::RawCell,
                    4..=7 => FaultTarget::Payload,
                    _ => FaultTarget::Metadata,
                };
                FaultSpec {
                    id,
                    at_write,
                    target,
                    kind,
                    bit_a: rng.gen_range(0u32..u32::MAX),
                    bit_b: rng.gen_range(0u32..u32::MAX),
                    stuck_bank: rng.gen_range(0u8..8),
                    stuck_bit: rng.gen_range(0u8..128),
                    stuck_value: rng.gen_bool(0.5),
                }
            })
            .collect();
        specs.sort_by_key(|s| s.at_write);
        FaultPlan { seed, specs }
    }

    /// An empty plan (no faults, pure observation run).
    pub fn empty(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::generate(42, 16, 1000);
        let b = FaultPlan::generate(42, 16, 1000);
        assert_eq!(a, b);
        assert_eq!(a.specs.len(), 16);
    }

    #[test]
    fn different_seed_different_plan() {
        assert_ne!(
            FaultPlan::generate(42, 16, 1000),
            FaultPlan::generate(43, 16, 1000)
        );
    }

    #[test]
    fn specs_are_sorted_and_within_horizon() {
        let plan = FaultPlan::generate(7, 64, 500);
        assert!(plan
            .specs
            .windows(2)
            .all(|w| w[0].at_write <= w[1].at_write));
        assert!(plan
            .specs
            .iter()
            .all(|s| (1..=500).contains(&s.at_write) && s.stuck_bank < 8 && s.stuck_bit < 128));
    }

    #[test]
    fn plan_mixes_kinds_and_targets() {
        let plan = FaultPlan::generate(1, 256, 10_000);
        let kinds: std::collections::HashSet<_> =
            plan.specs.iter().map(|s| s.kind.name()).collect();
        let targets: std::collections::HashSet<_> =
            plan.specs.iter().map(|s| s.target.name()).collect();
        assert_eq!(kinds.len(), 3, "all three kinds should appear");
        assert_eq!(targets.len(), 3, "all three targets should appear");
    }
}
