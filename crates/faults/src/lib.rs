//! Fault injection, register protection, and RRCD redirection for the
//! Warped-Compression register file.
//!
//! Compression *amplifies* soft-error blast radius: a flipped bit in an
//! uncompressed register corrupts one lane of one thread, but a flipped
//! bit in a ⟨4,0⟩ base word corrupts **all 32 lanes** on decompression,
//! and a flipped compression-indicator bit re-frames the entire stored
//! row under the wrong layout. This crate quantifies that trade and the
//! mitigations:
//!
//! * [`FaultPlan`] — deterministic, seed-driven fault campaigns
//!   (transient single/double flips, permanent stuck-at cells) targeted
//!   at raw bank cells, live compressed payload bytes, or the 2-bit BDI
//!   metadata;
//! * [`FaultInjector`] — the runtime hook the register file calls on
//!   every write/read, classifying each fault as masked / corrected /
//!   detected / silent corruption;
//! * [`ProtectionModel`] — per-word parity and SEC-DED Hamming (72,64)
//!   over the stored bits, with the energy overhead exposed for
//!   `gpu-power`;
//! * [`RedirectionReport`] — RRCD-style coverage: how often compression
//!   slack lets a permanently faulty bank be remapped instead of killing
//!   the cluster.
//!
//! # Example
//!
//! ```
//! use bdi::{BdiCodec, WarpRegister};
//! use gpu_faults::{FaultInjector, FaultPlan, ProtectionModel, ReadDisposition};
//!
//! let plan = FaultPlan::generate(42, 4, 100);
//! let mut injector = FaultInjector::new(plan, ProtectionModel::SecDed, false);
//! let codec = BdiCodec::default();
//! let value = codec.compress(&WarpRegister::from_fn(|t| 10 + t as u32));
//! injector.on_write(0, 0, &value);
//! match injector.on_read(0, 0, &value) {
//!     Ok(None) => {}                       // no fault landed here
//!     Ok(Some((_, disp))) => assert_ne!(disp, ReadDisposition::SilentCorruption),
//!     Err(detected) => println!("aborted: {detected}"),
//! }
//! let log = injector.finish();
//! assert_eq!(log.silent(), 0, "SEC-DED admits no silent single-bit flips");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod image;
mod inject;
mod plan;
mod protect;
mod redirect;

pub use image::{parse_image, stored_image, StoredBits, ROW_BYTES};
pub use inject::{
    DetectedFault, FaultEvent, FaultInjector, FaultLog, FaultOutcome, ReadDisposition,
};
pub use plan::{FaultKind, FaultPlan, FaultSpec, FaultTarget};
pub use protect::{CheckCode, ProtectionModel, VerifyOutcome, PROTECT_WORDS};
pub use redirect::RedirectionReport;
