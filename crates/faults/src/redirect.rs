//! RRCD-style redirection coverage reporting.
//!
//! RRCD (see PAPERS.md) observes that the same compression headroom that
//! saves energy also tolerates *permanent* faults: when a register's
//! compressed footprint leaves slack banks in its cluster, a faulty bank
//! can be remapped into the slack. This module turns the injector's
//! footprint histogram into the coverage numbers a campaign reports.

/// Redirection coverage derived from one run's read-footprint histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RedirectionReport {
    /// Total register reads observed.
    pub total_reads: u64,
    /// Probability a uniformly placed faulty bank falls in slack for a
    /// random read (no redirection hardware): `E[(8 − footprint) / 8]`.
    pub slack_only_coverage: f64,
    /// Probability a random read tolerates a faulty bank *with*
    /// redirection: any footprint < 8 leaves at least one slack bank to
    /// remap into, so this is `P(footprint < 8)`.
    pub redirection_coverage: f64,
}

impl RedirectionReport {
    /// Computes coverage from `footprint_reads[n]` = number of reads of
    /// registers occupying `n` banks.
    pub fn from_footprints(footprint_reads: &[u64; 9]) -> Self {
        let total: u64 = footprint_reads.iter().sum();
        if total == 0 {
            return RedirectionReport::default();
        }
        let mut slack_weight = 0.0f64;
        let mut redirectable = 0u64;
        for (footprint, &reads) in footprint_reads.iter().enumerate() {
            slack_weight += reads as f64 * (8 - footprint.min(8)) as f64 / 8.0;
            if footprint < 8 {
                redirectable += reads;
            }
        }
        RedirectionReport {
            total_reads: total,
            slack_only_coverage: slack_weight / total as f64,
            redirection_coverage: redirectable as f64 / total as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_yields_zero_coverage() {
        let r = RedirectionReport::from_footprints(&[0; 9]);
        assert_eq!(r.total_reads, 0);
        assert_eq!(r.redirection_coverage, 0.0);
    }

    #[test]
    fn all_uncompressed_reads_cannot_be_covered() {
        let mut h = [0u64; 9];
        h[8] = 10;
        let r = RedirectionReport::from_footprints(&h);
        assert_eq!(r.redirection_coverage, 0.0);
        assert_eq!(r.slack_only_coverage, 0.0);
    }

    #[test]
    fn all_delta0_reads_are_fully_redirectable() {
        let mut h = [0u64; 9];
        h[1] = 10;
        let r = RedirectionReport::from_footprints(&h);
        assert_eq!(r.redirection_coverage, 1.0);
        assert!((r.slack_only_coverage - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_footprints_interpolate() {
        let mut h = [0u64; 9];
        h[1] = 5; // slack 7/8 each
        h[8] = 5; // slack 0
        let r = RedirectionReport::from_footprints(&h);
        assert!((r.redirection_coverage - 0.5).abs() < 1e-12);
        assert!((r.slack_only_coverage - 7.0 / 16.0).abs() < 1e-12);
        assert_eq!(r.total_reads, 10);
    }
}
