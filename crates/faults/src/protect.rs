//! Parity and SEC-DED ECC protection over the stored register bits.
//!
//! Protection covers the full stored state of one warp register: the
//! 2-bit compression indicator plus the 128-byte physical row, packed
//! into 17 little-endian 64-bit words (`[indicator byte ‖ row ‖ zero
//! pad]`). Each word carries its own check bits, matching how SRAM
//! macros protect at word granularity:
//!
//! * **Parity** — 1 check bit per 64-bit word. Detects any odd number of
//!   flips in a word; corrects nothing; an even number of flips passes
//!   unseen.
//! * **SEC-DED** — an extended Hamming (72,64) code per word: corrects
//!   any single-bit error, detects (but cannot correct) double-bit
//!   errors, and — like real SEC-DED — may *miscorrect* a triple flip,
//!   which is the realistic silent-corruption path that remains even
//!   under ECC.
//!
//! The fault model never targets the check bits themselves (they are
//! assumed to live in hardened cells; see DESIGN.md §8), so the decoder
//! treats stored check bits as ground truth.

use std::fmt;

/// 64-bit words protected per register: ⌈(1 + 128) / 8⌉.
pub const PROTECT_WORDS: usize = 17;

/// Per-register check bits: one check byte per protected word.
///
/// For parity only bit 0 of each byte is used; for SEC-DED all 8 bits
/// are (7 Hamming parities + 1 overall parity).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct CheckCode(pub [u8; PROTECT_WORDS]);

impl fmt::Debug for CheckCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CheckCode({:02x?})", self.0)
    }
}

/// Outcome of verifying (and possibly correcting) a protected register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Every word matched its check bits.
    Clean,
    /// SEC-DED corrected this many single-bit word errors in place.
    Corrected {
        /// Number of words that needed a single-bit correction.
        words: u32,
    },
    /// At least one word holds an error the code can detect but not
    /// correct (parity mismatch, or a SEC-DED double-error syndrome).
    Uncorrectable,
}

/// The error-protection scheme applied to stored registers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProtectionModel {
    /// No check bits; every surviving flip reaches the decompressor.
    #[default]
    Unprotected,
    /// 1 parity bit per 64-bit word (detect-only).
    Parity,
    /// Extended Hamming (72,64) SEC-DED per 64-bit word.
    SecDed,
}

impl ProtectionModel {
    /// Parses the CLI spelling (`none` / `parity` / `secded`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(ProtectionModel::Unprotected),
            "parity" => Some(ProtectionModel::Parity),
            "secded" => Some(ProtectionModel::SecDed),
            _ => None,
        }
    }

    /// The CLI / report spelling.
    pub fn name(self) -> &'static str {
        match self {
            ProtectionModel::Unprotected => "none",
            ProtectionModel::Parity => "parity",
            ProtectionModel::SecDed => "secded",
        }
    }

    /// Check bits stored per 64-bit data word.
    pub fn check_bits_per_word(self) -> u32 {
        match self {
            ProtectionModel::Unprotected => 0,
            ProtectionModel::Parity => 1,
            ProtectionModel::SecDed => 8,
        }
    }

    /// Multiplier on bank-access energy from reading/writing the check
    /// bits alongside the data: `(64 + check bits) / 64`. Fed into
    /// `gpu-power` so protected designs pay for their redundancy.
    pub fn bank_access_energy_scale(self) -> f64 {
        (64.0 + f64::from(self.check_bits_per_word())) / 64.0
    }

    /// Computes the check code for a stored register at write time.
    pub fn encode(self, ind: u8, row: &[u8; super::ROW_BYTES]) -> CheckCode {
        let words = pack_words(ind, row);
        let mut code = [0u8; PROTECT_WORDS];
        for (c, &w) in code.iter_mut().zip(&words) {
            *c = match self {
                ProtectionModel::Unprotected => 0,
                ProtectionModel::Parity => (w.count_ones() & 1) as u8,
                ProtectionModel::SecDed => secded_encode(w),
            };
        }
        CheckCode(code)
    }

    /// Verifies a (possibly corrupted) stored register against the check
    /// code computed at write time, correcting `ind`/`row` in place when
    /// the code allows it.
    pub fn verify(
        self,
        ind: &mut u8,
        row: &mut [u8; super::ROW_BYTES],
        code: &CheckCode,
    ) -> VerifyOutcome {
        if self == ProtectionModel::Unprotected {
            return VerifyOutcome::Clean;
        }
        let mut words = pack_words(*ind, row);
        let mut corrected = 0u32;
        for (w, &c) in words.iter_mut().zip(&code.0) {
            match self {
                ProtectionModel::Unprotected => unreachable!(),
                ProtectionModel::Parity => {
                    if (w.count_ones() & 1) as u8 != c {
                        return VerifyOutcome::Uncorrectable;
                    }
                }
                ProtectionModel::SecDed => match secded_check(*w, c) {
                    WordCheck::Clean | WordCheck::CheckBitsOnly => {}
                    WordCheck::Corrected(fixed) => {
                        *w = fixed;
                        corrected += 1;
                    }
                    WordCheck::Uncorrectable => return VerifyOutcome::Uncorrectable,
                },
            }
        }
        if corrected == 0 {
            VerifyOutcome::Clean
        } else {
            let (new_ind, new_row) = unpack_words(&words);
            *ind = new_ind;
            *row = new_row;
            VerifyOutcome::Corrected { words: corrected }
        }
    }
}

/// Packs `[ind ‖ row]` into 17 little-endian words (7 pad bytes zero).
fn pack_words(ind: u8, row: &[u8; super::ROW_BYTES]) -> [u64; PROTECT_WORDS] {
    let mut buf = [0u8; PROTECT_WORDS * 8];
    buf[0] = ind;
    buf[1..1 + super::ROW_BYTES].copy_from_slice(row);
    let mut words = [0u64; PROTECT_WORDS];
    for (i, w) in words.iter_mut().enumerate() {
        *w = u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
    }
    words
}

fn unpack_words(words: &[u64; PROTECT_WORDS]) -> (u8, [u8; super::ROW_BYTES]) {
    let mut buf = [0u8; PROTECT_WORDS * 8];
    for (i, w) in words.iter().enumerate() {
        buf[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
    }
    let mut row = [0u8; super::ROW_BYTES];
    row.copy_from_slice(&buf[1..1 + super::ROW_BYTES]);
    (buf[0], row)
}

/// Hamming parity positions inside the 71-position codeword.
const PARITY_POSITIONS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Per-word SEC-DED decode result.
enum WordCheck {
    /// Word and check bits agree.
    Clean,
    /// Single-bit error located in the check bits; data is intact.
    CheckBitsOnly,
    /// Single-bit data error corrected; the fixed word.
    Corrected(u64),
    /// Double-error syndrome (or invalid position): detected, not
    /// correctable.
    Uncorrectable,
}

/// Encodes the 8 check bits of the extended Hamming (72,64) code.
///
/// Data bits occupy codeword positions 1..=71 that are not powers of
/// two (64 of them); bits 0..=6 of the result are the Hamming parities
/// for positions 1,2,4,...,64; bit 7 is the overall parity over data
/// and Hamming bits.
fn secded_encode(word: u64) -> u8 {
    let mut check = 0u8;
    for (k, &p) in PARITY_POSITIONS.iter().enumerate() {
        if data_parity_for(word, p) {
            check |= 1 << k;
        }
    }
    let overall = (word.count_ones() + u32::from(check).count_ones()) & 1;
    check | ((overall as u8) << 7)
}

/// XOR of the data bits whose codeword position has bit `p` set.
fn data_parity_for(word: u64, p: usize) -> bool {
    let mut parity = false;
    let mut j = 0;
    for pos in 1..=71usize {
        if pos.is_power_of_two() {
            continue;
        }
        if pos & p != 0 {
            parity ^= (word >> j) & 1 == 1;
        }
        j += 1;
    }
    parity
}

fn secded_check(word: u64, stored: u8) -> WordCheck {
    let mut syndrome = 0usize;
    for (k, &p) in PARITY_POSITIONS.iter().enumerate() {
        let mut parity = data_parity_for(word, p);
        parity ^= (stored >> k) & 1 == 1;
        if parity {
            syndrome |= p;
        }
    }
    // Overall parity across data, Hamming bits and the overall bit
    // itself: even when everything (including the error count) is even.
    let overall = (word.count_ones() + u32::from(stored).count_ones()) & 1 == 1;
    match (syndrome, overall) {
        (0, false) => WordCheck::Clean,
        // Overall-parity bit flipped by itself; data intact.
        (0, true) => WordCheck::CheckBitsOnly,
        (s, true) => {
            if s > 71 {
                return WordCheck::Uncorrectable;
            }
            if s.is_power_of_two() {
                // A Hamming check bit flipped; data intact.
                return WordCheck::CheckBitsOnly;
            }
            WordCheck::Corrected(word ^ (1u64 << data_index_of(s)))
        }
        // Non-zero syndrome with even overall parity: two flips.
        (_, false) => WordCheck::Uncorrectable,
    }
}

/// Data-bit index (0..64) of a non-power-of-two codeword position.
fn data_index_of(pos: usize) -> usize {
    (1..pos).filter(|p| !p.is_power_of_two()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROW: [u8; crate::ROW_BYTES] = [0xA5; crate::ROW_BYTES];

    #[test]
    fn clean_data_verifies_clean_under_every_model() {
        for model in [
            ProtectionModel::Unprotected,
            ProtectionModel::Parity,
            ProtectionModel::SecDed,
        ] {
            let code = model.encode(0b10, &ROW);
            let mut ind = 0b10;
            let mut row = ROW;
            assert_eq!(
                model.verify(&mut ind, &mut row, &code),
                VerifyOutcome::Clean
            );
            assert_eq!((ind, row), (0b10, ROW));
        }
    }

    #[test]
    fn secded_corrects_every_single_bit_flip() {
        let code = ProtectionModel::SecDed.encode(0b01, &ROW);
        for bit in 0..(crate::ROW_BYTES * 8) {
            let mut row = ROW;
            row[bit / 8] ^= 1 << (bit % 8);
            let mut ind = 0b01;
            let out = ProtectionModel::SecDed.verify(&mut ind, &mut row, &code);
            assert_eq!(out, VerifyOutcome::Corrected { words: 1 }, "bit {bit}");
            assert_eq!((ind, row), (0b01, ROW), "bit {bit} not restored");
        }
        // Indicator bits too.
        for bit in 0..2 {
            let mut ind = 0b01u8 ^ (1 << bit);
            let mut row = ROW;
            let out = ProtectionModel::SecDed.verify(&mut ind, &mut row, &code);
            assert_eq!(out, VerifyOutcome::Corrected { words: 1 });
            assert_eq!(ind, 0b01);
        }
    }

    #[test]
    fn secded_detects_double_flips_in_one_word() {
        let code = ProtectionModel::SecDed.encode(0, &ROW);
        let mut row = ROW;
        row[8] ^= 0b11; // two flips inside word 1
        let mut ind = 0;
        assert_eq!(
            ProtectionModel::SecDed.verify(&mut ind, &mut row, &code),
            VerifyOutcome::Uncorrectable
        );
    }

    #[test]
    fn secded_corrects_one_flip_per_word_independently() {
        let code = ProtectionModel::SecDed.encode(0, &ROW);
        let mut row = ROW;
        row[10] ^= 0x10; // word 1
        row[100] ^= 0x01; // word 12
        let mut ind = 0;
        assert_eq!(
            ProtectionModel::SecDed.verify(&mut ind, &mut row, &code),
            VerifyOutcome::Corrected { words: 2 }
        );
        assert_eq!(row, ROW);
    }

    #[test]
    fn parity_detects_odd_flips_and_misses_even_ones() {
        let code = ProtectionModel::Parity.encode(0, &ROW);
        let mut row = ROW;
        row[3] ^= 0x04;
        let mut ind = 0;
        assert_eq!(
            ProtectionModel::Parity.verify(&mut ind, &mut row, &code),
            VerifyOutcome::Uncorrectable
        );
        // Second flip in the same word restores even parity: undetected.
        row[4] ^= 0x04;
        assert_eq!(
            ProtectionModel::Parity.verify(&mut ind, &mut row, &code),
            VerifyOutcome::Clean
        );
    }

    #[test]
    fn energy_scales_reflect_check_bit_overhead() {
        assert_eq!(ProtectionModel::Unprotected.bank_access_energy_scale(), 1.0);
        assert!((ProtectionModel::Parity.bank_access_energy_scale() - 65.0 / 64.0).abs() < 1e-12);
        assert!((ProtectionModel::SecDed.bank_access_energy_scale() - 1.125).abs() < 1e-12);
    }

    #[test]
    fn parse_round_trips_names() {
        for m in [
            ProtectionModel::Unprotected,
            ProtectionModel::Parity,
            ProtectionModel::SecDed,
        ] {
            assert_eq!(ProtectionModel::parse(m.name()), Some(m));
        }
        assert_eq!(ProtectionModel::parse("chipkill"), None);
    }
}
