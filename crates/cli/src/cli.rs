//! Argument parsing and command dispatch.

use std::error::Error;
use std::fmt;
use std::fs;

use bdi::FixedChoice;
use gpu_faults::ProtectionModel;
use gpu_sim::{GlobalMemory, GpuSim, LaunchConfig};
use warped_compression::{
    perf_suite, perf_workload, run_workload, schedule_suite, schedule_workload, DesignPoint,
    RunPolicy,
};
use wc_bench::{Campaign, CheckpointStore, DEFAULT_SEED};

use crate::report::{format_comparison, format_run};

/// A parsed `wcsim` invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `wcsim list` — print the benchmark suite.
    List,
    /// `wcsim designs` — print the available design points.
    Designs,
    /// `wcsim run <workload> [--design D]` — run one benchmark (or `all`).
    Run {
        /// Benchmark name or `all`.
        workload: String,
        /// Design point to simulate.
        design: DesignPoint,
    },
    /// `wcsim compare <workload>` — baseline vs warped-compression report.
    Compare {
        /// Benchmark name.
        workload: String,
    },
    /// `wcsim kernel <file.s> --blocks N --tpb N --mem WORDS [--param X]...`
    /// — assemble and run a custom kernel.
    Kernel {
        /// Path to the `.s` source file.
        path: String,
        /// Grid blocks.
        blocks: usize,
        /// Threads per block.
        threads_per_block: usize,
        /// Global memory size in words.
        mem_words: usize,
        /// Scalar kernel parameters.
        params: Vec<u32>,
        /// Design point to simulate.
        design: DesignPoint,
    },
    /// `wcsim analyze <workload|--all> [--deny-warnings] [--json FILE]`
    /// — run the static verifier and liveness pass without simulating.
    Analyze {
        /// Benchmark name; `None` analyses the whole suite (`--all`).
        workload: Option<String>,
        /// Treat warnings as failures (CI gate).
        deny_warnings: bool,
        /// Write the full machine-readable report to this path.
        json: Option<String>,
    },
    /// `wcsim predict <workload|--all> [--out FILE]` — static
    /// compressibility prediction validated against a traced run.
    Predict {
        /// Benchmark name; `None` predicts the whole suite (`--all`).
        workload: Option<String>,
        /// Report path (default `results/BENCH_predict.json`).
        out: Option<String>,
    },
    /// `wcsim faults <workload|--all> [--injections N] [--seed S]
    /// [--protection none|parity|secded] [--budget CYCLES]
    /// [--resume DIR] [--out FILE]` — seeded fault-injection campaign.
    Faults {
        /// Benchmark name; `None` runs the whole suite (`--all`).
        workload: Option<String>,
        /// Planned faults per kernel.
        injections: usize,
        /// Campaign seed; per-kernel plans derive from it. Default 42.
        seed: u64,
        /// Register-protection scheme to model.
        protection: ProtectionModel,
        /// Watchdog cycle budget per run (`None` = simulator default).
        budget: Option<u64>,
        /// Checkpoint directory: completed kernels are skipped and their
        /// saved fragments reused verbatim.
        resume: Option<String>,
        /// Report path (default `results/BENCH_faults.json`).
        out: Option<String>,
    },
    /// `wcsim fuzz [--cases N] [--seed S] [--budget CYCLES]
    /// [--resume DIR] [--out FILE] [--repro DIR]` — differential kernel
    /// fuzzing with crash triage and automatic shrinking.
    Fuzz {
        /// Number of generated cases.
        cases: usize,
        /// Campaign seed; per-case streams derive from it. Default 42.
        seed: u64,
        /// Per-case cycle watchdog.
        budget: u64,
        /// Checkpoint directory: completed cases are skipped and their
        /// saved fragments reused verbatim.
        resume: Option<String>,
        /// Report path (default `results/BENCH_fuzz.json`).
        out: Option<String>,
        /// Directory for shrunk reproducers (default `results/fuzz`).
        repro: Option<String>,
    },
    /// `wcsim perf <workload|--all> [--design D] [--out FILE]` — static
    /// cycle / bank-access / energy lower bounds validated against a
    /// simulated run.
    Perf {
        /// Benchmark name; `None` bounds the whole suite (`--all`).
        workload: Option<String>,
        /// Design point to bound and simulate.
        design: DesignPoint,
        /// Report path (default `results/BENCH_perf.json`).
        out: Option<String>,
    },
    /// `wcsim schedule <workload|--all> [--design D] [--out FILE]` —
    /// ahead-of-time issue scheduling replayed on the scheduled backend
    /// and machine-checked against the dynamic core.
    Schedule {
        /// Benchmark name; `None` schedules the whole suite (`--all`).
        workload: Option<String>,
        /// Design point to schedule and replay.
        design: DesignPoint,
        /// Report path (default `results/BENCH_schedule.json`).
        out: Option<String>,
    },
    /// `wcsim mem <workload|--all> [--out FILE]` — static memory
    /// analysis (abstract address sets, cross-warp race verdict,
    /// transaction floors) machine-checked against a traced run.
    Mem {
        /// Benchmark name; `None` checks the whole suite (`--all`).
        workload: Option<String>,
        /// Report path (default `results/BENCH_mem.json`).
        out: Option<String>,
    },
    /// `wcsim --help`.
    Help,
}

/// Argument-parsing failures (message is user-facing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for ParseError {}

const USAGE: &str = "\
wcsim — Warped-Compression simulator driver

USAGE:
  wcsim list                         list the benchmark suite
  wcsim designs                      list design points for --design
  wcsim run <workload|all> [--design D]
  wcsim compare <workload>           baseline vs warped-compression
  wcsim analyze <workload|--all> [--deny-warnings] [--json FILE]
                                     static lint + liveness report
  wcsim predict <workload|--all> [--out FILE]
                                     static compressibility prediction
                                     joined against a traced run; fails
                                     on any unsound site (default out:
                                     results/BENCH_predict.json)
  wcsim faults <workload|--all> [--injections N] [--seed S]
               [--protection none|parity|secded] [--budget CYCLES]
               [--resume DIR] [--out FILE]
                                     seeded fault-injection campaign
                                     (defaults: 8 injections, seed 42,
                                     secded; fails if ECC lets any fault
                                     through silently)
  wcsim fuzz [--cases N] [--seed S] [--budget CYCLES]
             [--resume DIR] [--out FILE] [--repro DIR]
                                     differential kernel fuzzing: seeded
                                     testgen kernels through dynamic vs
                                     scheduled replay, absint, perfbound
                                     and the panic/watchdog harness; any
                                     finding is shrunk to a reproducer
                                     under --repro and fails the run
                                     (defaults: 300 cases, seed 42, out:
                                     results/BENCH_fuzz.json; also runs
                                     the mutation smoke test)
  wcsim perf <workload|--all> [--design D] [--out FILE]
                                     static cycle/bank/energy lower
                                     bounds validated against the
                                     simulator; fails if any measurement
                                     beats a static bound (default out:
                                     results/BENCH_perf.json)
  wcsim schedule <workload|--all> [--design D] [--out FILE]
                                     compile a static issue plan, replay
                                     it with the scoreboard bypassed and
                                     check bit identity, the perfbound
                                     floor and the slack bound against
                                     the dynamic core; fails on any
                                     unsound kernel (default out:
                                     results/BENCH_schedule.json)
  wcsim mem <workload|--all> [--out FILE]
                                     static memory analysis — abstract
                                     per-warp address sets, the
                                     cross-warp race verdict and the
                                     coalescing transaction floors —
                                     joined against a traced run; fails
                                     if any address escapes its set, a
                                     conflict evades the race verdict or
                                     a floor is undercut (default out:
                                     results/BENCH_mem.json)
  wcsim kernel <file.s> --blocks N --tpb N --mem WORDS
               [--param X]... [--design D]
";

/// Known design-point names for `--design`.
fn design_by_name(name: &str) -> Option<DesignPoint> {
    Some(match name {
        "baseline" => DesignPoint::Baseline,
        "warped" | "warped-compression" => DesignPoint::WarpedCompression,
        "only40" => DesignPoint::Only(FixedChoice::Delta0),
        "only41" => DesignPoint::Only(FixedChoice::Delta1),
        "only42" => DesignPoint::Only(FixedChoice::Delta2),
        "dmr" | "decompress-merge-recompress" => DesignPoint::DecompressMergeRecompress,
        "lrr" | "warped-compression-lrr" => DesignPoint::WarpedCompressionLrr,
        "baseline-lrr" => DesignPoint::BaselineLrr,
        "drowsy" | "warped-compression-drowsy" => DesignPoint::WarpedCompressionDrowsy,
        _ => return None,
    })
}

const DESIGN_NAMES: &[&str] = &[
    "baseline",
    "warped",
    "only40",
    "only41",
    "only42",
    "dmr",
    "lrr",
    "baseline-lrr",
    "drowsy",
];

/// Extracts the value of a `--flag PATH` pair, erroring when the flag
/// is present without a value.
fn take_path_flag(rest: &[&str], name: &str) -> Result<Option<String>, ParseError> {
    rest.iter()
        .position(|&a| a == name)
        .map(|i| {
            rest.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map(|v| (*v).to_string())
                .ok_or_else(|| ParseError(format!("{name} needs a file path")))
        })
        .transpose()
}

/// Parses the `<workload|--all>` positional shared by the whole-suite
/// subcommands (`analyze`, `predict`, `faults`, `perf`): the first
/// non-flag argument that is not a flag's value, or `None` under
/// `--all`. `flag_values` lists the arguments already consumed as flag
/// values so they are not mistaken for the positional.
fn workload_or_all(
    cmd: &str,
    rest: &[&str],
    flag_values: &[&str],
) -> Result<Option<String>, ParseError> {
    let workload = rest
        .iter()
        .find(|a| !a.starts_with("--") && !flag_values.contains(*a))
        .map(|s| (*s).to_string());
    if workload.is_none() && !rest.contains(&"--all") {
        return Err(ParseError(format!("{cmd} needs a workload name or --all")));
    }
    Ok(workload)
}

/// Resolves a parsed `<workload|--all>` into concrete workloads.
fn resolve_workloads(workload: Option<&str>) -> Result<Vec<gpu_workloads::Workload>, ParseError> {
    match workload {
        None => Ok(gpu_workloads::suite()),
        Some(name) => Ok(vec![gpu_workloads::by_name(name)
            .ok_or_else(|| ParseError(format!("unknown workload `{name}`")))?]),
    }
}

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// [`ParseError`] with a user-facing message on any malformed input.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, ParseError> {
    let args: Vec<String> = args.into_iter().collect();
    let mut it = args.iter().map(String::as_str);
    let cmd = match it.next() {
        None | Some("--help") | Some("-h") | Some("help") => return Ok(Command::Help),
        Some(c) => c,
    };
    let rest: Vec<&str> = it.collect();

    let take_design = |rest: &[&str]| -> Result<DesignPoint, ParseError> {
        match rest.iter().position(|&a| a == "--design") {
            None => Ok(DesignPoint::WarpedCompression),
            Some(i) => {
                let name = rest
                    .get(i + 1)
                    .ok_or_else(|| ParseError("--design needs a value".into()))?;
                design_by_name(name).ok_or_else(|| {
                    ParseError(format!(
                        "unknown design `{name}`; try: {}",
                        DESIGN_NAMES.join(", ")
                    ))
                })
            }
        }
    };

    match cmd {
        "list" => Ok(Command::List),
        "designs" => Ok(Command::Designs),
        "run" => {
            let workload = rest
                .iter()
                .find(|a| {
                    !a.starts_with("--")
                        && Some(**a)
                            != rest
                                .iter()
                                .position(|&x| x == "--design")
                                .and_then(|i| rest.get(i + 1))
                                .copied()
                })
                .ok_or_else(|| ParseError("run needs a workload name (or `all`)".into()))?
                .to_string();
            Ok(Command::Run {
                workload,
                design: take_design(&rest)?,
            })
        }
        "analyze" => {
            let deny_warnings = rest.contains(&"--deny-warnings");
            let json = take_path_flag(&rest, "--json")?;
            let flag_values: Vec<&str> = json.iter().map(String::as_str).collect();
            let workload = workload_or_all("analyze", &rest, &flag_values)?;
            Ok(Command::Analyze {
                workload,
                deny_warnings,
                json,
            })
        }
        "predict" => {
            let out = take_path_flag(&rest, "--out")?;
            let flag_values: Vec<&str> = out.iter().map(String::as_str).collect();
            let workload = workload_or_all("predict", &rest, &flag_values)?;
            Ok(Command::Predict { workload, out })
        }
        "mem" => {
            let out = take_path_flag(&rest, "--out")?;
            let flag_values: Vec<&str> = out.iter().map(String::as_str).collect();
            let workload = workload_or_all("mem", &rest, &flag_values)?;
            Ok(Command::Mem { workload, out })
        }
        "perf" => {
            let out = take_path_flag(&rest, "--out")?;
            let design_value = rest
                .iter()
                .position(|&a| a == "--design")
                .and_then(|i| rest.get(i + 1))
                .copied();
            let flag_values: Vec<&str> =
                out.iter().map(String::as_str).chain(design_value).collect();
            let workload = workload_or_all("perf", &rest, &flag_values)?;
            Ok(Command::Perf {
                workload,
                design: take_design(&rest)?,
                out,
            })
        }
        "schedule" => {
            let out = take_path_flag(&rest, "--out")?;
            let design_value = rest
                .iter()
                .position(|&a| a == "--design")
                .and_then(|i| rest.get(i + 1))
                .copied();
            let flag_values: Vec<&str> =
                out.iter().map(String::as_str).chain(design_value).collect();
            let workload = workload_or_all("schedule", &rest, &flag_values)?;
            Ok(Command::Schedule {
                workload,
                design: take_design(&rest)?,
                out,
            })
        }
        "compare" => {
            let workload = rest
                .first()
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| ParseError("compare needs a workload name".into()))?
                .to_string();
            Ok(Command::Compare { workload })
        }
        "faults" => {
            let flag = |name: &str| -> Option<&str> {
                rest.iter()
                    .position(|&a| a == name)
                    .and_then(|i| rest.get(i + 1))
                    .copied()
            };
            let flag_values: Vec<&str> = [
                "--injections",
                "--seed",
                "--protection",
                "--budget",
                "--resume",
                "--out",
            ]
            .iter()
            .filter_map(|f| flag(f))
            .collect();
            let workload = workload_or_all("faults", &rest, &flag_values)?;
            let injections = match flag("--injections") {
                None => 8,
                Some(v) => v
                    .parse()
                    .map_err(|_| ParseError("--injections must be a number".into()))?,
            };
            let seed = match flag("--seed") {
                None => DEFAULT_SEED,
                Some(v) => v
                    .parse()
                    .map_err(|_| ParseError("--seed must be a u64".into()))?,
            };
            let protection = match flag("--protection") {
                None => ProtectionModel::SecDed,
                Some(v) => ProtectionModel::parse(v).ok_or_else(|| {
                    ParseError(format!(
                        "unknown protection `{v}`; try: none, parity, secded"
                    ))
                })?,
            };
            let budget = match flag("--budget") {
                None => None,
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| ParseError("--budget must be a cycle count".into()))?,
                ),
            };
            Ok(Command::Faults {
                workload,
                injections,
                seed,
                protection,
                budget,
                resume: flag("--resume").map(str::to_string),
                out: flag("--out").map(str::to_string),
            })
        }
        "fuzz" => {
            let flag = |name: &str| -> Option<&str> {
                rest.iter()
                    .position(|&a| a == name)
                    .and_then(|i| rest.get(i + 1))
                    .copied()
            };
            let parse_num = |name: &str, v: &str| -> Result<u64, ParseError> {
                v.parse()
                    .map_err(|_| ParseError(format!("{name} must be a number")))
            };
            let cases = match flag("--cases") {
                None => 300,
                Some(v) => parse_num("--cases", v)? as usize,
            };
            let seed = match flag("--seed") {
                None => DEFAULT_SEED,
                Some(v) => parse_num("--seed", v)?,
            };
            let budget = match flag("--budget") {
                None => warped_compression::DEFAULT_CYCLE_BUDGET,
                Some(v) => parse_num("--budget", v)?,
            };
            Ok(Command::Fuzz {
                cases,
                seed,
                budget,
                resume: flag("--resume").map(str::to_string),
                out: flag("--out").map(str::to_string),
                repro: flag("--repro").map(str::to_string),
            })
        }
        "kernel" => {
            let path = rest
                .first()
                .filter(|a| !a.starts_with("--"))
                .ok_or_else(|| ParseError("kernel needs a .s file path".into()))?
                .to_string();
            let flag = |name: &str| -> Option<&str> {
                rest.iter()
                    .position(|&a| a == name)
                    .and_then(|i| rest.get(i + 1))
                    .copied()
            };
            let parse_usize = |name: &str| -> Result<usize, ParseError> {
                flag(name)
                    .ok_or_else(|| ParseError(format!("kernel needs {name} N")))?
                    .parse()
                    .map_err(|_| ParseError(format!("{name} must be a number")))
            };
            let mut params = Vec::new();
            for (i, a) in rest.iter().enumerate() {
                if *a == "--param" {
                    let v = rest
                        .get(i + 1)
                        .and_then(|v| v.parse::<u32>().ok())
                        .ok_or_else(|| ParseError("--param needs a u32 value".into()))?;
                    params.push(v);
                }
            }
            Ok(Command::Kernel {
                path,
                blocks: parse_usize("--blocks")?,
                threads_per_block: parse_usize("--tpb")?,
                mem_words: parse_usize("--mem")?,
                params,
                design: take_design(&rest)?,
            })
        }
        other => Err(ParseError(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns a boxed error for simulation or I/O failures.
pub fn run_cli(cmd: &Command, out: &mut dyn fmt::Write) -> Result<(), Box<dyn Error>> {
    match cmd {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
        }
        Command::List => {
            for w in gpu_workloads::suite() {
                writeln!(out, "{:<12} {}", w.name(), w.description())?;
            }
        }
        Command::Designs => {
            for name in DESIGN_NAMES {
                let point = design_by_name(name).expect("listed designs parse");
                writeln!(out, "{:<14} -> {}", name, point.label())?;
            }
        }
        Command::Run { workload, design } => {
            let workloads = if workload == "all" {
                gpu_workloads::suite()
            } else {
                vec![gpu_workloads::by_name(workload)
                    .ok_or_else(|| ParseError(format!("unknown workload `{workload}`")))?]
            };
            for w in &workloads {
                let run = run_workload(&design.config(), w)?;
                writeln!(out, "{}", format_run(&run, *design))?;
            }
        }
        Command::Analyze {
            workload,
            deny_warnings,
            json,
        } => {
            let workloads = resolve_workloads(workload.as_deref())?;
            let mut errors = 0usize;
            let mut warnings = 0usize;
            let mut rows = Vec::new();
            let mut entries = Vec::new();
            for w in &workloads {
                let launch = w.launch();
                let image = std::sync::Arc::new(w.fresh_memory().words().to_vec());
                let info = simt_analysis::LaunchInfo {
                    params: launch.params().to_vec(),
                    blocks: u32::try_from(launch.blocks()).ok(),
                    threads_per_block: u32::try_from(launch.threads_per_block()).ok(),
                    mem_words: u64::try_from(image.len()).ok(),
                    initial_mem: Some(image),
                };
                let analysis = simt_analysis::analyze_with_launch(w.kernel(), Some(&info));
                for d in &analysis.report.diagnostics {
                    writeln!(out, "{}: {d}", w.name())?;
                }
                errors += analysis.report.error_count();
                warnings += analysis.report.warning_count();
                let (max_live, avg_live, dead) = match &analysis.liveness {
                    Some(l) => (
                        l.max_live.to_string(),
                        format!("{:.2}", l.avg_live),
                        format!("{:.1}%", l.dead_fraction() * 100.0),
                    ),
                    None => ("-".into(), "-".into(), "-".into()),
                };
                rows.push(vec![
                    w.name().to_string(),
                    w.kernel().len().to_string(),
                    w.kernel().num_regs().to_string(),
                    max_live,
                    avg_live,
                    dead,
                    analysis.report.error_count().to_string(),
                    analysis.report.warning_count().to_string(),
                ]);
                entries.push((w.name().to_string(), analysis));
            }
            let table = wc_bench::FigureTable::new(
                "analyze",
                "Static kernel verification and liveness",
                [
                    "kernel", "instrs", "regs", "max live", "avg live", "dead", "errors",
                    "warnings",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
                rows,
            );
            writeln!(out, "{}", table.to_markdown())?;
            if let Some(path) = json {
                write_report(path, &wc_bench::analysis_json::analysis_json(&entries))?;
                writeln!(out, "report written to {path}")?;
            }
            if errors > 0 {
                return Err(format!("analyze found {errors} error(s)").into());
            }
            if *deny_warnings && warnings > 0 {
                return Err(
                    format!("analyze found {warnings} warning(s) with --deny-warnings").into(),
                );
            }
        }
        Command::Predict {
            workload,
            out: out_file,
        } => {
            let workloads = resolve_workloads(workload.as_deref())?;
            let reports = warped_compression::predict_suite(&workloads)?;
            let mut rows = Vec::new();
            let mut unsound_total = 0usize;
            for r in &reports {
                unsound_total += r.unsound_count();
                rows.push(vec![
                    r.kernel.clone(),
                    r.sites.len().to_string(),
                    r.exact_count().to_string(),
                    r.conservative_count().to_string(),
                    r.unsound_count().to_string(),
                    format!("{:.1}%", r.exact_fraction() * 100.0),
                    format!("{:.1}%", r.prediction.informative_fraction() * 100.0),
                    format!("{:.2}", r.comparison.static_gateable_banks_per_write),
                    format!("{:.2}", r.comparison.measured_gated_banks_per_write),
                ]);
            }
            let table = wc_bench::FigureTable::new(
                "predict",
                "Static compressibility prediction vs. traced run",
                [
                    "kernel",
                    "sites",
                    "exact",
                    "conserv",
                    "unsound",
                    "exact%",
                    "informative%",
                    "static gate",
                    "measured gate",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
                rows,
            );
            writeln!(out, "{}", table.to_markdown())?;
            let out_path = out_file
                .clone()
                .unwrap_or_else(|| "results/BENCH_predict.json".to_string());
            write_report(&out_path, &wc_bench::analysis_json::predict_json(&reports))?;
            writeln!(out, "report written to {out_path}")?;
            // The CI gate: the abstract domain must never under-predict
            // a stored footprint.
            if unsound_total > 0 {
                return Err(format!(
                    "{unsound_total} write site(s) stored a larger form than statically predicted"
                )
                .into());
            }
            if let Some(r) = reports.iter().find(|r| !r.is_sound()) {
                return Err(
                    format!("kernel `{}` broke the static gateable-bank bound", r.kernel).into(),
                );
            }
        }
        Command::Compare { workload } => {
            let w = gpu_workloads::by_name(workload)
                .ok_or_else(|| ParseError(format!("unknown workload `{workload}`")))?;
            let base = run_workload(&DesignPoint::Baseline.config(), &w)?;
            let wc = run_workload(&DesignPoint::WarpedCompression.config(), &w)?;
            writeln!(out, "{}", format_comparison(&base, &wc))?;
        }
        Command::Faults {
            workload,
            injections,
            seed,
            protection,
            budget,
            resume,
            out: out_file,
        } => {
            let workloads = resolve_workloads(workload.as_deref())?;
            let policy = RunPolicy {
                cycle_budget: *budget,
                ..RunPolicy::default()
            };
            let store = resume.as_ref().map(CheckpointStore::new);
            let design_label = DesignPoint::WarpedCompression.label();

            // Split into checkpointed kernels (fragment reused verbatim,
            // keeping resumed reports byte-identical) and pending ones.
            let mut resumed: Vec<(String, String)> = Vec::new();
            let mut pending: Vec<gpu_workloads::Workload> = Vec::new();
            for w in &workloads {
                match store.as_ref().and_then(|s| s.load(&design_label, w.name())) {
                    Some(frag) => resumed.push((w.name().to_string(), frag)),
                    None => pending.push(w.clone()),
                }
            }

            // Fresh runs: the seeded campaign, panic-isolated per kernel.
            let mut fresh: Vec<(String, String)> = Vec::new();
            if !pending.is_empty() {
                let campaign = Campaign::new(pending).with_seed(*seed);
                for record in campaign.fault_reports(*protection, *injections, &policy) {
                    let frag = wc_bench::fault_json::fault_record_json(&record);
                    if let Some(s) = &store {
                        s.save(&design_label, &record.name, &frag)?;
                    }
                    fresh.push((record.name, frag));
                }
            }

            // Assemble in suite order and summarise.
            let mut fragments = Vec::new();
            let mut rows = Vec::new();
            let mut statuses = Vec::new();
            let mut silent_total = 0u64;
            for w in &workloads {
                let frag = resumed
                    .iter()
                    .chain(fresh.iter())
                    .find(|(n, _)| n == w.name())
                    .map(|(_, f)| f.clone())
                    .expect("every kernel is either resumed or freshly run");
                let silent = frag_u64_field(&frag, "silent_corruption").unwrap_or(0);
                silent_total += silent;
                let cell = |key: &str| {
                    frag_u64_field(&frag, key).map_or_else(|| "-".to_string(), |v| v.to_string())
                };
                rows.push(vec![
                    w.name().to_string(),
                    cell("masked"),
                    cell("corrected"),
                    cell("detected"),
                    cell("silent_corruption"),
                ]);
                statuses.push(frag_str_field(&frag, "status").unwrap_or_else(|| "unknown".into()));
                fragments.push(frag);
            }
            let doc = wc_bench::fault_json::fault_campaign_json(
                *seed,
                *injections,
                protection.name(),
                &fragments,
            );
            let out_path = out_file
                .clone()
                .unwrap_or_else(|| "results/BENCH_faults.json".to_string());
            write_report(&out_path, &doc)?;

            let status_refs: Vec<&str> = statuses.iter().map(String::as_str).collect();
            let table = wc_bench::FigureTable::new(
                "faults",
                format!(
                    "Fault campaign (seed {seed}, {injections} injections/kernel, {})",
                    protection.name()
                ),
                ["kernel", "masked", "corrected", "detected", "silent"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                rows,
            )
            .with_status_column(&status_refs);
            writeln!(out, "{}", table.to_markdown())?;
            writeln!(out, "report written to {out_path}")?;
            // The CI gate: SEC-DED must never let a fault through silently.
            if *protection == ProtectionModel::SecDed && silent_total > 0 {
                return Err(
                    format!("{silent_total} silent corruption(s) slipped past SEC-DED").into(),
                );
            }
        }
        Command::Fuzz {
            cases,
            seed,
            budget,
            resume,
            out: out_file,
            repro,
        } => {
            let store = resume.as_ref().map(CheckpointStore::new);
            // The checkpoint namespace carries everything that changes a
            // case's outcome, so stale fragments from a different
            // campaign cannot be resumed by accident.
            let label = format!("seed{seed}-budget{budget}");
            let cfg = warped_compression::FuzzConfig {
                seed: *seed,
                cycle_budget: *budget,
                mutation: None,
            };
            let repro_dir = repro.clone().unwrap_or_else(|| "results/fuzz".to_string());

            let mut fragments = Vec::with_capacity(*cases);
            let mut resumed_count = 0usize;
            for index in 0..*cases {
                let key = format!("case{index:06}");
                if let Some(frag) = store.as_ref().and_then(|s| s.load(&label, &key)) {
                    resumed_count += 1;
                    fragments.push(frag);
                    continue;
                }
                let report = warped_compression::run_case(&cfg, index);
                if let Some(f) = &report.finding {
                    // Reproducers are written once, at first discovery;
                    // a resumed campaign keeps the original files.
                    let path = format!("{repro_dir}/seed{seed}-case{index:06}.s");
                    write_report(&path, &f.reproducer)?;
                    writeln!(out, "case {index}: {} — {}", f.category.label(), f.detail)?;
                    writeln!(out, "  reproducer written to {path}")?;
                }
                let frag = wc_bench::fuzz_json::fuzz_case_json(&report);
                if let Some(s) = &store {
                    s.save(&label, &key, &frag)?;
                }
                fragments.push(frag);
            }

            // Classify uniformly from the fragments so resumed and
            // fresh cases are summarised identically.
            let mut findings: Vec<(usize, String, String)> = Vec::new();
            let mut static_count = 0usize;
            for (index, frag) in fragments.iter().enumerate() {
                if frag_str_field(frag, "status").as_deref() == Some("finding") {
                    findings.push((
                        index,
                        frag_str_field(frag, "category").unwrap_or_else(|| "unknown".into()),
                        frag_str_field(frag, "detail").unwrap_or_default(),
                    ));
                } else if frag.contains("\"static_close\": true") {
                    static_count += 1;
                }
            }

            // Self-validation: every injected bug must be caught,
            // correctly classified and shrunk.
            let smoke = warped_compression::mutation_smoke(*seed, *budget, 64);
            let smoke_passed = smoke.iter().all(warped_compression::SmokeOutcome::passed);

            let doc = wc_bench::fuzz_json::fuzz_campaign_json(
                *seed,
                *budget,
                findings.len(),
                &fragments,
                &smoke,
            );
            let out_path = out_file
                .clone()
                .unwrap_or_else(|| "results/BENCH_fuzz.json".to_string());
            write_report(&out_path, &doc)?;

            let summary = wc_bench::FigureTable::new(
                "fuzz",
                format!("Differential fuzz campaign (seed {seed}, budget {budget})"),
                [
                    "cases",
                    "ok",
                    "findings",
                    "static close",
                    "resumed",
                    "smoke",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
                vec![vec![
                    cases.to_string(),
                    (*cases - findings.len()).to_string(),
                    findings.len().to_string(),
                    static_count.to_string(),
                    resumed_count.to_string(),
                    if smoke_passed {
                        "pass".into()
                    } else {
                        "FAIL".into()
                    },
                ]],
            );
            writeln!(out, "{}", summary.to_markdown())?;
            let smoke_rows: Vec<Vec<String>> = smoke
                .iter()
                .map(|o| {
                    vec![
                        o.mutation.name().to_string(),
                        o.expected.label().to_string(),
                        o.cases_scanned.to_string(),
                        o.caught
                            .as_ref()
                            .and_then(|r| r.finding.as_ref())
                            .map_or_else(|| "-".into(), |f| f.shrunk_instructions.to_string()),
                        if o.passed() {
                            "pass".into()
                        } else {
                            "FAIL".into()
                        },
                    ]
                })
                .collect();
            let smoke_table = wc_bench::FigureTable::new(
                "fuzz-smoke",
                "Mutation smoke test (one injected bug per finding category)",
                ["mutation", "expected", "scanned", "shrunk", "status"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                smoke_rows,
            );
            writeln!(out, "{}", smoke_table.to_markdown())?;
            writeln!(out, "report written to {out_path}")?;
            // The CI gate: zero findings and a fully passing smoke.
            if !findings.is_empty() {
                let (index, category, _) = &findings[0];
                return Err(format!(
                    "{} finding(s); first: case {index} ({category}) — reproducers under {repro_dir}",
                    findings.len()
                )
                .into());
            }
            if !smoke_passed {
                return Err("mutation smoke test failed: an injected bug went undetected".into());
            }
        }
        Command::Perf {
            workload,
            design,
            out: out_file,
        } => {
            let workloads = resolve_workloads(workload.as_deref())?;
            // The suite runner fixes the design point (it parallelises
            // the default CI sweep); other designs go kernel-by-kernel.
            let reports = if *design == DesignPoint::WarpedCompression {
                perf_suite(&workloads)?
            } else {
                workloads
                    .iter()
                    .map(|w| perf_workload(w, *design))
                    .collect::<Result<Vec<_>, _>>()?
            };
            let mut rows = Vec::new();
            let mut statuses = Vec::new();
            for r in &reports {
                rows.push(vec![
                    r.kernel.clone(),
                    r.comparison.static_cycles.to_string(),
                    r.comparison.measured_cycles.to_string(),
                    format!("{:.1}%", r.cycle_tightness() * 100.0),
                    r.comparison.static_bank_accesses.to_string(),
                    r.comparison.measured_bank_accesses.to_string(),
                    format!("{:.0}", r.comparison.static_energy_pj),
                    format!("{:.0}", r.comparison.measured_energy_pj),
                    r.conflict_checks.len().to_string(),
                ]);
                statuses.push(if r.is_sound() { "ok" } else { "UNSOUND" });
            }
            let table = wc_bench::FigureTable::new(
                "perf",
                format!(
                    "Static performance lower bounds vs. measured ({})",
                    design.label()
                ),
                [
                    "kernel",
                    "static cyc",
                    "measured cyc",
                    "tight",
                    "static acc",
                    "measured acc",
                    "static pJ",
                    "measured pJ",
                    "conflicts",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
                rows,
            )
            .with_status_column(&statuses);
            writeln!(out, "{}", table.to_markdown())?;
            let out_path = out_file
                .clone()
                .unwrap_or_else(|| "results/BENCH_perf.json".to_string());
            write_report(
                &out_path,
                &wc_bench::perf_json::perf_json(&design.label(), &reports),
            )?;
            writeln!(out, "report written to {out_path}")?;
            // The CI gate: no measurement may beat a static lower bound.
            if let Some(r) = reports.iter().find(|r| !r.is_sound()) {
                let sites = r.unsound_sites();
                return Err(format!(
                    "kernel `{}` beat a static lower bound ({} unsound conflict site(s))",
                    r.kernel,
                    sites.len()
                )
                .into());
            }
        }
        Command::Schedule {
            workload,
            design,
            out: out_file,
        } => {
            let workloads = resolve_workloads(workload.as_deref())?;
            // The suite runner fixes the design point (it parallelises
            // the default CI sweep); other designs go kernel-by-kernel.
            let reports = if *design == DesignPoint::WarpedCompression {
                schedule_suite(&workloads)?
            } else {
                workloads
                    .iter()
                    .map(|w| schedule_workload(w, *design))
                    .collect::<Result<Vec<_>, _>>()?
            };
            let mut rows = Vec::new();
            let mut statuses = Vec::new();
            for r in &reports {
                rows.push(vec![
                    r.kernel.clone(),
                    if r.mode.is_static() {
                        "static".to_string()
                    } else {
                        "fallback".to_string()
                    },
                    r.static_floor_cycles.to_string(),
                    r.scheduled_cycles.to_string(),
                    r.dynamic_cycles.to_string(),
                    r.slack_cycles.to_string(),
                    format!("{:.3}", r.comparison.cycle_ratio()),
                    format!("{:.0}", r.comparison.scheduled_energy_pj),
                    format!("{:.0}", r.comparison.dynamic_energy_pj),
                ]);
                statuses.push(if r.is_sound() { "ok" } else { "UNSOUND" });
            }
            let table = wc_bench::FigureTable::new(
                "schedule",
                format!(
                    "Static issue schedule vs. dynamic core ({})",
                    design.label()
                ),
                [
                    "kernel",
                    "mode",
                    "floor cyc",
                    "sched cyc",
                    "dyn cyc",
                    "slack",
                    "ratio",
                    "sched pJ",
                    "dyn pJ",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
                rows,
            )
            .with_status_column(&statuses);
            writeln!(out, "{}", table.to_markdown())?;
            let out_path = out_file
                .clone()
                .unwrap_or_else(|| "results/BENCH_schedule.json".to_string());
            write_report(
                &out_path,
                &wc_bench::schedule_json::schedule_json(&design.label(), &reports),
            )?;
            writeln!(out, "report written to {out_path}")?;
            // The CI gate: every kernel must replay bit-identically
            // within [floor, dynamic + slack], or fall back explicitly.
            if let Some(r) = reports.iter().find(|r| !r.is_sound()) {
                return Err(format!(
                    "kernel `{}` is unsound under the static schedule: {}",
                    r.kernel,
                    r.violations().join("; ")
                )
                .into());
            }
        }
        Command::Mem {
            workload,
            out: out_file,
        } => {
            let workloads = resolve_workloads(workload.as_deref())?;
            let reports = warped_compression::mem_suite(&workloads)?;
            let mut rows = Vec::new();
            let mut statuses = Vec::new();
            for r in &reports {
                rows.push(vec![
                    r.kernel.clone(),
                    r.sites.len().to_string(),
                    match r.race_free {
                        Some(true) => "isolated".to_string(),
                        Some(false) => format!("{} race(s)", r.static_races),
                        None => "unknown".to_string(),
                    },
                    r.traced_conflicts.len().to_string(),
                    r.escape_count().to_string(),
                    if r.schedule.static_mode {
                        "static".to_string()
                    } else {
                        r.schedule.bail.clone().unwrap_or_default()
                    },
                    r.schedule.forwardable_loads.to_string(),
                    r.refined_loads.to_string(),
                ]);
                statuses.push(if r.is_sound() { "ok" } else { "UNSOUND" });
            }
            let table = wc_bench::FigureTable::new(
                "mem",
                "Static memory analysis vs. traced accesses",
                [
                    "kernel",
                    "sites",
                    "race verdict",
                    "traced conf",
                    "escapes",
                    "schedule",
                    "fwd loads",
                    "refined",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
                rows,
            )
            .with_status_column(&statuses);
            writeln!(out, "{}", table.to_markdown())?;
            let out_path = out_file
                .clone()
                .unwrap_or_else(|| "results/BENCH_mem.json".to_string());
            write_report(&out_path, &wc_bench::mem_json::mem_json(&reports))?;
            writeln!(out, "report written to {out_path}")?;
            // The CI gate: the abstract address sets, the race verdict
            // and the transaction floors must all survive the trace.
            if let Some(r) = reports.iter().find(|r| !r.is_sound()) {
                return Err(format!(
                    "kernel `{}` broke the static memory analysis: {}",
                    r.kernel,
                    r.violations().join("; ")
                )
                .into());
            }
        }
        Command::Kernel {
            path,
            blocks,
            threads_per_block,
            mem_words,
            params,
            design,
        } => {
            let source = fs::read_to_string(path)?;
            let kernel = simt_isa::assemble(&source)?;
            let launch =
                LaunchConfig::try_new(*blocks, *threads_per_block)?.with_params(params.clone());
            let mut memory = GlobalMemory::zeroed(*mem_words);
            let result = GpuSim::new(design.config()).run(&kernel, &launch, &mut memory)?;
            writeln!(out, "kernel `{}` under {}:", kernel.name(), design.label())?;
            writeln!(out, "  cycles:            {}", result.stats.cycles)?;
            writeln!(out, "  warp instructions: {}", result.stats.instructions)?;
            writeln!(
                out,
                "  compression ratio: {:.3}",
                result.stats.compression_ratio()
            )?;
            writeln!(
                out,
                "  bank accesses:     {}",
                result.stats.regfile.total_accesses()
            )?;
            let shown = memory.words().iter().take(16).collect::<Vec<_>>();
            writeln!(out, "  mem[0..16]:        {shown:?}")?;
        }
    }
    Ok(())
}

/// Writes a rendered report, creating the parent directory if needed.
fn write_report(path: &str, doc: &str) -> Result<(), Box<dyn Error>> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, doc)?;
    Ok(())
}

/// Extracts `"key": <u64>` from a rendered fault fragment. The fragments
/// come from `wc_bench::fault_json`, whose key spelling and `": "`
/// separator are fixed, so a string search is exact — no JSON parser
/// dependency needed.
fn frag_u64_field(frag: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = frag.find(&pat)? + pat.len();
    let digits: String = frag[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts `"key": "<string>"` from a rendered fault fragment.
fn frag_str_field(frag: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = frag.find(&pat)? + pat.len();
    frag[start..].split('"').next().map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, ParseError> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["list"]).unwrap(), Command::List);
        assert_eq!(parse(&["designs"]).unwrap(), Command::Designs);
    }

    #[test]
    fn parses_run_with_design() {
        assert_eq!(
            parse(&["run", "lib"]).unwrap(),
            Command::Run {
                workload: "lib".into(),
                design: DesignPoint::WarpedCompression
            }
        );
        assert_eq!(
            parse(&["run", "lib", "--design", "baseline"]).unwrap(),
            Command::Run {
                workload: "lib".into(),
                design: DesignPoint::Baseline
            }
        );
        assert_eq!(
            parse(&["run", "aes", "--design", "drowsy"]).unwrap(),
            Command::Run {
                workload: "aes".into(),
                design: DesignPoint::WarpedCompressionDrowsy
            }
        );
    }

    #[test]
    fn rejects_unknown_design_and_command() {
        assert!(parse(&["run", "lib", "--design", "warp9"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["run"]).is_err());
    }

    #[test]
    fn parses_kernel_command() {
        let cmd = parse(&[
            "kernel", "k.s", "--blocks", "2", "--tpb", "64", "--mem", "128", "--param", "7",
            "--param", "9",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Kernel {
                path: "k.s".into(),
                blocks: 2,
                threads_per_block: 64,
                mem_words: 128,
                params: vec![7, 9],
                design: DesignPoint::WarpedCompression,
            }
        );
    }

    #[test]
    fn kernel_requires_geometry() {
        assert!(parse(&["kernel", "k.s", "--blocks", "2"]).is_err());
    }

    #[test]
    fn parses_analyze_variants() {
        assert_eq!(
            parse(&["analyze", "bfs"]).unwrap(),
            Command::Analyze {
                workload: Some("bfs".into()),
                deny_warnings: false,
                json: None,
            }
        );
        assert_eq!(
            parse(&["analyze", "--all", "--deny-warnings"]).unwrap(),
            Command::Analyze {
                workload: None,
                deny_warnings: true,
                json: None,
            }
        );
        // The --json value must not be mistaken for a workload name.
        assert_eq!(
            parse(&["analyze", "--all", "--json", "report.json"]).unwrap(),
            Command::Analyze {
                workload: None,
                deny_warnings: false,
                json: Some("report.json".into()),
            }
        );
        assert!(parse(&["analyze"]).is_err());
        assert!(parse(&["analyze", "--all", "--json"]).is_err());
    }

    #[test]
    fn parses_predict_variants() {
        assert_eq!(
            parse(&["predict", "lib"]).unwrap(),
            Command::Predict {
                workload: Some("lib".into()),
                out: None,
            }
        );
        assert_eq!(
            parse(&["predict", "--all", "--out", "p.json"]).unwrap(),
            Command::Predict {
                workload: None,
                out: Some("p.json".into()),
            }
        );
        assert!(parse(&["predict"]).is_err());
        assert!(parse(&["predict", "--all", "--out"]).is_err());
    }

    #[test]
    fn predict_command_reports_and_writes_sound_json() {
        let dir = std::env::temp_dir().join(format!("wcsim-predict-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.json");
        let mut out = String::new();
        run_cli(
            &Command::Predict {
                workload: Some("lib".into()),
                out: Some(path.to_string_lossy().into_owned()),
            },
            &mut out,
        )
        .expect("lib prediction must be sound");
        assert!(out.contains("| lib |"));
        assert!(out.contains("report written to"));
        let doc = fs::read_to_string(&path).unwrap();
        assert!(doc.contains("\"unsound_miss\": 0"));
        assert!(doc.contains("\"sound\": true"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_json_report_is_written_and_deterministic() {
        let dir = std::env::temp_dir().join(format!("wcsim-analyze-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let (p1, p2) = (dir.join("a.json"), dir.join("b.json"));
        let cmd = |p: &std::path::Path| Command::Analyze {
            workload: Some("bfs".into()),
            deny_warnings: false,
            json: Some(p.to_string_lossy().into_owned()),
        };
        let mut out = String::new();
        run_cli(&cmd(&p1), &mut out).unwrap();
        run_cli(&cmd(&p2), &mut out).unwrap();
        let (a, b) = (fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
        assert_eq!(a, b, "analysis JSON must be byte-identical across runs");
        let doc = String::from_utf8(a).unwrap();
        assert!(doc.contains("\"kernel\": \"bfs\""));
        assert!(doc.contains("\"liveness\": {"));
        assert!(doc.contains("\"prediction\": {"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_all_reports_every_kernel_clean() {
        let mut out = String::new();
        run_cli(
            &Command::Analyze {
                workload: None,
                deny_warnings: true,
                json: None,
            },
            &mut out,
        )
        .expect("suite kernels must be lint clean");
        for name in gpu_workloads::names() {
            assert!(out.contains(name), "missing {name}");
        }
        assert!(out.contains("max live"));
    }

    #[test]
    fn analyze_single_workload_prints_summary() {
        let mut out = String::new();
        run_cli(
            &Command::Analyze {
                workload: Some("bfs".into()),
                deny_warnings: false,
                json: None,
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("bfs"));
        assert!(out.contains("dead"));
        assert!(!out.contains("backprop"));
    }

    #[test]
    fn analyze_unknown_workload_is_an_error() {
        let mut out = String::new();
        let err = run_cli(
            &Command::Analyze {
                workload: Some("nope".into()),
                deny_warnings: false,
                json: None,
            },
            &mut out,
        )
        .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn list_command_prints_suite() {
        let mut out = String::new();
        run_cli(&Command::List, &mut out).unwrap();
        for name in gpu_workloads::names() {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn designs_command_prints_all_names() {
        let mut out = String::new();
        run_cli(&Command::Designs, &mut out).unwrap();
        for d in DESIGN_NAMES {
            assert!(out.contains(d));
        }
    }

    #[test]
    fn run_command_reports_stats() {
        let mut out = String::new();
        run_cli(
            &Command::Run {
                workload: "lib".into(),
                design: DesignPoint::WarpedCompression,
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("lib"));
        assert!(out.contains("cycles"));
        assert!(out.contains("compression ratio"));
    }

    #[test]
    fn compare_command_reports_saving() {
        let mut out = String::new();
        run_cli(
            &Command::Compare {
                workload: "lib".into(),
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("saving"));
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let mut out = String::new();
        let err = run_cli(
            &Command::Run {
                workload: "nope".into(),
                design: DesignPoint::Baseline,
            },
            &mut out,
        )
        .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn parses_faults_variants() {
        assert_eq!(
            parse(&["faults", "--all"]).unwrap(),
            Command::Faults {
                workload: None,
                injections: 8,
                seed: 42,
                protection: ProtectionModel::SecDed,
                budget: None,
                resume: None,
                out: None,
            }
        );
        assert_eq!(
            parse(&[
                "faults",
                "bfs",
                "--injections",
                "16",
                "--seed",
                "7",
                "--protection",
                "parity",
                "--budget",
                "50000",
                "--resume",
                "ckpt",
                "--out",
                "r.json",
            ])
            .unwrap(),
            Command::Faults {
                workload: Some("bfs".into()),
                injections: 16,
                seed: 7,
                protection: ProtectionModel::Parity,
                budget: Some(50_000),
                resume: Some("ckpt".into()),
                out: Some("r.json".into()),
            }
        );
        assert!(parse(&["faults"]).is_err());
        assert!(parse(&["faults", "bfs", "--protection", "tmr"]).is_err());
        assert!(parse(&["faults", "bfs", "--seed", "abc"]).is_err());
    }

    fn faults_cmd(seed: u64, out: &std::path::Path, resume: Option<String>) -> Command {
        Command::Faults {
            workload: Some("lib".into()),
            injections: 6,
            seed,
            protection: ProtectionModel::SecDed,
            budget: None,
            resume,
            out: Some(out.to_string_lossy().into_owned()),
        }
    }

    #[test]
    fn faults_report_is_byte_identical_across_runs() {
        let dir = std::env::temp_dir().join(format!("wcsim-faults-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let (p1, p2) = (dir.join("a.json"), dir.join("b.json"));
        let mut o = String::new();
        run_cli(&faults_cmd(42, &p1, None), &mut o).unwrap();
        run_cli(&faults_cmd(42, &p2, None), &mut o).unwrap();
        let (a, b) = (fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
        assert_eq!(a, b, "same seed must produce byte-identical reports");
        assert!(o.contains("| lib |"));
        assert!(o.contains("| ok |"));

        // A different seed changes the report.
        let p3 = dir.join("c.json");
        run_cli(&faults_cmd(43, &p3, None), &mut o).unwrap();
        assert_ne!(a, fs::read(&p3).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faults_resume_reuses_fragments_byte_identically() {
        let dir = std::env::temp_dir().join(format!("wcsim-resume-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("ckpt").to_string_lossy().into_owned();
        let (fresh, resumed) = (dir.join("fresh.json"), dir.join("resumed.json"));
        let mut o = String::new();
        // First run populates the checkpoint directory.
        run_cli(&faults_cmd(42, &fresh, Some(ckpt.clone())), &mut o).unwrap();
        // Second run resumes: every kernel is checkpointed, so nothing
        // re-runs and the report must be byte-identical.
        run_cli(&faults_cmd(42, &resumed, Some(ckpt)), &mut o).unwrap();
        assert_eq!(
            fs::read(&fresh).unwrap(),
            fs::read(&resumed).unwrap(),
            "resumed report must be byte-identical to the uninterrupted one"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn frag_field_extractors_find_exact_keys() {
        let frag = "{\"status\": \"ok\", \"outcomes\": {\"masked\": 3, \
                    \"silent_corruption\": 0}, \"stuck\": {\"masked_by_slack\": 9}}";
        assert_eq!(frag_u64_field(frag, "masked"), Some(3));
        assert_eq!(frag_u64_field(frag, "silent_corruption"), Some(0));
        assert_eq!(frag_u64_field(frag, "missing"), None);
        assert_eq!(frag_str_field(frag, "status").as_deref(), Some("ok"));
    }

    #[test]
    fn parses_fuzz_variants() {
        assert_eq!(
            parse(&["fuzz"]).unwrap(),
            Command::Fuzz {
                cases: 300,
                seed: 42,
                budget: warped_compression::DEFAULT_CYCLE_BUDGET,
                resume: None,
                out: None,
                repro: None,
            }
        );
        assert_eq!(
            parse(&[
                "fuzz", "--cases", "50", "--seed", "7", "--budget", "9000", "--resume", "ckpt",
                "--out", "f.json", "--repro", "rdir",
            ])
            .unwrap(),
            Command::Fuzz {
                cases: 50,
                seed: 7,
                budget: 9000,
                resume: Some("ckpt".into()),
                out: Some("f.json".into()),
                repro: Some("rdir".into()),
            }
        );
        assert!(parse(&["fuzz", "--cases", "abc"]).is_err());
        assert!(parse(&["fuzz", "--seed", "-1"]).is_err());
    }

    fn fuzz_cmd(seed: u64, out: &std::path::Path, resume: Option<String>) -> Command {
        Command::Fuzz {
            cases: 24,
            seed,
            budget: warped_compression::DEFAULT_CYCLE_BUDGET,
            resume,
            out: Some(out.to_string_lossy().into_owned()),
            repro: Some(
                out.parent()
                    .unwrap()
                    .join("repro")
                    .to_string_lossy()
                    .into_owned(),
            ),
        }
    }

    #[test]
    fn fuzz_campaign_is_clean_and_byte_identical() {
        let dir = std::env::temp_dir().join(format!("wcsim-fuzz-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let (p1, p2) = (dir.join("a.json"), dir.join("b.json"));
        let mut o = String::new();
        run_cli(&fuzz_cmd(42, &p1, None), &mut o).expect("campaign must be finding-free");
        run_cli(&fuzz_cmd(42, &p2, None), &mut o).unwrap();
        let (a, b) = (fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
        assert_eq!(a, b, "same seed must produce byte-identical reports");
        assert!(o.contains("| pass |"));
        let doc = String::from_utf8(a).unwrap();
        assert!(doc.contains("\"findings\": 0"));
        assert!(doc.contains("\"smoke_passed\": true"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fuzz_resume_reuses_fragments_byte_identically() {
        let dir = std::env::temp_dir().join(format!("wcsim-fuzz-resume-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("ckpt").to_string_lossy().into_owned();
        let (fresh, resumed) = (dir.join("fresh.json"), dir.join("resumed.json"));
        let mut o = String::new();
        // First run populates the checkpoint directory.
        run_cli(&fuzz_cmd(42, &fresh, Some(ckpt.clone())), &mut o).unwrap();
        // Drop some fragments to simulate an interrupt mid-campaign;
        // the survivors must be reused verbatim.
        let frag_dir = dir.join("ckpt").join("seed42-budget200000");
        for index in [3usize, 11, 19] {
            fs::remove_file(frag_dir.join(format!("case{index:06}.json"))).unwrap();
        }
        run_cli(&fuzz_cmd(42, &resumed, Some(ckpt)), &mut o).unwrap();
        assert_eq!(
            fs::read(&fresh).unwrap(),
            fs::read(&resumed).unwrap(),
            "resumed report must be byte-identical to the uninterrupted one"
        );
        assert!(o.contains("| 21 |"), "21 of 24 cases resume: {o}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_perf_variants() {
        assert_eq!(
            parse(&["perf", "lib"]).unwrap(),
            Command::Perf {
                workload: Some("lib".into()),
                design: DesignPoint::WarpedCompression,
                out: None,
            }
        );
        assert_eq!(
            parse(&["perf", "--all", "--design", "baseline", "--out", "p.json"]).unwrap(),
            Command::Perf {
                workload: None,
                design: DesignPoint::Baseline,
                out: Some("p.json".into()),
            }
        );
        assert!(parse(&["perf"]).is_err());
        assert!(parse(&["perf", "--all", "--out"]).is_err());
        assert!(parse(&["perf", "lib", "--design", "warp9"]).is_err());
    }

    #[test]
    fn perf_command_reports_and_writes_sound_json() {
        let dir = std::env::temp_dir().join(format!("wcsim-perf-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let (p1, p2) = (dir.join("a.json"), dir.join("b.json"));
        let cmd = |p: &std::path::Path| Command::Perf {
            workload: Some("lib".into()),
            design: DesignPoint::WarpedCompression,
            out: Some(p.to_string_lossy().into_owned()),
        };
        let mut out = String::new();
        run_cli(&cmd(&p1), &mut out).expect("lib bounds must be sound");
        run_cli(&cmd(&p2), &mut out).unwrap();
        let (a, b) = (fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
        assert_eq!(a, b, "perf JSON must be byte-identical across runs");
        assert!(out.contains("| lib |"));
        assert!(out.contains("| ok |"));
        assert!(out.contains("report written to"));
        let doc = String::from_utf8(a).unwrap();
        assert!(doc.contains("\"design\": \"warped-compression\""));
        assert!(doc.contains("\"sound\": true"));
        assert!(doc.contains("\"static_cycles\""));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn perf_unknown_workload_is_an_error() {
        let mut out = String::new();
        let err = run_cli(
            &Command::Perf {
                workload: Some("nope".into()),
                design: DesignPoint::WarpedCompression,
                out: None,
            },
            &mut out,
        )
        .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn parses_schedule_variants() {
        assert_eq!(
            parse(&["schedule", "lib"]).unwrap(),
            Command::Schedule {
                workload: Some("lib".into()),
                design: DesignPoint::WarpedCompression,
                out: None,
            }
        );
        assert_eq!(
            parse(&["schedule", "--all", "--design", "baseline", "--out", "s.json"]).unwrap(),
            Command::Schedule {
                workload: None,
                design: DesignPoint::Baseline,
                out: Some("s.json".into()),
            }
        );
        assert!(parse(&["schedule"]).is_err());
        assert!(parse(&["schedule", "--all", "--out"]).is_err());
        assert!(parse(&["schedule", "lib", "--design", "warp9"]).is_err());
    }

    #[test]
    fn schedule_command_reports_and_writes_sound_json() {
        let dir = std::env::temp_dir().join(format!("wcsim-sched-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let (p1, p2) = (dir.join("a.json"), dir.join("b.json"));
        let cmd = |w: &str, p: &std::path::Path| Command::Schedule {
            workload: Some(w.into()),
            design: DesignPoint::WarpedCompression,
            out: Some(p.to_string_lossy().into_owned()),
        };
        let mut out = String::new();
        run_cli(&cmd("lib", &p1), &mut out).expect("lib schedule must be sound");
        run_cli(&cmd("lib", &p2), &mut out).unwrap();
        let (a, b) = (fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
        assert_eq!(a, b, "schedule JSON must be byte-identical across runs");
        assert!(out.contains("| lib |"));
        assert!(out.contains("| static |"));
        assert!(out.contains("| ok |"));
        let doc = String::from_utf8(a).unwrap();
        assert!(doc.contains("\"mode\": \"static\""));
        assert!(doc.contains("\"sound\": true"));
        assert!(doc.contains("\"registers_match\": true"));
        // A data-dependent kernel falls back, stays sound, and says why.
        run_cli(&cmd("bfs", &p1), &mut out).expect("fallback must be sound");
        let doc = fs::read_to_string(&p1).unwrap();
        assert!(doc.contains("\"mode\": \"dynamic-fallback\""));
        assert!(doc.contains("\"sound\": true"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_mem_variants() {
        assert_eq!(
            parse(&["mem", "lib"]).unwrap(),
            Command::Mem {
                workload: Some("lib".into()),
                out: None,
            }
        );
        assert_eq!(
            parse(&["mem", "--all", "--out", "m.json"]).unwrap(),
            Command::Mem {
                workload: None,
                out: Some("m.json".into()),
            }
        );
        assert!(parse(&["mem"]).is_err());
        assert!(parse(&["mem", "--all", "--out"]).is_err());
    }

    #[test]
    fn mem_command_reports_and_writes_sound_json() {
        let dir = std::env::temp_dir().join(format!("wcsim-mem-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let (p1, p2) = (dir.join("a.json"), dir.join("b.json"));
        let cmd = |w: &str, p: &std::path::Path| Command::Mem {
            workload: Some(w.into()),
            out: Some(p.to_string_lossy().into_owned()),
        };
        let mut out = String::new();
        run_cli(&cmd("lib", &p1), &mut out).expect("lib memory analysis must be sound");
        run_cli(&cmd("lib", &p2), &mut out).unwrap();
        let (a, b) = (fs::read(&p1).unwrap(), fs::read(&p2).unwrap());
        assert_eq!(a, b, "mem JSON must be byte-identical across runs");
        assert!(out.contains("| lib |"));
        assert!(out.contains("| ok |"));
        assert!(out.contains("report written to"));
        let doc = String::from_utf8(a).unwrap();
        assert!(doc.contains("\"sound\": true"));
        assert!(doc.contains("\"race_free\": "));
        assert!(doc.contains("\"schedule_mode\": "));
        // A divergent, data-dependent kernel still joins soundly and
        // names its scheduler bail.
        run_cli(&cmd("bfs", &p1), &mut out).expect("bfs memory analysis must be sound");
        let doc = fs::read_to_string(&p1).unwrap();
        assert!(doc.contains("\"sound\": true"));
        assert!(doc.contains("\"schedule_mode\": \"dynamic-fallback\""));
        assert!(doc.contains("\"schedule_bail\": \""));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kernel_command_runs_assembly_from_disk() {
        let dir = std::env::temp_dir().join("wcsim-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fill.s");
        fs::write(
            &path,
            ".kernel fill regs 2\n mov r0, %gtid\n add r1, r0, param[0]\n st [r0+0], r1\n exit\n",
        )
        .unwrap();
        let cmd = Command::Kernel {
            path: path.to_string_lossy().into_owned(),
            blocks: 1,
            threads_per_block: 32,
            mem_words: 32,
            params: vec![5],
            design: DesignPoint::WarpedCompression,
        };
        let mut out = String::new();
        run_cli(&cmd, &mut out).unwrap();
        assert!(out.contains("kernel `fill`"));
        assert!(out.contains("mem[0..16]"));
        assert!(out.contains('5'));
    }
}
