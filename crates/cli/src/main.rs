//! `wcsim` — command-line driver for the Warped-Compression simulator.

use std::process::ExitCode;

fn main() -> ExitCode {
    let cmd = match wc_cli::parse_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut out = String::new();
    match wc_cli::run_cli(&cmd, &mut out) {
        Ok(()) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            print!("{out}");
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
