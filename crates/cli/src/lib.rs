//! Library backing the `wcsim` command-line tool.
//!
//! All command logic lives here (parsing, dispatch, report formatting) so
//! it is unit-testable; `main.rs` is a thin shell around [`run_cli`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cli;
mod report;

pub use cli::{parse_args, run_cli, Command, ParseError};
pub use report::{format_comparison, format_run};
