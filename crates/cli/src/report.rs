//! Human-readable run reports.

use gpu_power::EnergyParams;
use warped_compression::{energy_of, DesignPoint, RunOutput};

/// One benchmark's run summary under one design.
pub fn format_run(run: &RunOutput, design: DesignPoint) -> String {
    let e = energy_of(&run.stats, &EnergyParams::paper_table3());
    format!(
        "{name} [{design}]\n\
         \x20 cycles:            {cycles}\n\
         \x20 warp instructions: {instr} ({nondiv:.1}% non-divergent)\n\
         \x20 dummy MOVs:        {movs}\n\
         \x20 compression ratio: {ratio:.3}\n\
         \x20 bank accesses:     {accesses}\n\
         \x20 energy (nJ):       {energy:.1} (dyn {dynamic:.1}, leak {leak:.1}, comp {comp:.1}, decomp {decomp:.1})",
        name = run.name,
        design = design.label(),
        cycles = run.stats.cycles,
        instr = run.stats.instructions,
        nondiv = run.stats.nondivergent_ratio() * 100.0,
        movs = run.stats.synthetic_movs,
        ratio = run.stats.compression_ratio(),
        accesses = run.stats.regfile.total_accesses(),
        energy = e.total_pj() / 1000.0,
        dynamic = e.dynamic_pj / 1000.0,
        leak = e.leakage_pj / 1000.0,
        comp = e.compression_pj / 1000.0,
        decomp = e.decompression_pj / 1000.0,
    )
}

/// A baseline-vs-warped-compression comparison for one benchmark.
pub fn format_comparison(base: &RunOutput, wc: &RunOutput) -> String {
    let p = EnergyParams::paper_table3();
    let be = energy_of(&base.stats, &p);
    let we = energy_of(&wc.stats, &p);
    format!(
        "{name}: baseline vs warped-compression\n\
         \x20 cycles:         {bc} -> {wc_c} ({dt:+.2}%)\n\
         \x20 bank accesses:  {ba} -> {wa} ({da:+.1}%)\n\
         \x20 energy (nJ):    {bej:.1} -> {wej:.1} (saving {saving:.1}%)\n\
         \x20 compression:    ratio {ratio:.2}, {comp_pct:.1}% of writes compressed",
        name = wc.name,
        bc = base.stats.cycles,
        wc_c = wc.stats.cycles,
        dt = (wc.stats.cycles as f64 / base.stats.cycles as f64 - 1.0) * 100.0,
        ba = base.stats.regfile.total_accesses(),
        wa = wc.stats.regfile.total_accesses(),
        da = (wc.stats.regfile.total_accesses() as f64
            / base.stats.regfile.total_accesses() as f64
            - 1.0)
            * 100.0,
        bej = be.total_pj() / 1000.0,
        wej = we.total_pj() / 1000.0,
        saving = we.savings_vs(&be) * 100.0,
        ratio = wc.stats.compression_ratio(),
        comp_pct = if wc.stats.writes == 0 {
            0.0
        } else {
            wc.stats.writes_compressed as f64 / wc.stats.writes as f64 * 100.0
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_compression::run_workload;

    #[test]
    fn reports_contain_key_lines() {
        let w = gpu_workloads::by_name("lib").unwrap();
        let base = run_workload(&DesignPoint::Baseline.config(), &w).unwrap();
        let wc = run_workload(&DesignPoint::WarpedCompression.config(), &w).unwrap();

        let r = format_run(&wc, DesignPoint::WarpedCompression);
        assert!(r.contains("lib [warped-compression]"));
        assert!(r.contains("compression ratio"));
        assert!(r.contains("energy (nJ)"));

        let c = format_comparison(&base, &wc);
        assert!(c.contains("saving"));
        assert!(c.contains("bank accesses"));
    }
}
