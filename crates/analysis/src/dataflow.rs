//! Dataflow substrate: register bitsets and reaching definitions.
//!
//! Both analyses here are classic iterative dataflow over the
//! instruction-level CFG. Kernels in this ISA are tiny (tens of
//! instructions), so per-pc fixpoints are exact and cheap; there is no
//! need for block-level gen/kill summaries.

use simt_isa::Instruction;

use crate::cfg::Cfg;

/// A set of register indices as a fixed 256-bit bitmask (`Reg` is a
/// `u8`, so every possible register fits).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegSet {
    words: [u64; 4],
}

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet { words: [0; 4] };

    /// Inserts `reg`; returns whether the set changed.
    pub fn insert(&mut self, reg: u8) -> bool {
        let (w, b) = (usize::from(reg) / 64, usize::from(reg) % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `reg`.
    pub fn remove(&mut self, reg: u8) {
        let (w, b) = (usize::from(reg) / 64, usize::from(reg) % 64);
        self.words[w] &= !(1 << b);
    }

    /// Whether `reg` is in the set.
    pub fn contains(&self, reg: u8) -> bool {
        let (w, b) = (usize::from(reg) / 64, usize::from(reg) % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Unions `other` into `self`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the register indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u16..256).filter_map(|r| {
            let r = r as u8;
            self.contains(r).then_some(r)
        })
    }
}

/// A growable bitset keyed by definition-site id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub(crate) fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    pub(crate) fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns whether `self` changed.
    pub(crate) fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self &= !other`.
    pub(crate) fn subtract(&mut self, other: &BitSet) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }
}

/// One definition site: either a real write at `pc`, or the synthetic
/// entry definition every register has (the simulator zero-initialises
/// the register file, so "uninitialised" reads are *defined* — but
/// almost always a kernel bug, which is what the use-before-def lint
/// reports).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefSite {
    /// Pc of the write, or `None` for the synthetic entry definition.
    pub pc: Option<usize>,
    /// The register defined.
    pub reg: u8,
}

/// Reaching definitions: for every pc, which definition sites may reach
/// it along some path from entry.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    sites: Vec<DefSite>,
    ins: Vec<BitSet>,
}

impl ReachingDefs {
    /// Runs the forward may-analysis to fixpoint.
    pub fn compute(instrs: &[Instruction], num_regs: u8, cfg: &Cfg) -> ReachingDefs {
        let n = instrs.len();
        // Site ids: 0..num_regs are the entry pseudo-definitions, then
        // one per defining instruction in program order.
        let mut sites: Vec<DefSite> = (0..num_regs)
            .map(|r| DefSite { pc: None, reg: r })
            .collect();
        let mut site_of_pc: Vec<Option<usize>> = vec![None; n];
        for (pc, instr) in instrs.iter().enumerate() {
            if let Some(dst) = instr.dst() {
                site_of_pc[pc] = Some(sites.len());
                sites.push(DefSite {
                    pc: Some(pc),
                    reg: dst.index() as u8,
                });
            }
        }
        let nsites = sites.len();
        // Kill set per register: every site defining that register.
        let mut kills_of_reg: Vec<BitSet> = vec![BitSet::new(nsites); 256];
        for (id, s) in sites.iter().enumerate() {
            kills_of_reg[usize::from(s.reg)].insert(id);
        }

        let mut ins = vec![BitSet::new(nsites); n];
        if n > 0 {
            for id in 0..usize::from(num_regs) {
                ins[0].insert(id);
            }
        }
        let mut work: Vec<usize> = (0..n).filter(|&pc| cfg.is_reachable(pc)).collect();
        while let Some(pc) = work.pop() {
            let mut out = ins[pc].clone();
            if let Some(site) = site_of_pc[pc] {
                out.subtract(&kills_of_reg[usize::from(sites[site].reg)]);
                out.insert(site);
            }
            for &s in cfg.succs(pc) {
                if ins[s].union_with(&out) {
                    work.push(s);
                }
            }
        }
        ReachingDefs { sites, ins }
    }

    /// Whether the synthetic entry definition of `reg` (i.e. "no real
    /// write yet on some path") reaches `pc`.
    pub fn entry_def_reaches(&self, pc: usize, reg: u8) -> bool {
        // Entry pseudo-defs occupy site ids 0..num_regs in register order.
        self.sites
            .iter()
            .position(|s| s.pc.is_none() && s.reg == reg)
            .is_some_and(|id| self.ins[pc].contains(id))
    }

    /// The definition sites of `reg` that may reach `pc`.
    pub fn defs_reaching(&self, pc: usize, reg: u8) -> Vec<DefSite> {
        self.sites
            .iter()
            .enumerate()
            .filter(|&(id, s)| s.reg == reg && self.ins[pc].contains(id))
            .map(|(_, &s)| s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{AluOp, Operand, Reg};

    #[test]
    fn regset_basics() {
        let mut s = RegSet::EMPTY;
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        s.insert(200);
        assert_eq!(s.len(), 2);
        assert!(s.contains(3) && s.contains(200));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 200]);
        s.remove(3);
        assert!(!s.contains(3));
        let mut t = RegSet::EMPTY;
        assert!(t.union_with(&s));
        assert!(!t.union_with(&s));
        assert!(t.contains(200));
    }

    #[test]
    fn reaching_defs_through_a_diamond() {
        // 0: mov r1, 1
        // 1: bra r0 -> 3 (reconv 4)
        // 2: mov r1, 2        (fall-through redefines r1)
        // 3: mov r2, 0        (taken path leaves r1 alone)
        // 4: exit
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(1),
                src: Operand::Imm(1),
            },
            Instruction::Bra {
                pred: Reg(0),
                target: 3,
                reconv: 4,
            },
            Instruction::Mov {
                dst: Reg(1),
                src: Operand::Imm(2),
            },
            Instruction::Mov {
                dst: Reg(2),
                src: Operand::Imm(0),
            },
            Instruction::Exit,
        ];
        let cfg = Cfg::build(&instrs);
        let rd = ReachingDefs::compute(&instrs, 3, &cfg);
        // At exit both the pc-0 and pc-2 definitions of r1 may reach
        // (note instruction 3 is a *successor* path, pc 2 falls to 3?
        // No: succs(1) = [3, 2], succs(2) = [3], succs(3) = [4]).
        let defs: Vec<Option<usize>> = rd.defs_reaching(4, 1).iter().map(|d| d.pc).collect();
        assert!(defs.contains(&Some(0)) && defs.contains(&Some(2)));
        // r0 is never written: only its entry def reaches its use at 1.
        assert!(rd.entry_def_reaches(1, 0));
        // r1 is written before the branch reads anything of it.
        assert!(!rd.entry_def_reaches(1, 1));
        // r2's entry def still reaches pc 2 (taken path not yet merged).
        assert!(rd.entry_def_reaches(2, 2));
    }

    #[test]
    fn alu_op_defs_tracked() {
        let instrs = vec![
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Operand::Imm(1),
                b: Operand::Imm(2),
            },
            Instruction::Exit,
        ];
        let cfg = Cfg::build(&instrs);
        let rd = ReachingDefs::compute(&instrs, 1, &cfg);
        assert!(!rd.entry_def_reaches(1, 0));
        assert_eq!(
            rd.defs_reaching(1, 0),
            vec![DefSite {
                pc: Some(0),
                reg: 0
            }]
        );
    }
}
