//! Static performance lower bounds: bank-conflict and scoreboard
//! interference analysis.
//!
//! The third leg of the static stack (correctness → compressibility →
//! performance): this module proves a *static* version of the paper's
//! "negligible slowdown" claim by deriving, per kernel and launch,
//! cycle / bank-access / energy-activity numbers the simulator can
//! never beat. Everything here is a **lower bound** on what the
//! cycle-level simulator measures — `wcsim perf` gates on exactly that
//! inequality.
//!
//! Three ingredients:
//!
//! 1. **Guaranteed bank conflicts.** All operand fetches of one warp go
//!    through one register-file cluster (`cluster = slot % 4`), and a
//!    register read claims the bank range `base .. base + footprint` —
//!    which always includes the cluster's base bank, whatever the
//!    footprint (8 banks uncompressed, 1/3/5 compressed). Two same-
//!    cycle fetches of one instruction therefore *always* collide, so
//!    an instruction with `k` distinct register sources is guaranteed
//!    `k·(k−1)/2` operand-fetch retry stalls per execution, under both
//!    the uncompressed and the compression-aware layout
//!    ([`ConflictSite`]).
//!
//! 2. **Scoreboard dependence DAG.** Per basic block (and per traced
//!    warp), a resource-constrained critical path over RAW/WAW/WAR
//!    edges and the issue/collector/compressor ports: one issue per
//!    warp per cycle, `max(1, k)` operand-collection cycles, the
//!    execution latency of the unit, plus compression (+2) and
//!    decompression (+1) passes where the machine guarantees them.
//!
//! 3. **Whole-kernel extension.** A launch-specialised concrete tracer
//!    replays each warp against an exact mirror of the simulator's
//!    SIMT stack: loop trip counts and branch outcomes are resolved
//!    from concrete parameter/thread-index arithmetic, falling back to
//!    [`absint`](crate::absint) per-lane ranges for unknown predicates
//!    and — when even those lose the branch — to the CFG's
//!    minimum-instructions-to-exit serialized-path floor (sound for
//!    every divergent interleaving, because both sides of a divergent
//!    branch only ever *add* instructions).
//!
//! The result is a [`PerfPrediction`]: a cycle lower bound (the max of
//! the issue-width, dependence-chain, and compressor-port bounds),
//! static minimum bank-access counts, and minimum compressor /
//! decompressor activations — the inputs `gpu-power` needs to price a
//! static dynamic-energy floor.

use std::collections::BTreeMap;

use bdi::{BdiCodec, ChoiceSet, CompressionClass, WARP_SIZE};
use serde::{Deserialize, Serialize};
use simt_isa::{Instruction, Kernel, LatencyClass};

use crate::absint::{interpret, AbsintAnalysis, LaunchInfo};
use crate::cfg::Cfg;
use crate::dataflow::ReachingDefs;
use crate::trace::{
    unique_srcs, StepOutcome, TimingState, TraceStep, WarpReplay, UNCOMPRESSED_BANKS,
};

/// The pipeline parameters the bounds are derived from — the subset of
/// the simulator's configuration that is architecturally visible to a
/// static analysis. Mirrors `gpu_sim::GpuConfig`, which this crate
/// cannot depend on (the dependency points the other way); the
/// `warped_compression`/`baseline` constructors carry the same Table 2
/// values, and `warped_compression::perfbound` re-derives the machine
/// from the live `GpuConfig` so the two can never drift in the join.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfMachine {
    /// Warp schedulers (issue ports): at most this many instructions
    /// issue per cycle, and each warp belongs to exactly one scheduler.
    pub num_schedulers: usize,
    /// Integer-ALU result latency in cycles.
    pub alu_latency: u64,
    /// SFU (mul/div/rem) result latency in cycles.
    pub sfu_latency: u64,
    /// Global-memory load latency in cycles.
    pub mem_latency: u64,
    /// The BDI choices the compressor may use (disabled = baseline).
    pub choices: ChoiceSet,
    /// Compressor-unit latency added to every compressed writeback.
    pub compression_latency: u64,
    /// Decompressor latency added when an operand is stored compressed.
    pub decompression_latency: u64,
    /// Compressor units: at most this many compressions start per cycle.
    pub num_compressors: usize,
    /// Whether divergent writes bypass the compressor and store
    /// uncompressed (the paper's §5.2 dummy-MOV policy).
    pub uncompressed_divergent_writes: bool,
}

impl PerfMachine {
    /// The paper's warped-compression design point (Table 2).
    pub fn warped_compression() -> Self {
        PerfMachine {
            num_schedulers: 2,
            alu_latency: 4,
            sfu_latency: 16,
            mem_latency: 100,
            choices: ChoiceSet::warped_compression(),
            compression_latency: 2,
            decompression_latency: 1,
            num_compressors: 2,
            uncompressed_divergent_writes: true,
        }
    }

    /// The uncompressed baseline: same pipeline, compression off.
    pub fn baseline() -> Self {
        PerfMachine {
            choices: ChoiceSet::disabled(),
            ..Self::warped_compression()
        }
    }

    /// Whether register compression is active.
    pub fn compression_enabled(&self) -> bool {
        !self.choices.is_disabled()
    }

    pub(crate) fn latency_of(&self, class: LatencyClass) -> u64 {
        match class {
            LatencyClass::Sfu => self.sfu_latency,
            LatencyClass::Memory => self.mem_latency,
            _ => self.alu_latency,
        }
    }
}

/// Concrete launch geometry the tracer specialises against. Unlike
/// [`LaunchInfo`], nothing is optional: the performance bound is a
/// statement about one specific launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PerfLaunch {
    /// Thread blocks in the grid.
    pub blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Scalar kernel parameters (missing slots read as 0, like the
    /// simulator's `LaunchConfig::param`).
    pub params: Vec<u32>,
    /// The entire initial global-memory image, when captured. Arms the
    /// abstract memory-cell refinement of loads in the scheduler and
    /// lint pipeline (see [`LaunchInfo::initial_mem`]).
    pub initial_mem: Option<std::sync::Arc<Vec<u32>>>,
}

impl PerfLaunch {
    /// A launch with the given geometry and no parameters.
    pub fn new(blocks: usize, threads_per_block: usize) -> Self {
        PerfLaunch {
            blocks,
            threads_per_block,
            params: Vec::new(),
            initial_mem: None,
        }
    }

    /// Adds parameter values.
    pub fn with_params(mut self, params: Vec<u32>) -> Self {
        self.params = params;
        self
    }

    /// Attaches the full initial-memory image.
    pub fn with_memory(mut self, image: std::sync::Arc<Vec<u32>>) -> Self {
        self.initial_mem = Some(image);
        self
    }

    /// The `i`-th scalar parameter (missing slots read as 0, mirroring
    /// the simulator's `LaunchConfig::param`).
    pub fn param(&self, i: usize) -> u32 {
        self.params.get(i).copied().unwrap_or(0)
    }

    /// Warps per block at the architectural warp size.
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block.div_ceil(WARP_SIZE)
    }

    pub(crate) fn absint_info(&self) -> LaunchInfo {
        LaunchInfo {
            params: self.params.clone(),
            blocks: Some(self.blocks as u32),
            threads_per_block: Some(self.threads_per_block as u32),
            mem_words: self.initial_mem.as_ref().map(|m| m.len() as u64),
            initial_mem: self.initial_mem.clone(),
        }
    }
}

/// A statically guaranteed same-cycle bank conflict at one pc: the
/// instruction reads `sources ≥ 2` distinct registers, and every
/// fetch claims a bank range starting at the warp's cluster base, so
/// the reads can never all complete in one cycle — under either
/// register layout.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictSite {
    /// The pc of the conflicting instruction.
    pub pc: usize,
    /// Distinct source registers fetched through the collector.
    pub sources: usize,
    /// Retry stalls every single execution is guaranteed to log
    /// (`sources·(sources−1)/2`: fetches resolve at most one per
    /// cycle, and every unfinished fetch logs a retry each cycle).
    pub min_stalls_per_execution: u64,
    /// Executions the concrete tracer proved must happen (exact-traced
    /// warps only; approximate warps contribute their exact prefix).
    pub min_executions: u64,
    /// `min_stalls_per_execution × min_executions` — the per-PC floor
    /// the simulator's `bank_conflict + decompressor` stall counters
    /// are gated against.
    pub min_stalls: u64,
    /// Banks the fetches claim per execution under the uncompressed
    /// layout (8 per source).
    pub banks_uncompressed: usize,
    /// Banks claimed per execution under the compression-aware layout,
    /// bounded from above by the absint compression classes of the
    /// reaching definitions (1/3/5/8 per source).
    pub banks_compressed_bound: usize,
}

/// A statically guaranteed memory-coalescing floor at one load/store
/// pc: from the abstract per-lane address set, every dispatch of this
/// instruction must issue at least `min_transactions_per_access`
/// 32-word-segment transactions, mirroring how [`ConflictSite`] floors
/// the register-bank stalls.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemFloor {
    /// The pc of the load/store.
    pub pc: usize,
    /// Whether the access is a store.
    pub is_store: bool,
    /// Access-pattern name from the address abstraction
    /// (`uniform` / `coalesced` / `strided` / `scattered`).
    pub pattern: String,
    /// Coalescer transactions every single dispatch must issue. Only
    /// sites proven non-divergent under full warps carry a floor above
    /// 1 (a partial or divergent mask can touch fewer segments).
    pub min_transactions_per_access: u64,
    /// Dispatches the concrete tracer proved must happen (exact-traced
    /// warps only; approximate warps contribute their exact prefix).
    pub min_executions: u64,
    /// `min_transactions_per_access × min_executions` — the per-PC
    /// floor the simulator's transaction counter is gated against.
    pub min_transactions: u64,
}

/// The dependence-DAG cycle bound of one basic block: what a single
/// warp must spend to execute the block once, from the scoreboard
/// edges (RAW/WAW/WAR via reaching definitions), the one-issue-per-
/// warp-per-cycle port, and the `max(1, k)` collector occupancy.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockBound {
    /// Block id (index into the CFG's block list).
    pub block: usize,
    /// First pc of the block.
    pub start: usize,
    /// One past the last pc of the block.
    pub end: usize,
    /// Instructions in the block.
    pub instructions: u64,
    /// Critical-path cycles per execution of the block.
    pub chain_cycles: u64,
}

/// The static performance lower bound for one kernel × launch ×
/// machine. Every field is a floor on the corresponding simulator
/// counter; `wcsim perf` fails if any floor exceeds its measurement.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfPrediction {
    /// Kernel name.
    pub kernel: String,
    /// Static cycle lower bound: the max of the issue-width,
    /// dependence-chain, and compressor-port bounds.
    pub cycle_lower_bound: u64,
    /// Issue-width bound: `⌈min_instructions / num_schedulers⌉`.
    pub issue_bound: u64,
    /// Dependence-chain bound: the slowest single warp's critical path
    /// (sound whatever the interleaving — that warp still has to run).
    pub chain_bound: u64,
    /// Compressor-port bound: `⌈compressor activations / units⌉`.
    pub compressor_bound: u64,
    /// Program instructions every run must issue (injected dummy MOVs
    /// are extra on top and deliberately not counted).
    pub min_instructions: u64,
    /// Bank read accesses every run must perform.
    pub min_bank_reads: u64,
    /// Bank write accesses every run must perform.
    pub min_bank_writes: u64,
    /// Compressor activations every run must perform.
    pub min_compressor_activations: u64,
    /// Decompressor activations every run must perform.
    pub min_decompressor_activations: u64,
    /// Guaranteed same-cycle bank-conflict sites, in pc order.
    pub conflicts: Vec<ConflictSite>,
    /// Guaranteed memory-coalescing floors, in pc order (one per
    /// reachable load/store).
    pub mem_floors: Vec<MemFloor>,
    /// Per-basic-block dependence-DAG bounds, in block order.
    pub block_bounds: Vec<BlockBound>,
    /// Warps the tracer replayed exactly to completion.
    pub exact_warps: usize,
    /// Warps that fell back to the serialized-path floor.
    pub approx_warps: usize,
}

impl PerfPrediction {
    /// Total static bank-access floor (reads + writes), the number the
    /// register file's `total_accesses()` is gated against.
    pub fn min_bank_accesses(&self) -> u64 {
        self.min_bank_reads + self.min_bank_writes
    }

    /// The conflict site at `pc`, if any.
    pub fn conflict_at(&self, pc: usize) -> Option<&ConflictSite> {
        self.conflicts.iter().find(|c| c.pc == pc)
    }

    /// The memory-coalescing floor at `pc`, if any.
    pub fn mem_floor_at(&self, pc: usize) -> Option<&MemFloor> {
        self.mem_floors.iter().find(|m| m.pc == pc)
    }

    /// Whether every warp was traced exactly (no serialized-path
    /// fallback) — on such kernels the instruction floor is in fact
    /// the exact dynamic instruction count.
    pub fn is_exact(&self) -> bool {
        self.approx_warps == 0
    }
}

/// Computes the static performance lower bound of `kernel` under
/// `launch` on `machine`.
///
/// The kernel must be structurally valid (it is, by construction of
/// [`Kernel`]); the bound is sound for the simulator's single-SM
/// execution of the full launch, which is how `run_workload` runs it.
pub fn bound_kernel(kernel: &Kernel, launch: &PerfLaunch, machine: &PerfMachine) -> PerfPrediction {
    let instrs = kernel.instrs();
    let cfg = Cfg::build(instrs);
    let num_regs = usize::from(kernel.num_regs()).max(1);
    let absint = interpret(
        kernel.name(),
        instrs,
        num_regs,
        &cfg,
        Some(&launch.absint_info()),
    );
    let dist = min_instructions_to_exit(instrs, &cfg);
    let codec = BdiCodec::new(machine.choices.clone());

    let mut total = Totals::default();
    let mut exec_counts: BTreeMap<usize, u64> = BTreeMap::new();
    let mut chain_bound = 0u64;
    let (mut exact_warps, mut approx_warps) = (0usize, 0usize);
    let wpb = launch.warps_per_block();
    for block in 0..launch.blocks {
        for warp in 0..wpb {
            let threads = (launch.threads_per_block - warp * WARP_SIZE).min(WARP_SIZE);
            let mut tracer = WarpTracer::new(
                machine, &codec, launch, &absint, &dist, instrs, num_regs, block, warp, threads,
            );
            let out = tracer.run();
            total.add(&out.totals);
            chain_bound = chain_bound.max(out.chain);
            for (pc, n) in out.exec_counts {
                *exec_counts.entry(pc).or_insert(0) += n;
            }
            if out.exact {
                exact_warps += 1;
            } else {
                approx_warps += 1;
            }
        }
    }

    let issue_bound = total.instructions.div_ceil(machine.num_schedulers as u64);
    let compressor_bound = total
        .compressor_activations
        .div_ceil(machine.num_compressors as u64);
    let conflicts = conflict_sites(instrs, &cfg, &absint, machine, &exec_counts);
    let mem_floors = mem_floor_sites(kernel, instrs, &cfg, launch, &exec_counts);
    let block_bounds = block_bounds(instrs, &cfg, machine, num_regs);

    PerfPrediction {
        kernel: kernel.name().to_string(),
        cycle_lower_bound: issue_bound.max(chain_bound).max(compressor_bound),
        issue_bound,
        chain_bound,
        compressor_bound,
        min_instructions: total.instructions,
        min_bank_reads: total.bank_reads,
        min_bank_writes: total.bank_writes,
        min_compressor_activations: total.compressor_activations,
        min_decompressor_activations: total.decompressor_activations,
        conflicts,
        mem_floors,
        block_bounds,
        exact_warps,
        approx_warps,
    }
}

// ---------------------------------------------------------------------
// Memory-coalescing floors
// ---------------------------------------------------------------------

fn mem_floor_sites(
    kernel: &Kernel,
    instrs: &[Instruction],
    cfg: &Cfg,
    launch: &PerfLaunch,
    exec_counts: &BTreeMap<usize, u64>,
) -> Vec<MemFloor> {
    let mem = crate::memabs::analyze_mem(
        kernel.name(),
        instrs,
        kernel.num_regs(),
        cfg,
        Some(&launch.absint_info()),
    );
    // The abstract per-access floor assumes all 32 lanes are active; a
    // partial trailing warp touches a subset of the segments, so floors
    // above 1 are only sound when every warp of the launch is full.
    // (Divergent sites already carry floor 1 from the abstraction.)
    let full_warps = launch.threads_per_block.is_multiple_of(WARP_SIZE);
    mem.sites
        .iter()
        .map(|s| {
            let per_access = if full_warps { s.min_transactions } else { 1 };
            let execs = exec_counts.get(&s.pc).copied().unwrap_or(0);
            MemFloor {
                pc: s.pc,
                is_store: s.is_store,
                pattern: s.pattern.name().to_string(),
                min_transactions_per_access: per_access,
                min_executions: execs,
                min_transactions: per_access * execs,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Guaranteed conflict sites
// ---------------------------------------------------------------------

fn conflict_sites(
    instrs: &[Instruction],
    cfg: &Cfg,
    absint: &AbsintAnalysis,
    machine: &PerfMachine,
    exec_counts: &BTreeMap<usize, u64>,
) -> Vec<ConflictSite> {
    let rd = ReachingDefs::compute(instrs, instrs.len().max(1) as u8, cfg);
    let mut sites = Vec::new();
    for (pc, instr) in instrs.iter().enumerate() {
        let srcs = unique_srcs(instr);
        let k = srcs.len();
        if k < 2 || !cfg.is_reachable(pc) {
            continue;
        }
        // Fetches resolve at most one per cycle (all claim the cluster
        // base bank), and every still-pending fetch logs one retry per
        // cycle: with all k pending on the first collector cycle the
        // retries sum to at least k + (k−1) + … + 1 − k = k(k−1)/2.
        let per_exec = (k * (k - 1) / 2) as u64;
        let execs = exec_counts.get(&pc).copied().unwrap_or(0);
        let compressed_bound: usize = srcs
            .iter()
            .map(|&r| source_class_bound(&rd, absint, machine, pc, r).banks())
            .sum();
        sites.push(ConflictSite {
            pc,
            sources: k,
            min_stalls_per_execution: per_exec,
            min_executions: execs,
            min_stalls: per_exec * execs,
            banks_uncompressed: UNCOMPRESSED_BANKS * k,
            banks_compressed_bound: compressed_bound,
        });
    }
    sites
}

/// The compression class the operand `reg` of the instruction at `pc`
/// is guaranteed to be stored at or better, from the absint classes of
/// its reaching definitions (the entry definition is the compressed
/// all-zero register).
fn source_class_bound(
    rd: &ReachingDefs,
    absint: &AbsintAnalysis,
    machine: &PerfMachine,
    pc: usize,
    reg: usize,
) -> CompressionClass {
    if !machine.compression_enabled() {
        return CompressionClass::Uncompressed;
    }
    let mut worst = CompressionClass::Delta0;
    for def in rd.defs_reaching(pc, reg as u8) {
        let class = match def.pc {
            // Entry definition: registers zero-initialise, stored <4,0>.
            None => CompressionClass::Delta0,
            Some(def_pc) => absint
                .prediction
                .site_at(def_pc)
                .map(|s| s.class)
                .unwrap_or(CompressionClass::Uncompressed),
        };
        if class.banks() > worst.banks() {
            worst = class;
        }
    }
    worst
}

// ---------------------------------------------------------------------
// Per-block dependence-DAG bounds
// ---------------------------------------------------------------------

fn block_bounds(
    instrs: &[Instruction],
    cfg: &Cfg,
    machine: &PerfMachine,
    num_regs: usize,
) -> Vec<BlockBound> {
    let mut out = Vec::new();
    for (id, b) in cfg.blocks().iter().enumerate() {
        let mut timing = TimingState::new(num_regs);
        for instr in &instrs[b.start..b.end] {
            // Block bounds assume nothing about stored forms or
            // divergence: no decompression extra, no compressor pass —
            // only the scoreboard edges and port occupancies remain.
            timing.step(instr, machine, 0, 0);
        }
        out.push(BlockBound {
            block: id,
            start: b.start,
            end: b.end,
            instructions: (b.end - b.start) as u64,
            chain_cycles: timing.end() + 1,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Concrete per-warp tracer
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, Default)]
struct Totals {
    instructions: u64,
    bank_reads: u64,
    bank_writes: u64,
    compressor_activations: u64,
    decompressor_activations: u64,
}

impl Totals {
    fn add(&mut self, o: &Totals) {
        self.instructions += o.instructions;
        self.bank_reads += o.bank_reads;
        self.bank_writes += o.bank_writes;
        self.compressor_activations += o.compressor_activations;
        self.decompressor_activations += o.decompressor_activations;
    }
}

struct TraceOutput {
    totals: Totals,
    chain: u64,
    exec_counts: BTreeMap<usize, u64>,
    exact: bool,
}

/// The perfbound driver over the shared [`WarpReplay`]: accumulates the
/// guaranteed activity counts and the per-warp timing floor, falling
/// back to the serialized-path floor when the replay loses precision.
struct WarpTracer<'a> {
    machine: &'a PerfMachine,
    dist: &'a [u64],
    replay: WarpReplay<'a>,
    timing: TimingState,
    totals: Totals,
    exec_counts: BTreeMap<usize, u64>,
}

impl<'a> WarpTracer<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        machine: &'a PerfMachine,
        codec: &'a BdiCodec,
        launch: &'a PerfLaunch,
        absint: &'a AbsintAnalysis,
        dist: &'a [u64],
        instrs: &'a [Instruction],
        num_regs: usize,
        block: usize,
        warp_in_block: usize,
        threads: usize,
    ) -> Self {
        WarpTracer {
            machine,
            dist,
            replay: WarpReplay::new(
                machine,
                codec,
                launch,
                absint,
                instrs,
                num_regs,
                block,
                warp_in_block,
                threads,
            ),
            timing: TimingState::new(num_regs),
            totals: Totals::default(),
            exec_counts: BTreeMap::new(),
        }
    }

    fn run(&mut self) -> TraceOutput {
        loop {
            match self.replay.step() {
                StepOutcome::Done => {
                    return TraceOutput {
                        totals: self.totals,
                        chain: self.timing.end() + 1,
                        exec_counts: std::mem::take(&mut self.exec_counts),
                        exact: true,
                    }
                }
                StepOutcome::Lost(reason) => return self.fallback(reason.pc()),
                StepOutcome::Step(step) => self.count(&step),
            }
        }
    }

    /// Serialized-path floor from `pc`: whatever path execution takes
    /// from here, it issues at least `dist[pc]` more instructions at
    /// one per cycle. Counts already accumulated stay — they cover the
    /// exactly-replayed prefix, which every run must execute.
    fn fallback(&mut self, pc: usize) -> TraceOutput {
        let d = self.dist[pc];
        self.totals.instructions += d;
        TraceOutput {
            totals: self.totals,
            chain: (self.timing.end() + 1).max(self.timing.next_issue() + d),
            exec_counts: std::mem::take(&mut self.exec_counts),
            exact: false,
        }
    }

    /// Charges one replayed instruction's guaranteed counts and timing.
    fn count(&mut self, step: &TraceStep) {
        self.totals.instructions += 1;
        *self.exec_counts.entry(step.pc).or_insert(0) += 1;
        let enabled = self.machine.compression_enabled();
        let floor = if enabled { 1 } else { UNCOMPRESSED_BANKS };
        let mut decomp_extra = 0;
        for f in &step.sources {
            self.totals.bank_reads += f.banks.unwrap_or(floor) as u64;
            if f.compressed == Some(true) {
                self.totals.decompressor_activations += 1;
                decomp_extra = self.machine.decompression_latency;
            }
        }
        let comp_pass = if step.compresses {
            self.totals.compressor_activations += 1;
            self.machine.compression_latency
        } else {
            0
        };
        if step.dst.is_some() {
            self.totals.bank_writes += step.dst_banks.unwrap_or(floor) as u64;
        }
        self.timing
            .step(&step.instr, self.machine, decomp_extra, comp_pass);
    }
}

// ---------------------------------------------------------------------
// CFG shortest-path floor
// ---------------------------------------------------------------------

/// Per pc, the minimum number of instructions any execution continuing
/// from that pc must still issue (including the final `exit`). Sound
/// under divergence: both sides of a divergent branch execute, which
/// only adds instructions beyond the shorter side, and a warp whose
/// top entry pops at a reconvergence point continues executing there —
/// so some CFG path from `pc` to an `exit` is always a subsequence of
/// what gets issued.
fn min_instructions_to_exit(instrs: &[Instruction], cfg: &Cfg) -> Vec<u64> {
    const INF: u64 = u64::MAX / 2;
    let n = instrs.len();
    let mut dist = vec![INF; n];
    // Reverse BFS (uniform weight 1) from every exit.
    let mut queue = std::collections::VecDeque::new();
    for (pc, i) in instrs.iter().enumerate() {
        if matches!(i, Instruction::Exit) {
            dist[pc] = 1;
            queue.push_back(pc);
        }
    }
    while let Some(pc) = queue.pop_front() {
        for &p in cfg.preds(pc) {
            if dist[p] > dist[pc] + 1 {
                dist[p] = dist[pc] + 1;
                queue.push_back(p);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{AluOp, KernelBuilder, Operand, Reg, Special};

    fn straight_kernel() -> Kernel {
        // r0 = gtid; r1 = r0 * 2; r2 = r1 + r0; st [r0], r2
        let mut b = KernelBuilder::new("straight", 3);
        b.mov(Reg(0), Operand::Special(Special::GlobalTid));
        b.alu(AluOp::Mul, Reg(1), Reg(0).into(), Operand::Imm(2));
        b.alu(AluOp::Add, Reg(2), Reg(1).into(), Reg(0).into());
        b.st(Reg(0), 0, Reg(2));
        b.exit();
        b.build().unwrap()
    }

    fn loop_kernel() -> Kernel {
        // for (i = 0; i < 10; i++) acc += i
        let mut b = KernelBuilder::new("loop", 3);
        b.mov(Reg(0), Operand::Imm(0));
        b.mov(Reg(1), Operand::Imm(0));
        let head = b.here();
        b.alu(AluOp::Add, Reg(1), Reg(1).into(), Reg(0).into());
        b.alu(AluOp::Add, Reg(0), Reg(0).into(), Operand::Imm(1));
        b.alu(AluOp::SetLt, Reg(2), Reg(0).into(), Operand::Imm(10));
        let exit = b.label();
        b.bra(Reg(2), head, exit);
        b.bind(exit);
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn straight_line_counts_are_exact() {
        let k = straight_kernel();
        let launch = PerfLaunch::new(2, 64);
        let p = bound_kernel(&k, &launch, &PerfMachine::warped_compression());
        assert!(p.is_exact());
        assert_eq!(p.exact_warps, 4);
        // 5 instructions × 4 warps.
        assert_eq!(p.min_instructions, 20);
        assert_eq!(p.issue_bound, 10);
        assert!(p.cycle_lower_bound >= p.chain_bound);
        assert!(p.chain_bound > 5, "chain must see the RAW latencies");
    }

    #[test]
    fn loop_trip_counts_resolve_concretely() {
        let k = loop_kernel();
        let p = bound_kernel(
            &k,
            &PerfLaunch::new(1, 32),
            &PerfMachine::warped_compression(),
        );
        assert!(p.is_exact());
        // 2 movs + 10×(3 alu + 1 bra) + exit = 43.
        assert_eq!(p.min_instructions, 43);
    }

    #[test]
    fn conflict_sites_cover_two_source_instructions() {
        let k = straight_kernel();
        let p = bound_kernel(
            &k,
            &PerfLaunch::new(1, 32),
            &PerfMachine::warped_compression(),
        );
        // pc 2 (add r2, r1, r0) and pc 3 (st [r0], r2) read two
        // distinct registers.
        let add = p.conflict_at(2).expect("add conflicts");
        assert_eq!(add.sources, 2);
        assert_eq!(add.min_stalls_per_execution, 1);
        assert_eq!(add.min_executions, 1);
        assert_eq!(add.banks_uncompressed, 16);
        assert!(add.banks_compressed_bound <= 16);
        assert!(p.conflict_at(3).is_some());
        assert!(p.conflict_at(0).is_none(), "mov has one source");
    }

    #[test]
    fn baseline_reads_full_banks() {
        let k = straight_kernel();
        let launch = PerfLaunch::new(1, 32);
        let base = bound_kernel(&k, &launch, &PerfMachine::baseline());
        let wc = bound_kernel(&k, &launch, &PerfMachine::warped_compression());
        assert!(base.min_bank_accesses() > wc.min_bank_accesses());
        assert_eq!(base.min_compressor_activations, 0);
        assert_eq!(base.compressor_bound, 0);
        assert!(wc.min_compressor_activations > 0);
    }

    #[test]
    fn divergent_branch_executes_both_sides() {
        // if (tid < 16) r1 = 1 else r1 = 2
        let mut b = KernelBuilder::new("div", 3);
        b.mov(Reg(0), Operand::Special(Special::Tid));
        b.alu(AluOp::SetLt, Reg(1), Reg(0).into(), Operand::Imm(16));
        let then = b.label();
        let merge = b.label();
        b.bra(Reg(1), then, merge);
        b.mov(Reg(2), Operand::Imm(2));
        b.jmp(merge);
        b.bind(then);
        b.mov(Reg(2), Operand::Imm(1));
        b.bind(merge);
        b.exit();
        let k = b.build().unwrap();
        let p = bound_kernel(
            &k,
            &PerfLaunch::new(1, 32),
            &PerfMachine::warped_compression(),
        );
        assert!(p.is_exact());
        // mov, setlt, bra, then both sides (mov/jmp + mov), exit.
        assert_eq!(p.min_instructions, 7);
    }

    #[test]
    fn unknown_predicate_falls_back_to_path_floor() {
        // Branch on a loaded value: statically unknowable.
        let mut b = KernelBuilder::new("load-branch", 2);
        b.mov(Reg(0), Operand::Special(Special::GlobalTid));
        b.ld(Reg(1), Reg(0), 0);
        let then = b.label();
        let merge = b.label();
        b.bra(Reg(1), then, merge);
        b.jmp(merge);
        b.bind(then);
        b.mov(Reg(0), Operand::Imm(7));
        b.bind(merge);
        b.exit();
        let k = b.build().unwrap();
        let p = bound_kernel(
            &k,
            &PerfLaunch::new(1, 32),
            &PerfMachine::warped_compression(),
        );
        assert!(!p.is_exact());
        assert_eq!(p.approx_warps, 1);
        // Exact prefix (mov, ld) + shortest path from the branch
        // (bra → jmp → exit).
        assert_eq!(p.min_instructions, 5);
    }

    #[test]
    fn absint_resolves_launch_uniform_predicates() {
        // Branch on a comparison against a parameter: the value is not
        // traced (it flows through a param), but absint pins it.
        let mut b = KernelBuilder::new("param-uniform", 2);
        b.mov(Reg(0), Operand::Param(0));
        b.alu(AluOp::SetLt, Reg(1), Operand::Imm(0), Reg(0).into());
        let body = b.label();
        let exit = b.label();
        b.bra(Reg(1), body, exit);
        b.jmp(exit);
        b.bind(body);
        b.mov(Reg(0), Operand::Imm(1));
        b.bind(exit);
        b.exit();
        let k = b.build().unwrap();
        let p = bound_kernel(
            &k,
            &PerfLaunch::new(1, 32).with_params(vec![5]),
            &PerfMachine::warped_compression(),
        );
        // The tracer knows the param value concretely, so the branch
        // resolves and the body executes.
        assert!(p.is_exact());
        assert_eq!(p.min_instructions, 5);
    }

    #[test]
    fn block_bounds_cover_every_block() {
        let k = loop_kernel();
        let cfg = Cfg::build(k.instrs());
        let p = bound_kernel(
            &k,
            &PerfLaunch::new(1, 32),
            &PerfMachine::warped_compression(),
        );
        assert_eq!(p.block_bounds.len(), cfg.blocks().len());
        for bb in &p.block_bounds {
            assert!(bb.chain_cycles >= bb.instructions, "{bb:?}");
        }
    }

    fn strided_kernel() -> Kernel {
        // st [gtid * 4] — every lane lands 4 words apart.
        let mut b = KernelBuilder::new("strided", 2);
        b.mov(Reg(0), Operand::Special(Special::GlobalTid));
        b.alu(AluOp::Mul, Reg(1), Reg(0).into(), Operand::Imm(4));
        b.st(Reg(1), 0, Reg(0));
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn mem_floors_cover_loads_and_stores() {
        let k = straight_kernel();
        let p = bound_kernel(
            &k,
            &PerfLaunch::new(1, 32),
            &PerfMachine::warped_compression(),
        );
        let st = p.mem_floor_at(3).expect("store floor");
        assert!(st.is_store);
        assert_eq!(st.pattern, "coalesced");
        assert_eq!(st.min_transactions_per_access, 1);
        assert_eq!(st.min_executions, 1);
        assert_eq!(st.min_transactions, 1);
    }

    #[test]
    fn strided_store_floors_above_one_transaction() {
        let k = strided_kernel();
        let p = bound_kernel(
            &k,
            &PerfLaunch::new(2, 64),
            &PerfMachine::warped_compression(),
        );
        let st = p.mem_floor_at(2).expect("store floor");
        assert_eq!(st.pattern, "strided");
        assert_eq!(st.min_transactions_per_access, 4);
        assert_eq!(st.min_executions, 4, "one dispatch per warp");
        assert_eq!(st.min_transactions, 16);
    }

    #[test]
    fn partial_warps_clamp_mem_floors_to_one() {
        let k = strided_kernel();
        // 40 threads per block: the trailing warp is partial, so the
        // per-access floor must degrade to 1.
        let p = bound_kernel(
            &k,
            &PerfLaunch::new(1, 40),
            &PerfMachine::warped_compression(),
        );
        let st = p.mem_floor_at(2).expect("store floor");
        assert_eq!(st.min_transactions_per_access, 1);
        assert_eq!(st.min_executions, 2);
    }

    #[test]
    fn min_dist_counts_the_shortest_path() {
        let k = loop_kernel();
        let cfg = Cfg::build(k.instrs());
        let d = min_instructions_to_exit(k.instrs(), &cfg);
        // From the exit itself: 1. From the branch: branch + exit = 2.
        assert_eq!(d[k.len() - 1], 1);
        assert_eq!(d[5], 2);
        // From entry: mov, mov, 3 alu, bra, exit = 7.
        assert_eq!(d[0], 7);
    }

    #[test]
    fn partial_warps_trace_with_ragged_masks() {
        let k = straight_kernel();
        // 40 threads: one full warp + one 8-thread warp per block.
        let p = bound_kernel(
            &k,
            &PerfLaunch::new(1, 40),
            &PerfMachine::warped_compression(),
        );
        assert!(p.is_exact());
        assert_eq!(p.exact_warps, 2);
        assert_eq!(p.min_instructions, 10);
    }
}
