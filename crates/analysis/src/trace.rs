//! Shared per-warp concrete replay machinery.
//!
//! Both the performance-bound tracer ([`perfbound`](crate::perfbound))
//! and the ahead-of-time issue scheduler
//! ([`schedule`](crate::schedule)) need the same launch-specialised
//! enumeration of one warp's dynamic instruction stream: a bit-exact
//! mirror of the simulator's SIMT reconvergence stack, concrete
//! register values where they are statically known, absint-assisted
//! branch resolution, and the stored-form (banks / compressed)
//! tracking of the compression-aware register file. This module hoists
//! that machinery into one place:
//!
//! * [`MirrorStack`] — the SIMT stack mirror (`gpu_sim::SimtStack`
//!   semantics, re-implemented here because the dependency points the
//!   other way; the soundness proptests replay random kernels through
//!   the real pipeline to pin the two together),
//! * [`WarpReplay`] — the per-warp architectural replayer, yielding one
//!   [`TraceStep`] per executed instruction until the warp drains
//!   ([`StepOutcome::Done`]) or precision is lost
//!   ([`StepOutcome::Lost`]),
//! * [`TimingState`] — the relaxed pipeline-timing DP whose every
//!   constraint the real engine also enforces, split into
//!   [`earliest`](TimingState::earliest) (query) and
//!   [`commit_at`](TimingState::commit_at) (update) so a scheduler can
//!   interleave global resource constraints between the two.

use std::collections::HashMap;

use bdi::{BdiCodec, WarpRegister, WARP_SIZE};
use simt_isa::{Instruction, LatencyClass, Operand, Special};

use crate::absint::AbsintAnalysis;
use crate::perfbound::{PerfLaunch, PerfMachine};

/// Banks occupied by an uncompressed 128-byte warp register.
pub const UNCOMPRESSED_BANKS: usize = 8;

/// Per-warp instruction budget of the concrete replay. A warp that
/// executes more instructions than this (an extreme trip count, or an
/// absint-driven branch that never makes concrete progress) loses
/// precision instead of replaying on.
pub const TRACE_FUEL: u64 = 1_000_000;

/// Unique source registers of an instruction, in first-use order (the
/// engine's `unique_srcs` — one collector fetch per distinct register).
pub fn unique_srcs(instr: &Instruction) -> Vec<usize> {
    let mut srcs: Vec<usize> = Vec::new();
    for r in instr.src_regs() {
        if !srcs.contains(&r.index()) {
            srcs.push(r.index());
        }
    }
    srcs
}

// ---------------------------------------------------------------------
// SIMT stack mirror
// ---------------------------------------------------------------------

/// Bit-exact mirror of the simulator's SIMT reconvergence stack
/// (`gpu_sim::SimtStack`), which this crate cannot import (the
/// dependency points the other way). `tests/perfbound_soundness.rs`
/// and `tests/schedule.rs` replay random kernels through the real
/// pipeline to pin the two together.
#[derive(Clone, Debug)]
pub struct MirrorStack {
    entries: Vec<(usize, u32, usize)>, // (pc, mask, reconv)
}

const TOP_LEVEL: usize = usize::MAX;

impl MirrorStack {
    /// A fresh stack: all of `initial_mask` at pc 0.
    pub fn new(initial_mask: u32) -> Self {
        MirrorStack {
            entries: vec![(0, initial_mask, TOP_LEVEL)],
        }
    }

    /// The active pc, or `None` once every thread has exited.
    pub fn pc(&self) -> Option<usize> {
        self.entries.last().map(|e| e.0)
    }

    /// The active thread mask (0 once done).
    pub fn mask(&self) -> u32 {
        self.entries.last().map(|e| e.1).unwrap_or(0)
    }

    /// Whether more than one stack entry is live (warp is diverged).
    pub fn is_diverged(&self) -> bool {
        self.entries.len() > 1
    }

    /// Steps the active entry to the next pc.
    pub fn advance(&mut self) {
        if let Some(top) = self.entries.last_mut() {
            top.0 += 1;
        }
        self.pop_reconverged();
    }

    /// Unconditional jump of the active entry.
    pub fn jump(&mut self, target: usize) {
        if let Some(top) = self.entries.last_mut() {
            top.0 = target;
        }
        self.pop_reconverged();
    }

    /// Applies a (possibly divergent) branch with the given taken mask.
    pub fn branch(&mut self, taken_mask: u32, target: usize, reconv: usize) {
        let &(pc, mask, _) = self.entries.last().expect("branch on finished warp");
        let fall_mask = mask & !taken_mask;
        let fall_pc = pc + 1;
        if taken_mask == 0 || fall_mask == 0 {
            let top = self.entries.last_mut().expect("checked non-empty");
            top.0 = if taken_mask != 0 { target } else { fall_pc };
        } else {
            let top = self.entries.last_mut().expect("checked non-empty");
            top.0 = reconv;
            self.entries.push((fall_pc, fall_mask, reconv));
            self.entries.push((target, taken_mask, reconv));
        }
        self.pop_reconverged();
    }

    /// Retires the active entry's threads (the `exit` instruction).
    pub fn exit_threads(&mut self) {
        let mask = self.mask();
        for e in &mut self.entries {
            e.1 &= !mask;
        }
        self.entries.retain(|e| e.1 != 0);
        self.pop_reconverged();
    }

    fn pop_reconverged(&mut self) {
        while let Some(&(pc, _, reconv)) = self.entries.last() {
            if self.entries.len() > 1 && pc == reconv {
                self.entries.pop();
            } else {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pipeline timing relaxation
// ---------------------------------------------------------------------

/// The cycles one scheduled instruction occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstrTimes {
    /// Issue cycle.
    pub issue: u64,
    /// Operand-capture / dispatch cycle; `None` for the collector-less
    /// control instructions (`jmp` / `exit`).
    pub dispatch: Option<u64>,
    /// Writeback-retire cycle; `None` when nothing is written back.
    pub retire: Option<u64>,
}

/// The relaxed per-warp pipeline schedule: every constraint here is one
/// the real engine also enforces, so the minimal feasible schedule this
/// DP computes can only finish earlier than the simulator.
///
/// Split into [`earliest`](Self::earliest) (when could this instruction
/// issue?) and [`commit_at`](Self::commit_at) (it issues at cycle `t`,
/// update the hazard state) so callers with *additional* constraints —
/// the static scheduler's issue-port and compressor-port arbitration —
/// can push the issue cycle later than the per-warp minimum without
/// re-deriving the hazard rules. [`step`](Self::step) composes the two
/// for callers content with the per-warp floor.
#[derive(Clone, Debug)]
pub struct TimingState {
    /// Earliest cycle the next instruction can issue (one issue per
    /// warp per cycle; branches block issue until they dispatch).
    next_issue: u64,
    /// Per register: retire cycle of the last write (RAW/WAW — the
    /// scoreboard releases writes at retire, same-cycle reissue ok).
    avail_write: Vec<u64>,
    /// Per register: latest dispatch of a read since the last write
    /// (WAR — reads release at operand capture).
    reader_release: Vec<u64>,
    /// Dispatch cycle of the last memory instruction (the LSU keeps
    /// per-warp program order until dispatch).
    mem_release: u64,
    /// Latest scheduled event (the makespan).
    end: u64,
}

impl TimingState {
    /// Fresh state for a warp with `num_regs` architectural registers.
    pub fn new(num_regs: usize) -> Self {
        TimingState {
            next_issue: 0,
            avail_write: vec![0; num_regs],
            reader_release: vec![0; num_regs],
            mem_release: 0,
            end: 0,
        }
    }

    /// Latest scheduled event so far (the makespan).
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Earliest cycle the next instruction may issue, hazards aside.
    pub fn next_issue(&self) -> u64 {
        self.next_issue
    }

    /// Earliest cycle `instr` can issue under the per-warp hazard and
    /// ordering constraints (issue port, RAW/WAW/WAR, LSU order).
    pub fn earliest(&self, instr: &Instruction) -> u64 {
        let mut t = self.next_issue;
        for &s in &unique_srcs(instr) {
            t = t.max(self.avail_write[s]);
        }
        if let Some(d) = instr.dst() {
            t = t
                .max(self.avail_write[d.index()])
                .max(self.reader_release[d.index()]);
        }
        if instr.latency_class() == LatencyClass::Memory {
            t = t.max(self.mem_release);
        }
        t
    }

    /// Commits `instr` issuing at cycle `t` (which must be ≥
    /// [`earliest`](Self::earliest)) and returns its event cycles.
    /// `decomp_extra` is the decompression latency of its operands,
    /// `comp_pass` the compressor latency of its writeback (0 when the
    /// write bypasses the compressor).
    pub fn commit_at(
        &mut self,
        t: u64,
        instr: &Instruction,
        machine: &PerfMachine,
        decomp_extra: u64,
        comp_pass: u64,
    ) -> InstrTimes {
        debug_assert!(t >= self.earliest(instr), "issue before earliest feasible");
        let srcs = unique_srcs(instr);
        let is_mem = instr.latency_class() == LatencyClass::Memory;
        match instr {
            Instruction::Jmp { .. } | Instruction::Exit => {
                // Issues without a collector and completes immediately.
                self.next_issue = t + 1;
                self.end = self.end.max(t);
                return InstrTimes {
                    issue: t,
                    dispatch: None,
                    retire: None,
                };
            }
            _ => {}
        }
        // Operand collection: at most one fetch succeeds per cycle
        // (cluster-base conflict), so dispatch is k cycles after issue;
        // collectors are visited from the cycle after issue even with
        // no operands to fetch.
        let dispatch = t + (srcs.len() as u64).max(1);
        for &s in &srcs {
            self.reader_release[s] = self.reader_release[s].max(dispatch);
        }
        if is_mem {
            self.mem_release = dispatch;
        }
        match instr {
            Instruction::Bra { .. } => {
                // The warp stays blocked until the branch resolves at
                // dispatch; issue can resume the same cycle.
                self.next_issue = dispatch;
                self.end = self.end.max(dispatch);
                InstrTimes {
                    issue: t,
                    dispatch: Some(dispatch),
                    retire: None,
                }
            }
            Instruction::St { .. } => {
                self.next_issue = t + 1;
                self.end = self.end.max(dispatch);
                InstrTimes {
                    issue: t,
                    dispatch: Some(dispatch),
                    retire: None,
                }
            }
            _ => {
                let lat = machine.latency_of(instr.latency_class());
                let retire = dispatch + lat + decomp_extra + comp_pass;
                let d = instr.dst().expect("remaining instructions write").index();
                self.avail_write[d] = retire;
                self.next_issue = t + 1;
                self.end = self.end.max(retire);
                InstrTimes {
                    issue: t,
                    dispatch: Some(dispatch),
                    retire: Some(retire),
                }
            }
        }
    }

    /// Schedules one instruction at its earliest feasible cycles:
    /// [`earliest`](Self::earliest) followed by
    /// [`commit_at`](Self::commit_at).
    pub fn step(
        &mut self,
        instr: &Instruction,
        machine: &PerfMachine,
        decomp_extra: u64,
        comp_pass: u64,
    ) -> InstrTimes {
        let t = self.earliest(instr);
        self.commit_at(t, instr, machine, decomp_extra, comp_pass)
    }
}

// ---------------------------------------------------------------------
// Per-warp architectural replay
// ---------------------------------------------------------------------

/// What the replay knows about one architectural register.
#[derive(Clone, Debug)]
pub struct RegState {
    /// The full 32-lane value, when every lane is known.
    pub value: Option<WarpRegister>,
    /// Banks the stored form occupies, when the stored form is known.
    pub banks: Option<usize>,
    /// Whether the stored form is compressed, when known.
    pub compressed: Option<bool>,
}

/// Why a replay lost precision and had to stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossReason {
    /// A branch predicate was neither concretely traced nor absint-
    /// resolvable — the taken mask is unknown.
    UnknownPredicate {
        /// The branch pc.
        pc: usize,
    },
    /// The [`TRACE_FUEL`] instruction budget ran out.
    FuelExhausted {
        /// The pc the replay stopped at.
        pc: usize,
    },
}

impl LossReason {
    /// The pc at which precision was lost.
    pub fn pc(&self) -> usize {
        match *self {
            LossReason::UnknownPredicate { pc } | LossReason::FuelExhausted { pc } => pc,
        }
    }
}

/// One operand fetch of a replayed instruction, with the pre-write
/// stored-form facts of the source register.
#[derive(Clone, Copy, Debug)]
pub struct SourceFetch {
    /// The source register index.
    pub reg: usize,
    /// Banks its stored form occupies, when known.
    pub banks: Option<usize>,
    /// Whether it is stored compressed, when known.
    pub compressed: Option<bool>,
}

/// One architecturally executed instruction of a warp's replay.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// The executed pc.
    pub pc: usize,
    /// The instruction at that pc.
    pub instr: Instruction,
    /// The active thread mask it executed under.
    pub mask: u32,
    /// The engine's divergence predicate at issue (`stack diverged ||
    /// mask != full_mask`).
    pub divergent: bool,
    /// Unique operand fetches, in first-use order, with pre-write
    /// stored-form facts.
    pub sources: Vec<SourceFetch>,
    /// The destination register, if the instruction writes one.
    pub dst: Option<usize>,
    /// Whether the writeback passes through the compressor (always
    /// `false` without a destination).
    pub compresses: bool,
    /// Banks the destination's stored form occupies *after* this write,
    /// when known; `None` without a destination or when the value (and
    /// hence stored form) is unknown.
    pub dst_banks: Option<usize>,
}

/// Result of one [`WarpReplay::step`].
#[derive(Clone, Debug)]
pub enum StepOutcome {
    /// Every thread has exited; the replay is complete and exact.
    Done,
    /// One instruction executed.
    Step(TraceStep),
    /// Precision was lost; the replay cannot continue.
    Lost(LossReason),
}

/// Launch-specialised architectural replay of one warp: the SIMT stack,
/// concrete register values where known, and the stored-form tracking
/// of the compression-aware register file. Purely functional — the
/// caller owns all timing and resource accounting.
pub struct WarpReplay<'a> {
    machine: &'a PerfMachine,
    codec: &'a BdiCodec,
    launch: &'a PerfLaunch,
    absint: &'a AbsintAnalysis,
    instrs: &'a [Instruction],
    block: usize,
    warp_in_block: usize,
    full_mask: u32,
    stack: MirrorStack,
    regs: Vec<RegState>,
    fuel: u64,
    /// Whether store→load forwarding through the per-warp shadow memory
    /// is armed (see [`enable_memory_forwarding`]).
    ///
    /// [`enable_memory_forwarding`]: Self::enable_memory_forwarding
    forward_mem: bool,
    /// Known memory words written by *this* warp: address → value.
    shadow_mem: HashMap<u32, u32>,
    /// Verified memory-cell analysis (see [`enable_initial_image`]):
    /// loads of provably never-stored words resolve concretely from the
    /// initial-memory image.
    ///
    /// [`enable_initial_image`]: Self::enable_initial_image
    cells: Option<&'a crate::memcell::MemCells>,
}

impl<'a> WarpReplay<'a> {
    /// A fresh replay of warp `warp_in_block` of `block`, with
    /// `threads` live threads (the trailing warp of a block may be
    /// partial). Registers initialise to zero in the stored form the
    /// machine's allocation path guarantees.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        machine: &'a PerfMachine,
        codec: &'a BdiCodec,
        launch: &'a PerfLaunch,
        absint: &'a AbsintAnalysis,
        instrs: &'a [Instruction],
        num_regs: usize,
        block: usize,
        warp_in_block: usize,
        threads: usize,
    ) -> Self {
        let full_mask = if threads >= WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << threads) - 1
        };
        let initial = if machine.compression_enabled() {
            let c = codec.compress(&WarpRegister::ZERO);
            RegState {
                value: Some(WarpRegister::ZERO),
                banks: Some(c.banks_required()),
                compressed: Some(c.is_compressed()),
            }
        } else {
            RegState {
                value: Some(WarpRegister::ZERO),
                banks: Some(UNCOMPRESSED_BANKS),
                compressed: Some(false),
            }
        };
        WarpReplay {
            machine,
            codec,
            launch,
            absint,
            instrs,
            block,
            warp_in_block,
            full_mask,
            stack: MirrorStack::new(full_mask),
            regs: vec![initial; num_regs],
            fuel: TRACE_FUEL,
            forward_mem: false,
            shadow_mem: HashMap::new(),
            cells: None,
        }
    }

    /// Arms store→load forwarding through a per-warp shadow memory:
    /// a load whose every active lane hits an address this warp itself
    /// stored a known value to replays that value concretely instead
    /// of going opaque.
    ///
    /// Sound **only** when no other warp can store to any address this
    /// warp accesses — the caller must hold a
    /// `memabs::MemAbs::warp_isolated` proof for this kernel × launch.
    pub fn enable_memory_forwarding(&mut self) {
        self.forward_mem = true;
    }

    /// Arms initial-image load resolution through a *verified*
    /// memory-cell analysis: a load lane whose address the table proves
    /// no reachable store of **any** warp ever writes replays the
    /// initial-memory word concretely. Unlike shadow forwarding this
    /// needs no warp-isolation proof — a launch-wide never-stored word
    /// holds its image value throughout every execution. Composes with
    /// shadow forwarding per lane (the domains are disjoint: the shadow
    /// only holds stored addresses).
    pub fn enable_initial_image(&mut self, cells: &'a crate::memcell::MemCells) {
        if cells.enabled {
            self.cells = Some(cells);
        }
    }

    /// The active pc, or `None` once the warp has drained.
    pub fn pc(&self) -> Option<usize> {
        self.stack.pc()
    }

    /// The warp's full (launch-time) thread mask.
    pub fn full_mask(&self) -> u32 {
        self.full_mask
    }

    /// Executes the next instruction architecturally.
    pub fn step(&mut self) -> StepOutcome {
        let Some(pc) = self.stack.pc() else {
            return StepOutcome::Done;
        };
        if self.fuel == 0 {
            return StepOutcome::Lost(LossReason::FuelExhausted { pc });
        }
        self.fuel -= 1;

        let instr = self.instrs[pc];
        let mask = self.stack.mask();
        // Exactly the engine's divergence predicate at issue.
        let divergent = self.stack.is_diverged() || mask != self.full_mask;

        if let Instruction::Bra { pred, .. } = instr {
            if self.taken_mask(pc, pred.index(), mask).is_none() {
                return StepOutcome::Lost(LossReason::UnknownPredicate { pc });
            }
        }

        // Pre-write operand facts (reads happen before the write, so a
        // destination that is also a source reads its old stored form).
        let sources: Vec<SourceFetch> = unique_srcs(&instr)
            .iter()
            .map(|&s| SourceFetch {
                reg: s,
                banks: self.regs[s].banks,
                compressed: self.regs[s].compressed,
            })
            .collect();
        let dst = instr.dst().map(|r| r.index());
        let compresses = dst.is_some() && self.write_compresses(divergent);

        let dst_banks = match instr {
            Instruction::Jmp { target } => {
                self.stack.jump(target);
                None
            }
            Instruction::Exit => {
                self.stack.exit_threads();
                None
            }
            Instruction::Bra {
                pred,
                target,
                reconv,
            } => {
                let taken = self
                    .taken_mask(pc, pred.index(), mask)
                    .expect("checked above");
                self.stack.branch(taken, target, reconv);
                None
            }
            Instruction::St { base, offset, src } => {
                if self.forward_mem {
                    self.shadow_store(base.index(), offset, src.index(), mask);
                }
                self.stack.advance();
                None
            }
            Instruction::Mov { dst, src } => {
                let result = self.eval(src);
                let banks = self.write(dst.index(), result, mask, divergent);
                self.stack.advance();
                banks
            }
            Instruction::Alu { op, dst, a, b } => {
                let result = match (self.eval(a), self.eval(b)) {
                    (Some(va), Some(vb)) => Some(WarpRegister::from_fn(|lane| {
                        op.apply(va.lane(lane), vb.lane(lane))
                    })),
                    _ => None,
                };
                let banks = self.write(dst.index(), result, mask, divergent);
                self.stack.advance();
                banks
            }
            Instruction::Ld { dst, base, offset } => {
                // Memory contents are outside the static model, except
                // for words this warp itself stored when forwarding is
                // armed (warp-isolated launches), and never-stored
                // words of the initial image when the cell analysis is
                // armed.
                let result = self.resolve_load(base.index(), offset, mask);
                let banks = self.write(dst.index(), result, mask, divergent);
                self.stack.advance();
                banks
            }
        };

        StepOutcome::Step(TraceStep {
            pc,
            instr,
            mask,
            divergent,
            sources,
            dst,
            compresses,
            dst_banks,
        })
    }

    /// Whether a (non-synthetic) write at this divergence state passes
    /// through the compressor.
    fn write_compresses(&self, divergent: bool) -> bool {
        self.machine.compression_enabled()
            && !(divergent && self.machine.uncompressed_divergent_writes)
    }

    /// Applies a register write: lane merge under a partial mask, then
    /// the stored form the writeback path guarantees. Returns the banks
    /// of the new stored form, when known.
    fn write(
        &mut self,
        dst: usize,
        result: Option<WarpRegister>,
        mask: u32,
        divergent: bool,
    ) -> Option<usize> {
        let merged = if mask == u32::MAX {
            result
        } else {
            match (&self.regs[dst].value, result) {
                (Some(old), Some(new)) => Some(old.merge_masked(&new, mask)),
                _ => None,
            }
        };
        let state = if !self.write_compresses(divergent) {
            // Baseline, or a divergent write under the dummy-MOV
            // policy: stored uncompressed, 8 banks, guaranteed.
            RegState {
                value: merged,
                banks: Some(UNCOMPRESSED_BANKS),
                compressed: Some(false),
            }
        } else {
            match merged {
                Some(v) => {
                    let c = self.codec.compress(&v);
                    RegState {
                        value: Some(v),
                        banks: Some(c.banks_required()),
                        compressed: Some(c.is_compressed()),
                    }
                }
                None => RegState {
                    value: None,
                    banks: None,
                    compressed: None,
                },
            }
        };
        let banks = state.banks;
        self.regs[dst] = state;
        banks
    }

    /// Applies a store to the shadow memory. An unknown store address
    /// may overwrite anything, so it clears the whole shadow; a known
    /// address with an unknown value just evicts that word.
    fn shadow_store(&mut self, base: usize, offset: i32, src: usize, mask: u32) {
        let value = self.regs[src].value;
        let Some(addrs) = &self.regs[base].value else {
            self.shadow_mem.clear();
            return;
        };
        for lane in 0..WARP_SIZE {
            if mask & (1 << lane) != 0 {
                let addr = addrs.lane(lane).wrapping_add(offset as u32);
                match &value {
                    Some(v) => {
                        self.shadow_mem.insert(addr, v.lane(lane));
                    }
                    None => {
                        self.shadow_mem.remove(&addr);
                    }
                }
            }
        }
    }

    /// The statically resolved load value, when every active lane's
    /// address is known and resolves — from this warp's shadow memory
    /// (when forwarding is armed) or from the never-stored initial
    /// image (when the cell analysis is armed). Any unresolved active
    /// lane makes the whole load opaque.
    fn resolve_load(&self, base: usize, offset: i32, mask: u32) -> Option<WarpRegister> {
        if !self.forward_mem && self.cells.is_none() {
            return None;
        }
        let addrs = self.regs[base].value.as_ref()?;
        let mut out = WarpRegister::ZERO;
        for lane in 0..WARP_SIZE {
            if mask & (1 << lane) != 0 {
                let addr = addrs.lane(lane).wrapping_add(offset as u32);
                let shadowed = if self.forward_mem {
                    self.shadow_mem.get(&addr).copied()
                } else {
                    None
                };
                let v = shadowed.or_else(|| self.cells.and_then(|c| c.read_only_word(addr)))?;
                out.set_lane(lane, v);
            }
        }
        Some(out)
    }

    /// The branch's taken mask within `mask`, from concrete predicate
    /// lanes or — when the value is unknown — from the absint per-lane
    /// range at this pc ("can never be zero" / "is always zero").
    fn taken_mask(&self, pc: usize, pred: usize, mask: u32) -> Option<u32> {
        if let Some(v) = &self.regs[pred].value {
            let mut taken = 0u32;
            for lane in 0..WARP_SIZE {
                if mask & (1 << lane) != 0 && v.lane(lane) != 0 {
                    taken |= 1 << lane;
                }
            }
            return Some(taken);
        }
        let range = self.absint.state_at(pc)?.get(pred)?.per_lane_range()?;
        if !range.contains(0) {
            Some(mask)
        } else if range.as_singleton() == Some(0) {
            Some(0)
        } else {
            None
        }
    }

    /// Mirror of the engine's operand evaluation, launch-specialised.
    fn eval(&self, op: Operand) -> Option<WarpRegister> {
        let tpb = self.launch.threads_per_block as u32;
        match op {
            Operand::Reg(r) => self.regs[r.index()].value,
            Operand::Imm(v) => Some(WarpRegister::splat(v as u32)),
            Operand::Param(i) => Some(WarpRegister::splat(self.launch.param(i as usize))),
            Operand::Special(s) => Some(WarpRegister::from_fn(|lane| {
                let tid = (self.warp_in_block * WARP_SIZE + lane) as u32;
                match s {
                    Special::Tid => tid,
                    Special::Bid => self.block as u32,
                    Special::BlockDim => tpb,
                    Special::GridDim => self.launch.blocks as u32,
                    Special::GlobalTid => self.block as u32 * tpb + tid,
                    Special::LaneId => lane as u32,
                    Special::WarpId => self.warp_in_block as u32,
                }
            })),
        }
    }
}
