//! Control-flow graph construction over raw instruction sequences.
//!
//! The CFG works on `&[Instruction]` rather than a validated
//! [`simt_isa::Kernel`] so the lint driver can analyse unvalidated
//! sequences (that is what the negative lints exist for). Callers must
//! run the structural checks first: `build` assumes every branch/jump
//! target is in range and that execution cannot fall off the end.

use simt_isa::{ControlFlow, Instruction};

/// A maximal straight-line run of instructions `[start, end)`.
///
/// Leaders are: pc 0, every branch/jump target, every reconvergence
/// point (reconvergence pcs are where the SIMT stack pops, so keeping
/// them block-initial makes divergence regions unions of whole blocks),
/// and the instruction after any control transfer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// First pc of the block.
    pub start: usize,
    /// One past the last pc of the block.
    pub end: usize,
    /// Successor block ids (derived from the last instruction).
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

/// Control-flow graph of one kernel: per-pc edges, basic blocks, the
/// branch → reconvergence relation, and entry reachability.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    reachable: Vec<bool>,
    blocks: Vec<BasicBlock>,
    block_of: Vec<usize>,
    reconv_edges: Vec<(usize, usize)>,
}

impl Cfg {
    /// Builds the CFG.
    ///
    /// Requires a structurally sound sequence: every target in range and
    /// no fall-through past the end (the lint driver checks this before
    /// calling).
    pub fn build(instrs: &[Instruction]) -> Cfg {
        let n = instrs.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut reconv_edges = Vec::new();
        for (pc, instr) in instrs.iter().enumerate() {
            match instr.control_flow() {
                ControlFlow::FallThrough => succs[pc].push(pc + 1),
                ControlFlow::Branch { target, reconv } => {
                    succs[pc].push(target);
                    if target != pc + 1 {
                        succs[pc].push(pc + 1);
                    }
                    reconv_edges.push((pc, reconv));
                }
                ControlFlow::Jump { target } => succs[pc].push(target),
                ControlFlow::Exit => {}
            }
        }
        for (pc, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(pc);
            }
        }

        let mut reachable = vec![false; n];
        let mut work = vec![0usize];
        if n > 0 {
            reachable[0] = true;
        }
        while let Some(pc) = work.pop() {
            for &s in &succs[pc] {
                if !reachable[s] {
                    reachable[s] = true;
                    work.push(s);
                }
            }
        }

        // Basic blocks: mark leaders, then carve runs.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, instr) in instrs.iter().enumerate() {
            match instr.control_flow() {
                ControlFlow::Branch { target, reconv } => {
                    leader[target] = true;
                    if reconv < n {
                        leader[reconv] = true;
                    }
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                ControlFlow::Jump { target } => {
                    leader[target] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                ControlFlow::Exit => {
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                ControlFlow::FallThrough => {}
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0;
        for (pc, &is_leader) in leader.iter().enumerate() {
            if pc > start && is_leader {
                blocks.push(BasicBlock {
                    start,
                    end: pc,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(BasicBlock {
                start,
                end: n,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }
        for (id, b) in blocks.iter().enumerate() {
            block_of[b.start..b.end].fill(id);
        }
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (id, b) in blocks.iter().enumerate() {
            for &s in &succs[b.end - 1] {
                edges.push((id, block_of[s]));
            }
        }
        for (from, to) in edges {
            blocks[from].succs.push(to);
            blocks[to].preds.push(from);
        }

        Cfg {
            succs,
            preds,
            reachable,
            blocks,
            block_of,
            reconv_edges,
        }
    }

    /// Successor pcs of `pc` (reconvergence points are not successors).
    pub fn succs(&self, pc: usize) -> &[usize] {
        &self.succs[pc]
    }

    /// Predecessor pcs of `pc`.
    pub fn preds(&self, pc: usize) -> &[usize] {
        &self.preds[pc]
    }

    /// Whether `pc` is reachable from the kernel entry.
    pub fn is_reachable(&self, pc: usize) -> bool {
        self.reachable[pc]
    }

    /// Number of pcs in the underlying sequence.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The basic blocks in program order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The id of the block containing `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// `(branch pc, reconvergence pc)` pairs, in program order.
    pub fn reconv_edges(&self) -> &[(usize, usize)] {
        &self.reconv_edges
    }

    /// Forward reachability from `seeds`, never entering `stop`.
    ///
    /// This is the "divergence region" of a branch when seeded with its
    /// taken target and fall-through and stopped at its reconvergence
    /// point: the pcs a thread can sit at while the warp's other half is
    /// parked waiting at `stop`.
    pub fn region(&self, seeds: &[usize], stop: usize) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut work: Vec<usize> = seeds
            .iter()
            .copied()
            .filter(|&s| s != stop && s < self.len())
            .collect();
        for &s in &work {
            seen[s] = true;
        }
        while let Some(pc) = work.pop() {
            for &s in &self.succs[pc] {
                if s != stop && !seen[s] {
                    seen[s] = true;
                    work.push(s);
                }
            }
        }
        seen
    }

    /// Backward reachability: the pcs from which some pc in `seeds` is
    /// reachable (seeds included).
    pub fn reaches_any(&self, seeds: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut work = Vec::new();
        for &s in seeds {
            if s < self.len() && !seen[s] {
                seen[s] = true;
                work.push(s);
            }
        }
        while let Some(pc) = work.pop() {
            for &p in &self.preds[pc] {
                if !seen[p] {
                    seen[p] = true;
                    work.push(p);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{AluOp, Operand, Reg};

    fn add(dst: u8, a: u8) -> Instruction {
        Instruction::Alu {
            op: AluOp::Add,
            dst: Reg(dst),
            a: Operand::Reg(Reg(a)),
            b: Operand::Imm(1),
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let instrs = vec![add(0, 0), add(1, 0), Instruction::Exit];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].start, 0);
        assert_eq!(cfg.blocks()[0].end, 3);
        assert!(cfg.is_reachable(2));
        assert!(cfg.succs(2).is_empty());
    }

    #[test]
    fn diamond_blocks_and_edges() {
        // 0: bra r0 -> 3 (reconv 4)
        // 1: add           (else)
        // 2: jmp 4
        // 3: add           (then)
        // 4: exit          (merge)
        let instrs = vec![
            Instruction::Bra {
                pred: Reg(0),
                target: 3,
                reconv: 4,
            },
            add(1, 1),
            Instruction::Jmp { target: 4 },
            add(1, 1),
            Instruction::Exit,
        ];
        let cfg = Cfg::build(&instrs);
        assert_eq!(cfg.blocks().len(), 4);
        assert_eq!(cfg.succs(0), &[3, 1]);
        assert_eq!(cfg.preds(4), &[2, 3]);
        assert_eq!(cfg.reconv_edges(), &[(0, 4)]);
        let merge_block = cfg.block_of(4);
        assert_eq!(cfg.blocks()[merge_block].preds.len(), 2);
        // Divergence region of the branch: pcs 1..=3, not the merge.
        let region = cfg.region(&[3, 1], 4);
        assert_eq!(region, vec![false, true, true, true, false]);
    }

    #[test]
    fn unreachable_tail_detected() {
        let instrs = vec![Instruction::Jmp { target: 2 }, add(0, 0), Instruction::Exit];
        let cfg = Cfg::build(&instrs);
        assert!(!cfg.is_reachable(1));
        assert!(cfg.is_reachable(2));
    }

    #[test]
    fn backward_reachability() {
        let instrs = vec![
            add(0, 0),
            Instruction::Bra {
                pred: Reg(0),
                target: 0,
                reconv: 2,
            },
            Instruction::Exit,
        ];
        let cfg = Cfg::build(&instrs);
        let r = cfg.reaches_any(&[2]);
        assert_eq!(r, vec![true, true, true]);
    }
}
