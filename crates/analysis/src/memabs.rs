//! Address-focused abstract interpretation: static memory analysis.
//!
//! The warp-value domain of [`absint`](crate::absint) classifies
//! *register* values as `Uniform` / `LaneAffine` / `NarrowRange` —
//! exactly the shapes that flow into effective addresses (`base +
//! offset` with a per-lane base). This module propagates that domain
//! into every load/store site, producing per-site **abstract access
//! sets**, and builds three consumers on top:
//!
//! * a **cross-warp race/alias analyzer**: the interpretation is
//!   re-run once per concrete `(block, warp)` pair of the launch
//!   ([`absint::interpret_for_warp`]), pinning the warp-dependent
//!   special registers to singletons, so each site gets a *per-warp*
//!   address set; two warps race when some store's set may overlap
//!   another warp's access set. A launch with no such pair is
//!   *warp-isolated* (`race_free == Some(true)`).
//! * a **coalescing classifier**: the lane stride of an address
//!   determines a sound lower bound on the number of 32-word memory
//!   transactions every full-mask dispatch of that site must issue
//!   (the floor `perfbound` folds into its report and the simulator
//!   validates).
//! * a **store-to-load forwarding analysis** (the precision payoff):
//!   in a warp-isolated launch, a load whose matching store is
//!   *must-available* on every path — no intervening may-aliasing or
//!   address-unknown store, base register untouched — is guaranteed
//!   to read back that warp's own data, so the static issue
//!   scheduler's replay can resolve it from a shadow memory instead
//!   of bailing ([`crate::schedule`], [`crate::trace`]).
//!
//! Soundness contract (machine-checked by `warped_compression::mem`
//! against traced `MemEvent`s): for every traced access at pc `p` by
//! warp `(b, w)`, the active lanes' addresses lie inside the per-warp
//! abstract address set ([`AbsVal::contains_masked`]); if the launch
//! is reported race-free, no traced conflicting cross-warp pair
//! exists; and every site's transaction floor is ≤ the measured
//! transaction count.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use simt_isa::Instruction;

use crate::absint::{interpret, interpret_for_warp, AbsVal, LaunchInfo, Range, WarpFocus};
use crate::cfg::Cfg;
use crate::dataflow::ReachingDefs;

use bdi::WARP_SIZE;

/// Words per memory transaction: the coalescer serves one aligned
/// 32-word (128-byte) segment per transaction, mirroring the access
/// granularity of the paper's Fermi-class memory system.
pub const SEGMENT_WORDS: u64 = 32;

/// Per-warp specialisation cap: launches with more warps than this
/// skip the per-warp re-interpretation (race verdict `None`), keeping
/// the analysis linear in practice. Every suite workload is far
/// below it.
const MAX_FOCUS_WARPS: usize = 256;

/// The statically provable shape of one site's per-lane addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// All active lanes touch one word: one transaction, a broadcast.
    Uniform,
    /// Lane stride ±1: consecutive words, at most two segments, and
    /// never provably more than one.
    Coalesced,
    /// A known lane stride of magnitude ≥ 2: the warp provably spans
    /// multiple segments every full-mask dispatch.
    Strided(i32),
    /// No provable cross-lane structure (data-dependent gathers).
    Scattered,
}

impl AccessPattern {
    /// Short stable name, for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AccessPattern::Uniform => "uniform",
            AccessPattern::Coalesced => "coalesced",
            AccessPattern::Strided(_) => "strided",
            AccessPattern::Scattered => "scattered",
        }
    }
}

/// One static load/store site with its abstract access set.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemSite {
    /// The pc of the `ld`/`st` instruction.
    pub pc: usize,
    /// Whether the site writes memory.
    pub is_store: bool,
    /// The base address register.
    pub base: u8,
    /// The constant word offset folded into the address.
    pub offset: i32,
    /// Launch-wide abstract per-lane address (`base + offset` over
    /// every warp of every block).
    pub address: AbsVal,
    /// The provable coalescing shape of the address.
    pub pattern: AccessPattern,
    /// A sound lower bound on transactions per *full-mask* dispatch
    /// of this site (1 when the site may execute under a partial
    /// mask — a lone active lane always coalesces).
    pub min_transactions: u64,
    /// Whether the site sits inside a divergence region (or the
    /// launch has ragged blocks), so dispatches may be partial-mask.
    pub divergent: bool,
}

/// A statically detected cross-warp conflicting access pair: the
/// store at `store_pc` (in some warp) and the access at `other_pc`
/// (in some *different* warp) may touch the same word.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RacePair {
    /// The storing site.
    pub store_pc: usize,
    /// The conflicting site (may equal `store_pc`: the same store
    /// executed by two warps).
    pub other_pc: usize,
    /// Whether the conflicting site also writes.
    pub other_is_store: bool,
    /// Whether the overlap is *proven*: both sites' addresses are
    /// lane-determined for some warp pair and their concrete sets
    /// intersect. A non-must pair is a may-overlap of ranges only.
    pub must: bool,
}

/// Per-warp specialised address sets for every site.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct WarpAddresses {
    block: u32,
    warp_in_block: u32,
    /// Indexed parallel to [`MemAbs::sites`]; `None` when the site is
    /// unreachable under this warp's specialisation.
    values: Vec<Option<AbsVal>>,
}

/// The full static memory report for one kernel under one launch.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAbs {
    /// Kernel name.
    pub kernel: String,
    /// Every reachable load/store site, in pc order.
    pub sites: Vec<MemSite>,
    /// The cross-warp race verdict: `Some(true)` means *no* store's
    /// per-warp address set may overlap any other warp's access set
    /// (warp-isolated); `Some(false)` means some pair may conflict;
    /// `None` means the launch geometry was unknown or too large to
    /// specialise per warp.
    pub race_free: Option<bool>,
    /// The conflicting pairs behind a `Some(false)` verdict, deduped
    /// by site pair, must-pairs first.
    pub races: Vec<RacePair>,
    /// Load pc → matching store pc: loads the static forwarding
    /// analysis proves always read back the same warp's own
    /// must-available store. Non-empty only for warp-isolated
    /// full-warp launches.
    pub forwardable: BTreeMap<usize, usize>,
    warp_addresses: Vec<WarpAddresses>,
}

impl MemAbs {
    /// The index into [`sites`](Self::sites) of the site at `pc`.
    pub fn site_index(&self, pc: usize) -> Option<usize> {
        self.sites.iter().position(|s| s.pc == pc)
    }

    /// Whether the launch is proven warp-isolated (no cross-warp
    /// conflicting pair can exist).
    pub fn warp_isolated(&self) -> bool {
        self.race_free == Some(true)
    }

    /// The abstract per-lane address of site `site` as seen by warp
    /// `(block, warp_in_block)`: the per-warp specialised value when
    /// one was computed, the launch-wide value otherwise. `None` when
    /// the per-warp interpretation proved the site unreachable for
    /// this warp (no access can be traced there).
    pub fn address_for(&self, site: usize, block: u32, warp_in_block: u32) -> Option<&AbsVal> {
        match self
            .warp_addresses
            .iter()
            .find(|w| w.block == block && w.warp_in_block == warp_in_block)
        {
            Some(w) => w.values.get(site).and_then(|v| v.as_ref()),
            None => self.sites.get(site).map(|s| &s.address),
        }
    }

    /// Whether per-warp specialised address sets were computed.
    pub fn has_warp_addresses(&self) -> bool {
        !self.warp_addresses.is_empty()
    }
}

/// Runs the memory abstract interpretation over a kernel body.
///
/// `cfg` must be the CFG of `instrs` and the kernel must already have
/// passed the structural lints, exactly as for
/// [`interpret`](crate::absint::interpret). `launch` gates the
/// cross-warp analysis: without known grid geometry only the
/// launch-wide access sets and coalescing floors are produced
/// (`race_free == None`).
pub fn analyze_mem(
    kernel: &str,
    instrs: &[Instruction],
    num_regs: u8,
    cfg: &Cfg,
    launch: Option<&LaunchInfo>,
) -> MemAbs {
    let absint = interpret(kernel, instrs, usize::from(num_regs), cfg, launch);

    // Per-site launch-wide access sets.
    let mut sites = Vec::new();
    for (pc, instr) in instrs.iter().enumerate() {
        let Some((base, offset, is_store)) = access_of(instr) else {
            continue;
        };
        let Some(st) = absint.state_at(pc) else {
            continue; // unreachable: no access can happen here
        };
        let address = st[usize::from(base)].add_const(offset);
        let divergent = absint.divergent_at(pc);
        let (pattern, min_transactions) = classify_access(&address, divergent);
        sites.push(MemSite {
            pc,
            is_store,
            base,
            offset,
            address,
            pattern,
            min_transactions,
            divergent,
        });
    }

    // Per-warp specialisation, when the geometry is known and small.
    let mut warp_addresses = Vec::new();
    let geometry = launch.and_then(|l| Some((l, l.blocks?, l.threads_per_block?)));
    if let Some((launch, blocks, tpb)) = geometry {
        let wpb = (tpb as usize).div_ceil(WARP_SIZE);
        if tpb > 0 && blocks > 0 && (blocks as usize).saturating_mul(wpb) <= MAX_FOCUS_WARPS {
            for block in 0..blocks {
                for warp in 0..wpb as u32 {
                    let focus = WarpFocus {
                        block,
                        warp_in_block: warp,
                    };
                    let wa = interpret_for_warp(
                        kernel,
                        instrs,
                        usize::from(num_regs),
                        cfg,
                        launch,
                        focus,
                    );
                    let values = sites
                        .iter()
                        .map(|s| {
                            wa.state_at(s.pc)
                                .map(|st| st[usize::from(s.base)].add_const(s.offset))
                        })
                        .collect();
                    warp_addresses.push(WarpAddresses {
                        block,
                        warp_in_block: warp,
                        values,
                    });
                }
            }
        }
    }

    let (race_free, races) = if warp_addresses.is_empty() {
        (None, Vec::new())
    } else {
        race_analysis(&sites, &warp_addresses)
    };

    let forwardable = if race_free == Some(true)
        && launch.is_some_and(LaunchInfo::full_warps)
        && !warp_addresses.is_empty()
    {
        forwarding_analysis(instrs, num_regs, cfg, &absint, &sites, &warp_addresses)
    } else {
        BTreeMap::new()
    };

    MemAbs {
        kernel: kernel.to_string(),
        sites,
        race_free,
        races,
        forwardable,
        warp_addresses,
    }
}

/// The `(base, offset, is_store)` of a memory instruction.
fn access_of(instr: &Instruction) -> Option<(u8, i32, bool)> {
    match *instr {
        Instruction::Ld { base, offset, .. } => Some((base.index() as u8, offset, false)),
        Instruction::St { base, offset, .. } => Some((base.index() as u8, offset, true)),
        _ => None,
    }
}

/// The coalescing pattern of an abstract address and a sound lower
/// bound on transactions per full-mask dispatch.
///
/// The stride bound: sampled addresses `base + s·i` (mod 2³²) for
/// lanes `i < 32`. For `2 ≤ |s| ≤ 31` the pairwise circular distance
/// is exactly `|s|·|i−j| ≤ 961 < 2³¹`, so two lanes share an aligned
/// 32-word segment only when `|i−j| ≤ ⌊31/|s|⌋`; a segment therefore
/// holds at most `⌊31/|s|⌋+1` lanes and the warp needs at least
/// `⌈32/(⌊31/|s|⌋+1)⌉` transactions. For `|s| ≥ 32` adjacent lanes
/// have circular distance `min(s, 2³²−s) ≥ 32 > 31`, so they can
/// never share a segment: at least 2 transactions. A divergent site
/// may dispatch with one active lane, which always coalesces: floor 1.
fn classify_access(address: &AbsVal, divergent: bool) -> (AccessPattern, u64) {
    let pattern = match *address {
        AbsVal::Uniform(_) => AccessPattern::Uniform,
        AbsVal::LaneAffine { stride, .. } => {
            if stride == 1 || stride == -1 {
                AccessPattern::Coalesced
            } else {
                AccessPattern::Strided(stride)
            }
        }
        AbsVal::NarrowRange(_) | AbsVal::Top => AccessPattern::Scattered,
    };
    let min = if divergent {
        1
    } else {
        match pattern {
            AccessPattern::Strided(s) => {
                let m = u64::from(s.unsigned_abs());
                if m >= SEGMENT_WORDS {
                    2
                } else {
                    let per_segment = (SEGMENT_WORDS - 1) / m + 1;
                    (WARP_SIZE as u64).div_ceil(per_segment)
                }
            }
            _ => 1,
        }
    };
    (pattern, min)
}

/// The per-warp per-site address range (`None` = may be anything).
fn warp_range(wa: &WarpAddresses, site: usize) -> Option<Range> {
    wa.values[site].as_ref().and_then(AbsVal::per_lane_range)
}

/// The exact concrete address set of a lane-determined per-warp
/// value, sorted. `None` when any lane's address is not pinned.
fn concrete_set(v: &AbsVal) -> Option<Vec<u32>> {
    match *v {
        AbsVal::Uniform(r) => Some(vec![r.as_singleton()? as u32]),
        AbsVal::LaneAffine { base, stride } => {
            let b = base.as_singleton()? as u32;
            let mut set: Vec<u32> = (0..WARP_SIZE as u32)
                .map(|i| b.wrapping_add((stride as u32).wrapping_mul(i)))
                .collect();
            set.sort_unstable();
            Some(set)
        }
        _ => None,
    }
    .map(|mut s: Vec<u32>| {
        s.dedup();
        s
    })
}

/// Whether two ranges intersect (unknown ranges intersect everything).
fn ranges_overlap(a: Option<Range>, b: Option<Range>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => a.lo <= b.hi && b.lo <= a.hi,
        _ => true,
    }
}

/// Whether two sorted concrete sets intersect.
fn sets_intersect(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Cross-warp conflicting-pair detection over the per-warp address
/// sets. A pair conflicts when, for some two *different* warps, a
/// store's address range may overlap the other access's range; it is
/// a *must* conflict when both addresses are lane-determined for that
/// warp pair and their concrete sets intersect.
fn race_analysis(sites: &[MemSite], warps: &[WarpAddresses]) -> (Option<bool>, Vec<RacePair>) {
    // Precompute per (site, warp) ranges and concrete sets.
    let ranges: Vec<Vec<Option<Range>>> = warps
        .iter()
        .map(|wa| (0..sites.len()).map(|s| warp_range(wa, s)).collect())
        .collect();
    let concrete: Vec<Vec<Option<Vec<u32>>>> = warps
        .iter()
        .map(|wa| {
            (0..sites.len())
                .map(|s| wa.values[s].as_ref().and_then(concrete_set))
                .collect()
        })
        .collect();

    let mut pairs: BTreeMap<(usize, usize), RacePair> = BTreeMap::new();
    for (i, si) in sites.iter().enumerate() {
        if !si.is_store {
            continue;
        }
        for (j, sj) in sites.iter().enumerate() {
            // A store conflicts with any access, including itself run
            // by two different warps; pairs are keyed by the storing
            // site's pc.
            for (w1, rw1) in ranges.iter().enumerate() {
                for (w2, rw2) in ranges.iter().enumerate() {
                    if w1 == w2 {
                        continue;
                    }
                    // Unreachable for this warp: no access, no race.
                    if warps[w1].values[i].is_none() || warps[w2].values[j].is_none() {
                        continue;
                    }
                    if !ranges_overlap(rw1[i], rw2[j]) {
                        continue;
                    }
                    let must = matches!(
                        (&concrete[w1][i], &concrete[w2][j]),
                        (Some(a), Some(b)) if sets_intersect(a, b)
                    ) && !si.divergent
                        && !sj.divergent;
                    let entry = pairs.entry((si.pc, sj.pc)).or_insert(RacePair {
                        store_pc: si.pc,
                        other_pc: sj.pc,
                        other_is_store: sj.is_store,
                        must,
                    });
                    entry.must |= must;
                }
            }
        }
    }
    let mut races: Vec<RacePair> = pairs.into_values().collect();
    races.sort_by_key(|r| (!r.must, r.store_pc, r.other_pc));
    (Some(races.is_empty()), races)
}

/// Conservative load-taint: a definition is tainted when it is a
/// load, when any source has a tainted reaching definition, or when a
/// masked merge mixes in a tainted old value. This over-approximates
/// the set of registers whose values the static replay may not know —
/// it deliberately does *not* exploit forwarding (that is what it
/// feeds), so it is a superset of the refined taint the lint pipeline
/// computes.
fn conservative_taint(
    instrs: &[Instruction],
    cfg: &Cfg,
    rd: &ReachingDefs,
    absint: &crate::absint::AbsintAnalysis,
) -> Vec<bool> {
    let mut tainted = vec![false; instrs.len()];
    let def_tainted = |tainted: &[bool], at: usize, reg: u8| {
        rd.defs_reaching(at, reg)
            .iter()
            .any(|d| d.pc.is_some_and(|p| tainted[p]))
    };
    let mut changed = true;
    while changed {
        changed = false;
        for (pc, instr) in instrs.iter().enumerate() {
            if tainted[pc] || !cfg.is_reachable(pc) {
                continue;
            }
            let Some(dst) = instr.dst() else { continue };
            let src_taint = instr
                .src_regs()
                .into_iter()
                .any(|r| def_tainted(&tainted, pc, r.index() as u8));
            let merge_taint =
                absint.divergent_at(pc) && def_tainted(&tainted, pc, dst.index() as u8);
            if matches!(instr, Instruction::Ld { .. }) || src_taint || merge_taint {
                tainted[pc] = true;
                changed = true;
            }
        }
    }
    tainted
}

/// Whether two sites may touch a common word *within one warp*: true
/// when, for some warp, the per-warp ranges overlap. Used as the
/// alias-kill rule of the forwarding dataflow; abstract ranges
/// over-approximate each warp's concrete addresses, so a `false`
/// verdict proves disjointness in every warp.
fn intra_warp_may_alias(warps: &[WarpAddresses], a: usize, b: usize) -> bool {
    warps.iter().any(|wa| {
        wa.values[a].is_some()
            && wa.values[b].is_some()
            && ranges_overlap(warp_range(wa, a), warp_range(wa, b))
    })
}

/// Must-available-store dataflow + matching: the forwarding analysis.
///
/// Forward "available stores" over the CFG (meet = intersection): a
/// store becomes available when it executes full-mask with a
/// replay-known base, and is killed by a redefinition of its base
/// register, by any store that may alias it in some warp, or by any
/// store whose address the replay may not know (conservative taint) —
/// the replay clears its shadow on such stores. A load forwards when
/// a store with the *same* `(base, offset)` is available on every
/// path: the base register is untouched in between, so the concrete
/// address vectors are identical and every active lane hits the
/// shadow. Caller guarantees warp isolation and full warps, so the
/// shadow value is also what global memory holds.
fn forwarding_analysis(
    instrs: &[Instruction],
    num_regs: u8,
    cfg: &Cfg,
    absint: &crate::absint::AbsintAnalysis,
    sites: &[MemSite],
    warps: &[WarpAddresses],
) -> BTreeMap<usize, usize> {
    let rd = ReachingDefs::compute(instrs, num_regs, cfg);
    let tainted = conservative_taint(instrs, cfg, &rd, absint);
    let def_tainted = |at: usize, reg: u8| {
        rd.defs_reaching(at, reg)
            .iter()
            .any(|d| d.pc.is_some_and(|p| tainted[p]))
    };
    let site_of = |pc: usize| sites.iter().position(|s| s.pc == pc);

    // avail[pc] = stores must-available on entry; None = unreached.
    let n = instrs.len();
    let mut avail: Vec<Option<BTreeSet<usize>>> = vec![None; n];
    if n == 0 {
        return BTreeMap::new();
    }
    avail[0] = Some(BTreeSet::new());
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        let Some(mut out) = avail[pc].clone() else {
            continue;
        };
        // Kill stores whose base register this instruction redefines.
        if let Some(dst) = instrs[pc].dst() {
            out.retain(|&s_pc| {
                site_of(s_pc).is_none_or(|s| usize::from(sites[s].base) != dst.index())
            });
        }
        if let Instruction::St { base, .. } = instrs[pc] {
            let opaque = def_tainted(pc, base.index() as u8);
            if opaque {
                // Replay-unknown address: the shadow is cleared.
                out.clear();
            } else if let Some(t) = site_of(pc) {
                out.retain(|&s_pc| {
                    site_of(s_pc).is_some_and(|s| !intra_warp_may_alias(warps, s, t))
                });
                if !sites[t].divergent {
                    out.insert(pc);
                }
            } else {
                // Unreachable per launch-wide absint yet reached here:
                // cannot happen, but stay sound.
                out.clear();
            }
        }
        for &succ in cfg.succs(pc) {
            let changed = match &mut avail[succ] {
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
                Some(cur) => {
                    let before = cur.len();
                    cur.retain(|s| out.contains(s));
                    cur.len() != before
                }
            };
            if changed {
                work.push(succ);
            }
        }
    }

    let mut forwardable = BTreeMap::new();
    for (pc, instr) in instrs.iter().enumerate() {
        let Instruction::Ld { base, offset, .. } = *instr else {
            continue;
        };
        let Some(l) = site_of(pc) else { continue };
        if sites[l].divergent {
            continue; // partial-mask loads may miss shadow lanes
        }
        let Some(stores) = &avail[pc] else { continue };
        // Same (base, offset) ⇒ identical address vectors; pick the
        // latest such store (an earlier one is killed by the later
        // one's own may-alias rule, but be explicit).
        let matched = stores
            .iter()
            .rev()
            .find(|&&s_pc| {
                site_of(s_pc).is_some_and(|s| {
                    sites[s].base == base.index() as u8 && sites[s].offset == offset
                })
            })
            .copied();
        if let Some(s_pc) = matched {
            forwardable.insert(pc, s_pc);
        }
    }
    forwardable
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{AluOp, Operand, Reg, Special};

    fn mem_of(instrs: &[Instruction], launch: Option<&LaunchInfo>) -> MemAbs {
        let cfg = Cfg::build(instrs);
        analyze_mem("t", instrs, 8, &cfg, launch)
    }

    fn launch(blocks: u32, tpb: u32) -> LaunchInfo {
        LaunchInfo {
            params: Vec::new(),
            blocks: Some(blocks),
            threads_per_block: Some(tpb),
            mem_words: None,
            initial_mem: None,
        }
    }

    #[test]
    fn coalesced_tid_store_is_race_free_across_warps() {
        // st [gtid + 0] ← gtid: every warp owns a disjoint 32-word
        // window, textbook coalesced and warp-isolated.
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Special(Special::GlobalTid),
            },
            Instruction::St {
                base: Reg(0),
                offset: 0,
                src: Reg(0),
            },
            Instruction::Exit,
        ];
        let m = mem_of(&instrs, Some(&launch(2, 64)));
        assert_eq!(m.sites.len(), 1);
        assert_eq!(m.sites[0].pattern, AccessPattern::Coalesced);
        assert_eq!(m.sites[0].min_transactions, 1);
        assert_eq!(m.race_free, Some(true), "races: {:?}", m.races);
    }

    #[test]
    fn shared_uniform_store_is_a_must_race() {
        // Every warp stores to word 5: a proven cross-warp conflict.
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Imm(5),
            },
            Instruction::St {
                base: Reg(0),
                offset: 0,
                src: Reg(0),
            },
            Instruction::Exit,
        ];
        let m = mem_of(&instrs, Some(&launch(1, 64)));
        assert_eq!(m.race_free, Some(false));
        assert!(m.races.iter().any(|r| r.must && r.store_pc == 1));
    }

    #[test]
    fn strided_access_has_a_transaction_floor() {
        // addr = gtid * 4: stride 4 ⇒ 8 lanes per 32-word segment ⇒
        // at least 4 transactions per dispatch.
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Special(Special::GlobalTid),
            },
            Instruction::Alu {
                op: AluOp::Mul,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(4),
            },
            Instruction::Ld {
                dst: Reg(2),
                base: Reg(1),
                offset: 0,
            },
            Instruction::Exit,
        ];
        let m = mem_of(&instrs, Some(&launch(1, 32)));
        let site = &m.sites[0];
        assert_eq!(site.pattern, AccessPattern::Strided(4));
        assert_eq!(site.min_transactions, 4);
    }

    #[test]
    fn forwarding_matches_store_to_load_in_isolated_launch() {
        // st [gtid] ← x; ld [gtid]: same (base, offset), no
        // intervening store, warp-isolated ⇒ forwardable.
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Special(Special::GlobalTid),
            },
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(100),
            },
            Instruction::St {
                base: Reg(0),
                offset: 0,
                src: Reg(1),
            },
            Instruction::Ld {
                dst: Reg(2),
                base: Reg(0),
                offset: 0,
            },
            Instruction::Exit,
        ];
        let m = mem_of(&instrs, Some(&launch(2, 32)));
        assert_eq!(m.race_free, Some(true));
        assert_eq!(m.forwardable.get(&3), Some(&2));
    }

    #[test]
    fn opaque_store_blocks_forwarding() {
        // The store at pc 4 has a loaded (replay-unknown) base: it
        // clears the shadow, so the load at pc 5 must not forward.
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Special(Special::GlobalTid),
            },
            Instruction::St {
                base: Reg(0),
                offset: 0,
                src: Reg(0),
            },
            Instruction::Ld {
                dst: Reg(1),
                base: Reg(0),
                offset: 64,
            },
            Instruction::Alu {
                op: AluOp::And,
                dst: Reg(1),
                a: Operand::Reg(Reg(1)),
                b: Operand::Imm(3),
            },
            Instruction::St {
                base: Reg(1),
                offset: 0,
                src: Reg(0),
            },
            Instruction::Ld {
                dst: Reg(2),
                base: Reg(0),
                offset: 0,
            },
            Instruction::Exit,
        ];
        let m = mem_of(&instrs, Some(&launch(1, 32)));
        assert!(
            !m.forwardable.contains_key(&5),
            "forwardable: {:?}",
            m.forwardable
        );
    }

    #[test]
    fn unknown_geometry_gives_no_race_verdict() {
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Special(Special::GlobalTid),
            },
            Instruction::St {
                base: Reg(0),
                offset: 0,
                src: Reg(0),
            },
            Instruction::Exit,
        ];
        let m = mem_of(&instrs, None);
        assert_eq!(m.race_free, None);
        assert!(m.forwardable.is_empty());
        assert_eq!(m.sites.len(), 1);
    }
}
