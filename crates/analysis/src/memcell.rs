//! Abstract memory cells: per-word value tracking across the
//! load/store boundary.
//!
//! The warp-value abstract interpretation ([`absint`](crate::absint))
//! loses all information at every `ld` — a load result is at best
//! `Uniform(full)`. This module closes the loop: given the kernel's
//! *entire* initial memory image ([`LaunchInfo::initial_mem`]), it
//! tracks, per memory word, a sound over-approximation of every value
//! that word may hold at any point of the execution, so a load whose
//! abstract address set stays inside tracked words refines its
//! destination to `Uniform(range)`/`NarrowRange(range)` instead of
//! `Top`. Loop trip counts read from uniform init-memory tables become
//! statically resolvable, which is what converts `unknown-predicate`
//! scheduler bails into real issue plans.
//!
//! # The domain
//!
//! Each word `a` of global memory carries a *cell*: either `Top` (may
//! hold anything) or a closed signed range `[lo[a], hi[a]]` of its
//! `i32` reinterpretation, plus a `stored` flag recording whether any
//! reachable store may ever write the word. The table `T` is a sound
//! *whole-execution* invariant: at every point of every execution,
//! every word's concrete value lies in its cell.
//!
//! # Fixpoint and verification
//!
//! `T` is computed by increasing iteration from the optimistic seed
//! `cell[a] = {image[a]}` (memory starts exactly at the image, and
//! cells only ever grow):
//!
//! 1. run the absint fixpoint with loads refined through the current
//!    `T`,
//! 2. fold every reachable store's abstract (address, value) effect
//!    into `T` (an unresolvable address range taints all of memory;
//!    an unresolvable value taints its range to `Top`),
//! 3. repeat until `T` stops changing, widening long-growing cells to
//!    `Top` after [`WIDEN_ROUND`] rounds and giving up entirely after
//!    [`MAX_ROUNDS`].
//!
//! Soundness does **not** rest on the iteration subtleties: after the
//! fixpoint, an independent [`verify`](CellTable::verify) pass re-runs
//! the absint against the final `T` and checks that `T` absorbs every
//! reachable store effect — the closure property. Together with the
//! seed property (the initial memory lies in `T` by construction) this
//! gives soundness by mutual induction over execution steps: if memory
//! lies in `T` before a step, every load refinement is sound, so the
//! absint register states abstract the machine; hence every stored
//! value lies in the (verified) cell it lands in, and memory lies in
//! `T` after the step. If verification fails the table is discarded
//! and the analysis degrades to plain absint — never to an unsound
//! refinement.
//!
//! Out-of-bounds accesses need no modelling: the simulator faults and
//! aborts the launch on the first OOB word, so store ranges are
//! clipped to `[0, words)` (the OOB part of a hybrid range never
//! commits a write that a later load could observe — the machine is
//! dead from that point on) and loads conservatively refuse to refine
//! unless their whole range is in bounds.
//!
//! The final refinement is machine-checked downstream: the
//! `warped_compression::mem` join layer replays every kernel and
//! asserts γ-containment of every traced load value in its refined
//! abstract value, per lane.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use simt_isa::Instruction;

use crate::absint::{interpret_with_cells, AbsVal, AbsintAnalysis, LaunchInfo, Range};
use crate::cfg::Cfg;

/// Rounds after which a still-growing stored cell widens to `Top`.
const WIDEN_ROUND: usize = 8;

/// Hard cap on absint-refine rounds; exceeding it disables the table.
const MAX_ROUNDS: usize = 16;

/// Largest memory image the cell table will track, in words (4 MiB).
/// The suite's kernels are far below this; the cap only guards the
/// per-word arrays against pathological launches.
pub const MAX_CELL_WORDS: usize = 1 << 20;

/// Words per aggregate block: range queries over `[lo, hi]` cost
/// `O(width / BLOCK + BLOCK)` instead of `O(width)`.
const BLOCK: usize = 256;

/// Per-word value cells over one kernel's initial memory image.
///
/// Invariant (established by [`analyze_cells`], checked by
/// [`verify`](Self::verify)): at every point of every execution of the
/// kernel under the given launch, word `a` holds a value whose `i32`
/// reinterpretation lies in `[lo[a], hi[a]]`, unless `top[a]`.
/// `stored[a]` is set iff some reachable store may write word `a`.
#[derive(Clone, Debug)]
pub struct CellTable {
    image: Arc<Vec<u32>>,
    lo: Vec<i32>,
    hi: Vec<i32>,
    top: Vec<bool>,
    stored: Vec<bool>,
    /// Per-`BLOCK` aggregates of the word arrays, rebuilt after every
    /// round of store effects.
    blk_lo: Vec<i32>,
    blk_hi: Vec<i32>,
    blk_any_top: Vec<bool>,
    blk_any_stored: Vec<bool>,
}

/// One reachable store site's abstract effect on memory, in word
/// coordinates: the addresses it may write and the values it may
/// write there. `None` means unbounded.
#[derive(Clone, Debug, PartialEq, Eq)]
struct StoreEffect {
    pc: usize,
    addrs: Option<Range>,
    values: Option<Range>,
}

impl CellTable {
    /// Seeds the table from the image: every cell is the exact
    /// singleton of its initial word, nothing stored.
    fn seed(image: Arc<Vec<u32>>) -> CellTable {
        let n = image.len();
        let lo: Vec<i32> = image.iter().map(|&w| w as i32).collect();
        let hi = lo.clone();
        let mut t = CellTable {
            image,
            lo,
            hi,
            top: vec![false; n],
            stored: vec![false; n],
            blk_lo: Vec::new(),
            blk_hi: Vec::new(),
            blk_any_top: Vec::new(),
            blk_any_stored: Vec::new(),
        };
        t.rebuild_aggregates();
        t
    }

    /// Number of tracked words.
    pub fn words(&self) -> usize {
        self.image.len()
    }

    fn rebuild_aggregates(&mut self) {
        let n = self.words();
        let blocks = n.div_ceil(BLOCK);
        self.blk_lo = vec![i32::MAX; blocks];
        self.blk_hi = vec![i32::MIN; blocks];
        self.blk_any_top = vec![false; blocks];
        self.blk_any_stored = vec![false; blocks];
        for a in 0..n {
            let b = a / BLOCK;
            self.blk_lo[b] = self.blk_lo[b].min(self.lo[a]);
            self.blk_hi[b] = self.blk_hi[b].max(self.hi[a]);
            self.blk_any_top[b] = self.blk_any_top[b] || self.top[a];
            self.blk_any_stored[b] = self.blk_any_stored[b] || self.stored[a];
        }
    }

    /// Whether every word in `[lo, hi]` (inclusive, already in
    /// bounds) is free of reachable stores.
    fn range_store_free(&self, lo: usize, hi: usize) -> bool {
        let mut a = lo;
        while a <= hi {
            let b = a / BLOCK;
            let blk_end = ((b + 1) * BLOCK - 1).min(hi);
            if !self.blk_any_stored[b] {
                a = blk_end + 1;
                continue;
            }
            if a.is_multiple_of(BLOCK) && blk_end == (b + 1) * BLOCK - 1 {
                // Whole block, and it has a stored word.
                return false;
            }
            while a <= blk_end {
                if self.stored[a] {
                    return false;
                }
                a += 1;
            }
        }
        true
    }

    /// The value hull over `[lo, hi]` (inclusive, in bounds), `None`
    /// when some word in the range is `Top`.
    fn range_hull(&self, lo: usize, hi: usize) -> Option<Range> {
        let mut acc: Option<(i32, i32)> = None;
        let mut a = lo;
        while a <= hi {
            let b = a / BLOCK;
            let blk_end = ((b + 1) * BLOCK - 1).min(hi);
            let whole = a.is_multiple_of(BLOCK) && blk_end == (b + 1) * BLOCK - 1;
            if whole {
                if self.blk_any_top[b] {
                    return None;
                }
                acc = Some(match acc {
                    None => (self.blk_lo[b], self.blk_hi[b]),
                    Some((l, h)) => (l.min(self.blk_lo[b]), h.max(self.blk_hi[b])),
                });
                a = blk_end + 1;
                continue;
            }
            while a <= blk_end {
                if self.top[a] {
                    return None;
                }
                acc = Some(match acc {
                    None => (self.lo[a], self.hi[a]),
                    Some((l, h)) => (l.min(self.lo[a]), h.max(self.hi[a])),
                });
                a += 1;
            }
        }
        acc.map(|(l, h)| Range::of(i64::from(l), i64::from(h)))
    }

    /// Clips an abstract address range to the word bounds `[0,
    /// words)`. `None` when the clipped range is empty (every access
    /// faults — the code past it is dead, any refinement vacuous).
    fn clip(&self, r: Range) -> Option<(usize, usize)> {
        let lo = r.lo.max(0);
        let hi = r.hi.min(self.words() as i64 - 1);
        (lo <= hi).then_some((lo as usize, hi as usize))
    }

    /// Refines the value loaded through the abstract address `addr`
    /// (base register value with the constant offset already folded
    /// in). `None` when the table has nothing sound to say and the
    /// caller should fall back to the plain transfer.
    pub fn refine(&self, addr: &AbsVal) -> Option<AbsVal> {
        let r = addr.per_lane_range()?;
        // Any lane possibly out of bounds: the access may fault, but
        // may also fully succeed — no refinement.
        if r.lo < 0 || r.hi >= self.words() as i64 {
            return None;
        }
        let (lo, hi) = (r.lo as usize, r.hi as usize);
        // A singleton per-lane range means every active lane reads the
        // *same* word, so the result is warp-uniform even when the
        // address AbsVal itself is not (e.g. a NarrowRange collapsed
        // to one value).
        let uniform = addr.is_uniform() || r.as_singleton().is_some();
        if let Some(a) = r.as_singleton() {
            let a = a as usize;
            if !self.stored[a] {
                // Never written: the word is exactly its image value.
                return Some(AbsVal::Uniform(Range::singleton(self.image[a] as i32)));
            }
        }
        let hull = self.range_hull(lo, hi)?;
        Some(if uniform {
            AbsVal::Uniform(hull)
        } else {
            AbsVal::narrow(hull)
        })
    }

    /// The image word at `addr` when the table proves no reachable
    /// store ever writes it, so the word holds its image value for the
    /// whole execution — usable by a concrete replay regardless of
    /// warp isolation.
    pub fn read_only_word(&self, addr: u32) -> Option<u32> {
        let a = addr as usize;
        (a < self.words() && !self.stored[a]).then(|| self.image[a])
    }

    /// Folds one store effect into the table; returns whether any
    /// cell grew. Monotone: flags only get set, hulls only widen.
    fn apply(&mut self, eff: &StoreEffect) -> bool {
        let (lo, hi) = match eff.addrs {
            Some(r) => match self.clip(r) {
                Some(b) => b,
                // Every possible address faults: no observable write.
                None => return false,
            },
            // Unbounded address: all of memory may be overwritten
            // with this effect's values.
            None => (0, self.words() - 1),
        };
        let mut changed = false;
        for a in lo..=hi {
            if !self.stored[a] {
                self.stored[a] = true;
                changed = true;
            }
            if self.top[a] {
                continue;
            }
            match eff.values {
                None => {
                    self.top[a] = true;
                    changed = true;
                }
                Some(v) => {
                    let (l, h) = (v.lo as i32, v.hi as i32);
                    if l < self.lo[a] {
                        self.lo[a] = l;
                        changed = true;
                    }
                    if h > self.hi[a] {
                        self.hi[a] = h;
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    /// Widens every stored cell to `Top` (flags untouched); used to
    /// cut slowly-growing chains after [`WIDEN_ROUND`] rounds.
    fn widen_stored(&mut self) -> bool {
        let mut changed = false;
        for a in 0..self.words() {
            if self.stored[a] && !self.top[a] {
                self.top[a] = true;
                changed = true;
            }
        }
        changed
    }

    /// The closure check: whether the table absorbs every given store
    /// effect — each reachable (in-bounds) stored word is flagged and
    /// its cell contains the whole abstract value range. This is the
    /// inductive step of the soundness argument, checked against the
    /// *final* table independently of how the fixpoint got there.
    fn verify(&self, effects: &[StoreEffect]) -> bool {
        effects.iter().all(|eff| {
            let (lo, hi) = match eff.addrs {
                Some(r) => match self.clip(r) {
                    Some(b) => b,
                    None => return true,
                },
                None => (0, self.words() - 1),
            };
            (lo..=hi).all(|a| {
                self.stored[a]
                    && (self.top[a]
                        || eff.values.is_some_and(|v| {
                            v.lo >= i64::from(self.lo[a]) && v.hi <= i64::from(self.hi[a])
                        }))
            })
        })
    }

    /// Maximal store-free intervals `[lo, hi)` of the image, in word
    /// coordinates — the regions a load may resolve from concretely.
    pub fn store_free_intervals(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut start: Option<usize> = None;
        for a in 0..self.words() {
            match (self.stored[a], start) {
                (false, None) => start = Some(a),
                (true, Some(s)) => {
                    out.push((s as u32, a as u32));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            out.push((s as u32, self.words() as u32));
        }
        out
    }
}

/// The result of the memory-cell analysis for one kernel + launch.
#[derive(Clone, Debug)]
pub struct MemCells {
    /// Kernel name, for reports.
    pub kernel: String,
    /// Whether a verified cell table is armed. When `false` (no image,
    /// image/`mem_words` mismatch, oversized memory, or a failed
    /// verification) `absint` is the plain, unrefined interpretation
    /// and no load is refined.
    pub enabled: bool,
    /// The verified table, when enabled.
    pub table: Option<CellTable>,
    /// The absint fixpoint — refined through the table when enabled,
    /// plain otherwise. Downstream consumers (scheduler, lints) use
    /// this instead of re-running [`interpret`](crate::interpret).
    pub absint: AbsintAnalysis,
    /// Per-`ld`-pc refined destination values: the loads the table
    /// actually sharpened (refinement succeeded where the plain
    /// transfer would have said `Top`/`Uniform(full)`).
    pub refined: BTreeMap<usize, AbsVal>,
    /// `ld` pcs whose whole abstract address range is in-bounds and
    /// store-free: a concrete replay can resolve every lane of these
    /// from the image alone.
    pub resolvable: BTreeSet<usize>,
    /// Maximal store-free image intervals `[lo, hi)`, for reports.
    pub store_free: Vec<(u32, u32)>,
    /// Whether the post-fixpoint closure check passed (always `true`
    /// when `enabled`; recorded separately so reports can distinguish
    /// "no image" from "verification failed").
    pub verified: bool,
    /// Absint-refine rounds the fixpoint took.
    pub iterations: usize,
}

impl MemCells {
    /// See [`CellTable::read_only_word`]; `None` when disabled.
    pub fn read_only_word(&self, addr: u32) -> Option<u32> {
        self.table.as_ref()?.read_only_word(addr)
    }
}

/// Collects every reachable store site's abstract effect under the
/// given absint fixpoint.
fn store_effects(instrs: &[Instruction], absint: &AbsintAnalysis) -> Vec<StoreEffect> {
    let mut out = Vec::new();
    for (pc, instr) in instrs.iter().enumerate() {
        let Instruction::St { base, offset, src } = instr else {
            continue;
        };
        // Unreachable stores never execute: no effect.
        let Some(st) = absint.state_at(pc) else {
            continue;
        };
        out.push(StoreEffect {
            pc,
            addrs: st[base.index()].add_const(*offset).per_lane_range(),
            values: st[src.index()].per_lane_range(),
        });
    }
    out
}

/// Runs the memory-cell analysis: seeds per-word cells from the
/// launch's initial-memory image, iterates the refined absint fixpoint
/// against the growing table, verifies closure, and distills the
/// refined loads. Falls back to the plain absint (with `enabled =
/// false`) whenever a sound table cannot be established — callers
/// never observe an unverified refinement.
pub fn analyze_cells(
    kernel: &str,
    instrs: &[Instruction],
    num_regs: usize,
    cfg: &Cfg,
    launch: Option<&LaunchInfo>,
) -> MemCells {
    let plain = |verified: bool, iterations: usize| MemCells {
        kernel: kernel.to_string(),
        enabled: false,
        table: None,
        absint: interpret_with_cells(kernel, instrs, num_regs, cfg, launch, None),
        refined: BTreeMap::new(),
        resolvable: BTreeSet::new(),
        store_free: Vec::new(),
        verified,
        iterations,
    };
    let image = match launch.and_then(|l| l.initial_mem.as_ref()) {
        Some(img) => img,
        None => return plain(false, 0),
    };
    // The image must cover all of memory: a partial image would seed
    // untracked words with bogus exact values.
    let covers = launch
        .and_then(|l| l.mem_words)
        .is_some_and(|w| w == image.len() as u64);
    if !covers || image.is_empty() || image.len() > MAX_CELL_WORDS {
        return plain(false, 0);
    }

    let mut table = CellTable::seed(Arc::clone(image));
    let mut absint;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        if rounds > MAX_ROUNDS {
            return plain(false, rounds);
        }
        absint = interpret_with_cells(kernel, instrs, num_regs, cfg, launch, Some(&table));
        let effects = store_effects(instrs, &absint);
        let mut changed = false;
        for eff in &effects {
            changed |= table.apply(eff);
        }
        if changed && rounds >= WIDEN_ROUND {
            table.widen_stored();
        }
        if changed {
            table.rebuild_aggregates();
            continue;
        }
        // Fixpoint reached: `absint` was computed against exactly this
        // table, and these effects are its stores. Verify closure.
        if !table.verify(&effects) {
            return plain(false, rounds);
        }
        break;
    }

    // Distill the refined loads from the final fixpoint.
    let mut refined = BTreeMap::new();
    let mut resolvable = BTreeSet::new();
    for (pc, instr) in instrs.iter().enumerate() {
        let Instruction::Ld { base, offset, .. } = instr else {
            continue;
        };
        let Some(st) = absint.state_at(pc) else {
            continue;
        };
        let addr = st[base.index()].add_const(*offset);
        if let Some(v) = table.refine(&addr) {
            refined.insert(pc, v);
        }
        if let Some(r) = addr.per_lane_range() {
            if r.lo >= 0
                && r.hi < table.words() as i64
                && table.range_store_free(r.lo as usize, r.hi as usize)
            {
                resolvable.insert(pc);
            }
        }
    }
    let store_free = table.store_free_intervals();
    MemCells {
        kernel: kernel.to_string(),
        enabled: true,
        table: Some(table),
        absint,
        refined,
        resolvable,
        store_free,
        verified: true,
        iterations: rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{AluOp, Instruction, Operand, Reg, Special};

    fn launch_with_image(words: Vec<u32>) -> LaunchInfo {
        LaunchInfo {
            params: Vec::new(),
            blocks: Some(1),
            threads_per_block: Some(32),
            mem_words: Some(words.len() as u64),
            initial_mem: Some(Arc::new(words)),
        }
    }

    fn cells_of(instrs: &[Instruction], launch: &LaunchInfo) -> MemCells {
        let cfg = Cfg::build(instrs);
        analyze_cells("t", instrs, 6, &cfg, Some(launch))
    }

    #[test]
    fn store_free_uniform_load_refines_to_image_singleton() {
        // r0 = 0; r1 = ld [r0 + 2]  — word 2 holds 7, never stored.
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Imm(0),
            },
            Instruction::Ld {
                dst: Reg(1),
                base: Reg(0),
                offset: 2,
            },
            Instruction::Exit,
        ];
        let launch = launch_with_image(vec![3, 5, 7, 9]);
        let c = cells_of(&instrs, &launch);
        assert!(c.enabled && c.verified);
        assert_eq!(
            c.refined.get(&1),
            Some(&AbsVal::Uniform(Range::singleton(7)))
        );
        assert!(c.resolvable.contains(&1));
        assert_eq!(c.read_only_word(2), Some(7));
        assert_eq!(c.store_free, vec![(0, 4)]);
    }

    #[test]
    fn per_lane_table_load_refines_to_value_hull() {
        // r0 = %laneid; r1 = ld [r0] — lanes index words 0..32 of a
        // table valued 10..=41: per-lane refinement to that hull.
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Special(Special::LaneId),
            },
            Instruction::Ld {
                dst: Reg(1),
                base: Reg(0),
                offset: 0,
            },
            Instruction::Exit,
        ];
        let launch = launch_with_image((0..32u32).map(|i| 10 + i).collect());
        let c = cells_of(&instrs, &launch);
        assert!(c.enabled);
        assert_eq!(
            c.refined.get(&1),
            Some(&AbsVal::NarrowRange(Range::of(10, 41)))
        );
    }

    #[test]
    fn stored_word_joins_image_and_stored_value() {
        // st [0] = 100, then ld [r0] with r0 ∈ {0} — word 0 may hold
        // its image value 3 or the stored 100: hull [3, 100], still
        // uniform (singleton address), not the image singleton.
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Imm(0),
            },
            Instruction::Mov {
                dst: Reg(1),
                src: Operand::Imm(100),
            },
            Instruction::St {
                base: Reg(0),
                offset: 0,
                src: Reg(1),
            },
            Instruction::Ld {
                dst: Reg(2),
                base: Reg(0),
                offset: 0,
            },
            Instruction::Exit,
        ];
        let launch = launch_with_image(vec![3, 5]);
        let c = cells_of(&instrs, &launch);
        assert!(c.enabled);
        assert_eq!(c.refined.get(&3), Some(&AbsVal::Uniform(Range::of(3, 100))));
        assert!(!c.resolvable.contains(&3), "stored word is not resolvable");
        assert_eq!(c.read_only_word(0), None);
        assert_eq!(c.store_free, vec![(1, 2)]);
    }

    #[test]
    fn unbounded_store_address_taints_all_cells() {
        // r0 = ld [r1] with r1 = %laneid (word values full range after
        // a self-referential store)… simpler: store through a Top
        // address by loading the address itself from memory twice.
        // r0 = %laneid; r1 = ld [r0] (refines to hull, still bounded);
        // r2 = r1 * r1 → may exceed bounds knowledge… Use a genuinely
        // unbounded address: r1 = ld [r0] where the image holds huge
        // values, so r1's range covers OOB and refinement of the
        // second load fails.
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Imm(0),
            },
            Instruction::Ld {
                dst: Reg(1),
                base: Reg(0),
                offset: 0,
            },
            // st [r1] = r1: address range [−2^31, 2^31−1]? No — word 0
            // holds 0x8000_0000, an i32 of i32::MIN, so r1 is that
            // singleton; the store faults on every path (clip → empty)
            // and the table stays clean.
            Instruction::St {
                base: Reg(1),
                offset: 0,
                src: Reg(1),
            },
            Instruction::Exit,
        ];
        let launch = launch_with_image(vec![0x8000_0000, 42]);
        let c = cells_of(&instrs, &launch);
        assert!(c.enabled);
        // The always-faulting store leaves every word store-free.
        assert_eq!(c.store_free, vec![(0, 2)]);
    }

    #[test]
    fn top_valued_store_makes_cells_top_but_stays_verified() {
        // r1 = ld [r0=0] (refines to image singleton 1), then
        // st [r1] = r2 where r2 = ld [r1] — the second load reads word
        // 1 (value 0xffff_fff0 = −16 as i32), store writes word 1's
        // value at address −16 → faults. Keep it simpler: store a
        // *Top* value at a known address.
        // r2 starts 0; loop-free: r2 = ld [r0+1] (word 1 = big), then
        // st [r0+0] = r2. Word 0's cell grows to hull(image 5, big).
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Imm(0),
            },
            Instruction::Ld {
                dst: Reg(2),
                base: Reg(0),
                offset: 1,
            },
            Instruction::St {
                base: Reg(0),
                offset: 0,
                src: Reg(2),
            },
            Instruction::Exit,
        ];
        let launch = launch_with_image(vec![5, 1000]);
        let c = cells_of(&instrs, &launch);
        assert!(c.enabled && c.verified);
        // ld [0] would now see hull(5, [image-or-stored]) — check via
        // the table directly.
        let t = c.table.as_ref().expect("enabled");
        assert_eq!(
            t.refine(&AbsVal::Uniform(Range::singleton(0))),
            Some(AbsVal::Uniform(Range::of(5, 1000)))
        );
        assert_eq!(t.read_only_word(0), None);
        assert_eq!(t.read_only_word(1), Some(1000));
    }

    #[test]
    fn table_trip_count_loop_converges_with_exact_bound() {
        // r0 = 0; r1 = ld [r0+0] (trip count from word 0 = 3);
        // loop: r2 += 1; r1 -= 1; bra r1 → loop. The refined load
        // makes r1 a singleton 3, so the loop bound is statically
        // known and the branch predicate stays resolvable.
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Imm(0),
            },
            Instruction::Ld {
                dst: Reg(1),
                base: Reg(0),
                offset: 0,
            },
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(2),
                a: Operand::Reg(Reg(2)),
                b: Operand::Imm(1),
            },
            Instruction::Alu {
                op: AluOp::Sub,
                dst: Reg(1),
                a: Operand::Reg(Reg(1)),
                b: Operand::Imm(1),
            },
            Instruction::Bra {
                pred: Reg(1),
                target: 2,
                reconv: 5,
            },
            Instruction::Exit,
        ];
        let launch = launch_with_image(vec![3, 0, 0, 0]);
        let c = cells_of(&instrs, &launch);
        assert!(c.enabled && c.verified);
        assert_eq!(
            c.refined.get(&1),
            Some(&AbsVal::Uniform(Range::singleton(3))),
            "trip count resolves to the exact table value"
        );
    }

    #[test]
    fn missing_or_partial_image_disables_refinement() {
        let instrs = vec![
            Instruction::Ld {
                dst: Reg(1),
                base: Reg(0),
                offset: 0,
            },
            Instruction::Exit,
        ];
        let cfg = Cfg::build(&instrs);
        // No image at all.
        let no_img = LaunchInfo {
            params: Vec::new(),
            blocks: Some(1),
            threads_per_block: Some(32),
            mem_words: Some(4),
            initial_mem: None,
        };
        let c = analyze_cells("t", &instrs, 6, &cfg, Some(&no_img));
        assert!(!c.enabled && c.refined.is_empty());
        // Image shorter than memory: must not arm.
        let partial = LaunchInfo {
            mem_words: Some(8),
            initial_mem: Some(Arc::new(vec![1, 2, 3, 4])),
            ..no_img.clone()
        };
        let c = analyze_cells("t", &instrs, 6, &cfg, Some(&partial));
        assert!(!c.enabled);
        // And no launch info at all.
        let c = analyze_cells("t", &instrs, 6, &cfg, None);
        assert!(!c.enabled);
    }

    #[test]
    fn out_of_bounds_load_range_refuses_refinement() {
        // r0 = %laneid (0..=31), memory only 8 words: range pokes OOB.
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Special(Special::LaneId),
            },
            Instruction::Ld {
                dst: Reg(1),
                base: Reg(0),
                offset: 0,
            },
            Instruction::Exit,
        ];
        let launch = launch_with_image(vec![1; 8]);
        let c = cells_of(&instrs, &launch);
        assert!(c.enabled);
        assert_eq!(c.refined.get(&1), None);
        assert!(!c.resolvable.contains(&1));
    }

    #[test]
    fn store_free_query_matches_naive_scan() {
        // Exercise the block aggregates across a BLOCK boundary.
        let words = BLOCK * 2 + 17;
        let mut t = CellTable::seed(Arc::new(vec![0u32; words]));
        for &a in &[3usize, BLOCK - 1, BLOCK + 5, 2 * BLOCK + 16] {
            t.apply(&StoreEffect {
                pc: 0,
                addrs: Some(Range::singleton(a as i32)),
                values: Some(Range::singleton(9)),
            });
        }
        t.rebuild_aggregates();
        for lo in [0usize, 1, BLOCK - 2, BLOCK, 2 * BLOCK] {
            for hi in [lo, lo + 1, BLOCK + 4, 2 * BLOCK + 16] {
                if hi >= words || hi < lo {
                    continue;
                }
                let naive = (lo..=hi).all(|a| !t.stored[a]);
                assert_eq!(t.range_store_free(lo, hi), naive, "[{lo}, {hi}]");
            }
        }
        // Hulls agree with a naive fold too.
        let hull = t.range_hull(0, words - 1).expect("no top cells");
        assert_eq!((hull.lo, hull.hi), (0, 9));
    }
}
