//! Ahead-of-time issue scheduling: the static stack as an optimizer.
//!
//! The analyses built so far — reaching-def dependence edges, absint
//! compression classes, the perfbound pipeline-timing DP — only ever
//! *bound* the dynamic simulator. This module turns them into a
//! compiler: [`schedule_kernel`] consumes the same launch-specialised
//! per-warp replay ([`WarpReplay`](crate::trace::WarpReplay)) the
//! performance bound uses and emits an [`IssuePlan`] — a per-warp,
//! per-PC static issue slot and operand-fetch ordering that provably
//! respects
//!
//! * RAW/WAW/WAR hazards and per-warp program order (the
//!   [`TimingState`](crate::trace::TimingState) rules, which are a
//!   relaxation of the engine's scoreboard: every constraint the plan
//!   honours is one the hardware also enforces),
//! * compression/decompression latencies (charged conservatively: any
//!   operand *not proven* uncompressed pays the decompressor),
//! * the operand-collector cluster mapping (`max(1, k)` serialized
//!   fetch cycles per instruction — all of one warp's fetches claim
//!   its cluster's base bank),
//! * the issue ports (at most one instruction per scheduler per cycle,
//!   warp → scheduler by `slot % num_schedulers`, greedy-then-oldest
//!   pick order like the engine's GTO),
//! * the compressor ports (at most `num_compressors` compression
//!   passes *start* per cycle, arbitrated ahead of time),
//! * block-wave residency (a block launches when `warps_per_block`
//!   register-file slots are free; slots are reused only after the
//!   previous warp's last planned event).
//!
//! The plan is *executable*: `gpu-sim`'s `scheduled` mode replays it
//! with the dynamic scoreboard and collector arbitration bypassed,
//! re-checking every hazard rule statically and the SIMT stack
//! (pc/mask) at runtime. Three soundness properties gate the result:
//!
//! 1. final register state is bit-identical to the dynamic core,
//! 2. `total_cycles` ≥ the perfbound static floor — true *by
//!    construction* (per-warp commit times dominate the perfbound DP,
//!    the issue-port cap dominates the issue-width floor, the
//!    compressor cap dominates the compressor-port floor),
//! 3. `total_cycles` ≤ dynamic cycles + a documented slack — checked
//!    per run by `warped_compression::schedule`.
//!
//! Kernels whose branches the replay cannot resolve (data-dependent
//! predicates, fuel exhaustion) **bail** with a [`ScheduleBail`]; the
//! `unschedulable-region` lint over-approximates that set statically,
//! and such kernels fall back to the dynamic engine. This is the DICE
//! direction from PAPERS.md: SIMT workloads with statically known
//! dependence and divergence structure don't need dynamic issue
//! hardware at all.

use std::collections::BTreeMap;
use std::fmt;

use bdi::{BdiCodec, WARP_SIZE};
use serde::{Deserialize, Serialize};
use simt_isa::Kernel;

use crate::cfg::Cfg;
use crate::perfbound::{PerfLaunch, PerfMachine};
use crate::trace::{LossReason, StepOutcome, TimingState, TraceStep, WarpReplay};

/// One statically scheduled instruction of one warp. The cycle fields
/// are absolute (plan-global); the replayer executes them verbatim and
/// re-derives the hazard rules as a static pre-check.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedInstr {
    /// The pc this step executes (checked against the real SIMT stack
    /// at issue).
    pub pc: usize,
    /// The active thread mask it must execute under (checked at issue).
    pub mask: u32,
    /// The engine's divergence predicate at issue.
    pub divergent: bool,
    /// Issue cycle (stack advance for non-branches; collector-less
    /// `jmp`/`exit` complete here).
    pub issue: u64,
    /// Operand-capture cycle (`issue + max(1, k)` serialized fetches);
    /// `None` for `jmp`/`exit`. Branches resolve here, memory
    /// instructions access memory here.
    pub dispatch: Option<u64>,
    /// Writeback cycle; `None` when nothing is written back.
    pub retire: Option<u64>,
    /// Operand fetch order: unique source registers, first-use order.
    pub sources: Vec<usize>,
    /// Destination register, if any.
    pub dst: Option<usize>,
    /// Whether the writeback passes through the compressor.
    pub compresses: bool,
    /// Decompression latency charged into `retire` (non-zero whenever
    /// any operand was not *proven* to be stored uncompressed).
    pub decomp_cycles: u64,
    /// Compressor latency charged into `retire` (0 = compressor
    /// bypassed). The compressor port is occupied starting at
    /// `retire − comp_cycles`.
    pub comp_cycles: u64,
}

/// The static schedule of one warp.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpPlan {
    /// Block index in the grid.
    pub block: usize,
    /// Warp index within the block.
    pub warp_in_block: usize,
    /// Register-file slot (and scheduler: `slot % num_schedulers`,
    /// cluster: `slot % num_clusters`) the warp occupies.
    pub slot: usize,
    /// Global launch order (the GTO age key).
    pub launch_seq: u64,
    /// Cycle the warp's registers are allocated; no step issues before
    /// it.
    pub launch_cycle: u64,
    /// Cycle the slot is released — strictly after every planned event
    /// of this warp, so slot reuse never overlaps lifetimes.
    pub free_cycle: u64,
    /// The warp's instruction stream, in issue order.
    pub steps: Vec<PlannedInstr>,
}

/// A complete ahead-of-time issue schedule for one kernel × launch ×
/// machine.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssuePlan {
    /// Kernel name.
    pub kernel: String,
    /// Issue ports the plan was arbitrated for.
    pub num_schedulers: usize,
    /// Compressor ports the plan was arbitrated for.
    pub num_compressors: usize,
    /// Register-file residency the plan was laid out for.
    pub max_resident_warps: usize,
    /// Warps per block at the architectural warp size.
    pub warps_per_block: usize,
    /// Plan makespan: one past the last planned event; the scheduled
    /// backend finishes in exactly this many cycles.
    pub total_cycles: u64,
    /// Instructions planned across all warps (equals the perfbound
    /// instruction floor — the same replay produced both).
    pub planned_instructions: u64,
    /// Compression passes the plan charges (and arbitrates ports for).
    pub compressor_activations: u64,
    /// Decompressor activations the replay *proved* (operands known
    /// stored-compressed; operands with unknown stored form are
    /// latency-charged but not counted).
    pub decompressor_activations: u64,
    /// Per-warp schedules, in `(block, warp_in_block)` order.
    pub warps: Vec<WarpPlan>,
}

impl IssuePlan {
    /// The plan of warp `warp_in_block` of `block`.
    pub fn warp(&self, block: usize, warp_in_block: usize) -> Option<&WarpPlan> {
        self.warps.get(block * self.warps_per_block + warp_in_block)
    }
}

/// Why a kernel cannot be statically scheduled. Such kernels fall back
/// to the dynamic engine; the `unschedulable-region` lint flags the
/// predicate-driven cases ahead of time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleBail {
    /// A branch predicate was neither concretely replayable nor
    /// absint-resolvable: the issue order depends on runtime data.
    UnknownPredicate {
        /// The branch pc.
        pc: usize,
        /// Block whose replay hit the unresolvable branch.
        block: usize,
        /// Warp index within that block.
        warp: usize,
    },
    /// The replay's instruction budget ran out (extreme trip counts).
    FuelExhausted {
        /// The pc the replay stopped at.
        pc: usize,
        /// Block whose replay ran out of fuel.
        block: usize,
        /// Warp index within that block.
        warp: usize,
    },
    /// One block needs more register-file slots than the machine has.
    BlockTooLarge {
        /// Warps per block of the launch.
        warps_needed: usize,
        /// Resident-warp slots available.
        slots_available: usize,
    },
}

impl ScheduleBail {
    /// The pc precision was lost at, for the predicate-driven reasons.
    pub fn pc(&self) -> Option<usize> {
        match *self {
            ScheduleBail::UnknownPredicate { pc, .. } | ScheduleBail::FuelExhausted { pc, .. } => {
                Some(pc)
            }
            ScheduleBail::BlockTooLarge { .. } => None,
        }
    }
}

impl fmt::Display for ScheduleBail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScheduleBail::UnknownPredicate { pc, block, warp } => write!(
                f,
                "branch predicate at @{pc} (block {block}, warp {warp}) is not statically resolvable"
            ),
            ScheduleBail::FuelExhausted { pc, block, warp } => {
                write!(f, "replay fuel exhausted at @{pc} (block {block}, warp {warp})")
            }
            ScheduleBail::BlockTooLarge {
                warps_needed,
                slots_available,
            } => write!(
                f,
                "block needs {warps_needed} warp slots but only {slots_available} exist"
            ),
        }
    }
}

impl std::error::Error for ScheduleBail {}

fn bail_of(reason: LossReason, block: usize, warp: usize) -> ScheduleBail {
    match reason {
        LossReason::UnknownPredicate { pc } => ScheduleBail::UnknownPredicate { pc, block, warp },
        LossReason::FuelExhausted { pc } => ScheduleBail::FuelExhausted { pc, block, warp },
    }
}

#[derive(Clone, Copy)]
struct SlotState {
    free_at: u64,
    occupied: bool,
}

struct Resident<'a> {
    slot: usize,
    block: usize,
    warp_in_block: usize,
    launch_seq: u64,
    launch_cycle: u64,
    replay: WarpReplay<'a>,
    timing: TimingState,
    pending: Option<TraceStep>,
    steps: Vec<PlannedInstr>,
}

/// Compiles `kernel` × `launch` × `machine` into an [`IssuePlan`], or
/// bails when the issue order is not statically determined.
///
/// `max_resident_warps` is the register-file residency of the target
/// machine (`min(max_warps_per_sm, RegisterFile::max_slots)`); the plan
/// launches blocks in waves within it, mirroring the engine's
/// first-free-slots-in-index-order allocation.
///
/// The scheduler is a deterministic greedy list scheduler over the
/// shared per-warp replay: at each cycle each issue port picks, in
/// greedy-then-oldest order, one resident warp whose next instruction
/// is hazard-feasible ([`TimingState::earliest`]) and whose compressor
/// reservation (if any) fits the per-cycle port cap, then commits the
/// instruction's event cycles ([`TimingState::commit_at`]). Time skips
/// straight to the next feasible event when no port can fire.
pub fn schedule_kernel(
    kernel: &Kernel,
    launch: &PerfLaunch,
    machine: &PerfMachine,
    max_resident_warps: usize,
) -> Result<IssuePlan, ScheduleBail> {
    let instrs = kernel.instrs();
    let num_regs = usize::from(kernel.num_regs()).max(1);
    let wpb = launch.warps_per_block();
    if wpb > max_resident_warps {
        return Err(ScheduleBail::BlockTooLarge {
            warps_needed: wpb,
            slots_available: max_resident_warps,
        });
    }
    let cfg = Cfg::build(instrs);
    // The memory-cell analysis carries the absint fixpoint, refined
    // through the verified per-word value table whenever the launch
    // supplies its full initial-memory image: loads from never-stored
    // uniform tables become statically known, so table-driven trip
    // counts and predicates resolve instead of bailing.
    let cells = crate::memcell::analyze_cells(
        kernel.name(),
        instrs,
        num_regs,
        &cfg,
        Some(&launch.absint_info()),
    );
    let absint = &cells.absint;
    let codec = BdiCodec::new(machine.choices.clone());
    // Precision payoff of the address abstraction: when no two warps
    // can touch the same word with a store involved, each warp's view
    // of memory is exactly its own stores, so the replay may forward
    // known stored values into loads instead of going opaque.
    let mem = crate::memabs::analyze_mem(
        kernel.name(),
        instrs,
        kernel.num_regs(),
        &cfg,
        Some(&launch.absint_info()),
    );
    let forward_mem = mem.warp_isolated();

    let total_warps = launch.blocks * wpb;
    let mut plans: Vec<Option<WarpPlan>> = (0..total_warps).map(|_| None).collect();
    let mut slots = vec![
        SlotState {
            free_at: 0,
            occupied: false
        };
        max_resident_warps
    ];
    let mut residents: Vec<Option<Resident>> = (0..max_resident_warps).map(|_| None).collect();
    let mut sched_last: Vec<Option<usize>> = vec![None; machine.num_schedulers];
    let mut comp_starts: BTreeMap<u64, u32> = BTreeMap::new();
    let mut next_block = 0usize;
    let mut launch_seq = 0u64;
    let mut finished = 0usize;
    let mut planned_instructions = 0u64;
    let mut compressor_activations = 0u64;
    let mut decompressor_activations = 0u64;

    let mut t = 0u64;
    while finished < total_warps {
        // Block-wave launches: the engine launches the next block when
        // `wpb` slots are free, taking the first free slots in index
        // order.
        while next_block < launch.blocks {
            let free: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.occupied && s.free_at <= t)
                .map(|(i, _)| i)
                .take(wpb)
                .collect();
            if free.len() < wpb {
                break;
            }
            for (w, &slot) in free.iter().enumerate() {
                let threads = (launch.threads_per_block - w * WARP_SIZE).min(WARP_SIZE);
                let mut replay = WarpReplay::new(
                    machine, &codec, launch, absint, instrs, num_regs, next_block, w, threads,
                );
                if forward_mem {
                    replay.enable_memory_forwarding();
                }
                replay.enable_initial_image(&cells);
                let pending = match replay.step() {
                    StepOutcome::Done => None,
                    StepOutcome::Step(s) => Some(s),
                    StepOutcome::Lost(r) => return Err(bail_of(r, next_block, w)),
                };
                slots[slot].occupied = true;
                residents[slot] = Some(Resident {
                    slot,
                    block: next_block,
                    warp_in_block: w,
                    launch_seq,
                    launch_cycle: t,
                    replay,
                    timing: TimingState::new(num_regs),
                    pending,
                    steps: Vec::new(),
                });
                launch_seq += 1;
            }
            next_block += 1;
        }

        // Issue phase: each port fires at most once per cycle, greedy-
        // then-oldest (the engine's GTO), skipping warps whose
        // compressor reservation would overflow a port cycle.
        for (port, last) in sched_last.iter_mut().enumerate() {
            let mut order: Vec<usize> = Vec::new();
            if let Some(s) = *last {
                if residents[s].is_some() {
                    order.push(s);
                }
            }
            let mut rest: Vec<(u64, usize)> = residents
                .iter()
                .flatten()
                .filter(|r| r.slot % machine.num_schedulers == port && Some(r.slot) != *last)
                .map(|r| (r.launch_seq, r.slot))
                .collect();
            rest.sort_unstable();
            order.extend(rest.into_iter().map(|(_, s)| s));

            for slot in order {
                let r = residents[slot].as_mut().expect("resident in order list");
                let Some(step) = r.pending.as_ref() else {
                    continue;
                };
                if r.timing.earliest(&step.instr).max(r.launch_cycle) > t {
                    continue;
                }
                let decomp = if step.sources.iter().any(|f| f.compressed != Some(false)) {
                    machine.decompression_latency
                } else {
                    0
                };
                let comp = if step.compresses {
                    machine.compression_latency
                } else {
                    0
                };
                if step.compresses {
                    let k = step.sources.len() as u64;
                    let dispatch = t + k.max(1);
                    let retire =
                        dispatch + machine.latency_of(step.instr.latency_class()) + decomp + comp;
                    let start = retire - comp;
                    if comp_starts.get(&start).copied().unwrap_or(0)
                        >= machine.num_compressors as u32
                    {
                        continue; // port full at that cycle; try another warp
                    }
                    *comp_starts.entry(start).or_insert(0) += 1;
                    compressor_activations += 1;
                }
                if step.sources.iter().any(|f| f.compressed == Some(true)) {
                    decompressor_activations += 1;
                }
                let step = r.pending.take().expect("checked above");
                let times = r.timing.commit_at(t, &step.instr, machine, decomp, comp);
                r.steps.push(PlannedInstr {
                    pc: step.pc,
                    mask: step.mask,
                    divergent: step.divergent,
                    issue: times.issue,
                    dispatch: times.dispatch,
                    retire: times.retire,
                    sources: step.sources.iter().map(|f| f.reg).collect(),
                    dst: step.dst,
                    compresses: step.compresses,
                    decomp_cycles: decomp,
                    comp_cycles: comp,
                });
                planned_instructions += 1;
                match r.replay.step() {
                    StepOutcome::Step(s) => r.pending = Some(s),
                    StepOutcome::Done => r.pending = None,
                    StepOutcome::Lost(reason) => {
                        return Err(bail_of(reason, r.block, r.warp_in_block))
                    }
                }
                let drained = r.pending.is_none();
                if drained {
                    let r = residents[slot].take().expect("drained resident");
                    let free_cycle = r.timing.end().max(r.launch_cycle) + 1;
                    slots[slot] = SlotState {
                        free_at: free_cycle,
                        occupied: false,
                    };
                    let gid = r.block * wpb + r.warp_in_block;
                    plans[gid] = Some(WarpPlan {
                        block: r.block,
                        warp_in_block: r.warp_in_block,
                        slot: r.slot,
                        launch_seq: r.launch_seq,
                        launch_cycle: r.launch_cycle,
                        free_cycle,
                        steps: r.steps,
                    });
                    finished += 1;
                    if *last == Some(slot) {
                        *last = None;
                    }
                } else {
                    *last = Some(slot);
                }
                break; // one issue per port per cycle
            }
        }

        if finished >= total_warps {
            break;
        }

        // Skip ahead to the next cycle anything can happen.
        let mut next = u64::MAX;
        for r in residents.iter().flatten() {
            if let Some(step) = &r.pending {
                let e = r
                    .timing
                    .earliest(&step.instr)
                    .max(r.launch_cycle)
                    .max(t + 1);
                next = next.min(e);
            }
        }
        if next_block < launch.blocks {
            let mut frees: Vec<u64> = slots
                .iter()
                .filter(|s| !s.occupied)
                .map(|s| s.free_at)
                .collect();
            if frees.len() >= wpb {
                frees.sort_unstable();
                next = next.min(frees[wpb - 1].max(t + 1));
            }
        }
        debug_assert_ne!(next, u64::MAX, "scheduler made no progress");
        t = next;
    }

    let warps: Vec<WarpPlan> = plans
        .into_iter()
        .map(|p| p.expect("every warp scheduled"))
        .collect();
    let total_cycles = warps.iter().map(|w| w.free_cycle).max().unwrap_or(0);
    Ok(IssuePlan {
        kernel: kernel.name().to_string(),
        num_schedulers: machine.num_schedulers,
        num_compressors: machine.num_compressors,
        max_resident_warps,
        warps_per_block: wpb,
        total_cycles,
        planned_instructions,
        compressor_activations,
        decompressor_activations,
        warps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfbound::bound_kernel;
    use simt_isa::{AluOp, KernelBuilder, Operand, Reg, Special};

    fn straight_kernel() -> Kernel {
        let mut b = KernelBuilder::new("straight", 3);
        b.mov(Reg(0), Operand::Special(Special::GlobalTid));
        b.alu(AluOp::Mul, Reg(1), Reg(0).into(), Operand::Imm(2));
        b.alu(AluOp::Add, Reg(2), Reg(1).into(), Reg(0).into());
        b.st(Reg(0), 0, Reg(2));
        b.exit();
        b.build().unwrap()
    }

    fn loop_kernel() -> Kernel {
        let mut b = KernelBuilder::new("loop", 3);
        b.mov(Reg(0), Operand::Imm(0));
        b.mov(Reg(1), Operand::Imm(0));
        let head = b.here();
        b.alu(AluOp::Add, Reg(1), Reg(1).into(), Reg(0).into());
        b.alu(AluOp::Add, Reg(0), Reg(0).into(), Operand::Imm(1));
        b.alu(AluOp::SetLt, Reg(2), Reg(0).into(), Operand::Imm(10));
        let exit = b.label();
        b.bra(Reg(2), head, exit);
        b.bind(exit);
        b.exit();
        b.build().unwrap()
    }

    fn data_branch_kernel() -> Kernel {
        let mut b = KernelBuilder::new("data_branch", 2);
        b.mov(Reg(0), Operand::Special(Special::GlobalTid));
        b.ld(Reg(1), Reg(0), 0);
        let exit = b.label();
        b.bra(Reg(1), exit, exit);
        b.bind(exit);
        b.exit();
        b.build().unwrap()
    }

    fn check_invariants(plan: &IssuePlan, machine: &PerfMachine) {
        // Issue-port cap: at most one issue per scheduler per cycle.
        let mut per_port: BTreeMap<(u64, usize), u32> = BTreeMap::new();
        // Compressor cap: at most num_compressors starts per cycle.
        let mut per_comp: BTreeMap<u64, u32> = BTreeMap::new();
        for w in &plan.warps {
            let mut last_issue = None;
            for s in &w.steps {
                assert!(s.issue >= w.launch_cycle);
                let last = s.retire.or(s.dispatch).unwrap_or(s.issue);
                assert!(last < w.free_cycle, "event past slot free");
                if let Some(prev) = last_issue {
                    assert!(s.issue > prev, "one issue per warp per cycle");
                }
                last_issue = Some(s.issue);
                let port = w.slot % plan.num_schedulers;
                *per_port.entry((s.issue, port)).or_insert(0) += 1;
                if s.compresses {
                    let retire = s.retire.expect("compressing write retires");
                    *per_comp.entry(retire - s.comp_cycles).or_insert(0) += 1;
                }
            }
        }
        assert!(per_port.values().all(|&n| n <= 1));
        assert!(per_comp
            .values()
            .all(|&n| n <= machine.num_compressors as u32));
    }

    #[test]
    fn straight_kernel_schedules_above_floor() {
        let k = straight_kernel();
        let launch = PerfLaunch::new(2, 64);
        for machine in [PerfMachine::warped_compression(), PerfMachine::baseline()] {
            let plan = schedule_kernel(&k, &launch, &machine, 48).unwrap();
            let floor = bound_kernel(&k, &launch, &machine);
            assert!(plan.total_cycles >= floor.cycle_lower_bound);
            assert_eq!(plan.planned_instructions, floor.min_instructions);
            assert_eq!(plan.warps.len(), 4);
            check_invariants(&plan, &machine);
        }
    }

    #[test]
    fn loop_kernel_schedules_above_floor() {
        let k = loop_kernel();
        let launch = PerfLaunch::new(1, 32);
        for machine in [PerfMachine::warped_compression(), PerfMachine::baseline()] {
            let plan = schedule_kernel(&k, &launch, &machine, 48).unwrap();
            let floor = bound_kernel(&k, &launch, &machine);
            assert!(plan.total_cycles >= floor.cycle_lower_bound);
            assert_eq!(plan.planned_instructions, floor.min_instructions);
            check_invariants(&plan, &machine);
        }
    }

    #[test]
    fn data_dependent_branch_bails() {
        let k = data_branch_kernel();
        let launch = PerfLaunch::new(1, 32);
        let machine = PerfMachine::warped_compression();
        let err = schedule_kernel(&k, &launch, &machine, 48).unwrap_err();
        assert_eq!(
            err,
            ScheduleBail::UnknownPredicate {
                pc: 2,
                block: 0,
                warp: 0
            }
        );
    }

    /// Stores a known value then branches on loading it back: only the
    /// shadow-memory forwarding (armed by the warp-isolation proof)
    /// makes the predicate statically known.
    fn forwarded_branch_kernel() -> Kernel {
        let mut b = KernelBuilder::new("fwd_branch", 3);
        b.mov(Reg(0), Operand::Special(Special::GlobalTid));
        b.mov(Reg(1), Operand::Imm(1));
        b.st(Reg(0), 0, Reg(1));
        b.ld(Reg(2), Reg(0), 0);
        let exit = b.label();
        b.bra(Reg(2), exit, exit);
        b.bind(exit);
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn forwarded_load_branch_schedules_under_warp_isolation() {
        let k = forwarded_branch_kernel();
        let launch = PerfLaunch::new(2, 64);
        let machine = PerfMachine::warped_compression();
        let plan = schedule_kernel(&k, &launch, &machine, 48).unwrap();
        check_invariants(&plan, &machine);
        assert_eq!(plan.warps.len(), 4);
        let floor = bound_kernel(&k, &launch, &machine);
        assert!(plan.total_cycles >= floor.cycle_lower_bound);
    }

    #[test]
    fn oversized_block_bails() {
        let k = straight_kernel();
        let launch = PerfLaunch::new(1, 256); // 8 warps per block
        let machine = PerfMachine::warped_compression();
        let err = schedule_kernel(&k, &launch, &machine, 4).unwrap_err();
        assert_eq!(
            err,
            ScheduleBail::BlockTooLarge {
                warps_needed: 8,
                slots_available: 4
            }
        );
    }

    #[test]
    fn schedule_is_deterministic() {
        let k = loop_kernel();
        let launch = PerfLaunch::new(3, 96);
        let machine = PerfMachine::warped_compression();
        let a = schedule_kernel(&k, &launch, &machine, 48).unwrap();
        let b = schedule_kernel(&k, &launch, &machine, 48).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn residency_waves_respect_slot_lifetimes() {
        let k = straight_kernel();
        // 4 blocks × 2 warps with only 2 slots: blocks run in waves.
        let launch = PerfLaunch::new(4, 64);
        let machine = PerfMachine::warped_compression();
        let plan = schedule_kernel(&k, &launch, &machine, 2).unwrap();
        assert_eq!(plan.warps.len(), 8);
        check_invariants(&plan, &machine);
        // Per slot, lifetimes [launch, free) must be disjoint.
        let mut by_slot: BTreeMap<usize, Vec<(u64, u64)>> = BTreeMap::new();
        for w in &plan.warps {
            by_slot
                .entry(w.slot)
                .or_default()
                .push((w.launch_cycle, w.free_cycle));
        }
        for spans in by_slot.values_mut() {
            spans.sort_unstable();
            for pair in spans.windows(2) {
                assert!(pair[0].1 <= pair[1].0, "overlapping slot lifetimes");
            }
        }
    }
}
