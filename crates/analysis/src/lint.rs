//! Machine-readable lint diagnostics.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How bad a diagnostic is.
///
/// Errors describe kernels the simulator would mis-execute or hang on
/// (invalid targets, unreachable `exit`, divergence deadlock); warnings
/// describe well-defined but almost-certainly-buggy code (reads of
/// never-written registers, dead writes, unreachable instructions);
/// info findings are observations that are not problems at all (e.g. a
/// provably warp-uniform branch the hardware never diverges on).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// A fact worth surfacing, not a defect.
    Info,
    /// Suspicious but well-defined.
    Warning,
    /// Structurally broken.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The individual checks the verifier runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LintKind {
    /// The kernel has no instructions.
    EmptyKernel,
    /// A branch/jump target or reconvergence pc is past the end.
    TargetOutOfRange,
    /// An instruction references a register ≥ `num_regs`.
    RegisterOutOfRange,
    /// Execution can fall off the end of the instruction sequence.
    FallsOffEnd,
    /// No `exit` instruction is reachable from entry: every warp hangs.
    ExitUnreachable,
    /// An instruction can never execute.
    UnreachableCode,
    /// A register is read before any instruction has written it on some
    /// path (the register file zero-initialises, so this is defined —
    /// and almost always a bug).
    UseBeforeDef,
    /// A register write no future instruction can observe.
    DeadWrite,
    /// Some pc inside a divergence region can reach neither the
    /// branch's reconvergence point nor an `exit`: the parked warp half
    /// waits forever.
    DivergenceDeadlock,
    /// A branch inside a divergence region reconverges *outside* that
    /// region, breaking stack-ordered (properly nested) reconvergence.
    ReconvergenceEscape,
    /// A branch whose condition is provably warp-uniform under the
    /// abstract warp-value domain: every lane takes the same side, so
    /// the branch never diverges at runtime.
    UniformBranch,
    /// A branch whose predicate is (transitively) data-dependent on a
    /// memory load, so its trip count/taken mask is not statically
    /// determined: the ahead-of-time issue scheduler must bail on the
    /// kernel and fall back to the dynamic core.
    UnschedulableRegion,
    /// Two warps can provably access the same memory word with at
    /// least one store involved, with no ordering between them: the
    /// result depends on warp-scheduling order. Only *must*-conflicts
    /// (both abstract address sets lane-determined and overlapping)
    /// fire this; a may-overlap alone is not evidence enough.
    CrossWarpRace,
    /// A strided access whose warp touches ≥ 2 memory segments per
    /// dispatch: the coalescer must issue multiple transactions every
    /// time, costing guaranteed memory bandwidth.
    UncoalescedAccess,
    /// A load/store whose abstract per-lane address range provably
    /// extends outside the launch's global-memory bounds: some lane
    /// may fault.
    PossibleOutOfBounds,
    /// A load the abstract memory-cell domain statically refines: its
    /// address set resolves inside tracked cells, so the loaded value
    /// is bounded by the reported range instead of being unknown.
    /// These are the loads the issue scheduler can see through.
    RefinableLoad,
}

impl LintKind {
    /// The severity this lint always reports at.
    pub fn severity(self) -> Severity {
        match self {
            LintKind::EmptyKernel
            | LintKind::TargetOutOfRange
            | LintKind::RegisterOutOfRange
            | LintKind::FallsOffEnd
            | LintKind::ExitUnreachable
            | LintKind::DivergenceDeadlock
            | LintKind::ReconvergenceEscape => Severity::Error,
            LintKind::UnreachableCode
            | LintKind::UseBeforeDef
            | LintKind::DeadWrite
            | LintKind::CrossWarpRace
            | LintKind::PossibleOutOfBounds => Severity::Warning,
            LintKind::UniformBranch
            | LintKind::UnschedulableRegion
            | LintKind::UncoalescedAccess
            | LintKind::RefinableLoad => Severity::Info,
        }
    }

    /// Short stable name, for tables and filtering.
    pub fn name(self) -> &'static str {
        match self {
            LintKind::EmptyKernel => "empty-kernel",
            LintKind::TargetOutOfRange => "target-out-of-range",
            LintKind::RegisterOutOfRange => "register-out-of-range",
            LintKind::FallsOffEnd => "falls-off-end",
            LintKind::ExitUnreachable => "exit-unreachable",
            LintKind::UnreachableCode => "unreachable-code",
            LintKind::UseBeforeDef => "use-before-def",
            LintKind::DeadWrite => "dead-write",
            LintKind::DivergenceDeadlock => "divergence-deadlock",
            LintKind::ReconvergenceEscape => "reconvergence-escape",
            LintKind::UniformBranch => "uniform-branch",
            LintKind::UnschedulableRegion => "unschedulable-region",
            LintKind::CrossWarpRace => "cross-warp-race",
            LintKind::UncoalescedAccess => "uncoalesced-access",
            LintKind::PossibleOutOfBounds => "possible-out-of-bounds",
            LintKind::RefinableLoad => "refinable-load",
        }
    }
}

/// One finding: what, where, and which register (when applicable).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which check fired.
    pub kind: LintKind,
    /// Error or warning (always `kind.severity()`).
    pub severity: Severity,
    /// The offending pc, when the finding is tied to one instruction.
    pub pc: Option<usize>,
    /// The offending register index, when the finding is about one.
    pub reg: Option<u8>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic; severity is derived from `kind`.
    pub fn new(kind: LintKind, pc: Option<usize>, reg: Option<u8>, message: String) -> Diagnostic {
        Diagnostic {
            kind,
            severity: kind.severity(),
            pc,
            reg,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.kind.name())?;
        if let Some(pc) = self.pc {
            write!(f, " @{pc}")?;
        }
        if let Some(reg) = self.reg {
            write!(f, " r{reg}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Everything the verifier found for one kernel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    /// Kernel name.
    pub kernel: String,
    /// All findings, in pc order where applicable.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Wraps a diagnostics list.
    pub fn new(kernel: impl Into<String>, diagnostics: Vec<Diagnostic>) -> LintReport {
        LintReport {
            kernel: kernel.into(),
            diagnostics,
        }
    }

    /// Whether no warning- or error-severity lint fired. Info findings
    /// (e.g. `uniform-branch`) are observations, not defects, and do not
    /// make a kernel unclean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics
            .iter()
            .all(|d| d.severity == Severity::Info)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Number of info-severity findings.
    pub fn info_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Info)
            .count()
    }

    /// Whether any error-severity finding is present.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// The findings of a given kind.
    pub fn of_kind(&self, kind: LintKind) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_prints() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Severity::Info.to_string(), "info");
    }

    #[test]
    fn info_findings_do_not_dirty_a_report() {
        let r = LintReport::new(
            "k",
            vec![Diagnostic::new(
                LintKind::UniformBranch,
                Some(2),
                None,
                "never diverges".into(),
            )],
        );
        assert!(r.is_clean());
        assert_eq!(r.info_count(), 1);
        assert_eq!(r.warning_count(), 0);
        assert_eq!(r.error_count(), 0);
        assert_eq!(LintKind::UniformBranch.severity(), Severity::Info);
        assert_eq!(LintKind::UniformBranch.name(), "uniform-branch");
    }

    #[test]
    fn diagnostic_display_includes_location() {
        let d = Diagnostic::new(
            LintKind::DeadWrite,
            Some(7),
            Some(3),
            "value never read".into(),
        );
        let s = d.to_string();
        assert!(s.contains("warning"));
        assert!(s.contains("dead-write"));
        assert!(s.contains("@7"));
        assert!(s.contains("r3"));
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn report_counts() {
        let r = LintReport::new(
            "k",
            vec![
                Diagnostic::new(LintKind::DeadWrite, Some(0), Some(0), "x".into()),
                Diagnostic::new(LintKind::ExitUnreachable, None, None, "y".into()),
            ],
        );
        assert!(!r.is_clean());
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert_eq!(r.of_kind(LintKind::DeadWrite).count(), 1);
    }
}
