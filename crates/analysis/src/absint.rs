//! Warp-value abstract interpretation and static compressibility
//! prediction.
//!
//! The paper's §3 observation is that warp register values are
//! structurally predictable: warp-uniform (loop counters, block
//! constants), affine in the lane index (thread-index arithmetic), or
//! of narrow dynamic range. This module derives those classes at
//! compile time — the direction explored by Angerd et al. for
//! compile-time-assisted register compression — by running a forward
//! fixpoint over the [`Cfg`] with a four-point abstract domain per
//! register per program point:
//!
//! * [`AbsVal::Uniform`]`(r)` — all 32 lanes hold one common value in
//!   `r`. Uniformity survives *every* deterministic ALU op (equal
//!   inputs give equal outputs, wrapping included), so a `Uniform`
//!   value is ⟨4,0⟩-compressible regardless of its range.
//! * [`AbsVal::LaneAffine`]`{base, stride}` — lane *i* holds
//!   `base + stride·i` (mod 2³²) for one shared `base` in the range.
//!   BDI deltas are wrapping subtractions, so the deltas from lane 0
//!   are exactly `stride·i` no matter how the base overflows: the
//!   compression class depends on the stride alone.
//! * [`AbsVal::NarrowRange`]`(r)` — each lane independently holds some
//!   value in `r`; no cross-lane structure, but the lane-0 deltas are
//!   bounded by the range width.
//! * [`AbsVal::Top`] — anything.
//!
//! # Divergence-aware joins
//!
//! When a branch's condition is *not* provably warp-uniform, the warp
//! may split, and register writes inside the branch's divergence
//! region execute under a partial lane mask: the stored register mixes
//! lanes produced by different paths and different loop iterations.
//! Path-union [`AbsVal::join`] is unsound there — joining
//! `Uniform(5)` with `Uniform(7)` claims all lanes are still equal,
//! while the physical register may hold a 5/7 lane mixture. At
//! masked writes, and at the branch's reconvergence point for every
//! register written inside the region, the analysis therefore uses the
//! *mixing* join [`AbsVal::mix`], which only preserves values that are
//! lane-determined (every lane pinned to one value) and degrades
//! everything else to its per-lane range hull. Registers *not*
//! written inside the region keep full structure across
//! reconvergence.
//!
//! Branch uniformity is itself a fixpoint: the analysis first assumes
//! every branch uniform, and restarts (at most once per branch)
//! whenever an assumed-uniform condition turns out non-uniform.
//!
//! # Output
//!
//! Each abstract value maps onto the shared BDI [`CompressionClass`]
//! taxonomy, yielding a per-write-site [`KernelPrediction`] that
//! `wcsim predict` validates against the simulator's measured
//! per-write classes: a *sound* prediction never claims a smaller
//! bank footprint than any dynamic execution of the site produces.
//! The analysis assumes full warps (launches whose block size is a
//! multiple of 32); given a [`LaunchInfo`] with a ragged block size it
//! degrades every write site to a mixing write rather than produce
//! unsound claims.

use std::fmt;

use bdi::{CompressionClass, WARP_SIZE};
use serde::{Deserialize, Serialize};
use simt_isa::{AluOp, Instruction, Operand, Special};

use crate::cfg::Cfg;
use crate::dataflow::RegSet;

const I32MIN: i64 = i32::MIN as i64;
const I32MAX: i64 = i32::MAX as i64;
/// Highest lane index of a warp.
const LAST_LANE: i64 = (WARP_SIZE - 1) as i64;
/// Changed joins at one pc before range widening kicks in.
const WIDEN_AFTER: u32 = 12;

/// A closed signed interval within the 32-bit range (`lo ≤ hi`).
///
/// Bounds are kept as `i64` so interval arithmetic can detect 32-bit
/// overflow exactly, but every constructed range lies within
/// `[i32::MIN, i32::MAX]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Range {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Range {
    /// The full signed 32-bit range.
    pub const FULL: Range = Range {
        lo: I32MIN,
        hi: I32MAX,
    };

    /// The range holding exactly `v`.
    pub fn singleton(v: i32) -> Range {
        Range {
            lo: i64::from(v),
            hi: i64::from(v),
        }
    }

    /// A range from bounds known to lie within the 32-bit range.
    pub(crate) fn of(lo: i64, hi: i64) -> Range {
        debug_assert!(lo <= hi && lo >= I32MIN && hi <= I32MAX);
        Range { lo, hi }
    }

    /// `Some` when the bounds fit the 32-bit range — i.e. a wrap-prone
    /// computation provably did not wrap — `None` otherwise.
    fn checked(lo: i64, hi: i64) -> Option<Range> {
        (lo >= I32MIN && hi <= I32MAX).then_some(Range { lo, hi })
    }

    /// Intersects bounds that are valid on the *true* (wrap-free)
    /// results with the representable range.
    fn clamped(lo: i64, hi: i64) -> Range {
        Range {
            lo: lo.max(I32MIN),
            hi: hi.min(I32MAX),
        }
    }

    /// Smallest range containing both.
    pub fn hull(a: Range, b: Range) -> Range {
        Range {
            lo: a.lo.min(b.lo),
            hi: a.hi.max(b.hi),
        }
    }

    /// Whether `v` lies in the range.
    pub fn contains(&self, v: i32) -> bool {
        self.lo <= i64::from(v) && i64::from(v) <= self.hi
    }

    /// `hi − lo`.
    pub fn width(&self) -> i64 {
        self.hi - self.lo
    }

    /// The single value, if the range holds exactly one.
    pub fn as_singleton(&self) -> Option<i32> {
        (self.lo == self.hi).then_some(self.lo as i32)
    }

    /// Whether every value in the range is ≥ 0.
    pub fn is_nonneg(&self) -> bool {
        self.lo >= 0
    }

    /// Whether this is the full 32-bit range.
    pub fn is_full(&self) -> bool {
        *self == Range::FULL
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_singleton() {
            write!(f, "{v}")
        } else if self.is_full() {
            f.write_str("i32")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// The abstract value of one warp register at one program point.
///
/// Concretisation: a set of possible 32-lane value vectors. Lane
/// values are 32-bit words; ranges constrain their two's-complement
/// (`i32`) reinterpretation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbsVal {
    /// All lanes hold one common value in the range.
    Uniform(Range),
    /// Lane `i` holds `base + stride·i` (mod 2³²) for one shared
    /// `base` in the range. The stride is the wrapped 32-bit
    /// representative (a stride of −1 and one of 2³²−1 are the same).
    LaneAffine {
        /// Range of the shared lane-0 value.
        base: Range,
        /// Per-lane increment.
        stride: i32,
    },
    /// Each lane independently holds some value in the range.
    NarrowRange(Range),
    /// No information.
    Top,
}

impl AbsVal {
    /// The abstract zero every register starts as (the register file
    /// zero-initialises).
    pub fn zero() -> AbsVal {
        AbsVal::Uniform(Range::singleton(0))
    }

    /// Normalising affine constructor: stride 0 is just `Uniform`.
    fn affine(base: Range, stride: i32) -> AbsVal {
        if stride == 0 {
            AbsVal::Uniform(base)
        } else {
            AbsVal::LaneAffine { base, stride }
        }
    }

    /// Normalising per-lane-range constructor: a singleton range pins
    /// every lane to the same value (`Uniform`), and the full range
    /// carries no information (`Top`).
    pub(crate) fn narrow(r: Range) -> AbsVal {
        if r.is_full() {
            AbsVal::Top
        } else if r.as_singleton().is_some() {
            AbsVal::Uniform(r)
        } else {
            AbsVal::NarrowRange(r)
        }
    }

    /// Affine view: `Uniform(r)` is affine with stride 0.
    fn as_affine(&self) -> Option<(Range, i32)> {
        match *self {
            AbsVal::Uniform(r) => Some((r, 0)),
            AbsVal::LaneAffine { base, stride } => Some((base, stride)),
            _ => None,
        }
    }

    /// The common value when this is a known-uniform singleton.
    fn uniform_singleton(&self) -> Option<i32> {
        match self {
            AbsVal::Uniform(r) => r.as_singleton(),
            _ => None,
        }
    }

    /// Whether all lanes are known equal.
    pub fn is_uniform(&self) -> bool {
        matches!(self, AbsVal::Uniform(_))
    }

    /// Adds a compile-time constant to every lane (the `ld`/`st` offset
    /// fold). Affinity survives base wrapping — the per-lane deltas are
    /// unchanged — so an affine value keeps its stride and at worst
    /// loses its base range.
    pub fn add_const(&self, offset: i32) -> AbsVal {
        let off = i64::from(offset);
        match *self {
            AbsVal::Uniform(r) => {
                AbsVal::Uniform(Range::checked(r.lo + off, r.hi + off).unwrap_or(Range::FULL))
            }
            AbsVal::LaneAffine { base, stride } => AbsVal::affine(
                Range::checked(base.lo + off, base.hi + off).unwrap_or(Range::FULL),
                stride,
            ),
            AbsVal::NarrowRange(r) => match Range::checked(r.lo + off, r.hi + off) {
                Some(r) => AbsVal::narrow(r),
                None => AbsVal::Top,
            },
            AbsVal::Top => AbsVal::Top,
        }
    }

    /// Mask-aware soundness oracle: whether the active lanes of a
    /// concrete vector are consistent with this abstract value.
    /// Inactive lanes are unconstrained (a memory access only produces
    /// addresses on active lanes).
    pub fn contains_masked(&self, lanes: &[u32; WARP_SIZE], mask: u32) -> bool {
        let active = (0..WARP_SIZE).filter(|&i| mask & (1 << i) != 0);
        match *self {
            AbsVal::Uniform(r) => {
                let mut first = None;
                for i in active {
                    match first {
                        None => {
                            if !r.contains(lanes[i] as i32) {
                                return false;
                            }
                            first = Some(lanes[i]);
                        }
                        Some(v) => {
                            if lanes[i] != v {
                                return false;
                            }
                        }
                    }
                }
                true
            }
            AbsVal::LaneAffine { base, stride } => {
                // Every active lane must agree on one shared base
                // `lanes[i] − stride·i` (mod 2³²) within the range.
                let mut shared = None;
                for i in active {
                    let b = lanes[i].wrapping_sub((stride as u32).wrapping_mul(i as u32));
                    match shared {
                        None => {
                            if !base.contains(b as i32) {
                                return false;
                            }
                            shared = Some(b);
                        }
                        Some(v) => {
                            if b != v {
                                return false;
                            }
                        }
                    }
                }
                true
            }
            AbsVal::NarrowRange(r) => {
                for i in active {
                    if !r.contains(lanes[i] as i32) {
                        return false;
                    }
                }
                true
            }
            AbsVal::Top => true,
        }
    }

    /// A range covering every individual lane's value, when one is
    /// known. `None` means some lane may hold anything (`Top`, and
    /// affine values whose lane-31 value may wrap).
    pub fn per_lane_range(&self) -> Option<Range> {
        match *self {
            AbsVal::Uniform(r) | AbsVal::NarrowRange(r) => Some(r),
            AbsVal::LaneAffine { base, stride } => {
                let span = i64::from(stride) * LAST_LANE;
                Range::checked(base.lo + span.min(0), base.hi + span.max(0))
            }
            AbsVal::Top => None,
        }
    }

    /// Whether every lane's value is uniquely determined, so that a
    /// lane mask mixing different executions of this value cannot
    /// produce anything new.
    pub fn lane_determined(&self) -> bool {
        match self {
            AbsVal::Uniform(r) => r.as_singleton().is_some(),
            AbsVal::LaneAffine { base, .. } => base.as_singleton().is_some(),
            _ => false,
        }
    }

    /// The BDI compression class every concrete value of this abstract
    /// value is guaranteed to achieve or beat (the classes nest).
    pub fn class(&self) -> CompressionClass {
        match *self {
            // Equal lanes stay equal: <4,0> fits for any range.
            AbsVal::Uniform(_) => CompressionClass::Delta0,
            // Wrapping deltas from lane 0 are exactly stride·i.
            AbsVal::LaneAffine { stride, .. } => {
                let worst = i64::from(stride).abs() * LAST_LANE;
                if worst <= i64::from(i8::MAX) {
                    CompressionClass::Delta1
                } else if worst <= i64::from(i16::MAX) {
                    CompressionClass::Delta2
                } else {
                    CompressionClass::Uncompressed
                }
            }
            // Deltas from lane 0 are bounded by the range width.
            AbsVal::NarrowRange(r) => {
                if r.width() <= i64::from(i8::MAX) {
                    CompressionClass::Delta1
                } else if r.width() <= i64::from(i16::MAX) {
                    CompressionClass::Delta2
                } else {
                    CompressionClass::Uncompressed
                }
            }
            AbsVal::Top => CompressionClass::Uncompressed,
        }
    }

    /// Soundness oracle: whether a concrete vector of lane values lies
    /// in this abstract value's concretisation.
    pub fn contains(&self, lanes: &[u32; WARP_SIZE]) -> bool {
        match *self {
            AbsVal::Uniform(r) => {
                lanes.iter().all(|&v| v == lanes[0]) && r.contains(lanes[0] as i32)
            }
            AbsVal::LaneAffine { base, stride } => {
                base.contains(lanes[0] as i32)
                    && lanes.iter().enumerate().all(|(i, &v)| {
                        v == lanes[0].wrapping_add((stride as u32).wrapping_mul(i as u32))
                    })
            }
            AbsVal::NarrowRange(r) => lanes.iter().all(|&v| r.contains(v as i32)),
            AbsVal::Top => true,
        }
    }

    /// Path-union join: both operands describe whole alternative warp
    /// executions (all lanes arrived the same way), so cross-lane
    /// structure survives when the kinds agree.
    pub fn join(a: &AbsVal, b: &AbsVal) -> AbsVal {
        match (a, b) {
            (AbsVal::Top, _) | (_, AbsVal::Top) => AbsVal::Top,
            (AbsVal::Uniform(ra), AbsVal::Uniform(rb)) => AbsVal::Uniform(Range::hull(*ra, *rb)),
            (
                AbsVal::LaneAffine {
                    base: b1,
                    stride: s1,
                },
                AbsVal::LaneAffine {
                    base: b2,
                    stride: s2,
                },
            ) if s1 == s2 => AbsVal::affine(Range::hull(*b1, *b2), *s1),
            _ => AbsVal::range_hull(a, b),
        }
    }

    /// Mixing join: each lane of the result may independently come
    /// from either operand (divergent reconvergence, partial-mask
    /// writes, loops whose lanes exit at different iterations).
    /// Cross-lane structure survives only when both sides are the
    /// *same* lane-determined value — mixing identical vectors is a
    /// no-op.
    pub fn mix(a: &AbsVal, b: &AbsVal) -> AbsVal {
        if a == b && a.lane_determined() {
            a.clone()
        } else {
            AbsVal::range_hull(a, b)
        }
    }

    /// Collapses a value to what per-lane mixing can still guarantee:
    /// lane-determined values survive intact, everything else keeps
    /// only its per-lane range.
    fn stabilize(&self) -> AbsVal {
        if self.lane_determined() {
            self.clone()
        } else {
            match self.per_lane_range() {
                Some(r) => AbsVal::narrow(r),
                None => AbsVal::Top,
            }
        }
    }

    fn range_hull(a: &AbsVal, b: &AbsVal) -> AbsVal {
        match (a.per_lane_range(), b.per_lane_range()) {
            (Some(ra), Some(rb)) => AbsVal::narrow(Range::hull(ra, rb)),
            _ => AbsVal::Top,
        }
    }

    /// Range widening: a bound that grew between `old` and `new` jumps
    /// to the 32-bit extreme, cutting off slow ascending chains (loop
    /// counters). Kind changes pass through unchanged — the kind
    /// order `{Uniform, LaneAffine} → NarrowRange → Top` is finite and
    /// acyclic, so only ranges can ascend forever.
    fn widen(old: &AbsVal, new: &AbsVal) -> AbsVal {
        fn wr(o: Range, n: Range) -> Range {
            Range {
                lo: if n.lo < o.lo { I32MIN } else { n.lo },
                hi: if n.hi > o.hi { I32MAX } else { n.hi },
            }
        }
        match (old, new) {
            (AbsVal::Uniform(ro), AbsVal::Uniform(rn)) => AbsVal::Uniform(wr(*ro, *rn)),
            (
                AbsVal::LaneAffine {
                    base: bo,
                    stride: so,
                },
                AbsVal::LaneAffine {
                    base: bn,
                    stride: sn,
                },
            ) if so == sn => AbsVal::affine(wr(*bo, *bn), *sn),
            (AbsVal::NarrowRange(ro), AbsVal::NarrowRange(rn)) => AbsVal::narrow(wr(*ro, *rn)),
            _ => new.clone(),
        }
    }
}

impl fmt::Display for AbsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsVal::Uniform(r) => write!(f, "uniform({r})"),
            AbsVal::LaneAffine { base, stride } => {
                write!(f, "affine({base} + {stride}*lane)")
            }
            AbsVal::NarrowRange(r) => write!(f, "narrow({r})"),
            AbsVal::Top => f.write_str("top"),
        }
    }
}

/// Launch-time facts that sharpen the abstract interpretation:
/// parameter values and grid geometry make `Param` operands and the
/// special registers (`%tid`, `%gtid`, …) concrete or tightly ranged.
///
/// All fields are optional knowledge; [`LaunchInfo::default`] knows
/// nothing and the analysis stays sound, just less precise. Without
/// any launch info the analysis assumes full warps — the caller is
/// responsible for only trusting predictions against launches whose
/// block size is a multiple of 32. A known ragged block size passed
/// *in* a `LaunchInfo` is handled conservatively (every write becomes
/// a masked write).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaunchInfo {
    /// Kernel parameter values, indexed by `Operand::Param` slot.
    pub params: Vec<u32>,
    /// Number of thread blocks in the grid, when known.
    pub blocks: Option<u32>,
    /// Threads per block, when known.
    pub threads_per_block: Option<u32>,
    /// Global memory size in words, when known (bounds the
    /// `possible-out-of-bounds` address lint).
    pub mem_words: Option<u64>,
    /// The *entire* initial global-memory image, when known. Feeds the
    /// abstract memory-cell analysis ([`memcell`](crate::memcell)):
    /// loads from provably store-free words refine to the image's
    /// value range instead of `Top`. Must cover all of memory
    /// (`len == mem_words`) — a partial image disables the cell
    /// domain rather than risking an unsound seed.
    pub initial_mem: Option<std::sync::Arc<Vec<u32>>>,
}

impl LaunchInfo {
    /// Whether every warp of this launch runs with all 32 lanes
    /// active. Unknown geometry is assumed full-warp (documented
    /// precondition); a known ragged block size returns `false`.
    pub(crate) fn full_warps(&self) -> bool {
        match self.threads_per_block {
            Some(t) => t > 0 && (t as usize).is_multiple_of(WARP_SIZE),
            None => true,
        }
    }
}

/// Statically predicted compression class for one register write site.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SitePrediction {
    /// The pc of the writing instruction.
    pub pc: usize,
    /// The destination register.
    pub reg: u8,
    /// The class every dynamic write at this site is guaranteed to
    /// achieve or beat.
    pub class: CompressionClass,
    /// Whether the site sits inside the divergence region of some
    /// possibly-non-uniform branch. Such writes may execute under a
    /// partial lane mask, and the simulator stores divergent writes
    /// uncompressed, so their class is pinned to `Uncompressed`.
    pub divergent_region: bool,
    /// The post-write abstract value of the destination register.
    pub value: AbsVal,
}

/// Static uniformity verdict for one branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchVerdict {
    /// The pc of the `bra` instruction.
    pub pc: usize,
    /// Whether the condition is provably warp-uniform: every lane
    /// always takes the same side, so the branch never diverges.
    pub uniform: bool,
}

/// The static compressibility report for one kernel: one prediction
/// per reachable register write site plus per-branch uniformity
/// verdicts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelPrediction {
    /// Kernel name.
    pub kernel: String,
    /// Write-site predictions, in pc order.
    pub sites: Vec<SitePrediction>,
    /// Branch verdicts, in pc order.
    pub branches: Vec<BranchVerdict>,
}

impl KernelPrediction {
    /// The prediction for the write site at `pc`, if any.
    pub fn site_at(&self, pc: usize) -> Option<&SitePrediction> {
        self.sites.iter().find(|s| s.pc == pc)
    }

    /// A static lower bound on the number of 16-byte register banks
    /// the bank-level power gating of §6 can keep gated during *every*
    /// register write of this kernel: even the worst (least
    /// compressible) site still leaves `8 − banks` banks untouched.
    /// Zero when some site has no predicted compression, or when the
    /// kernel writes no registers at all.
    pub fn min_gateable_banks(&self) -> usize {
        self.sites
            .iter()
            .map(|s| 8 - s.class.banks())
            .min()
            .unwrap_or(0)
    }

    /// Fraction of write sites with an informative (non-`Top`)
    /// abstract value; 1.0 for kernels without write sites.
    pub fn informative_fraction(&self) -> f64 {
        if self.sites.is_empty() {
            return 1.0;
        }
        let n = self.sites.iter().filter(|s| s.value != AbsVal::Top).count();
        n as f64 / self.sites.len() as f64
    }

    /// Fraction of write sites predicted compressed (class better
    /// than `Uncompressed`); 1.0 for kernels without write sites.
    pub fn compressed_fraction(&self) -> f64 {
        if self.sites.is_empty() {
            return 1.0;
        }
        let n = self
            .sites
            .iter()
            .filter(|s| s.class.is_compressed())
            .count();
        n as f64 / self.sites.len() as f64
    }
}

/// The full result of abstract interpretation: per-pc abstract states
/// for the soundness oracle plus the distilled [`KernelPrediction`].
#[derive(Clone, Debug)]
pub struct AbsintAnalysis {
    ins: Vec<Option<Vec<AbsVal>>>,
    divergent: Vec<bool>,
    /// The distilled per-site report.
    pub prediction: KernelPrediction,
}

impl AbsintAnalysis {
    /// The abstract register state on entry to `pc`, or `None` when
    /// `pc` is unreachable.
    pub fn state_at(&self, pc: usize) -> Option<&[AbsVal]> {
        self.ins.get(pc).and_then(|s| s.as_deref())
    }

    /// Whether `pc` sits inside the divergence region of some
    /// possibly-non-uniform branch (or the launch has a ragged block
    /// size), so the instruction may execute under a partial lane
    /// mask. Mirrors [`SitePrediction::divergent_region`], but covers
    /// every pc — including loads and stores, which have no write
    /// site.
    pub fn divergent_at(&self, pc: usize) -> bool {
        self.divergent.get(pc).copied().unwrap_or(false)
    }
}

/// Runs the warp-value abstract interpretation over a kernel body.
///
/// `cfg` must be the CFG of `instrs`, and the kernel must already have
/// passed the structural lints (in-range branch targets and register
/// indices) — run them first, as [`analyze`](crate::analyze) does.
/// `launch`, when given, sharpens `Param` and special-register
/// operands with concrete launch facts.
pub fn interpret(
    kernel: &str,
    instrs: &[Instruction],
    num_regs: usize,
    cfg: &Cfg,
    launch: Option<&LaunchInfo>,
) -> AbsintAnalysis {
    Interp {
        instrs,
        num_regs,
        cfg,
        launch,
        focus: None,
        cells: None,
    }
    .run(kernel)
}

/// Like [`interpret`], but with an abstract memory-cell table
/// ([`memcell::CellTable`](crate::memcell::CellTable)) refining loads:
/// a `ld` whose abstract address set lies inside tracked cells takes
/// the join of the cell values instead of `Top`/`Uniform(full)`. Only
/// sound against a table whose invariant holds for this kernel and
/// launch — [`memcell::analyze_cells`](crate::memcell::analyze_cells)
/// establishes that by post-fixpoint verification.
pub fn interpret_with_cells(
    kernel: &str,
    instrs: &[Instruction],
    num_regs: usize,
    cfg: &Cfg,
    launch: Option<&LaunchInfo>,
    cells: Option<&crate::memcell::CellTable>,
) -> AbsintAnalysis {
    Interp {
        instrs,
        num_regs,
        cfg,
        launch,
        focus: None,
        cells,
    }
    .run(kernel)
}

/// One specific warp of a concrete launch, pinning the warp-dependent
/// special registers (`%bid`, `%warpid`, and the bases of `%tid` /
/// `%gtid`) to singletons. Used by the memory abstract interpretation
/// ([`memabs`](crate::memabs)) to derive *per-warp* address sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WarpFocus {
    /// Block index in the grid.
    pub block: u32,
    /// Warp index within the block.
    pub warp_in_block: u32,
}

/// Like [`interpret`], but specialised to one warp of the launch: the
/// warp-dependent specials become singletons, so thread-index-derived
/// addresses resolve to per-warp affine sets instead of launch-wide
/// hulls. Requires known grid geometry in `launch` for the focus to
/// sharpen anything (unknown fields degrade exactly as in
/// [`interpret`]).
pub fn interpret_for_warp(
    kernel: &str,
    instrs: &[Instruction],
    num_regs: usize,
    cfg: &Cfg,
    launch: &LaunchInfo,
    focus: WarpFocus,
) -> AbsintAnalysis {
    Interp {
        instrs,
        num_regs,
        cfg,
        launch: Some(launch),
        focus: Some(focus),
        cells: None,
    }
    .run(kernel)
}

struct Interp<'a> {
    instrs: &'a [Instruction],
    num_regs: usize,
    cfg: &'a Cfg,
    launch: Option<&'a LaunchInfo>,
    focus: Option<WarpFocus>,
    cells: Option<&'a crate::memcell::CellTable>,
}

impl Interp<'_> {
    fn run(&self, kernel: &str) -> AbsintAnalysis {
        let n = self.instrs.len();
        let branch_pcs: Vec<usize> = (0..n)
            .filter(|&pc| matches!(self.instrs[pc], Instruction::Bra { .. }))
            .collect();
        // Assume every branch uniform; restart whenever an
        // assumed-uniform condition turns out non-uniform. Each
        // restart flags at least one more branch, so at most
        // `branch_pcs.len() + 1` rounds run.
        let mut nonuniform = vec![false; n];
        loop {
            let (in_region, mix_regs) = self.regions(&nonuniform);
            let ins = self.fixpoint(&in_region, &mix_regs);
            let mut flagged = false;
            for &pc in &branch_pcs {
                if nonuniform[pc] {
                    continue;
                }
                if let (Instruction::Bra { pred, .. }, Some(st)) = (&self.instrs[pc], &ins[pc]) {
                    if !st[pred.index()].is_uniform() {
                        nonuniform[pc] = true;
                        flagged = true;
                    }
                }
            }
            if !flagged {
                return self.collect(kernel, ins, &in_region, &branch_pcs, &nonuniform);
            }
        }
    }

    /// The union of the divergence regions of all flagged branches
    /// (pcs whose writes may execute under a partial mask), and, per
    /// pc, the registers that must be combined with the mixing join
    /// when control flow arrives there (registers written inside a
    /// region whose reconvergence point that pc is).
    fn regions(&self, nonuniform: &[bool]) -> (Vec<bool>, Vec<RegSet>) {
        let n = self.instrs.len();
        let mut mix_regs = vec![RegSet::EMPTY; n];
        let full = self.launch.is_none_or(LaunchInfo::full_warps);
        // A ragged block size means the tail warp runs *every*
        // instruction masked, so every write mixes with stale lanes.
        let mut in_region = vec![!full; n];
        for (pc, &nonuni) in nonuniform.iter().enumerate() {
            if !nonuni {
                continue;
            }
            if let Instruction::Bra { target, reconv, .. } = self.instrs[pc] {
                let region = self.cfg.region(&[target, pc + 1], reconv);
                let mut written = RegSet::EMPTY;
                for (p, &inside) in region.iter().enumerate() {
                    if inside {
                        in_region[p] = true;
                        if let Some(dst) = self.instrs[p].dst() {
                            written.insert(dst.index() as u8);
                        }
                    }
                }
                if reconv < n {
                    mix_regs[reconv].union_with(&written);
                }
            }
        }
        (in_region, mix_regs)
    }

    fn fixpoint(&self, in_region: &[bool], mix_regs: &[RegSet]) -> Vec<Option<Vec<AbsVal>>> {
        let n = self.instrs.len();
        let mut ins: Vec<Option<Vec<AbsVal>>> = vec![None; n];
        let mut joins = vec![0u32; n];
        if n == 0 {
            return ins;
        }
        ins[0] = Some(vec![AbsVal::zero(); self.num_regs]);
        let mut work = vec![0usize];
        while let Some(pc) = work.pop() {
            let Some(st) = ins[pc].clone() else { continue };
            let out = self.transfer(pc, st, in_region);
            for &succ in self.cfg.succs(pc) {
                if self.combine_at(succ, out.clone(), &mut ins, &mut joins, mix_regs) {
                    work.push(succ);
                }
            }
        }
        ins
    }

    /// Merges `incoming` into the state at `succ`; returns whether it
    /// changed. Registers in `mix_regs[succ]` (written inside a
    /// divergence region reconverging here) are first stabilized —
    /// even on a first arrival, since a loop's reconvergence mixes
    /// *iterations*, not just the two halves of one split — and then
    /// combined with the mixing join; all other registers use the
    /// path-union join.
    fn combine_at(
        &self,
        succ: usize,
        mut incoming: Vec<AbsVal>,
        ins: &mut [Option<Vec<AbsVal>>],
        joins: &mut [u32],
        mix_regs: &[RegSet],
    ) -> bool {
        let mset = &mix_regs[succ];
        for r in mset.iter() {
            let r = r as usize;
            incoming[r] = incoming[r].stabilize();
        }
        if ins[succ].is_none() {
            ins[succ] = Some(incoming);
            return true;
        }
        let cur = ins[succ].as_mut().expect("just checked");
        let widen = joins[succ] >= WIDEN_AFTER;
        let mut changed = false;
        for r in 0..self.num_regs {
            let j = if mset.contains(r as u8) {
                AbsVal::mix(&cur[r], &incoming[r])
            } else {
                AbsVal::join(&cur[r], &incoming[r])
            };
            if j != cur[r] {
                cur[r] = if widen { AbsVal::widen(&cur[r], &j) } else { j };
                changed = true;
            }
        }
        if changed {
            joins[succ] += 1;
        }
        changed
    }

    /// Executes the instruction at `pc` on a copy of its in-state.
    /// Writes inside a divergence region may carry a partial lane
    /// mask: the register file merges the new value into the old one
    /// lane-wise, so the post-state is the mixing join of both.
    fn transfer(&self, pc: usize, mut st: Vec<AbsVal>, in_region: &[bool]) -> Vec<AbsVal> {
        let new = match &self.instrs[pc] {
            Instruction::Mov { src, .. } => Some(self.operand(src, &st)),
            Instruction::Alu { op, a, b, .. } => {
                Some(eval_op(*op, &self.operand(a, &st), &self.operand(b, &st)))
            }
            // All active lanes of a load read the same memory word
            // when the address register is warp-uniform (the
            // simulator dispatches one warp instruction atomically),
            // so the loaded value is uniform too — of unknown range.
            // An armed memory-cell table sharpens either case: an
            // in-bounds address set whose words all carry tracked
            // value ranges bounds the loaded value itself.
            Instruction::Ld { base, offset, .. } => {
                let refined = self
                    .cells
                    .and_then(|c| c.refine(&st[base.index()].add_const(*offset)));
                Some(match refined {
                    Some(v) => v,
                    None if st[base.index()].is_uniform() => AbsVal::Uniform(Range::FULL),
                    None => AbsVal::Top,
                })
            }
            _ => None,
        };
        if let (Some(new), Some(dst)) = (new, self.instrs[pc].dst()) {
            let d = dst.index();
            st[d] = if in_region[pc] {
                AbsVal::mix(&st[d], &new)
            } else {
                new
            };
        }
        st
    }

    fn operand(&self, op: &Operand, st: &[AbsVal]) -> AbsVal {
        match *op {
            Operand::Reg(r) => st[r.index()].clone(),
            Operand::Imm(v) => AbsVal::Uniform(Range::singleton(v)),
            // Parameters are per-launch constants: always uniform,
            // concrete when the launch is known.
            Operand::Param(i) => match self.launch.and_then(|l| l.params.get(i as usize)) {
                Some(&v) => AbsVal::Uniform(Range::singleton(v as i32)),
                None => AbsVal::Uniform(Range::FULL),
            },
            Operand::Special(s) => self.special(s),
        }
    }

    /// Abstract values of the special registers, matching the
    /// simulator's dispatch semantics exactly: within one warp,
    /// `%tid = warp_in_block·32 + lane` and
    /// `%gtid = block·block_dim + %tid` (mod 2³²) are affine in the
    /// lane with stride 1, everything else is warp-uniform.
    fn special(&self, s: Special) -> AbsVal {
        let blocks = self.launch.and_then(|l| l.blocks);
        let tpb = self.launch.and_then(|l| l.threads_per_block);
        let w = WARP_SIZE as i64;
        // Warp-focused interpretation: the warp-dependent specials are
        // concrete for one (block, warp) pair, exactly mirroring the
        // simulator's dispatch arithmetic (wrapping mod 2³²).
        if let Some(f) = self.focus {
            let warp_base = f.warp_in_block.wrapping_mul(WARP_SIZE as u32);
            match s {
                Special::Tid => {
                    return AbsVal::affine(Range::singleton(warp_base as i32), 1);
                }
                Special::GlobalTid => {
                    if let Some(t) = tpb {
                        let base = f.block.wrapping_mul(t).wrapping_add(warp_base);
                        return AbsVal::affine(Range::singleton(base as i32), 1);
                    }
                }
                Special::Bid => return AbsVal::Uniform(Range::singleton(f.block as i32)),
                Special::WarpId => {
                    return AbsVal::Uniform(Range::singleton(f.warp_in_block as i32))
                }
                _ => {}
            }
        }
        match s {
            Special::LaneId => AbsVal::affine(Range::singleton(0), 1),
            Special::Tid => {
                let base = match tpb {
                    Some(t) if t > 0 => Range::of(0, (i64::from(t) - 1) / w * w),
                    _ => Range::FULL,
                };
                AbsVal::affine(base, 1)
            }
            Special::GlobalTid => {
                let base = match (blocks, tpb) {
                    (Some(b), Some(t)) if b > 0 && t > 0 => {
                        Range::checked(0, i64::from(b) * i64::from(t) - w).unwrap_or(Range::FULL)
                    }
                    _ => Range::FULL,
                };
                AbsVal::affine(base, 1)
            }
            Special::Bid => AbsVal::Uniform(match blocks {
                Some(b) if b > 0 => Range::clamped(0, i64::from(b) - 1),
                _ => Range::FULL,
            }),
            Special::BlockDim => AbsVal::Uniform(match tpb {
                Some(t) => Range::singleton(t as i32),
                None => Range::FULL,
            }),
            Special::GridDim => AbsVal::Uniform(match blocks {
                Some(b) => Range::singleton(b as i32),
                None => Range::FULL,
            }),
            Special::WarpId => AbsVal::Uniform(match tpb {
                Some(t) if t > 0 => Range::of(0, (i64::from(t) - 1) / w),
                _ => Range::FULL,
            }),
        }
    }

    fn collect(
        &self,
        kernel: &str,
        ins: Vec<Option<Vec<AbsVal>>>,
        in_region: &[bool],
        branch_pcs: &[usize],
        nonuniform: &[bool],
    ) -> AbsintAnalysis {
        let mut sites = Vec::new();
        for (pc, slot) in ins.iter().enumerate() {
            let (Some(st), Some(dst)) = (slot, self.instrs[pc].dst()) else {
                continue;
            };
            let post = self.transfer(pc, st.clone(), in_region);
            let value = post[dst.index()].clone();
            // The simulator stores writes issued under divergence
            // uncompressed (`DivergencePolicy::UncompressedWrites`),
            // so a site inside a divergence region can only be
            // soundly promised the full footprint.
            let class = if in_region[pc] {
                CompressionClass::Uncompressed
            } else {
                value.class()
            };
            sites.push(SitePrediction {
                pc,
                reg: dst.index() as u8,
                class,
                divergent_region: in_region[pc],
                value,
            });
        }
        let branches = branch_pcs
            .iter()
            .filter(|&&pc| ins[pc].is_some())
            .map(|&pc| BranchVerdict {
                pc,
                uniform: !nonuniform[pc],
            })
            .collect();
        AbsintAnalysis {
            ins,
            divergent: in_region.to_vec(),
            prediction: KernelPrediction {
                kernel: kernel.to_string(),
                sites,
                branches,
            },
        }
    }
}

/// Abstract transfer function of one ALU op, mirroring
/// [`AluOp::apply`] lane-wise. Every op is deterministic, so uniform
/// operands *always* produce a uniform result — at worst of unknown
/// range — which is the single most load-bearing fact of the domain
/// (`Uniform` is ⟨4,0⟩-compressible regardless of range).
fn eval_op(op: AluOp, a: &AbsVal, b: &AbsVal) -> AbsVal {
    // Exact constant fold when both operands are known uniform values.
    if let (Some(x), Some(y)) = (a.uniform_singleton(), b.uniform_singleton()) {
        let r = op.apply(x as u32, y as u32);
        return AbsVal::Uniform(Range::singleton(r as i32));
    }
    let both_uniform = a.is_uniform() && b.is_uniform();
    let refined = match op {
        AluOp::Add => add(a, b),
        AluOp::Sub => sub(a, b),
        AluOp::Mul => mul(a, b),
        AluOp::Div | AluOp::Rem => {
            // |a/b| ≤ |a| and |a%b| ≤ |a|; division by zero yields 0
            // and MIN/−1 wraps back to MIN — all inside the magnitude
            // hull of `a`'s range extended through zero.
            a.per_lane_range().map(|ra| {
                let r = Range::clamped(ra.lo.min(-ra.hi).min(0), ra.hi.max(-ra.lo).max(0));
                if both_uniform {
                    AbsVal::Uniform(r)
                } else {
                    AbsVal::narrow(r)
                }
            })
        }
        AluOp::Min | AluOp::Max => minmax(op, a, b, both_uniform),
        AluOp::And | AluOp::Or | AluOp::Xor => bitop(op, a, b, both_uniform),
        AluOp::Shl | AluOp::Shr => shift(op, a, b, both_uniform),
        AluOp::SetLt | AluOp::SetLe | AluOp::SetEq | AluOp::SetNe => {
            return compare(op, a, b, both_uniform);
        }
    };
    refined.unwrap_or(if both_uniform {
        // No range information survived, but equal inputs still give
        // equal outputs lane-wise.
        AbsVal::Uniform(Range::FULL)
    } else {
        AbsVal::Top
    })
}

fn add(a: &AbsVal, b: &AbsVal) -> Option<AbsVal> {
    // Affine + affine stays affine mod 2³²: strides and bases add
    // independently. A base hull that may wrap degrades to the full
    // base range, not to Top — affinity itself survives wrapping.
    if let (Some((b1, s1)), Some((b2, s2))) = (a.as_affine(), b.as_affine()) {
        let base = Range::checked(b1.lo + b2.lo, b1.hi + b2.hi).unwrap_or(Range::FULL);
        return Some(AbsVal::affine(base, s1.wrapping_add(s2)));
    }
    let (ra, rb) = (a.per_lane_range()?, b.per_lane_range()?);
    Range::checked(ra.lo + rb.lo, ra.hi + rb.hi).map(AbsVal::narrow)
}

fn sub(a: &AbsVal, b: &AbsVal) -> Option<AbsVal> {
    if let (Some((b1, s1)), Some((b2, s2))) = (a.as_affine(), b.as_affine()) {
        let base = Range::checked(b1.lo - b2.hi, b1.hi - b2.lo).unwrap_or(Range::FULL);
        return Some(AbsVal::affine(base, s1.wrapping_sub(s2)));
    }
    let (ra, rb) = (a.per_lane_range()?, b.per_lane_range()?);
    Range::checked(ra.lo - rb.hi, ra.hi - rb.lo).map(AbsVal::narrow)
}

/// Interval product; bound magnitudes are ≤ 2³¹ so the corner
/// products fit `i64` exactly.
fn mul_bound(x: Range, y: Range) -> Option<Range> {
    let corners = [x.lo * y.lo, x.lo * y.hi, x.hi * y.lo, x.hi * y.hi];
    let lo = corners.into_iter().min().expect("non-empty");
    let hi = corners.into_iter().max().expect("non-empty");
    Range::checked(lo, hi)
}

fn mul(a: &AbsVal, b: &AbsVal) -> Option<AbsVal> {
    // Affine × uniform constant: multiplication distributes mod 2³²,
    // so the stride scales and affinity survives base wrapping.
    let scaled = |v: &AbsVal, c: i32| {
        v.as_affine().map(|(base, stride)| {
            let base = mul_bound(base, Range::singleton(c)).unwrap_or(Range::FULL);
            AbsVal::affine(base, stride.wrapping_mul(c))
        })
    };
    if let Some(v) = b.uniform_singleton().and_then(|c| scaled(a, c)) {
        return Some(v);
    }
    if let Some(v) = a.uniform_singleton().and_then(|c| scaled(b, c)) {
        return Some(v);
    }
    let (ra, rb) = (a.per_lane_range()?, b.per_lane_range()?);
    if a.is_uniform() && b.is_uniform() {
        return Some(AbsVal::Uniform(mul_bound(ra, rb).unwrap_or(Range::FULL)));
    }
    mul_bound(ra, rb).map(AbsVal::narrow)
}

fn minmax(op: AluOp, a: &AbsVal, b: &AbsVal, both_uniform: bool) -> Option<AbsVal> {
    let (ra, rb) = (a.per_lane_range()?, b.per_lane_range()?);
    let r = match op {
        AluOp::Min => Range::of(ra.lo.min(rb.lo), ra.hi.min(rb.hi)),
        _ => Range::of(ra.lo.max(rb.lo), ra.hi.max(rb.hi)),
    };
    Some(if both_uniform {
        AbsVal::Uniform(r)
    } else {
        AbsVal::narrow(r)
    })
}

fn bitop(op: AluOp, a: &AbsVal, b: &AbsVal, both_uniform: bool) -> Option<AbsVal> {
    let nonneg = |v: &AbsVal| v.per_lane_range().filter(Range::is_nonneg);
    let (ra, rb) = (nonneg(a), nonneg(b));
    let r = match op {
        // x & y clears bits: bounded by either non-negative operand.
        AluOp::And => match (ra, rb) {
            (Some(ra), Some(rb)) => Range::of(0, ra.hi.min(rb.hi)),
            (Some(ra), None) => Range::of(0, ra.hi),
            (None, Some(rb)) => Range::of(0, rb.hi),
            (None, None) => return None,
        },
        // x | y ≤ x + y and x ^ y ≤ x + y for non-negative operands,
        // and the sign bit stays clear.
        _ => Range::clamped(0, ra?.hi + rb?.hi),
    };
    Some(if both_uniform {
        AbsVal::Uniform(r)
    } else {
        AbsVal::narrow(r)
    })
}

fn shift(op: AluOp, a: &AbsVal, b: &AbsVal, both_uniform: bool) -> Option<AbsVal> {
    // Shifts are only bounded for non-negative (sign bit clear)
    // values; the hardware masks the amount to 5 bits.
    let ra = a.per_lane_range().filter(Range::is_nonneg)?;
    let k = b.uniform_singleton().map(|k| (k as u32) & 31);
    let r = match op {
        AluOp::Shl => {
            let k = k?;
            Range::checked(ra.lo << k, ra.hi << k)?
        }
        // Logical right shift of a non-negative value only shrinks it.
        _ => match k {
            Some(k) => Range::of(ra.lo >> k, ra.hi >> k),
            None => Range::of(0, ra.hi),
        },
    };
    Some(if both_uniform {
        AbsVal::Uniform(r)
    } else {
        AbsVal::narrow(r)
    })
}

fn compare(op: AluOp, a: &AbsVal, b: &AbsVal, both_uniform: bool) -> AbsVal {
    let ra = a.per_lane_range().unwrap_or(Range::FULL);
    let rb = b.per_lane_range().unwrap_or(Range::FULL);
    // A comparison decided by the per-lane ranges has the same outcome
    // in every lane: the result is uniform even for non-uniform
    // operands (e.g. `gtid < N` with N past the last thread).
    let decided = match op {
        AluOp::SetLt => {
            if ra.hi < rb.lo {
                Some(true)
            } else if ra.lo >= rb.hi {
                Some(false)
            } else {
                None
            }
        }
        AluOp::SetLe => {
            if ra.hi <= rb.lo {
                Some(true)
            } else if ra.lo > rb.hi {
                Some(false)
            } else {
                None
            }
        }
        AluOp::SetEq | AluOp::SetNe => {
            let eq = if ra.as_singleton().is_some() && ra == rb {
                Some(true)
            } else if ra.hi < rb.lo || rb.hi < ra.lo {
                Some(false)
            } else {
                None
            };
            if op == AluOp::SetEq {
                eq
            } else {
                eq.map(|v| !v)
            }
        }
        _ => unreachable!("compare called with a non-comparison op"),
    };
    match decided {
        Some(v) => AbsVal::Uniform(Range::singleton(i32::from(v))),
        // Undecided: still always 0 or 1 per lane.
        None if both_uniform => AbsVal::Uniform(Range::of(0, 1)),
        None => AbsVal::narrow(Range::of(0, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{Kernel, KernelBuilder, Reg};

    fn analyze(kernel: &Kernel, launch: Option<&LaunchInfo>) -> AbsintAnalysis {
        let cfg = Cfg::build(kernel.instrs());
        interpret(
            kernel.name(),
            kernel.instrs(),
            kernel.num_regs() as usize,
            &cfg,
            launch,
        )
    }

    fn uni(v: i32) -> AbsVal {
        AbsVal::Uniform(Range::singleton(v))
    }

    #[test]
    fn normalising_constructors() {
        assert_eq!(AbsVal::affine(Range::singleton(3), 0), uni(3));
        assert_eq!(AbsVal::narrow(Range::FULL), AbsVal::Top);
        assert_eq!(AbsVal::narrow(Range::singleton(9)), uni(9));
        assert!(matches!(
            AbsVal::narrow(Range::of(0, 5)),
            AbsVal::NarrowRange(_)
        ));
    }

    #[test]
    fn class_mapping_follows_stride_and_width() {
        assert_eq!(
            AbsVal::Uniform(Range::FULL).class(),
            CompressionClass::Delta0
        );
        let aff = |s| AbsVal::LaneAffine {
            base: Range::FULL,
            stride: s,
        };
        assert_eq!(aff(1).class(), CompressionClass::Delta1);
        assert_eq!(aff(4).class(), CompressionClass::Delta1); // 4·31 = 124
        assert_eq!(aff(-4).class(), CompressionClass::Delta1);
        assert_eq!(aff(5).class(), CompressionClass::Delta2); // 5·31 = 155
        assert_eq!(aff(1057).class(), CompressionClass::Delta2); // 1057·31 = 32767
        assert_eq!(aff(1058).class(), CompressionClass::Uncompressed);
        assert_eq!(
            AbsVal::NarrowRange(Range::of(0, 127)).class(),
            CompressionClass::Delta1
        );
        assert_eq!(
            AbsVal::NarrowRange(Range::of(0, 128)).class(),
            CompressionClass::Delta2
        );
        assert_eq!(
            AbsVal::NarrowRange(Range::of(-20000, 20000)).class(),
            CompressionClass::Uncompressed
        );
        assert_eq!(AbsVal::Top.class(), CompressionClass::Uncompressed);
    }

    #[test]
    fn join_keeps_structure_but_mix_does_not() {
        // Path union of two uniform singletons is still uniform …
        assert_eq!(
            AbsVal::join(&uni(5), &uni(7)),
            AbsVal::Uniform(Range::of(5, 7))
        );
        // … but a lane mixture of them is not: mix degrades to the
        // per-lane hull, which is the soundness-critical difference.
        assert_eq!(
            AbsVal::mix(&uni(5), &uni(7)),
            AbsVal::NarrowRange(Range::of(5, 7))
        );
        // Mixing a lane-determined value with itself is a no-op.
        assert_eq!(AbsVal::mix(&uni(5), &uni(5)), uni(5));
        let lane = AbsVal::affine(Range::singleton(0), 1);
        assert_eq!(AbsVal::mix(&lane, &lane), lane);
        // Same-stride affine path union hulls the base.
        assert_eq!(
            AbsVal::join(
                &AbsVal::affine(Range::singleton(0), 2),
                &AbsVal::affine(Range::singleton(10), 2)
            ),
            AbsVal::affine(Range::of(0, 10), 2)
        );
    }

    #[test]
    fn contains_oracle() {
        let lanes_eq = [7u32; WARP_SIZE];
        assert!(uni(7).contains(&lanes_eq));
        assert!(!uni(8).contains(&lanes_eq));
        assert!(!AbsVal::narrow(Range::of(0, 6)).contains(&lanes_eq));
        let mut ramp = [0u32; WARP_SIZE];
        for (i, v) in ramp.iter_mut().enumerate() {
            *v = 100 + 3 * i as u32;
        }
        assert!(AbsVal::affine(Range::of(0, 200), 3).contains(&ramp));
        assert!(!AbsVal::affine(Range::of(0, 200), 2).contains(&ramp));
        assert!(!uni(100).contains(&ramp));
        assert!(AbsVal::Top.contains(&ramp));
        // Wrapped affine: a base near u32::MAX reinterprets negative.
        let mut wrapped = [0u32; WARP_SIZE];
        for (i, v) in wrapped.iter_mut().enumerate() {
            *v = u32::MAX.wrapping_add(i as u32); // -1, 0, 1, …
        }
        assert!(AbsVal::affine(Range::singleton(-1), 1).contains(&wrapped));
    }

    #[test]
    fn straight_line_thread_index_is_affine() {
        let mut b = KernelBuilder::new("ramp", 3);
        b.mov(Reg(0), Operand::Special(Special::LaneId));
        b.alu(AluOp::Mul, Reg(1), Operand::Reg(Reg(0)), Operand::Imm(4));
        b.alu(
            AluOp::Add,
            Reg(2),
            Operand::Reg(Reg(1)),
            Operand::Imm(0x1000),
        );
        b.st(Reg(2), 0, Reg(1));
        b.exit();
        let k = b.build().unwrap();
        let p = analyze(&k, None).prediction;
        // r0 = lane (stride 1), r1 = 4·lane, r2 = 0x1000 + 4·lane:
        // all affine with |stride·31| ≤ 127 → Delta1 (3 banks).
        assert_eq!(p.site_at(0).unwrap().class, CompressionClass::Delta1);
        assert_eq!(
            p.site_at(1).unwrap().value,
            AbsVal::affine(Range::singleton(0), 4)
        );
        assert_eq!(p.site_at(1).unwrap().class, CompressionClass::Delta1);
        assert_eq!(
            p.site_at(2).unwrap().value,
            AbsVal::affine(Range::singleton(0x1000), 4)
        );
        assert_eq!(p.informative_fraction(), 1.0);
        assert_eq!(p.compressed_fraction(), 1.0);
        assert_eq!(p.min_gateable_banks(), 5);
        assert!(p.branches.is_empty());
    }

    #[test]
    fn uniform_counted_loop_stays_uniform() {
        // r0 = trip count (param); r1 = counter; loop while r1 < r0.
        // The branch condition is uniform, so no divergence region
        // exists and the counter stays Uniform (Delta0) even after
        // widening opens its range.
        let mut b = KernelBuilder::new("loop", 3);
        let head = b.label();
        let exit = b.label();
        b.mov(Reg(0), Operand::Param(0));
        b.bind(head);
        b.alu(
            AluOp::SetLt,
            Reg(2),
            Operand::Reg(Reg(1)),
            Operand::Reg(Reg(0)),
        );
        b.alu(AluOp::SetEq, Reg(2), Operand::Reg(Reg(2)), Operand::Imm(0));
        b.bra(Reg(2), exit, exit);
        b.alu(AluOp::Add, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(1));
        b.jmp(head);
        b.bind(exit);
        b.exit();
        let k = b.build().unwrap();
        let p = analyze(&k, None).prediction;
        assert_eq!(p.branches.len(), 1);
        assert!(p.branches[0].uniform, "uniform trip count never diverges");
        for s in &p.sites {
            assert_eq!(
                s.class,
                CompressionClass::Delta0,
                "site @{}: {}",
                s.pc,
                s.value
            );
            assert!(!s.divergent_region);
        }
        assert_eq!(p.min_gateable_banks(), 7);
    }

    #[test]
    fn divergent_branch_mixes_written_registers() {
        // Branch on a lane-dependent predicate; the then-block writes
        // r2. After reconvergence r2 is a lane mixture (not Uniform),
        // and the in-region write site is predicted Uncompressed.
        let mut b = KernelBuilder::new("div", 4);
        let merge = b.label();
        b.mov(Reg(0), Operand::Special(Special::LaneId));
        b.alu(AluOp::SetLt, Reg(1), Operand::Reg(Reg(0)), Operand::Imm(16));
        b.alu(AluOp::SetEq, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(0));
        b.bra(Reg(1), merge, merge);
        b.mov(Reg(2), Operand::Imm(7)); // pc 4, masked write
        b.bind(merge);
        b.mov(Reg(3), Operand::Reg(Reg(2))); // pc 5, after reconvergence
        b.st(Reg(0), 0, Reg(3));
        b.exit();
        let k = b.build().unwrap();
        let a = analyze(&k, None);
        let p = &a.prediction;
        let verdict = p.branches.iter().find(|v| v.pc == 3).unwrap();
        assert!(!verdict.uniform);
        let masked = p.site_at(4).unwrap();
        assert!(masked.divergent_region);
        assert_eq!(masked.class, CompressionClass::Uncompressed);
        // r2 at the merge mixes 0 (untaken lanes) and 7: a narrow
        // range, not Uniform — the unsoundness the mixing join fixes.
        let after = p.site_at(5).unwrap();
        assert!(!after.value.is_uniform(), "r2 copy is {}", after.value);
        assert_eq!(after.value, AbsVal::narrow(Range::of(0, 7)));
        assert_eq!(after.class, CompressionClass::Delta1);
        // r0 (lane id) was not written in the region: affinity
        // survives reconvergence.
        let st = a.state_at(5).unwrap();
        assert_eq!(st[0], AbsVal::affine(Range::singleton(0), 1));
    }

    #[test]
    fn uniform_load_address_gives_uniform_value() {
        let mut b = KernelBuilder::new("ldu", 2);
        b.mov(Reg(0), Operand::Imm(64));
        b.ld(Reg(1), Reg(0), 0);
        b.st(Reg(0), 4, Reg(1));
        b.exit();
        let k = b.build().unwrap();
        let a = analyze(&k, None);
        let s = a.prediction.site_at(1).unwrap();
        assert_eq!(s.value, AbsVal::Uniform(Range::FULL));
        assert_eq!(s.class, CompressionClass::Delta0);
    }

    #[test]
    fn launch_info_sharpens_specials_and_params() {
        let launch = LaunchInfo {
            params: vec![640, 7],
            blocks: Some(10),
            threads_per_block: Some(64),
            mem_words: None,
            initial_mem: None,
        };
        let mut b = KernelBuilder::new("special", 5);
        b.mov(Reg(0), Operand::Special(Special::GlobalTid));
        b.mov(Reg(1), Operand::Param(0));
        b.alu(
            AluOp::SetLt,
            Reg(2),
            Operand::Reg(Reg(0)),
            Operand::Reg(Reg(1)),
        );
        b.mov(Reg(3), Operand::Special(Special::Bid));
        b.mov(Reg(4), Operand::Special(Special::BlockDim));
        b.exit();
        let k = b.build().unwrap();
        let p = analyze(&k, Some(&launch)).prediction;
        // gtid ∈ 0 + lane… with base up to 640 − 32; every lane value
        // is < 640 = param 0, so the guard is decided uniform-true.
        assert_eq!(
            p.site_at(0).unwrap().value,
            AbsVal::affine(Range::of(0, 608), 1)
        );
        assert_eq!(p.site_at(1).unwrap().value, uni(640));
        assert_eq!(p.site_at(2).unwrap().value, uni(1));
        assert_eq!(
            p.site_at(3).unwrap().value,
            AbsVal::Uniform(Range::of(0, 9))
        );
        assert_eq!(p.site_at(4).unwrap().value, uni(64));
    }

    #[test]
    fn ragged_block_size_degrades_every_write() {
        let launch = LaunchInfo {
            params: vec![],
            blocks: Some(1),
            threads_per_block: Some(48), // partial tail warp
            mem_words: None,
            initial_mem: None,
        };
        let mut b = KernelBuilder::new("ragged", 1);
        b.mov(Reg(0), Operand::Imm(3));
        b.st(Reg(0), 0, Reg(0));
        b.exit();
        let k = b.build().unwrap();
        let s = analyze(&k, Some(&launch))
            .prediction
            .site_at(0)
            .cloned()
            .unwrap();
        assert!(s.divergent_region);
        assert_eq!(s.class, CompressionClass::Uncompressed);
    }

    #[test]
    fn widening_terminates_open_loops() {
        // A loop whose exit condition the analysis cannot decide:
        // without widening the counter's range would ascend forever.
        let mut b = KernelBuilder::new("open", 3);
        let head = b.label();
        let exit = b.label();
        b.mov(Reg(0), Operand::Param(0));
        b.bind(head);
        b.alu(
            AluOp::SetLt,
            Reg(2),
            Operand::Reg(Reg(1)),
            Operand::Reg(Reg(0)),
        );
        b.alu(AluOp::SetEq, Reg(2), Operand::Reg(Reg(2)), Operand::Imm(0));
        b.bra(Reg(2), exit, exit);
        b.alu(AluOp::Add, Reg(1), Operand::Reg(Reg(1)), Operand::Imm(3));
        b.jmp(head);
        b.bind(exit);
        b.exit();
        let k = b.build().unwrap();
        let p = analyze(&k, None).prediction; // unknown trip count
        let counter = &p.site_at(4).unwrap().value;
        assert!(counter.is_uniform(), "counter is {counter}");
        assert_eq!(counter.class(), CompressionClass::Delta0);
    }

    #[test]
    fn eval_op_algebra() {
        let lane = AbsVal::affine(Range::singleton(0), 1);
        // lane·4 + 16: affine stride 4.
        let scaled = eval_op(AluOp::Mul, &lane, &uni(4));
        assert_eq!(scaled, AbsVal::affine(Range::singleton(0), 4));
        let off = eval_op(AluOp::Add, &scaled, &uni(16));
        assert_eq!(off, AbsVal::affine(Range::singleton(16), 4));
        // lane − lane: strides cancel to uniform zero.
        assert_eq!(eval_op(AluOp::Sub, &lane, &lane), uni(0));
        // Unknown-uniform ops stay uniform (the load-bearing rule).
        let u = AbsVal::Uniform(Range::FULL);
        assert_eq!(eval_op(AluOp::Mul, &u, &u), AbsVal::Uniform(Range::FULL));
        assert_eq!(eval_op(AluOp::Xor, &u, &u), AbsVal::Uniform(Range::FULL));
        // Div magnitude bound.
        let a = AbsVal::narrow(Range::of(-10, 100));
        assert_eq!(
            eval_op(AluOp::Div, &a, &AbsVal::Top),
            AbsVal::narrow(Range::of(-100, 100))
        );
        // And with one non-negative side bounds the result.
        let mask = AbsVal::narrow(Range::of(0, 255));
        assert_eq!(
            eval_op(AluOp::And, &AbsVal::Top, &mask),
            AbsVal::narrow(Range::of(0, 255))
        );
        // Shr of a non-negative range by an unknown amount.
        let x = AbsVal::narrow(Range::of(512, 1000));
        assert_eq!(
            eval_op(AluOp::Shr, &x, &AbsVal::Top),
            AbsVal::narrow(Range::of(0, 1000))
        );
        // Decided comparison over affine operands is uniform.
        let g = AbsVal::affine(Range::of(0, 608), 1);
        assert_eq!(eval_op(AluOp::SetLt, &g, &uni(640)), uni(1));
        assert_eq!(eval_op(AluOp::SetLt, &g, &uni(0)), uni(0));
        // Undecided comparison is still a 0/1 narrow range.
        assert_eq!(
            eval_op(AluOp::SetLt, &g, &uni(100)),
            AbsVal::narrow(Range::of(0, 1))
        );
    }

    #[test]
    fn exact_fold_matches_wrapping_semantics() {
        assert_eq!(
            eval_op(AluOp::Add, &uni(i32::MAX), &uni(1)),
            uni(i32::MIN) // wraps exactly like the ALU
        );
        assert_eq!(eval_op(AluOp::Div, &uni(7), &uni(0)), uni(0));
        assert_eq!(eval_op(AluOp::Shr, &uni(-1), &uni(1)), uni(i32::MAX));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(uni(3).to_string(), "uniform(3)");
        assert_eq!(
            AbsVal::affine(Range::singleton(16), 4).to_string(),
            "affine(16 + 4*lane)"
        );
        assert_eq!(
            AbsVal::narrow(Range::of(0, 5)).to_string(),
            "narrow([0, 5])"
        );
        assert_eq!(AbsVal::Top.to_string(), "top");
    }
}
