//! Backward register liveness and the per-kernel summary statistics
//! the energy model consumes.
//!
//! This is the GREENER-style view of the register file: at every
//! program point, which architectural registers hold a value that some
//! future instruction may still read. Registers outside that set are
//! dead weight — banks holding them could be drowsy/off without
//! affecting the computation, which is the static upper bound the
//! `gpu-power` crate compares against measured bank occupancy.

use serde::{Deserialize, Serialize};
use simt_isa::Instruction;

use crate::cfg::Cfg;
use crate::dataflow::RegSet;

/// Per-pc live-register sets (fixpoint of the classic backward
/// may-analysis `live_in = (live_out − def) ∪ use`).
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
}

impl Liveness {
    /// Runs the backward may-analysis to fixpoint.
    pub fn compute(instrs: &[Instruction], cfg: &Cfg) -> Liveness {
        let n = instrs.len();
        let mut uses = vec![RegSet::EMPTY; n];
        let mut defs: Vec<Option<u8>> = vec![None; n];
        for (pc, instr) in instrs.iter().enumerate() {
            for r in instr.src_regs() {
                uses[pc].insert(r.index() as u8);
            }
            defs[pc] = instr.dst().map(|r| r.index() as u8);
        }

        let mut live_in = vec![RegSet::EMPTY; n];
        let mut live_out = vec![RegSet::EMPTY; n];
        let mut work: Vec<usize> = (0..n).rev().collect();
        while let Some(pc) = work.pop() {
            let mut out = RegSet::EMPTY;
            for &s in cfg.succs(pc) {
                out.union_with(&live_in[s]);
            }
            live_out[pc] = out;
            let mut inn = out;
            if let Some(d) = defs[pc] {
                inn.remove(d);
            }
            inn.union_with(&uses[pc]);
            if live_in[pc].union_with(&inn) {
                work.extend(cfg.preds(pc).iter().copied());
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live immediately before the instruction at `pc`.
    pub fn live_in(&self, pc: usize) -> &RegSet {
        &self.live_in[pc]
    }

    /// Registers live immediately after the instruction at `pc`.
    pub fn live_out(&self, pc: usize) -> &RegSet {
        &self.live_out[pc]
    }
}

/// Aggregate liveness statistics for one kernel, over the program
/// points reachable from entry.
///
/// `histogram[k]` counts the program points at which exactly `k`
/// registers are simultaneously live; `max_live` is the static worst
/// case a register file must actually hold, and [`dead_fraction`] is
/// the average fraction of architectural registers that are dead — the
/// static upper bound on how many banks power gating could turn off.
///
/// [`dead_fraction`]: LivenessSummary::dead_fraction
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LivenessSummary {
    /// Kernel name, for reports.
    pub kernel: String,
    /// Architectural registers the kernel declares.
    pub num_regs: u8,
    /// `histogram[k]` = number of reachable program points with exactly
    /// `k` live registers (length `num_regs + 1`).
    pub histogram: Vec<usize>,
    /// Maximum simultaneously live registers at any reachable point.
    pub max_live: usize,
    /// Mean live registers across reachable program points.
    pub avg_live: f64,
}

impl LivenessSummary {
    /// Builds the summary from a solved liveness fixpoint, counting the
    /// live-in set of every entry-reachable pc.
    pub fn collect(kernel: &str, num_regs: u8, cfg: &Cfg, liveness: &Liveness) -> LivenessSummary {
        let mut histogram = vec![0usize; usize::from(num_regs) + 1];
        let mut max_live = 0usize;
        let mut total = 0usize;
        let mut points = 0usize;
        for pc in 0..cfg.len() {
            if !cfg.is_reachable(pc) {
                continue;
            }
            let k = liveness.live_in(pc).len();
            // Guard: a structurally invalid sequence could reference a
            // register ≥ num_regs; clamp rather than panic.
            let slot = k.min(histogram.len() - 1);
            histogram[slot] += 1;
            max_live = max_live.max(k);
            total += k;
            points += 1;
        }
        let avg_live = if points == 0 {
            0.0
        } else {
            total as f64 / points as f64
        };
        LivenessSummary {
            kernel: kernel.to_string(),
            num_regs,
            histogram,
            max_live,
            avg_live,
        }
    }

    /// Mean fraction of declared registers that are *dead* — the static
    /// bound on the bank fraction power gating could switch off.
    pub fn dead_fraction(&self) -> f64 {
        if self.num_regs == 0 {
            0.0
        } else {
            1.0 - self.avg_live / f64::from(self.num_regs)
        }
    }

    /// `avg_live / num_regs`: mean fraction of registers holding a
    /// value some future instruction may read.
    pub fn avg_live_fraction(&self) -> f64 {
        if self.num_regs == 0 {
            0.0
        } else {
            self.avg_live / f64::from(self.num_regs)
        }
    }

    /// `max_live / num_regs`: worst-case static register pressure.
    pub fn max_live_fraction(&self) -> f64 {
        if self.num_regs == 0 {
            0.0
        } else {
            self.max_live as f64 / f64::from(self.num_regs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{AluOp, Operand, Reg};

    fn build(instrs: &[Instruction]) -> (Cfg, Liveness) {
        let cfg = Cfg::build(instrs);
        let lv = Liveness::compute(instrs, &cfg);
        (cfg, lv)
    }

    #[test]
    fn straight_line_liveness() {
        // 0: mov r0, 1
        // 1: add r1, r0, 1
        // 2: st [r1+0], r0
        // 3: exit
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Imm(1),
            },
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(1),
            },
            Instruction::St {
                base: Reg(1),
                offset: 0,
                src: Reg(0),
            },
            Instruction::Exit,
        ];
        let (cfg, lv) = build(&instrs);
        assert!(lv.live_in(0).is_empty());
        assert!(lv.live_out(0).contains(0));
        assert!(lv.live_in(2).contains(0) && lv.live_in(2).contains(1));
        assert!(lv.live_out(2).is_empty());

        let s = LivenessSummary::collect("k", 2, &cfg, &lv);
        assert_eq!(s.max_live, 2);
        assert_eq!(s.histogram.iter().sum::<usize>(), 4);
        assert!(s.avg_live > 0.0 && s.avg_live < 2.0);
        assert!(s.dead_fraction() > 0.0 && s.dead_fraction() < 1.0);
        assert!((s.avg_live_fraction() + s.dead_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(s.max_live_fraction(), 1.0);
    }

    #[test]
    fn loop_back_edge_keeps_register_live() {
        // 0: mov r0, 0
        // 1: add r0, r0, 1      <- loop head
        // 2: set.lt r1, r0, 9
        // 3: bra r1 -> 1 (reconv 4)
        // 4: exit
        let instrs = vec![
            Instruction::Mov {
                dst: Reg(0),
                src: Operand::Imm(0),
            },
            Instruction::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(1),
            },
            Instruction::Alu {
                op: AluOp::SetLt,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(9),
            },
            Instruction::Bra {
                pred: Reg(1),
                target: 1,
                reconv: 4,
            },
            Instruction::Exit,
        ];
        let (_, lv) = build(&instrs);
        // r0 stays live around the back edge, including at the branch.
        assert!(lv.live_out(3).contains(0));
        assert!(lv.live_in(3).contains(0) && lv.live_in(3).contains(1));
        assert!(lv.live_out(0).contains(0));
        // The add at 1 is *not* a dead write: its value flows into 2.
        assert!(lv.live_out(1).contains(0));
    }
}
