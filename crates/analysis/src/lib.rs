//! Static verification and dataflow analysis for `simt-isa` kernels.
//!
//! The 18 hand-written workload kernels are this project's substitute
//! for the paper's Rodinia/Parboil binaries, which makes their
//! correctness load-bearing for every reproduced figure. This crate is
//! the correctness gate: it builds a control-flow graph from a kernel
//! ([`cfg::Cfg`]: basic blocks plus branch and reconvergence edges) and
//! runs classic dataflow on top —
//!
//! * [reaching definitions](dataflow::ReachingDefs), from which
//!   use-before-def reads are reported,
//! * [backward register liveness](liveness::Liveness) per program
//!   point, from which dead writes are reported and a GREENER-style
//!   [`LivenessSummary`] (live-register histogram, max simultaneously
//!   live, dead-register fraction) is produced for the energy model,
//! * structural lints: branch targets in range, register indices below
//!   `num_regs`, `exit` reachability, unreachable code, and balanced
//!   divergence/reconvergence nesting (no path stuck inside a
//!   divergence region, no inner branch reconverging outside it).
//!
//! Everything is reported as a machine-readable [`LintReport`] of
//! [`Diagnostic`]s (severity, pc, register).
//!
//! The entry points accept raw `&[Instruction]` slices
//! ([`analyze_instrs`]) as well as validated kernels ([`analyze`]):
//! [`simt_isa::Kernel::new`] already rejects out-of-range targets and
//! registers, so the negative paths of those lints are only observable
//! on unvalidated sequences.
//!
//! # Example
//!
//! ```
//! use simt_isa::{Instruction, Operand, Reg};
//!
//! let instrs = vec![
//!     // Dead write: overwritten at the next instruction, never read.
//!     Instruction::Mov { dst: Reg(0), src: Operand::Imm(1) },
//!     Instruction::Mov { dst: Reg(0), src: Operand::Imm(2) },
//!     // r1 is read but never written anywhere.
//!     Instruction::St { base: Reg(0), offset: 0, src: Reg(1) },
//!     Instruction::Exit,
//! ];
//! let analysis = simt_analysis::analyze_instrs("demo", &instrs, 2);
//! assert_eq!(analysis.report.warning_count(), 2);
//! assert!(!analysis.report.has_errors());
//! let live = analysis.liveness.unwrap();
//! assert_eq!(live.max_live, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod cfg;
pub mod dataflow;
pub mod lint;
pub mod liveness;
pub mod memabs;
pub mod memcell;
pub mod perfbound;
pub mod schedule;
pub mod trace;

use simt_isa::{ControlFlow, Instruction, Kernel};

pub use absint::{
    interpret, interpret_with_cells, AbsVal, AbsintAnalysis, BranchVerdict, KernelPrediction,
    LaunchInfo, Range, SitePrediction,
};
pub use cfg::{BasicBlock, Cfg};
pub use dataflow::{DefSite, ReachingDefs, RegSet};
pub use lint::{Diagnostic, LintKind, LintReport, Severity};
pub use liveness::{Liveness, LivenessSummary};
pub use memabs::{analyze_mem, AccessPattern, MemAbs, MemSite, RacePair};
pub use memcell::{analyze_cells, CellTable, MemCells};
pub use perfbound::{
    bound_kernel, BlockBound, ConflictSite, MemFloor, PerfLaunch, PerfMachine, PerfPrediction,
};
pub use schedule::{schedule_kernel, IssuePlan, PlannedInstr, ScheduleBail, WarpPlan};

use serde::{Deserialize, Serialize};

/// The verifier's full output for one kernel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelAnalysis {
    /// Every lint finding.
    pub report: LintReport,
    /// Liveness statistics; `None` when structural errors made the
    /// dataflow passes meaningless (bad targets, fall-off-the-end, …).
    pub liveness: Option<LivenessSummary>,
    /// Static compressibility prediction from the warp-value abstract
    /// interpretation; `None` under the same structural-error
    /// conditions as `liveness`.
    pub prediction: Option<KernelPrediction>,
}

/// Analyses a validated kernel.
///
/// Structural lints cannot fire here (construction already enforces
/// them), but all dataflow and divergence lints apply, and
/// `liveness` and `prediction` are always `Some`.
pub fn analyze(kernel: &Kernel) -> KernelAnalysis {
    analyze_instrs(kernel.name(), kernel.instrs(), kernel.num_regs())
}

/// Like [`analyze`], with launch facts sharpening the abstract
/// interpretation (concrete parameters and grid geometry).
pub fn analyze_with_launch(kernel: &Kernel, launch: Option<&LaunchInfo>) -> KernelAnalysis {
    analyze_instrs_with_launch(kernel.name(), kernel.instrs(), kernel.num_regs(), launch)
}

/// Analyses a raw, possibly invalid instruction sequence.
///
/// Structural checks run first; if any fail, the dataflow passes are
/// skipped (their results would be meaningless) and `liveness` and
/// `prediction` are `None`.
pub fn analyze_instrs(name: &str, instrs: &[Instruction], num_regs: u8) -> KernelAnalysis {
    analyze_instrs_with_launch(name, instrs, num_regs, None)
}

/// Like [`analyze_instrs`], with launch facts for the abstract
/// interpretation.
pub fn analyze_instrs_with_launch(
    name: &str,
    instrs: &[Instruction],
    num_regs: u8,
    launch: Option<&LaunchInfo>,
) -> KernelAnalysis {
    let mut diags = Vec::new();
    structural_lints(instrs, num_regs, &mut diags);
    if !diags.is_empty() {
        return KernelAnalysis {
            report: LintReport::new(name, diags),
            liveness: None,
            prediction: None,
        };
    }

    let cfg = Cfg::build(instrs);
    reachability_lints(instrs, &cfg, &mut diags);
    divergence_lints(instrs, &cfg, &mut diags);

    let rd = ReachingDefs::compute(instrs, num_regs, &cfg);
    use_before_def_lints(instrs, &cfg, &rd, &mut diags);
    let lv = Liveness::compute(instrs, &cfg);
    dead_write_lints(instrs, &cfg, &lv, &mut diags);

    // The memory-cell analysis subsumes the plain abstract
    // interpretation: without an initial-memory image it degrades to
    // exactly `interpret`, with one it refines loads through the
    // verified per-word cell table.
    let cells = memcell::analyze_cells(name, instrs, usize::from(num_regs), &cfg, launch);
    uniform_branch_lints(&cells.absint.prediction, &mut diags);
    refinable_load_lints(&cells, &mut diags);
    let mem = memabs::analyze_mem(name, instrs, num_regs, &cfg, launch);
    mem_lints(&mem, launch, &mut diags);
    unschedulable_region_lints(
        instrs,
        &cfg,
        &rd,
        &cells.absint.prediction,
        launch,
        &mem,
        &cells,
        &mut diags,
    );

    // Stable order: whole-kernel findings first, then by pc.
    diags.sort_by_key(|d| d.pc.map_or((0, 0), |pc| (1, pc)));

    let liveness = LivenessSummary::collect(name, num_regs, &cfg, &lv);
    KernelAnalysis {
        report: LintReport::new(name, diags),
        liveness: Some(liveness),
        prediction: Some(cells.absint.prediction),
    }
}

/// Info-severity findings for loads the memory-cell domain refines
/// statically: the destination value is bounded by the reported range
/// even though it crossed the load/store boundary. Only fires when a
/// verified cell table is armed (the launch supplied a full
/// initial-memory image).
fn refinable_load_lints(cells: &memcell::MemCells, diags: &mut Vec<Diagnostic>) {
    for (&pc, value) in &cells.refined {
        diags.push(Diagnostic::new(
            LintKind::RefinableLoad,
            Some(pc),
            None,
            format!(
                "load refines to {value} through the abstract memory cells: \
                 the loaded value is statically bounded"
            ),
        ));
    }
}

/// Info-severity findings for branches whose condition is provably
/// warp-uniform: the hardware never diverges on them, so the SIMT
/// stack push and the divergent-write compression penalty are both
/// avoidable.
fn uniform_branch_lints(prediction: &KernelPrediction, diags: &mut Vec<Diagnostic>) {
    for v in &prediction.branches {
        if v.uniform {
            diags.push(Diagnostic::new(
                LintKind::UniformBranch,
                Some(v.pc),
                None,
                "branch condition is provably warp-uniform: this branch never diverges".into(),
            ));
        }
    }
}

/// Findings from the static memory analysis: proven cross-warp
/// conflicting access pairs (warning), provably uncoalesced strided
/// accesses (info), and accesses whose entire abstract address range
/// lies outside the launch's global memory (warning). The
/// out-of-bounds lint only fires on a *proof* — a range that merely
/// straddles the bound, or an unknown (`Top`) address, makes no
/// claim — so imprecision never produces false warnings.
fn mem_lints(mem: &memabs::MemAbs, launch: Option<&LaunchInfo>, diags: &mut Vec<Diagnostic>) {
    for race in &mem.races {
        if !race.must {
            continue;
        }
        let what = if race.other_is_store { "store" } else { "load" };
        diags.push(Diagnostic::new(
            LintKind::CrossWarpRace,
            Some(race.store_pc),
            None,
            format!(
                "store provably touches the same word as the {what} at @{} \
                 in another warp: the result depends on warp-scheduling order",
                race.other_pc
            ),
        ));
    }
    for site in &mem.sites {
        if site.min_transactions >= 2 {
            diags.push(Diagnostic::new(
                LintKind::UncoalescedAccess,
                Some(site.pc),
                Some(site.base),
                format!(
                    "{} {} (lane stride {}) needs at least {} memory transactions \
                     per warp dispatch",
                    site.pattern.name(),
                    if site.is_store { "store" } else { "load" },
                    match site.pattern {
                        memabs::AccessPattern::Strided(s) => s,
                        _ => 0,
                    },
                    site.min_transactions,
                ),
            ));
        }
        if let Some(mw) = launch.and_then(|l| l.mem_words) {
            if provably_out_of_bounds(site, mw) {
                diags.push(Diagnostic::new(
                    LintKind::PossibleOutOfBounds,
                    Some(site.pc),
                    Some(site.base),
                    format!(
                        "abstract address {} lies entirely outside global memory \
                         (0..{mw} words): every dispatch of this access faults",
                        site.address
                    ),
                ));
            }
        }
    }
}

/// Whether every address the site can generate provably misses
/// `[0, mem_words)`. Only lane-determined or fully-ranged shapes can
/// prove this; anything imprecise returns `false`.
fn provably_out_of_bounds(site: &memabs::MemSite, mem_words: u64) -> bool {
    let mw = i64::try_from(mem_words).unwrap_or(i64::MAX);
    match site.address.per_lane_range() {
        // The whole per-lane range misses [0, mw): negative-only
        // (reinterpreted as an address ≥ 2³¹, past any memory this
        // size) or past the end.
        Some(r) => (r.hi < 0 && mem_words <= 1 << 31) || r.lo >= mw,
        None => false,
    }
}

/// Info-severity findings for branches the ahead-of-time issue
/// scheduler ([`schedule_kernel`]) provably cannot resolve: predicates
/// (transitively) data-dependent on memory loads.
///
/// A load-taint fixpoint over the reaching definitions
/// over-approximates the scheduler's per-warp replay losing a register
/// value: a definition is tainted if it is a load, if any source
/// register has a tainted reaching definition, or — when the write can
/// execute under a partial thread mask (a divergent region, or any
/// launch with partial trailing warps) — if the *merged-over* old value
/// of the destination has a tainted reaching definition. Every
/// [`ScheduleBail::UnknownPredicate`] pc is flagged here (the converse
/// does not hold: the scheduler may still resolve a tainted predicate
/// through the abstract per-lane range, and fuel exhaustion is a
/// dynamic property no taint analysis sees).
///
/// The memory analysis sharpens the fixpoint: a load the forwarding
/// analysis proves always reads back its own warp's must-available
/// store ([`memabs::MemAbs::forwardable`]) is *not* inherently
/// tainted — the replay resolves it from its shadow memory — so its
/// taint reduces to that of the matched store's operands. This is
/// what lets provably non-aliasing load-dependent regions become
/// statically schedulable. The memory-cell analysis sharpens it
/// further: a load whose whole abstract address range is in-bounds and
/// store-free ([`memcell::MemCells::resolvable`]) resolves every lane
/// concretely from the initial-memory image, so it is not inherently
/// tainted either (its taint reduces to that of the address operands,
/// which `src_taint` already covers).
#[allow(clippy::too_many_arguments)]
fn unschedulable_region_lints(
    instrs: &[Instruction],
    cfg: &Cfg,
    rd: &ReachingDefs,
    prediction: &KernelPrediction,
    launch: Option<&LaunchInfo>,
    mem: &memabs::MemAbs,
    cells: &memcell::MemCells,
    diags: &mut Vec<Diagnostic>,
) {
    // With a launch whose blocks split into full warps only, partial
    // masks require divergence; otherwise the trailing warp of every
    // block merges every write.
    let partial_warps = launch
        .and_then(|l| l.threads_per_block)
        .is_none_or(|t| t % bdi::WARP_SIZE as u32 != 0);
    let mut tainted = vec![false; instrs.len()];
    let def_tainted = |tainted: &[bool], at: usize, reg: u8| {
        rd.defs_reaching(at, reg)
            .iter()
            .any(|d| d.pc.is_some_and(|p| tainted[p]))
    };
    let mut changed = true;
    while changed {
        changed = false;
        for (pc, instr) in instrs.iter().enumerate() {
            if tainted[pc] || !cfg.is_reachable(pc) {
                continue;
            }
            let Some(dst) = instr.dst() else {
                continue;
            };
            let src_taint = instr
                .src_regs()
                .into_iter()
                .any(|r| def_tainted(&tainted, pc, r.index() as u8));
            let masked_merge =
                partial_warps || prediction.site_at(pc).is_some_and(|s| s.divergent_region);
            let merge_taint = masked_merge && def_tainted(&tainted, pc, dst.index() as u8);
            // A statically forwardable load is only as tainted as the
            // store it forwards from: the replay needs the store's
            // address and value to populate its shadow.
            let load_taint = match instr {
                // An image-resolvable load is as clean as its address
                // operands (covered by `src_taint`): the replay reads
                // every lane straight from the store-free image.
                Instruction::Ld { .. } if cells.resolvable.contains(&pc) => false,
                Instruction::Ld { .. } => match mem.forwardable.get(&pc) {
                    Some(&s_pc) => instrs[s_pc]
                        .src_regs()
                        .into_iter()
                        .any(|r| def_tainted(&tainted, s_pc, r.index() as u8)),
                    None => true,
                },
                _ => false,
            };
            if load_taint || src_taint || merge_taint {
                tainted[pc] = true;
                changed = true;
            }
        }
    }
    for (pc, instr) in instrs.iter().enumerate() {
        let Instruction::Bra { pred, .. } = instr else {
            continue;
        };
        if !cfg.is_reachable(pc) {
            continue;
        }
        if def_tainted(&tainted, pc, pred.index() as u8) {
            diags.push(Diagnostic::new(
                LintKind::UnschedulableRegion,
                Some(pc),
                Some(pred.index() as u8),
                "branch predicate depends on loaded data: the static issue \
                 scheduler cannot resolve this region and falls back to the \
                 dynamic core"
                    .into(),
            ));
        }
    }
}

/// The lints `Kernel::new` also enforces: emptiness, target and
/// register ranges, and falling off the end.
fn structural_lints(instrs: &[Instruction], num_regs: u8, diags: &mut Vec<Diagnostic>) {
    if instrs.is_empty() {
        diags.push(Diagnostic::new(
            LintKind::EmptyKernel,
            None,
            None,
            "kernel has no instructions".into(),
        ));
        return;
    }
    for (pc, instr) in instrs.iter().enumerate() {
        let mut regs = instr.src_regs();
        regs.extend(instr.dst());
        for r in regs {
            if r.index() >= usize::from(num_regs) {
                diags.push(Diagnostic::new(
                    LintKind::RegisterOutOfRange,
                    Some(pc),
                    Some(r.index() as u8),
                    format!(
                        "references r{} but the kernel declares {num_regs} registers",
                        r.index()
                    ),
                ));
            }
        }
        let targets: Vec<usize> = match instr.control_flow() {
            ControlFlow::Branch { target, reconv } => vec![target, reconv],
            ControlFlow::Jump { target } => vec![target],
            _ => Vec::new(),
        };
        for t in targets {
            if t >= instrs.len() {
                diags.push(Diagnostic::new(
                    LintKind::TargetOutOfRange,
                    Some(pc),
                    None,
                    format!("targets out-of-range pc @{t}"),
                ));
            }
        }
    }
    let last = instrs.len() - 1;
    if matches!(
        instrs[last].control_flow(),
        ControlFlow::FallThrough | ControlFlow::Branch { .. }
    ) {
        diags.push(Diagnostic::new(
            LintKind::FallsOffEnd,
            Some(last),
            None,
            "execution can fall off the end of the kernel".into(),
        ));
    }
}

/// `exit` reachability and unreachable-code runs.
fn reachability_lints(instrs: &[Instruction], cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let any_exit_reachable = instrs
        .iter()
        .enumerate()
        .any(|(pc, i)| matches!(i, Instruction::Exit) && cfg.is_reachable(pc));
    if !any_exit_reachable {
        diags.push(Diagnostic::new(
            LintKind::ExitUnreachable,
            None,
            None,
            "no `exit` is reachable from entry: every warp would hang".into(),
        ));
    }
    // One diagnostic per contiguous unreachable run, not per pc.
    let mut pc = 0;
    while pc < instrs.len() {
        if cfg.is_reachable(pc) {
            pc += 1;
            continue;
        }
        let start = pc;
        while pc < instrs.len() && !cfg.is_reachable(pc) {
            pc += 1;
        }
        diags.push(Diagnostic::new(
            LintKind::UnreachableCode,
            Some(start),
            None,
            format!(
                "{} instruction(s) at @{start}..@{} can never execute",
                pc - start,
                pc - 1
            ),
        ));
    }
}

/// Balanced divergence/reconvergence nesting.
///
/// For each reachable branch, the *divergence region* is everything
/// reachable from its two successors without passing through its
/// reconvergence pc — the pcs one half of the warp can occupy while the
/// other half is parked at `reconv`. Two things must hold:
///
/// * every pc in the region can still reach `reconv` or an `exit`
///   (otherwise the parked half waits forever: deadlock),
/// * no branch inside the region can carry its threads *across* the
///   outer reconvergence point while its own (different) reconvergence
///   entry sits on top of the SIMT stack — the stack pops in LIFO
///   order, so crossing an outer reconvergence pc under an inner entry
///   means the parked outer half is never merged with.
fn divergence_lints(instrs: &[Instruction], cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let exits: Vec<usize> = instrs
        .iter()
        .enumerate()
        .filter_map(|(pc, i)| matches!(i, Instruction::Exit).then_some(pc))
        .collect();
    for &(bra_pc, reconv) in cfg.reconv_edges() {
        if !cfg.is_reachable(bra_pc) {
            continue;
        }
        let ControlFlow::Branch { target, .. } = instrs[bra_pc].control_flow() else {
            continue;
        };
        let region = cfg.region(&[target, bra_pc + 1], reconv);
        let mut escape_seeds = exits.clone();
        escape_seeds.push(reconv);
        let can_escape = cfg.reaches_any(&escape_seeds);
        if let Some(stuck) = (0..instrs.len()).find(|&q| region[q] && !can_escape[q]) {
            diags.push(Diagnostic::new(
                LintKind::DivergenceDeadlock,
                Some(bra_pc),
                None,
                format!(
                    "divergent path reaches @{stuck}, which can reach neither the \
                     reconvergence point @{reconv} nor an exit"
                ),
            ));
        }
        for q in 0..instrs.len() {
            if !region[q] || q == bra_pc {
                continue;
            }
            let ControlFlow::Branch {
                target: inner_target,
                reconv: inner_reconv,
            } = instrs[q].control_flow()
            else {
                continue;
            };
            if inner_reconv == reconv {
                continue;
            }
            // Pcs the inner branch's threads can occupy while its entry
            // (reconv `inner_reconv`) is on top of the stack. If the
            // outer reconvergence point is among them, threads cross it
            // without popping down to the outer entry.
            let inner_region = cfg.region(&[inner_target, q + 1], inner_reconv);
            if inner_region[reconv] {
                diags.push(Diagnostic::new(
                    LintKind::ReconvergenceEscape,
                    Some(q),
                    None,
                    format!(
                        "divergent threads of this branch (reconv @{inner_reconv}) can \
                         cross @{reconv}, the reconvergence point of the enclosing \
                         branch at @{bra_pc}, breaking stack-ordered reconvergence"
                    ),
                ));
            }
        }
    }
}

/// Reads of registers whose entry (zero) definition may still reach.
fn use_before_def_lints(
    instrs: &[Instruction],
    cfg: &Cfg,
    rd: &ReachingDefs,
    diags: &mut Vec<Diagnostic>,
) {
    for (pc, instr) in instrs.iter().enumerate() {
        if !cfg.is_reachable(pc) {
            continue;
        }
        let mut seen = RegSet::EMPTY;
        for r in instr.src_regs() {
            let reg = r.index() as u8;
            if seen.insert(reg) && rd.entry_def_reaches(pc, reg) {
                diags.push(Diagnostic::new(
                    LintKind::UseBeforeDef,
                    Some(pc),
                    Some(reg),
                    format!("r{reg} may be read before any instruction writes it"),
                ));
            }
        }
    }
}

/// Writes whose value no future instruction can observe.
fn dead_write_lints(instrs: &[Instruction], cfg: &Cfg, lv: &Liveness, diags: &mut Vec<Diagnostic>) {
    for (pc, instr) in instrs.iter().enumerate() {
        if !cfg.is_reachable(pc) {
            continue;
        }
        if let Some(dst) = instr.dst() {
            let reg = dst.index() as u8;
            if !lv.live_out(pc).contains(reg) {
                diags.push(Diagnostic::new(
                    LintKind::DeadWrite,
                    Some(pc),
                    Some(reg),
                    format!("r{reg} is written here but the value is never read"),
                ));
            }
        }
    }
}
