//! One failing kernel per lint: each check must fire on a minimal
//! offending sequence, with the right severity, pc and register, and
//! nothing else may fire alongside it (diagnostic precision matters as
//! much as recall — noisy lints would get ignored).

use simt_analysis::{
    analyze, analyze_instrs, analyze_instrs_with_launch, KernelAnalysis, LaunchInfo, LintKind,
    Severity,
};
use simt_isa::{AluOp, Instruction, Kernel, Operand, Reg, Special};

fn mov(dst: u8, imm: i32) -> Instruction {
    Instruction::Mov {
        dst: Reg(dst),
        src: Operand::Imm(imm),
    }
}

/// Asserts the analysis found exactly one warning-or-worse diagnostic,
/// of `kind`, and returns it. Info-severity findings (e.g.
/// `uniform-branch`) are observations, not defects, and are ignored.
fn single(a: &KernelAnalysis, kind: LintKind) -> simt_analysis::Diagnostic {
    let findings: Vec<_> = a
        .report
        .diagnostics
        .iter()
        .filter(|d| d.severity > Severity::Info)
        .cloned()
        .collect();
    assert_eq!(
        findings.len(),
        1,
        "expected exactly one finding, got: {:?}",
        a.report.diagnostics
    );
    let d = findings[0].clone();
    assert_eq!(d.kind, kind);
    assert_eq!(d.severity, kind.severity());
    d
}

#[test]
fn use_before_def_detected() {
    // r0 is read at pc 0 but never written anywhere.
    let instrs = vec![
        Instruction::Alu {
            op: AluOp::Add,
            dst: Reg(1),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(1),
        },
        Instruction::St {
            base: Reg(1),
            offset: 0,
            src: Reg(1),
        },
        Instruction::Exit,
    ];
    let a = analyze_instrs("ubd", &instrs, 2);
    let d = single(&a, LintKind::UseBeforeDef);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.pc, Some(0));
    assert_eq!(d.reg, Some(0));
    assert!(a.liveness.is_some());
}

#[test]
fn use_before_def_respects_all_paths() {
    // r1 is written on the fall-through path only; the read after the
    // merge is still flagged because the taken path skips the write.
    let instrs = vec![
        mov(0, 1),
        Instruction::Bra {
            pred: Reg(0),
            target: 3,
            reconv: 3,
        },
        mov(1, 7),
        Instruction::St {
            base: Reg(0),
            offset: 0,
            src: Reg(1),
        },
        Instruction::Exit,
    ];
    let a = analyze_instrs("ubd-path", &instrs, 2);
    let d = single(&a, LintKind::UseBeforeDef);
    assert_eq!((d.pc, d.reg), (Some(3), Some(1)));
}

#[test]
fn dead_write_detected() {
    // The first write to r0 is overwritten before any read.
    let instrs = vec![
        mov(0, 1),
        mov(0, 2),
        Instruction::St {
            base: Reg(0),
            offset: 0,
            src: Reg(0),
        },
        Instruction::Exit,
    ];
    let a = analyze_instrs("deadwrite", &instrs, 1);
    let d = single(&a, LintKind::DeadWrite);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!((d.pc, d.reg), (Some(0), Some(0)));
}

#[test]
fn write_live_around_back_edge_is_not_dead() {
    // Regression guard for the bfs hash-loop shape: a write read only
    // via the loop back edge is live.
    let instrs = vec![
        mov(0, 0), // accumulator
        Instruction::Alu {
            op: AluOp::Add,
            dst: Reg(0),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(1),
        },
        Instruction::Alu {
            op: AluOp::SetLt,
            dst: Reg(1),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(5),
        },
        Instruction::Bra {
            pred: Reg(1),
            target: 1,
            reconv: 4,
        },
        Instruction::St {
            base: Reg(0),
            offset: 0,
            src: Reg(0),
        },
        Instruction::Exit,
    ];
    let a = analyze_instrs("backedge", &instrs, 2);
    assert!(
        a.report.is_clean(),
        "unexpected diagnostics: {:?}",
        a.report.diagnostics
    );
}

#[test]
fn bad_branch_target_detected() {
    let instrs = vec![
        Instruction::Bra {
            pred: Reg(0),
            target: 9,
            reconv: 1,
        },
        Instruction::Exit,
    ];
    let a = analyze_instrs("badtarget", &instrs, 1);
    let d = single(&a, LintKind::TargetOutOfRange);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.pc, Some(0));
    // Structural errors block the dataflow passes.
    assert!(a.liveness.is_none());
}

#[test]
fn bad_reconvergence_target_detected() {
    let instrs = vec![
        Instruction::Bra {
            pred: Reg(0),
            target: 1,
            reconv: 42,
        },
        Instruction::Exit,
    ];
    let a = analyze_instrs("badreconv", &instrs, 1);
    assert_eq!(single(&a, LintKind::TargetOutOfRange).pc, Some(0));
}

#[test]
fn register_out_of_range_detected() {
    let instrs = vec![mov(5, 1), Instruction::Exit];
    let a = analyze_instrs("badreg", &instrs, 2);
    let d = single(&a, LintKind::RegisterOutOfRange);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!((d.pc, d.reg), (Some(0), Some(5)));
    assert!(a.liveness.is_none());
}

#[test]
fn falls_off_end_detected() {
    let a = analyze_instrs("fall", &[mov(0, 1)], 1);
    let d = single(&a, LintKind::FallsOffEnd);
    assert_eq!(d.pc, Some(0));
}

#[test]
fn empty_kernel_detected() {
    let a = analyze_instrs("empty", &[], 1);
    single(&a, LintKind::EmptyKernel);
    assert!(a.liveness.is_none());
}

#[test]
fn unreachable_exit_detected() {
    let a = analyze_instrs("noexit", &[Instruction::Jmp { target: 0 }], 1);
    let d = single(&a, LintKind::ExitUnreachable);
    assert_eq!(d.severity, Severity::Error);
    assert!(a.liveness.is_some());
}

#[test]
fn unreachable_code_detected() {
    let instrs = vec![Instruction::Jmp { target: 2 }, mov(0, 1), Instruction::Exit];
    let a = analyze_instrs("skip", &instrs, 1);
    let d = single(&a, LintKind::UnreachableCode);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.pc, Some(1));
}

#[test]
fn divergence_deadlock_detected() {
    // The taken path of the branch spins at @3 forever, so the threads
    // parked at the reconvergence point @4 never see it arrive. This
    // kernel passes `Kernel::new` validation — only the analysis pass
    // catches it.
    let k = Kernel::new(
        "deadlock",
        vec![
            mov(0, 1),
            Instruction::Bra {
                pred: Reg(0),
                target: 3,
                reconv: 4,
            },
            Instruction::Jmp { target: 4 },
            Instruction::Jmp { target: 3 },
            Instruction::Exit,
        ],
        1,
    )
    .unwrap();
    let a = analyze(&k);
    let d = single(&a, LintKind::DivergenceDeadlock);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.pc, Some(1));
    assert!(d.message.contains("@3"));
}

#[test]
fn unbalanced_reconvergence_detected() {
    // The outer branch at @1 reconverges at @4. The inner branch at @3
    // reconverges at @6, and its fall-through path runs straight
    // *through* @4 with the inner stack entry still on top — the outer
    // parked half is never merged with. Structurally valid; only the
    // analysis pass catches it.
    let k = Kernel::new(
        "escape",
        vec![
            mov(0, 1),
            Instruction::Bra {
                pred: Reg(0),
                target: 3,
                reconv: 4,
            },
            Instruction::Jmp { target: 4 },
            Instruction::Bra {
                pred: Reg(0),
                target: 5,
                reconv: 6,
            },
            Instruction::St {
                base: Reg(0),
                offset: 0,
                src: Reg(0),
            },
            Instruction::St {
                base: Reg(0),
                offset: 1,
                src: Reg(0),
            },
            Instruction::Exit,
        ],
        1,
    )
    .unwrap();
    let a = analyze(&k);
    let d = single(&a, LintKind::ReconvergenceEscape);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.pc, Some(3));
    assert!(d.message.contains("@1"));
    assert!(d.message.contains("@4"));
}

fn launch(blocks: u32, threads_per_block: u32, mem_words: u64) -> LaunchInfo {
    LaunchInfo {
        params: Vec::new(),
        blocks: Some(blocks),
        threads_per_block: Some(threads_per_block),
        mem_words: Some(mem_words),
        initial_mem: None,
    }
}

#[test]
fn cross_warp_race_detected() {
    // Both warps of the block store to the same uniform word: the
    // result depends on warp-scheduling order, and the race analysis
    // can prove it (uniform address, full masks → a must-conflict).
    let instrs = vec![
        mov(0, 0),
        Instruction::St {
            base: Reg(0),
            offset: 0,
            src: Reg(0),
        },
        Instruction::Exit,
    ];
    let l = launch(1, 64, 4);
    let a = analyze_instrs_with_launch("race", &instrs, 1, Some(&l));
    let d = single(&a, LintKind::CrossWarpRace);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.pc, Some(1));
    assert!(d.message.contains("another warp"));
}

#[test]
fn uncoalesced_access_reported_at_info() {
    // A stride-4 store touches 4 segments per warp dispatch. That is a
    // performance observation, not a defect: info severity, report
    // stays clean.
    let instrs = vec![
        Instruction::Mov {
            dst: Reg(0),
            src: Operand::Special(Special::Tid),
        },
        Instruction::Alu {
            op: AluOp::Mul,
            dst: Reg(0),
            a: Operand::Reg(Reg(0)),
            b: Operand::Imm(4),
        },
        Instruction::St {
            base: Reg(0),
            offset: 0,
            src: Reg(0),
        },
        Instruction::Exit,
    ];
    let l = launch(1, 32, 128);
    let a = analyze_instrs_with_launch("strided", &instrs, 1, Some(&l));
    assert!(
        a.report.is_clean(),
        "unexpected diagnostics: {:?}",
        a.report.diagnostics
    );
    let d: Vec<_> = a.report.of_kind(LintKind::UncoalescedAccess).collect();
    assert_eq!(d.len(), 1, "diagnostics: {:?}", a.report.diagnostics);
    assert_eq!(d[0].severity, Severity::Info);
    assert_eq!(d[0].pc, Some(2));
    assert!(d[0].message.contains("stride 4"));
}

#[test]
fn possible_out_of_bounds_detected() {
    // The store's whole abstract address set (the single word 100)
    // lies past the launch's 4 words of global memory: every dispatch
    // faults, and the analysis can say so without a false-positive
    // risk.
    let instrs = vec![
        mov(0, 100),
        Instruction::St {
            base: Reg(0),
            offset: 0,
            src: Reg(0),
        },
        Instruction::Exit,
    ];
    let l = launch(1, 32, 4);
    let a = analyze_instrs_with_launch("oob", &instrs, 1, Some(&l));
    let d = single(&a, LintKind::PossibleOutOfBounds);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.pc, Some(1));
    assert!(d.message.contains("outside global memory"));
}

#[test]
fn refinable_load_reported_at_info() {
    // The load's address is the uniform word 2, the image is present
    // and covers memory, and nothing ever stores: the memcell domain
    // refines the loaded value to the exact image word, reported as an
    // info observation that leaves the report clean.
    let instrs = vec![
        mov(0, 2),
        Instruction::Ld {
            dst: Reg(1),
            base: Reg(0),
            offset: 0,
        },
        Instruction::St {
            base: Reg(0),
            offset: 1,
            src: Reg(1),
        },
        Instruction::Exit,
    ];
    let mut l = launch(1, 32, 4);
    l.initial_mem = Some(std::sync::Arc::new(vec![5, 6, 7, 8]));
    let a = analyze_instrs_with_launch("refine", &instrs, 2, Some(&l));
    assert!(
        a.report.is_clean(),
        "unexpected diagnostics: {:?}",
        a.report.diagnostics
    );
    let d: Vec<_> = a.report.of_kind(LintKind::RefinableLoad).collect();
    assert_eq!(d.len(), 1, "diagnostics: {:?}", a.report.diagnostics);
    assert_eq!(d[0].severity, Severity::Info);
    assert_eq!(d[0].pc, Some(1));
    assert!(d[0].message.contains("abstract memory cells"));
}

#[test]
fn unrefinable_load_stays_silent() {
    // A store through an unbounded (thread-id shifted by itself)
    // address may touch any word, so every cell is tainted and the
    // later load of word 2 must NOT claim a refined value — a false
    // refinable-load here would be an unsound lint.
    let instrs = vec![
        Instruction::Mov {
            dst: Reg(0),
            src: Operand::Special(Special::Tid),
        },
        Instruction::Alu {
            op: AluOp::Shl,
            dst: Reg(0),
            a: Operand::Reg(Reg(0)),
            b: Operand::Reg(Reg(0)),
        },
        Instruction::St {
            base: Reg(0),
            offset: 0,
            src: Reg(0),
        },
        mov(1, 2),
        Instruction::Ld {
            dst: Reg(2),
            base: Reg(1),
            offset: 0,
        },
        Instruction::Exit,
    ];
    let mut l = launch(1, 32, 4);
    l.initial_mem = Some(std::sync::Arc::new(vec![5, 6, 7, 8]));
    let a = analyze_instrs_with_launch("tainted", &instrs, 3, Some(&l));
    assert_eq!(
        a.report.of_kind(LintKind::RefinableLoad).count(),
        0,
        "a tainted cell must not refine: {:?}",
        a.report.diagnostics
    );
}

#[test]
fn uniform_branch_reported_at_info() {
    // The predicate is a compile-time constant: every lane takes the
    // same side, and the verifier says so — at info severity, leaving
    // the report clean.
    let instrs = vec![
        mov(0, 1),
        mov(1, 0),
        Instruction::Bra {
            pred: Reg(0),
            target: 4,
            reconv: 4,
        },
        mov(1, 2),
        Instruction::St {
            base: Reg(0),
            offset: 0,
            src: Reg(1),
        },
        Instruction::Exit,
    ];
    let a = analyze_instrs("uniform", &instrs, 2);
    assert!(
        a.report.is_clean(),
        "unexpected diagnostics: {:?}",
        a.report.diagnostics
    );
    let d: Vec<_> = a.report.of_kind(LintKind::UniformBranch).collect();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].severity, Severity::Info);
    assert_eq!(d[0].pc, Some(2));
    // The prediction carries the matching verdict.
    let p = a.prediction.unwrap();
    assert_eq!(p.branches.len(), 1);
    assert!(p.branches[0].uniform);
}

#[test]
fn properly_nested_divergence_is_clean() {
    // if/else with a nested if on the then-path: stack-ordered
    // reconvergence, no findings.
    let k = Kernel::new(
        "nested",
        vec![
            mov(0, 1),
            Instruction::Bra {
                pred: Reg(0),
                target: 4,
                reconv: 6,
            },
            mov(1, 2),
            Instruction::Jmp { target: 6 },
            Instruction::Bra {
                pred: Reg(0),
                target: 5,
                reconv: 5,
            },
            mov(1, 3),
            Instruction::St {
                base: Reg(0),
                offset: 0,
                src: Reg(1),
            },
            Instruction::Exit,
        ],
        2,
    )
    .unwrap();
    let a = analyze(&k);
    assert!(
        a.report.is_clean(),
        "unexpected diagnostics: {:?}",
        a.report.diagnostics
    );
}
